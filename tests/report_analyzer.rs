//! Golden/equivalence harness for the offline run-report analyzer: the JSON
//! report produced from a journal + telemetry trace must be byte-identical
//! across execution modes that only change *how* the run executed, never
//! *what* it decided — serial vs. `Threads(4)`, and killed-and-resumed vs.
//! uninterrupted.
//!
//! Worker-thread telemetry (bundle GP fits) only reaches the process-global
//! sink, and `cargo test` runs `#[test]` functions on parallel threads of
//! one process. So every scenario that captures a trace lives in the single
//! sequential test below, which owns the global sink for its whole body.
//!
//! To regenerate the pinned report snapshot after an *intentional* behaviour
//! change:
//!
//! ```text
//! MFBO_REGEN_GOLDEN=1 cargo test --test report_analyzer
//! ```

use analog_mfbo::circuits::testfns;
use analog_mfbo::prelude::*;
use mfbo::run_report::{validate_schema, RunReport};
use mfbo::RunOptions;
use mfbo_telemetry::json::{self, record_to_json, Json};
use mfbo_telemetry::sinks::CollectSink;
use mfbo_telemetry::Level;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::Arc;

fn store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mfbo-report-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(parallelism: Parallelism, max_iterations: Option<usize>) -> MfBoConfig {
    let mut c = MfBoConfig {
        initial_low: 8,
        initial_high: 4,
        budget: 10.0,
        parallelism,
        ..MfBoConfig::default()
    };
    if let Some(n) = max_iterations {
        c.max_iterations = n;
    }
    c
}

/// Runs MFBO with the global sink capturing a full Debug-level trace, and
/// returns that trace as parsed JSONL records (what `--trace` would hold).
fn traced_run(
    parallelism: Parallelism,
    dir: &PathBuf,
    resume: bool,
    max_iterations: Option<usize>,
) -> Vec<Json> {
    let sink = Arc::new(CollectSink::with_level(Level::Debug));
    mfbo_telemetry::set_global_sink(sink.clone());
    let mut opts = if resume {
        RunOptions::resuming(RunStore::open(dir).unwrap())
    } else {
        RunOptions::journaled(RunStore::open(dir).unwrap())
    };
    let mut rng = StdRng::seed_from_u64(7);
    let result = MfBayesOpt::new(config(parallelism, max_iterations)).run_with(
        &testfns::forrester(),
        &mut rng,
        &mut opts,
    );
    mfbo_telemetry::clear_global_sink();
    result.unwrap();
    sink.records()
        .iter()
        .map(|r| json::parse(&record_to_json(r)).unwrap())
        .collect()
}

fn report_for(dir: &PathBuf, trace: &[Json]) -> RunReport {
    let (meta, entries) = RunStore::load_journal(dir).unwrap();
    RunReport::analyze(&meta, &entries, Some(trace))
}

#[test]
fn report_is_identical_across_threads_and_resume() {
    // Uninterrupted serial baseline.
    let dir_a = store_dir("serial");
    let trace_a = traced_run(Parallelism::Serial, &dir_a, false, None);
    let report_a = report_for(&dir_a, &trace_a);
    let bytes_a = report_a.to_json_string();

    // Same run under the thread pool: worker gp_fit events arrive in a
    // different order, pool counters appear — the JSON must not move.
    let dir_b = store_dir("threads");
    let trace_b = traced_run(Parallelism::Threads(4), &dir_b, false, None);
    let bytes_b = report_for(&dir_b, &trace_b).to_json_string();
    assert_eq!(bytes_a, bytes_b, "serial vs Threads(4) report bytes");

    // Killed after 3 BO iterations, then resumed: the journal carries both
    // sessions, the trace comes from the resumed session (which replays the
    // prefix and re-emits its deterministic events).
    let dir_c = store_dir("resume");
    traced_run(Parallelism::Serial, &dir_c, false, Some(3));
    let trace_c = traced_run(Parallelism::Serial, &dir_c, true, None);
    let bytes_c = report_for(&dir_c, &trace_c).to_json_string();
    assert_eq!(
        bytes_a, bytes_c,
        "uninterrupted vs killed-and-resumed report bytes"
    );

    // The report must satisfy the checked-in schema the CI smoke job uses.
    let schema_path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("schemas")
        .join("report.schema.json");
    let schema = json::parse(&std::fs::read_to_string(&schema_path).unwrap()).unwrap();
    validate_schema(&schema, report_a.json()).expect("report matches checked-in schema");

    // Journal-only invocation (no trace) still yields the journal sections.
    let (meta, entries) = RunStore::load_journal(&dir_a).unwrap();
    let no_trace = RunReport::analyze(&meta, &entries, None);
    assert!(no_trace.json().get("health").is_none());
    assert_eq!(
        no_trace.json().get("evaluations").map(|j| j.to_string()),
        report_a.json().get("evaluations").map(|j| j.to_string()),
    );

    check_report_against_golden("report_forrester_seed7.json", &report_a);
}

// ---------------------------------------------------------------------------
// Golden snapshot (tolerant numeric compare so libm ulp differences across
// platforms don't flake the suite; on one platform the byte-equality
// assertions above are the exact check).
// ---------------------------------------------------------------------------

const REL_TOL: f64 = 1e-6;

fn assert_json_close(golden: &Json, actual: &Json, path: &str) {
    match (golden, actual) {
        (Json::Num(g), Json::Num(a)) => assert!(
            (g - a).abs() <= REL_TOL * g.abs().max(a.abs()).max(1.0),
            "{path}: golden {g}, actual {a}"
        ),
        (Json::Arr(g), Json::Arr(a)) => {
            assert_eq!(g.len(), a.len(), "{path}: array length");
            for (i, (gv, av)) in g.iter().zip(a).enumerate() {
                assert_json_close(gv, av, &format!("{path}[{i}]"));
            }
        }
        (Json::Obj(g), Json::Obj(a)) => {
            let keys = |o: &[(String, Json)]| o.iter().map(|(k, _)| k.clone()).collect::<Vec<_>>();
            assert_eq!(keys(g), keys(a), "{path}: object keys");
            for (k, gv) in g {
                assert_json_close(gv, actual.get(k).unwrap(), &format!("{path}.{k}"));
            }
        }
        // Hyperparameter trajectories are strings of floats; compare them
        // value-wise under the same tolerance.
        (Json::Str(g), Json::Str(a)) if g != a => {
            let parse = |s: &str| -> Option<Vec<f64>> {
                s.split([',', ';', '|'])
                    .map(|t| t.parse::<f64>().ok())
                    .collect()
            };
            match (parse(g), parse(a)) {
                (Some(gs), Some(as_)) if gs.len() == as_.len() => {
                    for (i, (gv, av)) in gs.iter().zip(&as_).enumerate() {
                        assert!(
                            (gv - av).abs() <= REL_TOL * gv.abs().max(av.abs()).max(1.0),
                            "{path} element {i}: golden {gv}, actual {av}"
                        );
                    }
                }
                _ => panic!("{path}: golden {g:?}, actual {a:?}"),
            }
        }
        _ => assert_eq!(
            golden.to_string(),
            actual.to_string(),
            "{path}: value changed"
        ),
    }
}

fn check_report_against_golden(name: &str, report: &RunReport) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join(name);
    if std::env::var("MFBO_REGEN_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, report.to_json_string()).unwrap();
        return;
    }
    let golden_text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with MFBO_REGEN_GOLDEN=1 to create it",
            path.display()
        )
    });
    let golden = json::parse(&golden_text).unwrap();
    assert_json_close(&golden, report.json(), "$");
}

//! Integration tests of the CSV/report pipeline on real optimizer output.

use analog_mfbo::circuits::testfns;
use analog_mfbo::prelude::*;
use mfbo::report;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_run() -> mfbo::Outcome {
    let problem = testfns::forrester();
    let mut rng = StdRng::seed_from_u64(3);
    MfBayesOpt::new(MfBoConfig {
        initial_low: 6,
        initial_high: 3,
        budget: 6.0,
        ..MfBoConfig::default()
    })
    .run(&problem, &mut rng)
    .expect("run succeeds")
}

#[test]
fn history_csv_round_trips_through_parsing() {
    let outcome = small_run();
    let mut buf = Vec::new();
    report::write_history_csv(&outcome, &mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    let mut lines = text.lines();
    let header = lines.next().unwrap();
    assert_eq!(
        header,
        "iteration,fidelity,cost_so_far,objective,violation,feasible,x0"
    );
    let rows: Vec<&str> = lines.collect();
    assert_eq!(rows.len(), outcome.history.len());

    // Parse back and check cost monotonicity and fidelity labels.
    let mut prev_cost = 0.0;
    let mut lows = 0;
    let mut highs = 0;
    for row in rows {
        let cells: Vec<&str> = row.split(',').collect();
        assert_eq!(cells.len(), 7);
        match cells[1] {
            "low" => lows += 1,
            "high" => highs += 1,
            other => panic!("unexpected fidelity label {other}"),
        }
        let cost: f64 = cells[2].parse().unwrap();
        assert!(cost > prev_cost);
        prev_cost = cost;
        let obj: f64 = cells[3].parse().unwrap();
        assert!(obj.is_finite());
        let x0: f64 = cells[6].parse().unwrap();
        assert!((0.0..=1.0).contains(&x0));
    }
    assert_eq!(lows, outcome.n_low);
    assert_eq!(highs, outcome.n_high);
    assert_eq!(report::fidelity_mix(&outcome), (lows, highs));
}

#[test]
fn convergence_csv_is_monotone_decreasing() {
    let outcome = small_run();
    let mut buf = Vec::new();
    report::write_convergence_csv(&outcome, &mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    let mut best = f64::INFINITY;
    for line in text.lines().skip(1) {
        let cells: Vec<&str> = line.split(',').collect();
        let v: f64 = cells[1].parse().unwrap();
        assert!(v <= best + 1e-12, "best-so-far must never worsen");
        best = v;
    }
    assert!(best < f64::INFINITY);
}

#[test]
fn summary_is_consistent_with_outcome() {
    let outcome = small_run();
    let s = report::summary(&outcome);
    assert!(s.contains(&format!(
        "{} low + {} high",
        outcome.n_low, outcome.n_high
    )));
    assert!(s.contains(&format!("{}", outcome.feasible)));
}

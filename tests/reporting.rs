//! Integration tests of the CSV/report/telemetry pipeline on real
//! optimizer output.

use analog_mfbo::circuits::testfns;
use analog_mfbo::prelude::*;
use mfbo::report;
use mfbo_telemetry::json;
use mfbo_telemetry::sinks::{CollectSink, JsonlSink};
use mfbo_telemetry::{Kind, Level};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn small_run() -> mfbo::Outcome {
    let problem = testfns::forrester();
    let mut rng = StdRng::seed_from_u64(3);
    MfBayesOpt::new(MfBoConfig {
        initial_low: 6,
        initial_high: 3,
        budget: 6.0,
        ..MfBoConfig::default()
    })
    .run(&problem, &mut rng)
    .expect("run succeeds")
}

#[test]
fn history_csv_round_trips_through_parsing() {
    let outcome = small_run();
    let mut buf = Vec::new();
    report::write_history_csv(&outcome, &mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    let mut lines = text.lines();
    let header = lines.next().unwrap();
    assert_eq!(
        header,
        "iteration,fidelity,cost_so_far,objective,violation,feasible,x0"
    );
    let rows: Vec<&str> = lines.collect();
    assert_eq!(rows.len(), outcome.history.len());

    // Parse back and check cost monotonicity and fidelity labels.
    let mut prev_cost = 0.0;
    let mut lows = 0;
    let mut highs = 0;
    for row in rows {
        let cells: Vec<&str> = row.split(',').collect();
        assert_eq!(cells.len(), 7);
        match cells[1] {
            "low" => lows += 1,
            "high" => highs += 1,
            other => panic!("unexpected fidelity label {other}"),
        }
        let cost: f64 = cells[2].parse().unwrap();
        assert!(cost > prev_cost);
        prev_cost = cost;
        let obj: f64 = cells[3].parse().unwrap();
        assert!(obj.is_finite());
        let x0: f64 = cells[6].parse().unwrap();
        assert!((0.0..=1.0).contains(&x0));
    }
    assert_eq!(lows, outcome.n_low);
    assert_eq!(highs, outcome.n_high);
    assert_eq!(report::fidelity_mix(&outcome), (lows, highs));
}

#[test]
fn convergence_csv_is_monotone_decreasing() {
    let outcome = small_run();
    let mut buf = Vec::new();
    report::write_convergence_csv(&outcome, &mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    let mut best = f64::INFINITY;
    for line in text.lines().skip(1) {
        let cells: Vec<&str> = line.split(',').collect();
        let v: f64 = cells[1].parse().unwrap();
        assert!(v <= best + 1e-12, "best-so-far must never worsen");
        best = v;
    }
    assert!(best < f64::INFINITY);
}

#[test]
fn short_mfbo_run_emits_one_fidelity_decision_per_iteration() {
    let sink = Arc::new(CollectSink::new());
    let guard = mfbo_telemetry::scoped_sink(sink.clone());
    let outcome = small_run();
    drop(guard);

    let bo_iters = outcome.history.iter().filter(|r| r.iteration > 0).count();
    assert!(bo_iters > 0, "budget allows at least one BO iteration");
    let decisions = sink.named("fidelity_decision");
    assert_eq!(decisions.len(), bo_iters);
    for (rec, hist) in decisions
        .iter()
        .zip(outcome.history.iter().filter(|r| r.iteration > 0))
    {
        assert_eq!(rec.kind, Kind::Event);
        assert_eq!(
            rec.field("iteration"),
            Some(&mfbo_telemetry::Value::U64(hist.iteration as u64))
        );
        // Every decision carries the variance-vs-threshold evidence of
        // paper eqs. (11)-(12).
        match rec.field("max_low_variance") {
            Some(mfbo_telemetry::Value::F64(v)) => assert!(v.is_finite() && *v >= 0.0),
            other => panic!("max_low_variance missing or mistyped: {other:?}"),
        }
        assert_eq!(
            rec.field("threshold"),
            Some(&mfbo_telemetry::Value::F64(0.01))
        );
    }
    // The streamed spans cover the hot path once per iteration.
    for name in ["surrogate_fit", "acq_opt", "simulate"] {
        let starts = sink
            .records()
            .iter()
            .filter(|r| r.name == name && r.kind == Kind::SpanStart)
            .count();
        assert_eq!(starts, bo_iters, "span {name}");
    }
}

#[test]
fn jsonl_trace_of_a_run_parses_line_by_line() {
    let path = std::env::temp_dir().join(format!("mfbo-trace-{}.jsonl", std::process::id()));
    {
        let sink = Arc::new(JsonlSink::create(&path, Level::Debug).unwrap());
        let _guard = mfbo_telemetry::scoped_sink(sink);
        let _ = small_run();
    }
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert!(!text.is_empty());
    let mut decisions = 0;
    let mut last_t = 0.0;
    for line in text.lines() {
        let obj = json::parse(line).expect("every line is valid JSON");
        let t = obj.get("t_us").and_then(|v| v.as_f64()).expect("t_us");
        assert!(t >= last_t, "records are time-ordered");
        last_t = t;
        let name = obj.get("name").and_then(|v| v.as_str()).expect("name");
        if name == "fidelity_decision" {
            decisions += 1;
            let fields = obj.get("fields").expect("fields");
            assert!(fields.get("max_low_variance").is_some());
            assert!(fields.get("threshold").is_some());
            assert!(fields.get("chose_high").is_some());
        }
    }
    assert!(decisions > 0, "trace contains fidelity decisions");
}

#[test]
fn summary_is_consistent_with_outcome() {
    let outcome = small_run();
    let s = report::summary(&outcome);
    assert!(s.contains(&format!("{} low + {} high", outcome.n_low, outcome.n_high)));
    assert!(s.contains(&format!("{}", outcome.feasible)));
}

//! Ask/tell equivalence harness: the inverted `AskTellMfbo` core driven by
//! an external client must reproduce the legacy closed loop exactly.
//!
//! - With `max_pending = 1` a manual ask/tell client is **bit-identical** to
//!   `MfBayesOpt::run_with` (which is itself now a thin ask(1)/tell client):
//!   same history, same best design, same cost accounting — on unconstrained
//!   and constrained problems, serial and thread-pooled.
//! - With `max_pending = 4` (constant-liar batching) the trajectory is a
//!   *different* optimizer by design, so it gets its own golden snapshot —
//!   and the result must not depend on the order in which results are told
//!   back, only on the order candidates were generated.
//! - A batched run killed mid-flight (pending candidates issued but never
//!   told) resumes from its write-ahead journal and finishes with the same
//!   outcome and a byte-identical journal as an uninterrupted run.
//!
//! To regenerate the batched golden after an *intentional* change:
//!
//! ```text
//! MFBO_REGEN_GOLDEN=1 cargo test --test asktell_equivalence
//! ```

use analog_mfbo::circuits::testfns;
use analog_mfbo::prelude::*;
use mfbo::report::write_history_csv;
use mfbo::Outcome;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::{Path, PathBuf};

fn store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mfbo-asktell-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join(name)
}

fn mfbo_config(budget: f64, max_pending: usize, parallelism: Parallelism) -> MfBoConfig {
    MfBoConfig {
        initial_low: 8,
        initial_high: 4,
        budget,
        max_pending,
        parallelism,
        ..MfBoConfig::default()
    }
}

fn constrained_problem() -> FunctionProblem {
    FunctionProblem::builder("c-toy", Bounds::unit(2))
        .high(|x: &[f64]| (x[0] - 0.2).powi(2) + (x[1] - 0.2).powi(2))
        .low(|x: &[f64]| (x[0] - 0.23).powi(2) + (x[1] - 0.17).powi(2) + 0.02)
        .high_constraints(1, |x: &[f64]| vec![1.0 - x[0] - x[1]])
        .low_constraints(|x: &[f64]| vec![1.02 - x[0] - x[1]])
        .low_cost(0.1)
        .build()
}

/// Field-wise bit-exact comparison, matching the resume-equivalence suite:
/// eval-sourcing stats are excluded, optimizer decisions are not.
fn assert_outcomes_identical(a: &Outcome, b: &Outcome, label: &str) {
    assert_eq!(a.best_x, b.best_x, "{label}: best_x");
    assert_eq!(
        a.best_evaluation, b.best_evaluation,
        "{label}: best_evaluation"
    );
    assert!(
        a.best_objective.to_bits() == b.best_objective.to_bits(),
        "{label}: best_objective {} vs {}",
        a.best_objective,
        b.best_objective
    );
    assert_eq!(a.feasible, b.feasible, "{label}: feasible");
    assert_eq!(a.n_low, b.n_low, "{label}: n_low");
    assert_eq!(a.n_high, b.n_high, "{label}: n_high");
    assert!(
        a.total_cost.to_bits() == b.total_cost.to_bits(),
        "{label}: total_cost"
    );
    assert_eq!(a.history.len(), b.history.len(), "{label}: history length");
    for (i, (ra, rb)) in a.history.iter().zip(&b.history).enumerate() {
        assert_eq!(ra, rb, "{label}: history record {i}");
    }
}

fn history_csv(out: &Outcome) -> Vec<u8> {
    let mut buf = Vec::new();
    write_history_csv(out, &mut buf).unwrap();
    buf
}

/// How the manual client feeds results back within each asked batch.
#[derive(Clone, Copy)]
enum TellOrder {
    /// Issue order — what a sequential driver does.
    InOrder,
    /// Last-issued first — the worst case for arrival-order leakage.
    Reversed,
}

/// Drives `AskTellMfbo` as an external client: ask a full batch, evaluate
/// every candidate, tell the results back in `order`.
fn run_asktell(
    problem: &dyn MultiFidelityProblem,
    seed: u64,
    config: MfBoConfig,
    opts: &mut RunOptions,
    order: TellOrder,
) -> Outcome {
    let q = config.max_pending;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut driver = AskTellMfbo::new(config, problem, &mut rng, opts).unwrap();
    while !driver.is_finished() {
        let batch = driver.ask(q).unwrap();
        assert!(
            !batch.is_empty(),
            "ask returned no work on an unfinished run"
        );
        let mut results: Vec<(u64, Told)> = batch
            .iter()
            .map(|c| {
                let evaluation = problem.evaluate(&c.x, c.fidelity);
                (
                    c.id,
                    Told::Evaluated {
                        evaluation,
                        attempts: 1,
                    },
                )
            })
            .collect();
        if let TellOrder::Reversed = order {
            results.reverse();
        }
        for (id, told) in results {
            driver.tell(id, told).unwrap();
        }
    }
    driver.finish().unwrap()
}

fn run_legacy(
    problem: &dyn MultiFidelityProblem,
    seed: u64,
    config: MfBoConfig,
    opts: &mut RunOptions,
) -> Outcome {
    let mut rng = StdRng::seed_from_u64(seed);
    MfBayesOpt::new(config)
        .run_with(problem, &mut rng, opts)
        .unwrap()
}

#[test]
fn ask1_manual_client_is_bit_identical_to_run_with() {
    let problem = testfns::forrester();
    for parallelism in [Parallelism::Serial, Parallelism::Threads(4)] {
        let label = format!("forrester {parallelism:?}");
        let legacy = run_legacy(
            &problem,
            7,
            mfbo_config(10.0, 1, parallelism),
            &mut RunOptions::default(),
        );
        let manual = run_asktell(
            &problem,
            7,
            mfbo_config(10.0, 1, parallelism),
            &mut RunOptions::default(),
            TellOrder::InOrder,
        );
        assert_outcomes_identical(&legacy, &manual, &label);
        assert_eq!(
            history_csv(&legacy),
            history_csv(&manual),
            "{label}: history CSV bytes"
        );
    }
}

#[test]
fn ask1_manual_client_matches_run_with_on_constrained_problem() {
    let problem = constrained_problem();
    let legacy = run_legacy(
        &problem,
        11,
        mfbo_config(7.0, 1, Parallelism::Serial),
        &mut RunOptions::default(),
    );
    let manual = run_asktell(
        &problem,
        11,
        mfbo_config(7.0, 1, Parallelism::Serial),
        &mut RunOptions::default(),
        TellOrder::InOrder,
    );
    assert_outcomes_identical(&legacy, &manual, "constrained ask(1)");
    assert_eq!(
        history_csv(&legacy),
        history_csv(&manual),
        "constrained ask(1): history CSV bytes"
    );
}

#[test]
fn batched_outcome_does_not_depend_on_tell_order() {
    // Constant-liar batching must be a function of the *generation* order
    // only: telling results back last-first has to produce the same run.
    let problem = testfns::forrester();
    let in_order = run_asktell(
        &problem,
        7,
        mfbo_config(10.0, 4, Parallelism::Serial),
        &mut RunOptions::default(),
        TellOrder::InOrder,
    );
    let reversed = run_asktell(
        &problem,
        7,
        mfbo_config(10.0, 4, Parallelism::Serial),
        &mut RunOptions::default(),
        TellOrder::Reversed,
    );
    assert_outcomes_identical(&in_order, &reversed, "forrester q=4 tell order");
    assert_eq!(
        history_csv(&in_order),
        history_csv(&reversed),
        "forrester q=4: history CSV bytes"
    );

    // Same with constraints, where the liar also fantasizes constraint
    // values and low/high candidates interleave inside one batch.
    let problem = constrained_problem();
    let in_order = run_asktell(
        &problem,
        11,
        mfbo_config(7.0, 4, Parallelism::Serial),
        &mut RunOptions::default(),
        TellOrder::InOrder,
    );
    let reversed = run_asktell(
        &problem,
        11,
        mfbo_config(7.0, 4, Parallelism::Serial),
        &mut RunOptions::default(),
        TellOrder::Reversed,
    );
    assert_outcomes_identical(&in_order, &reversed, "constrained q=4 tell order");
    assert_eq!(
        history_csv(&in_order),
        history_csv(&reversed),
        "constrained q=4: history CSV bytes"
    );
}

/// `(cost_so_far, best feasible high-fidelity objective so far)` after each
/// evaluation — the same trajectory the golden_trajectories suite pins.
fn trajectory(out: &Outcome) -> Vec<(f64, f64)> {
    let mut best = f64::NAN;
    out.history
        .iter()
        .map(|r| {
            let feasible = r.evaluation.constraints.iter().all(|&c| c <= 0.0);
            if r.fidelity == Fidelity::High
                && feasible
                && (best.is_nan() || r.evaluation.objective < best)
            {
                best = r.evaluation.objective;
            }
            (r.cost_so_far, best)
        })
        .collect()
}

#[test]
fn batched_constant_liar_trajectory_matches_golden() {
    const REL_TOL: f64 = 1e-6;
    let problem = testfns::forrester();
    let out = run_asktell(
        &problem,
        7,
        mfbo_config(10.0, 4, Parallelism::Serial),
        &mut RunOptions::default(),
        TellOrder::InOrder,
    );
    let traj = trajectory(&out);
    let path = golden_path("forrester_asktell_q4_seed7.csv");
    if std::env::var("MFBO_REGEN_GOLDEN").is_ok() {
        let mut s = String::from("step,cost,best_objective\n");
        for (i, (cost, best)) in traj.iter().enumerate() {
            s.push_str(&format!("{i},{cost:.12e},{best:.12e}\n"));
        }
        std::fs::write(&path, s).unwrap();
        return;
    }
    let golden: Vec<(f64, f64)> = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| {
            panic!(
                "missing golden file {} ({e}); run with MFBO_REGEN_GOLDEN=1 to create it",
                path.display()
            )
        })
        .lines()
        .skip(1)
        .filter(|l| !l.trim().is_empty())
        .map(|l| {
            let mut cols = l.split(',').skip(1);
            (
                cols.next().unwrap().parse().unwrap(),
                cols.next().unwrap().parse().unwrap(),
            )
        })
        .collect();
    assert_eq!(golden.len(), traj.len(), "trajectory length changed");
    let close = |a: f64, b: f64| {
        (a.is_nan() && b.is_nan()) || (a - b).abs() <= REL_TOL * a.abs().max(b.abs()).max(1.0)
    };
    for (i, ((gc, gb), (ac, ab))) in golden.iter().zip(&traj).enumerate() {
        assert!(close(*gc, *ac), "cost diverged at step {i}: {gc} vs {ac}");
        assert!(close(*gb, *ab), "best diverged at step {i}: {gb} vs {ab}");
    }
}

fn journal_bytes(dir: &Path) -> Vec<u8> {
    std::fs::read(dir.join("journal.jsonl")).unwrap()
}

#[test]
fn grouped_journal_is_byte_identical_to_flush_per_append() {
    use mfbo::GroupCommitter;
    use std::sync::Arc;
    use std::time::Duration;

    let problem = testfns::forrester();
    let config = || mfbo_config(10.0, 4, Parallelism::Serial);

    let direct_dir = store_dir("gc-direct");
    let mut opts = RunOptions::journaled(RunStore::open(&direct_dir).unwrap());
    let direct = run_asktell(&problem, 7, config(), &mut opts, TellOrder::InOrder);

    // The same run through a group committer with a generous linger
    // window, so many appends coalesce into each vectored write.
    let gc = Arc::new(GroupCommitter::new(Duration::from_millis(2)));
    let grouped_dir = store_dir("gc-grouped");
    let mut opts =
        RunOptions::journaled(RunStore::open_grouped(&grouped_dir, Arc::clone(&gc)).unwrap());
    let grouped = run_asktell(&problem, 7, config(), &mut opts, TellOrder::InOrder);

    assert_outcomes_identical(&direct, &grouped, "group-commit journaling");
    assert_eq!(
        journal_bytes(&direct_dir),
        journal_bytes(&grouped_dir),
        "group-committed journal must be byte-identical to flush-per-append"
    );

    let _ = std::fs::remove_dir_all(&direct_dir);
    let _ = std::fs::remove_dir_all(&grouped_dir);
}

#[test]
fn kill_inside_a_group_commit_window_resumes_byte_identical() {
    use mfbo::GroupCommitter;
    use std::sync::Arc;
    use std::time::Duration;

    let problem = testfns::forrester();
    let config = || mfbo_config(10.0, 4, Parallelism::Serial);

    // Reference journal from an uninterrupted flush-per-append run.
    let base_dir = store_dir("gcw-base");
    let mut opts = RunOptions::journaled(RunStore::open(&base_dir).unwrap());
    let baseline = run_asktell(&problem, 7, config(), &mut opts, TellOrder::InOrder);
    let full = journal_bytes(&base_dir);
    let lines: Vec<&[u8]> = full.split_inclusive(|&b| b == b'\n').collect::<Vec<_>>();

    // A `kill -9` inside the linger window loses the enqueued-but-unflushed
    // suffix of the append sequence and nothing else: per-run enqueue order
    // equals append order, so the on-disk journal is always a *prefix* of
    // the logical one, cut at an entry boundary. Simulate every interesting
    // cut depth and resume each.
    for lost in [1usize, 3, 7] {
        assert!(lines.len() > lost + 2, "journal too short for the cut");
        let keep = lines.len() - lost;
        let prefix: Vec<u8> = lines[..keep].concat();

        let crash_dir = store_dir(&format!("gcw-crash-{lost}"));
        // Materialize the crashed store: full metadata, truncated journal.
        std::fs::create_dir_all(&crash_dir).unwrap();
        std::fs::copy(base_dir.join("meta.json"), crash_dir.join("meta.json")).unwrap();
        std::fs::write(crash_dir.join("journal.jsonl"), &prefix).unwrap();

        // Resume under a group committer too — recovery and group commit
        // must compose.
        let gc = Arc::new(GroupCommitter::new(Duration::from_millis(1)));
        let mut opts = RunOptions::resuming(RunStore::open_grouped(&crash_dir, gc).unwrap());
        let resumed = run_asktell(&problem, 7, config(), &mut opts, TellOrder::InOrder);

        assert_outcomes_identical(&baseline, &resumed, &format!("gc window kill (-{lost})"));
        assert!(
            resumed.eval_stats.replayed > 0,
            "the resumed run must have replayed the surviving prefix"
        );
        assert_eq!(
            full,
            journal_bytes(&crash_dir),
            "journal resumed from a {lost}-entry-short prefix must be byte-identical"
        );
        let _ = std::fs::remove_dir_all(&crash_dir);
    }

    let _ = std::fs::remove_dir_all(&base_dir);
}

#[test]
fn batched_kill_resume_reproduces_the_journal_byte_for_byte() {
    let problem = testfns::forrester();
    let config = || mfbo_config(10.0, 4, Parallelism::Serial);

    // Uninterrupted journaled q=4 run: the reference journal.
    let base_dir = store_dir("q4-base");
    let mut opts = RunOptions::journaled(RunStore::open(&base_dir).unwrap());
    let baseline = run_asktell(&problem, 7, config(), &mut opts, TellOrder::InOrder);

    // Same run, killed with a half-told batch in flight: two of the four
    // issued candidates are never told, so their write-ahead pending
    // records are the only trace they existed.
    let kill_dir = store_dir("q4-kill");
    {
        let mut opts = RunOptions::journaled(RunStore::open(&kill_dir).unwrap());
        let mut rng = StdRng::seed_from_u64(7);
        let mut driver = AskTellMfbo::new(config(), &problem, &mut rng, &mut opts).unwrap();
        for round in 0..4 {
            let batch = driver.ask(4).unwrap();
            assert!(!batch.is_empty(), "run ended before the kill point");
            let keep = if round == 3 {
                batch.len() / 2
            } else {
                batch.len()
            };
            for c in batch.iter().take(keep) {
                let evaluation = problem.evaluate(&c.x, c.fidelity);
                driver
                    .tell(
                        c.id,
                        Told::Evaluated {
                            evaluation,
                            attempts: 1,
                        },
                    )
                    .unwrap();
            }
        }
        // Dropped without finish(): the kill. Everything told so far is
        // already flushed write-ahead.
    }

    let mut opts = RunOptions::resuming(RunStore::open(&kill_dir).unwrap());
    let resumed = run_asktell(&problem, 7, config(), &mut opts, TellOrder::InOrder);

    assert_outcomes_identical(&baseline, &resumed, "q=4 kill/resume");
    assert_eq!(
        history_csv(&baseline),
        history_csv(&resumed),
        "q=4 kill/resume: history CSV bytes"
    );
    assert!(
        resumed.eval_stats.replayed > 0,
        "the resumed run must have replayed the committed prefix"
    );
    assert_eq!(
        journal_bytes(&base_dir),
        journal_bytes(&kill_dir),
        "resumed journal must be byte-identical to the uninterrupted one"
    );

    let _ = std::fs::remove_dir_all(&base_dir);
    let _ = std::fs::remove_dir_all(&kill_dir);
}

//! Golden-trajectory regression tests: seeded end-to-end runs whose
//! best-objective-so-far trajectory is pinned to a committed snapshot.
//!
//! Any change to surrogate training, acquisition optimization, fidelity
//! selection, or RNG consumption order shows up here as a trajectory diff —
//! with the iteration at which the histories diverge, which localizes the
//! regression far better than a final-value assertion.
//!
//! To regenerate after an *intentional* behaviour change:
//!
//! ```text
//! MFBO_REGEN_GOLDEN=1 cargo test --test golden_trajectories
//! ```
//!
//! and commit the updated files under `tests/golden/`.

use analog_mfbo::circuits::testfns;
use analog_mfbo::prelude::*;
use mfbo::Outcome;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

/// Comparison tolerance (relative, with an absolute floor). The runs are
/// deterministic, so on one platform the match is exact; the tolerance
/// absorbs cross-platform libm differences (sin/cos/exp vary by ulps).
const REL_TOL: f64 = 1e-6;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join(name)
}

/// `(cost_so_far, best_objective_so_far)` after every evaluation, using the
/// same best-point rule as [`Outcome`]: best feasible high-fidelity
/// observation, `NaN` until one exists.
fn trajectory(out: &Outcome) -> Vec<(f64, f64)> {
    let mut best = f64::NAN;
    out.history
        .iter()
        .map(|r| {
            let feasible = r.evaluation.constraints.iter().all(|&c| c <= 0.0);
            if r.fidelity == Fidelity::High
                && feasible
                && (best.is_nan() || r.evaluation.objective < best)
            {
                best = r.evaluation.objective;
            }
            (r.cost_so_far, best)
        })
        .collect()
}

fn render(traj: &[(f64, f64)]) -> String {
    let mut s = String::from("step,cost,best_objective\n");
    for (i, (cost, best)) in traj.iter().enumerate() {
        s.push_str(&format!("{i},{cost:.12e},{best:.12e}\n"));
    }
    s
}

fn parse(contents: &str) -> Vec<(f64, f64)> {
    contents
        .lines()
        .skip(1)
        .filter(|l| !l.trim().is_empty())
        .map(|l| {
            let mut cols = l.split(',').skip(1);
            let cost = cols.next().unwrap().parse().unwrap();
            let best = cols.next().unwrap().parse().unwrap();
            (cost, best)
        })
        .collect()
}

fn close(a: f64, b: f64) -> bool {
    if a.is_nan() && b.is_nan() {
        return true;
    }
    (a - b).abs() <= REL_TOL * a.abs().max(b.abs()).max(1.0)
}

fn check_against_golden(name: &str, out: &Outcome) {
    let traj = trajectory(out);
    let path = golden_path(name);
    if std::env::var("MFBO_REGEN_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, render(&traj)).unwrap();
        return;
    }
    let golden = parse(&std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with MFBO_REGEN_GOLDEN=1 to create it",
            path.display()
        )
    }));
    assert_eq!(
        golden.len(),
        traj.len(),
        "{name}: trajectory length changed ({} golden vs {} actual)",
        golden.len(),
        traj.len()
    );
    for (i, ((gc, gb), (ac, ab))) in golden.iter().zip(&traj).enumerate() {
        assert!(
            close(*gc, *ac),
            "{name}: cost diverged at step {i}: golden {gc}, actual {ac}"
        );
        assert!(
            close(*gb, *ab),
            "{name}: best-objective diverged at step {i}: golden {gb}, actual {ab}"
        );
    }
}

#[test]
fn forrester_mfbo_trajectory_matches_golden() {
    let problem = testfns::forrester();
    let mut rng = StdRng::seed_from_u64(7);
    let out = MfBayesOpt::new(MfBoConfig {
        initial_low: 8,
        initial_high: 4,
        budget: 10.0,
        ..MfBoConfig::default()
    })
    .run(&problem, &mut rng)
    .unwrap();
    check_against_golden("forrester_mfbo_seed7.csv", &out);
}

#[test]
fn power_amplifier_mfbo_trajectory_matches_golden() {
    // The circuit problem: the class-E power amplifier testbench, with its
    // real constraint set, at a budget small enough for the default suite.
    let problem = PowerAmplifier::new();
    let mut rng = StdRng::seed_from_u64(3);
    let out = MfBayesOpt::new(MfBoConfig {
        initial_low: 8,
        initial_high: 4,
        budget: 8.0,
        ..MfBoConfig::default()
    })
    .run(&problem, &mut rng)
    .unwrap();
    check_against_golden("pa_mfbo_seed3.csv", &out);
}

#[test]
fn forrester_rank1_append_trajectory_matches_golden() {
    // The opt-in O(n²) rank-one append path (`rank1_appends`) replaces
    // frozen refactorizations between full refits. Its trajectory is a
    // deliberate approximation of the default path (frozen standardizers,
    // stale low-GP augmentation), so it gets its own golden set rather than
    // sharing `forrester_mfbo_seed7.csv`.
    let problem = testfns::forrester();
    let mut rng = StdRng::seed_from_u64(7);
    let out = MfBayesOpt::new(MfBoConfig {
        initial_low: 8,
        initial_high: 4,
        budget: 10.0,
        refit_every: 4,
        rank1_appends: true,
        ..MfBoConfig::default()
    })
    .run(&problem, &mut rng)
    .unwrap();
    check_against_golden("forrester_mfbo_rank1_seed7.csv", &out);
}

#[test]
fn power_amplifier_refit_every_trajectory_matches_golden() {
    // Amortized-refit schedule on a *constrained* problem: full
    // hyperparameter optimization every 4 iterations, frozen refreshes (via
    // the persistent fit cache) in between. Pins the cross-iteration
    // cache/truncate/append machinery on a multi-constraint bundle.
    let problem = PowerAmplifier::new();
    let mut rng = StdRng::seed_from_u64(3);
    let out = MfBayesOpt::new(MfBoConfig {
        initial_low: 8,
        initial_high: 4,
        budget: 8.0,
        refit_every: 4,
        ..MfBoConfig::default()
    })
    .run(&problem, &mut rng)
    .unwrap();
    check_against_golden("pa_mfbo_refit4_seed3.csv", &out);
}

#[test]
fn power_amplifier_warm_start_thetas_trajectory_matches_golden() {
    // `warm_start_thetas` extends warm seeding to the frozen-refresh
    // recovery fits. The seed draws no extra randomness, so this trajectory
    // only diverges from `pa_mfbo_refit4_seed3.csv` when a recovery fit's
    // warm start wins; it is pinned separately so such a divergence is a
    // deliberate, versioned event.
    let problem = PowerAmplifier::new();
    let mut rng = StdRng::seed_from_u64(3);
    let out = MfBayesOpt::new(MfBoConfig {
        initial_low: 8,
        initial_high: 4,
        budget: 8.0,
        refit_every: 4,
        warm_start_thetas: true,
        ..MfBoConfig::default()
    })
    .run(&problem, &mut rng)
    .unwrap();
    check_against_golden("pa_mfbo_warmstart_refit4_seed3.csv", &out);
}

#[test]
fn forrester_adaptive_restarts_trajectory_matches_golden() {
    // `adaptive_restarts`: after the warm seed wins 1 full refit, cold
    // restarts are halved — fewer Latin-hypercube draws, so the RNG stream
    // (and with it the trajectory) legitimately diverges from
    // `forrester_mfbo_seed7.csv` once the first streak triggers (on this
    // run the warm seed wins several refits).
    let problem = testfns::forrester();
    let mut rng = StdRng::seed_from_u64(7);
    let out = MfBayesOpt::new(MfBoConfig {
        initial_low: 8,
        initial_high: 4,
        budget: 10.0,
        adaptive_restarts: 1,
        ..MfBoConfig::default()
    })
    .run(&problem, &mut rng)
    .unwrap();
    check_against_golden("forrester_mfbo_adaptive1_seed7.csv", &out);
}

#[test]
fn forrester_acq_warm_start_trajectory_matches_golden() {
    // `acq_warm_start` seeds the acquisition multi-start with the previous
    // iteration's optimum and the current incumbent. Seeds draw no
    // randomness but add deterministic local searches, so the selected
    // candidates (and the trajectory) can differ from the unseeded run.
    let problem = testfns::forrester();
    let mut rng = StdRng::seed_from_u64(7);
    let out = MfBayesOpt::new(MfBoConfig {
        initial_low: 8,
        initial_high: 4,
        budget: 10.0,
        acq_warm_start: true,
        ..MfBoConfig::default()
    })
    .run(&problem, &mut rng)
    .unwrap();
    check_against_golden("forrester_mfbo_acqwarm_seed7.csv", &out);
}

#[test]
fn forrester_weibo_trajectory_matches_golden() {
    let problem = testfns::forrester();
    let mut rng = StdRng::seed_from_u64(9);
    let out = Weibo::new(WeiboConfig {
        initial_points: 6,
        budget: 16,
        ..WeiboConfig::default()
    })
    .run(&problem, &mut rng)
    .unwrap();
    check_against_golden("forrester_weibo_seed9.csv", &out);
}

//! Cross-crate integration tests: the full optimization pipelines running
//! against the circuit substrate and the analytic benchmarks.

use analog_mfbo::circuits::testfns;
use analog_mfbo::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn mf_bo_beats_sf_bo_on_forrester_at_equal_cost() {
    // The headline claim, in miniature: at the same equivalent simulation
    // budget the multi-fidelity loop should (on average over seeds) find at
    // least as good a design as the single-fidelity loop.
    let problem = testfns::forrester();
    let budget = 10.0;
    let mut mf_wins = 0;
    let mut ties = 0;
    let seeds = [3u64, 17, 29, 71];
    for &seed in &seeds {
        let mut rng = StdRng::seed_from_u64(seed);
        let mf = MfBayesOpt::new(MfBoConfig {
            initial_low: 8,
            initial_high: 4,
            budget,
            ..MfBoConfig::default()
        })
        .run(&problem, &mut rng)
        .expect("mf run");
        let mut rng = StdRng::seed_from_u64(seed);
        let sf = SfBayesOpt::new(SfBoConfig {
            initial_points: 4,
            budget: budget as usize,
            ..SfBoConfig::default()
        })
        .run(&problem, &mut rng)
        .expect("sf run");
        if mf.best_objective < sf.best_objective - 1e-6 {
            mf_wins += 1;
        } else if (mf.best_objective - sf.best_objective).abs() <= 0.2 {
            ties += 1;
        }
    }
    assert!(
        mf_wins + ties >= seeds.len() - 1,
        "mf_wins = {mf_wins}, ties = {ties}"
    );
}

#[test]
fn all_four_algorithms_run_on_the_power_amplifier() {
    // Smoke-level budgets: every algorithm must complete and produce a
    // physical design on the real MNA-simulated testbench.
    let pa = PowerAmplifier::new();
    let bounds = mfbo::problem::MultiFidelityProblem::bounds(&pa);

    let mut rng = StdRng::seed_from_u64(1);
    let ours = MfBayesOpt::new(MfBoConfig {
        initial_low: 8,
        initial_high: 4,
        budget: 6.5,
        refit_every: 4,
        msp_starts: 6,
        ..MfBoConfig::default()
    })
    .run(&pa, &mut rng)
    .expect("mf-bo on PA");
    assert!(bounds.contains(&ours.best_x));
    assert!(ours.n_low >= 8 && ours.n_high >= 4);

    let mut rng = StdRng::seed_from_u64(2);
    let weibo = Weibo::new(WeiboConfig {
        initial_points: 6,
        budget: 9,
        msp_starts: 6,
        refit_every: 4,
        ..WeiboConfig::default()
    })
    .run(&pa, &mut rng)
    .expect("weibo on PA");
    assert!(bounds.contains(&weibo.best_x));
    assert_eq!(weibo.n_high, 9);

    let mut rng = StdRng::seed_from_u64(3);
    let gaspad = Gaspad::new(GaspadConfig {
        initial_points: 8,
        budget: 12,
        population: 8,
        refit_every: 4,
        ..GaspadConfig::default()
    })
    .run(&pa, &mut rng)
    .expect("gaspad on PA");
    assert!(bounds.contains(&gaspad.best_x));

    let mut rng = StdRng::seed_from_u64(4);
    let de = DifferentialEvolutionBaseline::new(DeBaselineConfig {
        population: 8,
        budget: 20,
        ..DeBaselineConfig::default()
    })
    .run(&pa, &mut rng)
    .expect("de on PA");
    assert!(bounds.contains(&de.best_x));
    assert_eq!(de.n_high, 20);
}

#[test]
#[ignore = "slow (~1 min in debug): full charge-pump pipeline; run with --ignored"]
fn charge_pump_pipeline_runs_end_to_end() {
    let cp = ChargePump::new();
    let mut rng = StdRng::seed_from_u64(5);
    let out = MfBayesOpt::new(MfBoConfig {
        initial_low: 12,
        initial_high: 3,
        budget: 5.0,
        refit_every: 5,
        msp_starts: 6,
        ..MfBoConfig::default()
    })
    .run(&cp, &mut rng)
    .expect("mf-bo on charge pump");
    assert_eq!(out.best_x.len(), 36);
    // FOM is a nonnegative µA-scale quantity.
    assert!(out.best_objective >= 0.0 && out.best_objective < 1e3);
    // Low fidelity must dominate the early exploration (1/27 cost).
    assert!(out.n_low >= 12);
}

#[test]
fn charge_pump_pipeline_smoke() {
    // Fast default-suite variant of `charge_pump_pipeline_runs_end_to_end`:
    // the same 36-dimensional pipeline with lighter surrogate settings and a
    // smaller budget, so the wiring stays covered on every `cargo test`.
    use mfbo::MfGpConfig;
    let cp = ChargePump::new();
    let mut rng = StdRng::seed_from_u64(5);
    let out = MfBayesOpt::new(MfBoConfig {
        initial_low: 10,
        initial_high: 2,
        budget: 4.0,
        // At a 1/27 low-fidelity cost the budget alone allows dozens of
        // cheap iterations; the iteration cap keeps the smoke test fast.
        max_iterations: 4,
        refit_every: 8,
        msp_starts: 4,
        model: MfGpConfig::fast(),
        ..MfBoConfig::default()
    })
    .run(&cp, &mut rng)
    .expect("mf-bo on charge pump");
    assert_eq!(out.best_x.len(), 36);
    assert!(out.best_objective >= 0.0 && out.best_objective < 1e3);
    assert!(out.n_low >= 10);
}

#[test]
fn outcome_bookkeeping_is_consistent_across_algorithms() {
    let problem = testfns::branin();
    let mut rng = StdRng::seed_from_u64(6);
    let out = MfBayesOpt::new(MfBoConfig {
        initial_low: 8,
        initial_high: 4,
        budget: 9.0,
        ..MfBoConfig::default()
    })
    .run(&problem, &mut rng)
    .expect("run");
    // History covers every simulation; costs increase monotonically.
    assert_eq!(out.history.len(), out.n_low + out.n_high);
    let mut prev = 0.0;
    for r in &out.history {
        assert!(r.cost_so_far > prev);
        prev = r.cost_so_far;
    }
    assert!((prev - out.total_cost).abs() < 1e-9);
    assert!(out.cost_to_best <= out.total_cost + 1e-9);
    // The best design is reproducible from the problem definition.
    let eval = problem.evaluate(&out.best_x, Fidelity::High);
    assert!((eval.objective - out.best_objective).abs() < 1e-9);
}

fn fusion_vs_single_fidelity_on_park_4d(seed: u64, n_low: usize, n_high: usize) {
    use analog_mfbo::gp::kernel::SquaredExponential;
    use analog_mfbo::gp::{Gp, GpConfig};
    use mfbo::{MfGp, MfGpConfig};
    use mfbo_opt::sampling;

    let bounds = Bounds::unit(4);
    let mut rng = StdRng::seed_from_u64(seed);
    let xl = sampling::latin_hypercube(&bounds, n_low, &mut rng);
    let yl: Vec<f64> = xl.iter().map(|x| testfns::park_low(x)).collect();
    let xh = sampling::latin_hypercube(&bounds, n_high, &mut rng);
    let yh: Vec<f64> = xh.iter().map(|x| testfns::park_high(x)).collect();

    let mf = MfGp::fit(
        xl,
        yl,
        xh.clone(),
        yh.clone(),
        &MfGpConfig::default(),
        &mut rng,
    )
    .expect("fusion fit");
    let sf = Gp::fit(
        SquaredExponential::new(4),
        xh,
        yh,
        &GpConfig::default(),
        &mut rng,
    )
    .expect("sf fit");

    let test_points = sampling::latin_hypercube(&bounds, 200, &mut rng);
    let mut mf_se = 0.0;
    let mut sf_se = 0.0;
    for x in &test_points {
        let truth = testfns::park_high(x);
        mf_se += (mf.predict(x).mean - truth).powi(2);
        sf_se += (sf.predict(x).mean - truth).powi(2);
    }
    assert!(
        mf_se < sf_se,
        "fusion RMSE² {mf_se:.4} should beat single-fidelity {sf_se:.4}"
    );
}

#[test]
#[ignore = "slow (~20 s in debug): full-size Park fits; run with --ignored"]
fn fusion_model_beats_single_fidelity_gp_on_park_4d() {
    fusion_vs_single_fidelity_on_park_4d(7, 100, 25);
}

#[test]
fn fusion_model_beats_single_fidelity_gp_on_park_4d_smoke() {
    // Fast default-suite variant: fewer training points (the fits are cubic
    // in n), same model-class comparison.
    fusion_vs_single_fidelity_on_park_4d(3, 70, 20);
}

#[test]
fn seeded_runs_are_reproducible() {
    let problem = testfns::forrester();
    let run = || {
        let mut rng = StdRng::seed_from_u64(99);
        MfBayesOpt::new(MfBoConfig {
            initial_low: 6,
            initial_high: 3,
            budget: 7.0,
            ..MfBoConfig::default()
        })
        .run(&problem, &mut rng)
        .expect("run")
    };
    let a = run();
    let b = run();
    assert_eq!(a.best_x, b.best_x);
    assert_eq!(a.n_low, b.n_low);
    assert_eq!(a.n_high, b.n_high);
    assert_eq!(a.best_objective, b.best_objective);
}

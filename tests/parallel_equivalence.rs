//! Seeded-equivalence harness for the deterministic parallel execution
//! layer: for any thread count, every optimizer must reproduce the serial
//! run **bit for bit** — same evaluation history, same best design, same
//! cost trace. This is the contract that lets `--threads N` be a pure
//! performance knob.

use analog_mfbo::circuits::testfns;
use analog_mfbo::prelude::*;
use mfbo::problem::MultiFidelityProblem;
use mfbo::Outcome;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Threaded modes compared against a fresh `Serial` baseline run. (A second
/// Serial run is not in the list: seeded reproducibility is covered by
/// `seeded_runs_are_reproducible` in the end-to-end suite.)
const MODES: [Parallelism; 2] = [Parallelism::Threads(2), Parallelism::Threads(8)];

/// Field-wise bit-exact comparison of two outcomes. `telemetry` is excluded
/// (wall-clock timings legitimately differ between runs); everything the
/// optimizer *decided* must match exactly.
fn assert_outcomes_identical(a: &Outcome, b: &Outcome, label: &str) {
    assert_eq!(a.best_x, b.best_x, "{label}: best_x");
    assert_eq!(
        a.best_evaluation, b.best_evaluation,
        "{label}: best_evaluation"
    );
    assert!(
        a.best_objective.to_bits() == b.best_objective.to_bits(),
        "{label}: best_objective {} vs {}",
        a.best_objective,
        b.best_objective
    );
    assert_eq!(a.feasible, b.feasible, "{label}: feasible");
    assert_eq!(a.n_low, b.n_low, "{label}: n_low");
    assert_eq!(a.n_high, b.n_high, "{label}: n_high");
    assert!(
        a.total_cost.to_bits() == b.total_cost.to_bits(),
        "{label}: total_cost"
    );
    assert!(
        a.cost_to_best.to_bits() == b.cost_to_best.to_bits(),
        "{label}: cost_to_best"
    );
    assert_eq!(a.history.len(), b.history.len(), "{label}: history length");
    for (i, (ra, rb)) in a.history.iter().zip(&b.history).enumerate() {
        assert_eq!(ra, rb, "{label}: history record {i}");
    }
}

fn run_mfbo(
    problem: &dyn MultiFidelityProblem,
    seed: u64,
    budget: f64,
    parallelism: Parallelism,
) -> Outcome {
    let mut rng = StdRng::seed_from_u64(seed);
    MfBayesOpt::new(MfBoConfig {
        initial_low: 8,
        initial_high: 4,
        budget,
        parallelism,
        ..MfBoConfig::default()
    })
    .run(problem, &mut rng)
    .unwrap()
}

#[test]
fn mfbo_history_is_bit_identical_across_thread_counts() {
    let problem = testfns::forrester();
    for seed in [7, 2024] {
        let baseline = run_mfbo(&problem, seed, 10.0, Parallelism::Serial);
        for mode in MODES {
            let out = run_mfbo(&problem, seed, 10.0, mode);
            assert_outcomes_identical(&baseline, &out, &format!("mfbo seed {seed} {mode:?}"));
        }
    }
}

#[test]
fn constrained_mfbo_is_bit_identical_across_thread_counts() {
    // Constrained problem: exercises the per-constraint surrogate fits and
    // the feasibility-drive MSP path.
    let problem = FunctionProblem::builder("c-toy", Bounds::unit(2))
        .high(|x: &[f64]| (x[0] - 0.2).powi(2) + (x[1] - 0.2).powi(2))
        .low(|x: &[f64]| (x[0] - 0.23).powi(2) + (x[1] - 0.17).powi(2) + 0.02)
        .high_constraints(1, |x: &[f64]| vec![1.0 - x[0] - x[1]])
        .low_constraints(|x: &[f64]| vec![1.02 - x[0] - x[1]])
        .low_cost(0.1)
        .build();
    let baseline = run_mfbo(&problem, 11, 7.0, Parallelism::Serial);
    for mode in MODES {
        let out = run_mfbo(&problem, 11, 7.0, mode);
        assert_outcomes_identical(&baseline, &out, &format!("constrained mfbo {mode:?}"));
    }
}

#[test]
fn sfbo_history_is_bit_identical_across_thread_counts() {
    let problem = testfns::forrester();
    let run = |parallelism| {
        let mut rng = StdRng::seed_from_u64(3);
        SfBayesOpt::new(SfBoConfig {
            initial_points: 6,
            budget: 14,
            parallelism,
            ..SfBoConfig::default()
        })
        .run(&problem, &mut rng)
        .unwrap()
    };
    let baseline = run(Parallelism::Serial);
    for mode in MODES {
        assert_outcomes_identical(&baseline, &run(mode), &format!("sfbo {mode:?}"));
    }
}

#[test]
fn weibo_history_is_bit_identical_across_thread_counts() {
    let problem = testfns::forrester();
    let run = |parallelism| {
        let mut rng = StdRng::seed_from_u64(5);
        Weibo::new(WeiboConfig {
            initial_points: 6,
            budget: 14,
            parallelism,
            ..WeiboConfig::default()
        })
        .run(&problem, &mut rng)
        .unwrap()
    };
    let baseline = run(Parallelism::Serial);
    for mode in MODES {
        assert_outcomes_identical(&baseline, &run(mode), &format!("weibo {mode:?}"));
    }
}

#[test]
fn parallel_run_matches_the_pre_pool_serial_code_shape() {
    // The parallelism knob must also leave the *serial* behaviour untouched:
    // a default-config run (Serial) equals an explicit Serial run, and the
    // frozen-refit path (refit_every > 1) stays equivalent too.
    let problem = testfns::forrester();
    let run = |parallelism| {
        let mut rng = StdRng::seed_from_u64(42);
        MfBayesOpt::new(MfBoConfig {
            initial_low: 8,
            initial_high: 4,
            budget: 9.0,
            refit_every: 3,
            parallelism,
            ..MfBoConfig::default()
        })
        .run(&problem, &mut rng)
        .unwrap()
    };
    let baseline = run(Parallelism::Serial);
    for mode in MODES {
        assert_outcomes_identical(&baseline, &run(mode), &format!("frozen-refit {mode:?}"));
    }
}

//! Surrogate-quality integration tests: the fusion model must extract value
//! from the low fidelity on every benchmark pair in the suite, and the
//! acquisition machinery must behave sensibly on the resulting posteriors.

use analog_mfbo::circuits::testfns;
use analog_mfbo::gp::kernel::SquaredExponential;
use analog_mfbo::gp::{Gp, GpConfig};
use mfbo::problem::{Fidelity, MultiFidelityProblem};
use mfbo::{acquisition, MfGp, MfGpConfig};
use mfbo_opt::{sampling, Bounds};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Fits MF and SF models on a problem and returns their RMSEs over a test
/// design.
fn rmse_pair(
    problem: &dyn MultiFidelityProblem,
    n_low: usize,
    n_high: usize,
    seed: u64,
) -> (f64, f64) {
    let bounds = problem.bounds();
    let unit = Bounds::unit(bounds.dim());
    let mut rng = StdRng::seed_from_u64(seed);
    // Work in the unit cube like the optimizer does.
    let to_raw = |u: &Vec<f64>| bounds.from_unit(u);
    let xl = sampling::latin_hypercube(&unit, n_low, &mut rng);
    let yl: Vec<f64> = xl
        .iter()
        .map(|u| problem.evaluate(&to_raw(u), Fidelity::Low).objective)
        .collect();
    let xh = sampling::latin_hypercube(&unit, n_high, &mut rng);
    let yh: Vec<f64> = xh
        .iter()
        .map(|u| problem.evaluate(&to_raw(u), Fidelity::High).objective)
        .collect();

    let mf = MfGp::fit(
        xl,
        yl,
        xh.clone(),
        yh.clone(),
        &MfGpConfig::default(),
        &mut rng,
    )
    .expect("mf fit");
    let sf = Gp::fit(
        SquaredExponential::new(bounds.dim()),
        xh,
        yh,
        &GpConfig::default(),
        &mut rng,
    )
    .expect("sf fit");

    let test = sampling::latin_hypercube(&unit, 250, &mut rng);
    let mut mf_se = 0.0;
    let mut sf_se = 0.0;
    for u in &test {
        let truth = problem.evaluate(&to_raw(u), Fidelity::High).objective;
        mf_se += (mf.predict(u).mean - truth).powi(2);
        sf_se += (sf.predict(u).mean - truth).powi(2);
    }
    (
        (mf_se / test.len() as f64).sqrt(),
        (sf_se / test.len() as f64).sqrt(),
    )
}

#[test]
fn fusion_helps_on_forrester() {
    let (mf, sf) = rmse_pair(&testfns::forrester(), 25, 6, 10);
    assert!(mf < sf, "mf {mf} vs sf {sf}");
}

#[test]
fn fusion_helps_on_branin() {
    let (mf, sf) = rmse_pair(&testfns::branin(), 60, 12, 11);
    assert!(mf < sf, "mf {mf} vs sf {sf}");
}

#[test]
#[ignore = "slow (~9 s in debug): full-size Hartmann-3 fits; run with --ignored"]
fn fusion_helps_on_hartmann3() {
    let (mf, sf) = rmse_pair(&testfns::hartmann3(), 80, 15, 12);
    assert!(mf < sf, "mf {mf} vs sf {sf}");
}

#[test]
fn fusion_helps_on_hartmann3_smoke() {
    // Fast default-suite variant of `fusion_helps_on_hartmann3`: fewer
    // training points (the fits are cubic in n), same comparison.
    let (mf, sf) = rmse_pair(&testfns::hartmann3(), 50, 12, 12);
    assert!(mf < sf, "mf {mf} vs sf {sf}");
}

#[test]
fn fusion_never_catastrophic_on_currin() {
    // The Currin low fidelity is only loosely informative; the requirement
    // here is robustness: the fusion model must not be *worse* than 1.5× SF.
    let (mf, sf) = rmse_pair(&testfns::currin(), 50, 12, 13);
    assert!(mf < 1.5 * sf, "mf {mf} vs sf {sf}");
}

#[test]
fn acquisition_peaks_away_from_training_data_on_flat_posterior() {
    // On a posterior trained from a constant-ish function, EI is driven by
    // variance alone: its maximum must lie away from the training inputs.
    let xs: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64 / 5.0]).collect();
    let ys: Vec<f64> = xs.iter().map(|x| 0.01 * x[0]).collect();
    let mut rng = StdRng::seed_from_u64(5);
    let gp = Gp::fit(
        SquaredExponential::new(1),
        xs.clone(),
        ys.clone(),
        &GpConfig::default(),
        &mut rng,
    )
    .unwrap();
    let tau = ys.iter().cloned().fold(f64::INFINITY, f64::min);
    let ei_at = |x: f64| {
        let p = gp.predict(&[x]);
        acquisition::expected_improvement(p.mean, p.std_dev(), tau)
    };
    // EI at midpoints between training samples must exceed EI at samples.
    let at_data = ei_at(0.4);
    let between = ei_at(0.5);
    assert!(between >= at_data);
}

#[test]
fn mf_variance_respects_fidelity_data_geometry() {
    // High-fidelity variance must be small where high data exists and
    // larger in the extrapolation region, independent of low-data coverage.
    let mut rng = StdRng::seed_from_u64(6);
    let xl: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 / 29.0]).collect();
    let yl: Vec<f64> = xl.iter().map(|x| testfns::pedagogical_low(x[0])).collect();
    // High data only on [0, 0.5].
    let xh: Vec<Vec<f64>> = (0..8).map(|i| vec![0.5 * i as f64 / 7.0]).collect();
    let yh: Vec<f64> = xh.iter().map(|x| testfns::pedagogical_high(x[0])).collect();
    let mf = MfGp::fit(xl, yl, xh, yh, &MfGpConfig::default(), &mut rng).unwrap();
    let v_covered = mf.predict(&[0.25]).var;
    let v_uncovered = mf.predict(&[0.9]).var;
    assert!(
        v_uncovered > v_covered,
        "covered {v_covered} vs uncovered {v_uncovered}"
    );
}

//! Kill-and-resume equivalence harness for the durable run store: an
//! interrupted run resumed from its evaluation journal must reproduce the
//! uninterrupted trajectory **bit for bit** — same history, same best
//! design, same cost accounting (with replayed evaluations billed but not
//! re-simulated). Also covers the cross-run evaluation cache (trajectory
//! neutrality + warm rerun hits), cache-driven warm-starting, and the
//! fault-tolerant evaluator policies end to end.
//!
//! The "kill" is simulated two ways: a truncated `max_iterations` /
//! `budget` (clean shutdown mid-run) and an injected simulator panic
//! (crash mid-evaluation, nothing journaled for the in-flight point).
//!
//! To regenerate the pinned history snapshot after an *intentional*
//! behaviour change:
//!
//! ```text
//! MFBO_REGEN_GOLDEN=1 cargo test --test resume_equivalence
//! ```

use analog_mfbo::circuits::testfns;
use analog_mfbo::prelude::*;
use mfbo::report::write_history_csv;
use mfbo::Outcome;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

/// Fresh per-test store directory under the system tmpdir. Wiped on entry so
/// reruns of the suite never resume from a stale journal.
fn store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mfbo-resume-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Field-wise bit-exact comparison (telemetry and eval accounting excluded:
/// *how* an evaluation was sourced may differ between runs; *what* the
/// optimizer decided must not).
fn assert_outcomes_identical(a: &Outcome, b: &Outcome, label: &str) {
    assert_eq!(a.best_x, b.best_x, "{label}: best_x");
    assert_eq!(
        a.best_evaluation, b.best_evaluation,
        "{label}: best_evaluation"
    );
    assert!(
        a.best_objective.to_bits() == b.best_objective.to_bits(),
        "{label}: best_objective {} vs {}",
        a.best_objective,
        b.best_objective
    );
    assert_eq!(a.feasible, b.feasible, "{label}: feasible");
    assert_eq!(a.n_low, b.n_low, "{label}: n_low");
    assert_eq!(a.n_high, b.n_high, "{label}: n_high");
    assert!(
        a.total_cost.to_bits() == b.total_cost.to_bits(),
        "{label}: total_cost"
    );
    assert!(
        a.cost_to_best.to_bits() == b.cost_to_best.to_bits(),
        "{label}: cost_to_best"
    );
    assert_eq!(a.history.len(), b.history.len(), "{label}: history length");
    for (i, (ra, rb)) in a.history.iter().zip(&b.history).enumerate() {
        assert_eq!(ra, rb, "{label}: history record {i}");
    }
}

/// The full-run cost must be split exactly across the three sources.
fn assert_costs_reconcile(out: &Outcome, label: &str) {
    let st = &out.eval_stats;
    let split = st.fresh_cost + st.replayed_cost + st.cached_cost;
    assert!(
        (split - out.total_cost).abs() <= 1e-9 * out.total_cost.abs().max(1.0),
        "{label}: fresh {} + replayed {} + cached {} != total {}",
        st.fresh_cost,
        st.replayed_cost,
        st.cached_cost,
        out.total_cost
    );
}

fn history_csv(out: &Outcome) -> Vec<u8> {
    let mut buf = Vec::new();
    write_history_csv(out, &mut buf).unwrap();
    buf
}

fn mfbo_config(budget: f64, parallelism: Parallelism) -> MfBoConfig {
    MfBoConfig {
        initial_low: 8,
        initial_high: 4,
        budget,
        parallelism,
        ..MfBoConfig::default()
    }
}

/// Runs MFBO to completion with `opts`.
fn run_mfbo(
    problem: &dyn MultiFidelityProblem,
    seed: u64,
    config: MfBoConfig,
    opts: &mut RunOptions,
) -> Outcome {
    let mut rng = StdRng::seed_from_u64(seed);
    MfBayesOpt::new(config)
        .run_with(problem, &mut rng, opts)
        .unwrap()
}

/// Journals a partial MFBO run into `dir`, stopping after `iterations` BO
/// iterations — the clean-shutdown flavour of a kill.
fn interrupt_mfbo(
    problem: &dyn MultiFidelityProblem,
    seed: u64,
    budget: f64,
    iterations: usize,
    dir: &Path,
) {
    let mut opts = RunOptions::journaled(RunStore::open(dir).unwrap());
    let config = MfBoConfig {
        max_iterations: iterations,
        ..mfbo_config(budget, Parallelism::Serial)
    };
    run_mfbo(problem, seed, config, &mut opts);
}

#[test]
fn mfbo_resume_is_bit_identical_and_costs_reconcile() {
    let problem = testfns::forrester();
    let baseline = run_mfbo(
        &problem,
        7,
        mfbo_config(10.0, Parallelism::Serial),
        &mut RunOptions::default(),
    );

    // Serial resume of a run interrupted after 3 BO iterations.
    let dir = store_dir("mfbo-serial");
    interrupt_mfbo(&problem, 7, 10.0, 3, &dir);
    let mut opts = RunOptions::resuming(RunStore::open(&dir).unwrap());
    let resumed = run_mfbo(
        &problem,
        7,
        mfbo_config(10.0, Parallelism::Serial),
        &mut opts,
    );
    assert_outcomes_identical(&baseline, &resumed, "serial resume");
    assert_eq!(
        history_csv(&baseline),
        history_csv(&resumed),
        "serial resume: history CSV bytes"
    );
    let st = &resumed.eval_stats;
    assert!(
        st.replayed >= 15,
        "expected initial design + 3 iterations replayed, got {}",
        st.replayed
    );
    assert!(
        st.fresh > 0,
        "the resumed run must finish the remaining budget fresh"
    );
    assert_costs_reconcile(&resumed, "serial resume");

    // Resuming the now-complete journal replays everything: zero fresh
    // simulator calls, same outcome.
    let mut opts = RunOptions::resuming(RunStore::open(&dir).unwrap());
    let replayed = run_mfbo(
        &problem,
        7,
        mfbo_config(10.0, Parallelism::Serial),
        &mut opts,
    );
    assert_outcomes_identical(&baseline, &replayed, "full replay");
    assert_eq!(
        replayed.eval_stats.fresh, 0,
        "full replay must not re-simulate"
    );
    assert!(replayed.eval_stats.replayed > 0);
    assert_costs_reconcile(&replayed, "full replay");

    // A journal written serially must also resume bit-identically under the
    // thread pool (the parallelism knob is a pure performance lever).
    let dir = store_dir("mfbo-threads");
    interrupt_mfbo(&problem, 7, 10.0, 3, &dir);
    let mut opts = RunOptions::resuming(RunStore::open(&dir).unwrap());
    let threaded = run_mfbo(
        &problem,
        7,
        mfbo_config(10.0, Parallelism::Threads(4)),
        &mut opts,
    );
    assert_outcomes_identical(&baseline, &threaded, "threads(4) resume");
    assert_eq!(
        history_csv(&baseline),
        history_csv(&threaded),
        "threads(4) resume: history CSV bytes"
    );
    assert_costs_reconcile(&threaded, "threads(4) resume");

    check_history_against_golden("resume_forrester_seed7_history.csv", &resumed);
}

#[test]
fn constrained_mfbo_resume_is_bit_identical() {
    // Constrained problem: the per-constraint surrogates and the
    // feasibility-driven MSP path must survive a resume too.
    let problem = FunctionProblem::builder("c-toy", Bounds::unit(2))
        .high(|x: &[f64]| (x[0] - 0.2).powi(2) + (x[1] - 0.2).powi(2))
        .low(|x: &[f64]| (x[0] - 0.23).powi(2) + (x[1] - 0.17).powi(2) + 0.02)
        .high_constraints(1, |x: &[f64]| vec![1.0 - x[0] - x[1]])
        .low_constraints(|x: &[f64]| vec![1.02 - x[0] - x[1]])
        .low_cost(0.1)
        .build();
    let baseline = run_mfbo(
        &problem,
        11,
        mfbo_config(7.0, Parallelism::Serial),
        &mut RunOptions::default(),
    );
    let dir = store_dir("mfbo-constrained");
    interrupt_mfbo(&problem, 11, 7.0, 2, &dir);
    let mut opts = RunOptions::resuming(RunStore::open(&dir).unwrap());
    let resumed = run_mfbo(
        &problem,
        11,
        mfbo_config(7.0, Parallelism::Serial),
        &mut opts,
    );
    assert_outcomes_identical(&baseline, &resumed, "constrained resume");
    assert_eq!(
        history_csv(&baseline),
        history_csv(&resumed),
        "constrained resume: history CSV bytes"
    );
    assert!(resumed.eval_stats.replayed > 0);
    assert_costs_reconcile(&resumed, "constrained resume");
}

#[test]
fn mfbo_resumes_after_a_simulator_crash() {
    // The crash flavour of a kill: the simulator panics mid-run under the
    // default fail-fast policy, taking the process down with the in-flight
    // evaluation unjournaled. Everything before it was flushed write-ahead,
    // so a resume with a healthy simulator completes the original trajectory.
    let problem = testfns::forrester();
    let baseline = run_mfbo(
        &problem,
        2024,
        mfbo_config(9.0, Parallelism::Serial),
        &mut RunOptions::default(),
    );

    let dir = store_dir("mfbo-crash");
    let faulty = FaultInjector::new(testfns::forrester(), FaultKind::Panic, 17);
    let mut opts = RunOptions::journaled(RunStore::open(&dir).unwrap());
    let crashed = catch_unwind(AssertUnwindSafe(|| {
        let mut rng = StdRng::seed_from_u64(2024);
        MfBayesOpt::new(mfbo_config(9.0, Parallelism::Serial))
            .run_with(&faulty, &mut rng, &mut opts)
    }));
    assert!(
        crashed.is_err(),
        "call 17 must panic through the abort policy"
    );
    drop(opts);

    let mut opts = RunOptions::resuming(RunStore::open(&dir).unwrap());
    let resumed = run_mfbo(
        &problem,
        2024,
        mfbo_config(9.0, Parallelism::Serial),
        &mut opts,
    );
    assert_outcomes_identical(&baseline, &resumed, "crash resume");
    assert_eq!(
        resumed.eval_stats.replayed, 16,
        "exactly the 16 pre-crash evaluations are replayed"
    );
    assert_costs_reconcile(&resumed, "crash resume");
}

#[test]
fn sfbo_and_weibo_resume_bit_identically() {
    let problem = testfns::forrester();
    let sf_config = || SfBoConfig {
        initial_points: 6,
        budget: 14,
        ..SfBoConfig::default()
    };
    let run_sf = |budget: usize, opts: &mut RunOptions| {
        let mut rng = StdRng::seed_from_u64(3);
        SfBayesOpt::new(SfBoConfig {
            budget,
            ..sf_config()
        })
        .run_with(&problem, &mut rng, opts)
        .unwrap()
    };
    let baseline = {
        let mut rng = StdRng::seed_from_u64(3);
        SfBayesOpt::new(sf_config())
            .run(&problem, &mut rng)
            .unwrap()
    };
    // Interrupt by truncating the simulation budget, then resume with the
    // full one — the journal covers the first 9 evaluations.
    let dir = store_dir("sfbo");
    {
        let mut rng = StdRng::seed_from_u64(3);
        SfBayesOpt::new(SfBoConfig {
            budget: 9,
            ..sf_config()
        })
        .run_with(
            &problem,
            &mut rng,
            &mut RunOptions::journaled(RunStore::open(&dir).unwrap()),
        )
        .unwrap();
    }
    let mut opts = RunOptions::resuming(RunStore::open(&dir).unwrap());
    let resumed = run_sf(14, &mut opts);
    assert_outcomes_identical(&baseline, &resumed, "sfbo resume");
    assert_eq!(resumed.eval_stats.replayed, 9);
    assert_costs_reconcile(&resumed, "sfbo resume");

    // WEIBO shares the machinery through its own `run_with` entry point.
    let weibo_config = || WeiboConfig {
        initial_points: 6,
        budget: 14,
        ..WeiboConfig::default()
    };
    let weibo_baseline = {
        let mut rng = StdRng::seed_from_u64(5);
        Weibo::new(weibo_config()).run(&problem, &mut rng).unwrap()
    };
    let dir = store_dir("weibo");
    {
        let mut rng = StdRng::seed_from_u64(5);
        Weibo::new(WeiboConfig {
            budget: 10,
            ..weibo_config()
        })
        .run_with(
            &problem,
            &mut rng,
            &mut RunOptions::journaled(RunStore::open(&dir).unwrap()),
        )
        .unwrap();
    }
    let weibo_resumed = {
        let mut rng = StdRng::seed_from_u64(5);
        Weibo::new(weibo_config())
            .run_with(
                &problem,
                &mut rng,
                &mut RunOptions::resuming(RunStore::open(&dir).unwrap()),
            )
            .unwrap()
    };
    assert_outcomes_identical(&weibo_baseline, &weibo_resumed, "weibo resume");
    assert_eq!(weibo_resumed.eval_stats.replayed, 10);
    assert_costs_reconcile(&weibo_resumed, "weibo resume");
}

#[test]
fn eval_cache_warm_rerun_hits_without_changing_the_trajectory() {
    let problem = testfns::forrester();
    let dir = store_dir("cache");
    let cached_opts = || RunOptions {
        store: Some(RunStore::open(&dir).unwrap()),
        cache: true,
        ..RunOptions::default()
    };
    let first = run_mfbo(
        &problem,
        7,
        mfbo_config(10.0, Parallelism::Serial),
        &mut cached_opts(),
    );
    assert_eq!(first.eval_stats.cache_hits, 0, "cold cache");
    assert!(first.eval_stats.fresh > 0);

    // Identical seeded rerun: every evaluation is served from the cache,
    // and because hits are billed like simulations the trajectory is
    // bit-identical to the cold run.
    let second = run_mfbo(
        &problem,
        7,
        mfbo_config(10.0, Parallelism::Serial),
        &mut cached_opts(),
    );
    assert_outcomes_identical(&first, &second, "warm rerun");
    assert_eq!(
        second.eval_stats.fresh, 0,
        "warm rerun must not re-simulate"
    );
    assert!(second.eval_stats.cache_hits > 0);
    assert_costs_reconcile(&second, "warm rerun");

    // The uncached baseline decides identically: caching is observable only
    // in the accounting, never in the optimization.
    let plain = run_mfbo(
        &problem,
        7,
        mfbo_config(10.0, Parallelism::Serial),
        &mut RunOptions::default(),
    );
    assert_outcomes_identical(&plain, &first, "cache neutrality");
}

#[test]
fn warm_start_seeds_the_low_surrogate_and_survives_resume() {
    let problem = testfns::forrester();
    let dir = store_dir("warm");
    // Populate the cache with one seeded run.
    run_mfbo(
        &problem,
        7,
        mfbo_config(10.0, Parallelism::Serial),
        &mut RunOptions {
            store: Some(RunStore::open(&dir).unwrap()),
            cache: true,
            ..RunOptions::default()
        },
    );

    // A different-seed run with warm-starting (cache lookups off, so the
    // cache stays frozen and the warm set is stable across the runs below).
    let warm_opts = |resume: bool| RunOptions {
        store: Some(RunStore::open(&dir).unwrap()),
        warm_start: true,
        resume,
        ..RunOptions::default()
    };
    // Interrupted warm run, then its resume.
    {
        let mut opts = warm_opts(false);
        let config = MfBoConfig {
            max_iterations: 2,
            ..mfbo_config(9.0, Parallelism::Serial)
        };
        run_mfbo(&problem, 9, config, &mut opts);
    }
    let resumed = run_mfbo(
        &problem,
        9,
        mfbo_config(9.0, Parallelism::Serial),
        &mut warm_opts(true),
    );
    // Uninterrupted warm run against the same (frozen) cache.
    let uninterrupted = run_mfbo(
        &problem,
        9,
        mfbo_config(9.0, Parallelism::Serial),
        &mut warm_opts(false),
    );
    assert_outcomes_identical(&uninterrupted, &resumed, "warm resume");
    assert!(
        resumed.eval_stats.warm_started > 0,
        "cached low-fidelity points must seed the surrogate"
    );
    assert_eq!(
        resumed.eval_stats.warm_started,
        uninterrupted.eval_stats.warm_started
    );
    // Warm points train the low GP but never enter the history (they carry
    // no cost), so n_low exceeds the low-fidelity trace count.
    let trace_low = resumed
        .history
        .iter()
        .filter(|r| r.fidelity == Fidelity::Low)
        .count();
    assert!(
        resumed.n_low > trace_low,
        "n_low {} should exceed the {} journaled low evals",
        resumed.n_low,
        trace_low
    );
    assert_costs_reconcile(&resumed, "warm resume");
}

#[test]
fn penalize_policy_completes_a_faulty_run_and_counters_fire() {
    use mfbo_telemetry::{scoped_sink, sinks::CollectSink, Level};

    // Every 3rd simulation returns NaN; with no retries the penalize policy
    // substitutes the penalty objective and quarantines the point, and the
    // run completes where the historical behavior would have aborted.
    let faulty = FaultInjector::new(testfns::forrester(), FaultKind::Nan, 3);
    let sink = std::sync::Arc::new(CollectSink::with_level(Level::Debug));
    let guard = scoped_sink(sink.clone());
    let mut opts = RunOptions {
        policy: EvalPolicy {
            non_finite: NonFinitePolicy::PenalizeAndQuarantine {
                penalty: NonFinitePolicy::DEFAULT_PENALTY,
            },
            ..EvalPolicy::default()
        },
        ..RunOptions::default()
    };
    let out = run_mfbo(&faulty, 7, mfbo_config(8.0, Parallelism::Serial), &mut opts);
    drop(guard);
    assert!(out.eval_stats.quarantined > 0);
    assert!(
        out.history
            .iter()
            .any(|r| r.evaluation.objective == NonFinitePolicy::DEFAULT_PENALTY),
        "penalized evaluations must appear in the history"
    );
    assert!(
        !sink.named("eval_quarantined").is_empty(),
        "quarantines must be visible in telemetry"
    );

    // Every 7th simulation panics; two retries absorb every fault (the call
    // counter advances on faulted calls), so the run completes with zero
    // quarantines even under the abort policy.
    let flaky = FaultInjector::new(testfns::forrester(), FaultKind::Panic, 7);
    let sink = std::sync::Arc::new(CollectSink::with_level(Level::Debug));
    let guard = scoped_sink(sink.clone());
    let mut opts = RunOptions {
        policy: EvalPolicy {
            max_retries: 2,
            ..EvalPolicy::default()
        },
        ..RunOptions::default()
    };
    let out = run_mfbo(&flaky, 7, mfbo_config(8.0, Parallelism::Serial), &mut opts);
    drop(guard);
    assert!(out.eval_stats.retries > 0);
    assert_eq!(out.eval_stats.quarantined, 0);
    assert!(
        !sink.named("eval_retry").is_empty(),
        "retries must be visible in telemetry"
    );
    // And the retried run still matches the healthy-simulator trajectory:
    // retries re-evaluate the same point, which succeeds deterministically.
    let clean = run_mfbo(
        &testfns::forrester(),
        7,
        mfbo_config(8.0, Parallelism::Serial),
        &mut RunOptions::default(),
    );
    assert_outcomes_identical(&clean, &out, "retry transparency");
}

// ---------------------------------------------------------------------------
// Golden snapshot of the resumed history (tolerant numeric compare so libm
// ulp differences across platforms don't flake the suite; on one platform
// the byte-equality assertions above are the exact check).
// ---------------------------------------------------------------------------

const REL_TOL: f64 = 1e-6;

fn close(a: f64, b: f64) -> bool {
    if a.is_nan() && b.is_nan() {
        return true;
    }
    (a - b).abs() <= REL_TOL * a.abs().max(b.abs()).max(1.0)
}

fn check_history_against_golden(name: &str, out: &Outcome) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join(name);
    let actual = String::from_utf8(history_csv(out)).unwrap();
    if std::env::var("MFBO_REGEN_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with MFBO_REGEN_GOLDEN=1 to create it",
            path.display()
        )
    });
    let (g_lines, a_lines): (Vec<&str>, Vec<&str>) =
        (golden.lines().collect(), actual.lines().collect());
    assert_eq!(g_lines.len(), a_lines.len(), "{name}: row count changed");
    assert_eq!(g_lines[0], a_lines[0], "{name}: header changed");
    for (i, (g, a)) in g_lines.iter().zip(&a_lines).enumerate().skip(1) {
        let (gc, ac): (Vec<&str>, Vec<&str>) = (g.split(',').collect(), a.split(',').collect());
        assert_eq!(gc.len(), ac.len(), "{name}: row {i} arity");
        for (j, (gf, af)) in gc.iter().zip(&ac).enumerate() {
            match (gf.parse::<f64>(), af.parse::<f64>()) {
                (Ok(gv), Ok(av)) => assert!(
                    close(gv, av),
                    "{name}: row {i} col {j} diverged: golden {gv}, actual {av}"
                ),
                _ => assert_eq!(gf, af, "{name}: row {i} col {j}"),
            }
        }
    }
}

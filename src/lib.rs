//! `analog-mfbo` — a reproduction of *"An Efficient Multi-fidelity Bayesian
//! Optimization Approach for Analog Circuit Synthesis"* (Zhang et al.,
//! DAC 2019).
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`linalg`] | dense matrices, Cholesky/LU, Gaussian scalars |
//! | [`opt`] | L-BFGS, Nelder–Mead, differential evolution, LHS, MSP |
//! | [`gp`] | GP regression, SE-ARD and NARGP fusion kernels, NLML training |
//! | [`core`](mod@core) | the paper: fusion model, wEI, fidelity selection, Algorithm 1 |
//! | [`circuits`] | MNA spice engine, PVT corners, PA & charge-pump testbenches |
//! | [`baselines`] | WEIBO, GASPAD, DE comparison algorithms |
//!
//! # Quickstart
//!
//! ```
//! use analog_mfbo::prelude::*;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), mfbo::MfboError> {
//! // Optimize the Forrester multi-fidelity benchmark.
//! let problem = analog_mfbo::circuits::testfns::forrester();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let config = MfBoConfig { initial_low: 8, initial_high: 4, budget: 14.0,
//!                           ..MfBoConfig::default() };
//! let outcome = MfBayesOpt::new(config).run(&problem, &mut rng)?;
//! assert!(outcome.best_objective < -5.5);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub use mfbo as core;
pub use mfbo_baselines as baselines;
pub use mfbo_circuits as circuits;
pub use mfbo_gp as gp;
pub use mfbo_linalg as linalg;
pub use mfbo_opt as opt;
pub use mfbo_pool as pool;

/// Commonly used items, importable in one line.
pub mod prelude {
    pub use mfbo::problem::{Evaluation, Fidelity, FunctionProblem, MultiFidelityProblem};
    pub use mfbo::{
        AskTellMfbo, Candidate, EvalPolicy, EvalStats, FaultInjector, FaultKind, InferenceMode,
        MfBayesOpt, MfBoConfig, MfGp, MfGpConfig, NonFinitePolicy, Outcome, RunOptions, RunStore,
        SfBayesOpt, SfBoConfig, Told,
    };
    pub use mfbo_baselines::{
        DeBaselineConfig, DifferentialEvolutionBaseline, Gaspad, GaspadConfig, Weibo, WeiboConfig,
    };
    pub use mfbo_circuits::charge_pump::ChargePump;
    pub use mfbo_circuits::pa::PowerAmplifier;
    pub use mfbo_opt::Bounds;
    pub use mfbo_pool::Parallelism;
}

#[cfg(test)]
mod tests {
    #[test]
    fn reexports_resolve() {
        // Touch one item from every re-exported crate.
        let _ = crate::linalg::Matrix::identity(2);
        let _ = crate::opt::Bounds::unit(1);
        let _ = crate::gp::GpConfig::default();
        let _ = crate::core::MfBoConfig::default();
        let _ = crate::circuits::pa::PowerAmplifier::new();
        let _ = crate::baselines::WeiboConfig::default();
    }
}

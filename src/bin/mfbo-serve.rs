//! The evaluation service daemon: runs many concurrent MFBO optimizations
//! over a framed JSON socket (see `mfbo-server`'s crate docs for the wire
//! protocol, and `mfbo-client` for a terminal client).
//!
//! ```text
//! mfbo-serve --addr 127.0.0.1:7877 --workers 8 --queue-depth 64 \
//!            --shards 4 --journal-linger-ms 1
//! ```
//!
//! The bound address is printed to stdout (`listening on ADDR`) before the
//! accept loop starts, so scripts can bind port 0 and scrape the ephemeral
//! port. The process exits after a client sends `{"op":"shutdown"}`.
//!
//! Runs started with a `journal` directory survive a hard kill of this
//! process: restart the server and start the run again with `resume: true`
//! — the journal replays and the trajectory (and the journal itself)
//! reproduce bit for bit. This holds with group-commit journaling
//! (`--journal-linger-ms > 0`) too: a crash mid-window loses at most the
//! un-flushed suffix, which resume regenerates byte-identically.

use mfbo_server::{Server, ServerConfig};
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "usage: mfbo-serve [--addr HOST:PORT] [--workers N|auto] [--queue-depth N]
                  [--shards N|auto] [--journal-linger-ms N]

--addr               bind address (default 127.0.0.1:7877; port 0 = ephemeral)
--workers            evaluation worker threads shared by all runs
                     (default: auto = all cores)
--queue-depth        bounded worker-queue depth, the backpressure knob
                     (default 64)
--shards             run-scheduler shard threads, each multiplexing the runs
                     hashed to it (default: auto = min(cores, 8))
--journal-linger-ms  group-commit window for journaled runs: appends across
                     runs within the window share one vectored write + flush
                     (default 0 = flush every append, byte- and
                     syscall-identical to prior releases)";

#[derive(Debug, PartialEq)]
struct Options {
    addr: String,
    workers: Option<usize>,
    queue_depth: usize,
    shards: Option<usize>,
    journal_linger_ms: u64,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            addr: "127.0.0.1:7877".into(),
            workers: None,
            queue_depth: 64,
            shards: None,
            journal_linger_ms: 0,
        }
    }
}

fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.into_iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--addr" => opts.addr = value("--addr")?,
            "--workers" => {
                let v = value("--workers")?;
                opts.workers = match v.as_str() {
                    "auto" => None,
                    n => Some(
                        n.parse::<usize>()
                            .ok()
                            .filter(|&n| n > 0)
                            .ok_or("workers must be a positive integer or 'auto'")?,
                    ),
                };
            }
            "--queue-depth" => {
                opts.queue_depth = value("--queue-depth")?
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or("queue-depth must be a positive integer")?;
            }
            "--shards" => {
                let v = value("--shards")?;
                opts.shards = match v.as_str() {
                    "auto" => None,
                    n => Some(
                        n.parse::<usize>()
                            .ok()
                            .filter(|&n| n > 0)
                            .ok_or("shards must be a positive integer or 'auto'")?,
                    ),
                };
            }
            "--journal-linger-ms" => {
                opts.journal_linger_ms = value("--journal-linger-ms")?
                    .parse::<u64>()
                    .map_err(|_| "journal-linger-ms must be a non-negative integer")?;
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let defaults = ServerConfig::default();
    let config = ServerConfig {
        workers: opts.workers.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }),
        queue_depth: opts.queue_depth,
        shards: opts.shards.unwrap_or(defaults.shards),
        journal_linger: Duration::from_millis(opts.journal_linger_ms),
        ..defaults
    };
    let server = match Server::bind(&opts.addr, config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind {}: {e}", opts.addr);
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(addr) => println!("listening on {addr}"),
        Err(e) => {
            eprintln!("cannot read bound address: {e}");
            return ExitCode::FAILURE;
        }
    }
    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("server error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> impl Iterator<Item = String> + '_ {
        s.split_whitespace().map(String::from)
    }

    #[test]
    fn parses_flags() {
        let o = parse_args(args(
            "--addr 0.0.0.0:9000 --workers 8 --queue-depth 16 --shards 4 --journal-linger-ms 2",
        ))
        .unwrap();
        assert_eq!(o.addr, "0.0.0.0:9000");
        assert_eq!(o.workers, Some(8));
        assert_eq!(o.queue_depth, 16);
        assert_eq!(o.shards, Some(4));
        assert_eq!(o.journal_linger_ms, 2);
        assert_eq!(parse_args(args("")).unwrap(), Options::default());
        assert_eq!(parse_args(args("--workers auto")).unwrap().workers, None);
        assert_eq!(parse_args(args("--shards auto")).unwrap().shards, None);
        assert_eq!(
            parse_args(args("--journal-linger-ms 0"))
                .unwrap()
                .journal_linger_ms,
            0
        );
    }

    #[test]
    fn rejects_bad_flags() {
        assert!(parse_args(args("--workers 0")).is_err());
        assert!(parse_args(args("--queue-depth nope")).is_err());
        assert!(parse_args(args("--bogus")).is_err());
        assert!(parse_args(args("--help")).unwrap_err().contains("usage"));
        // Typed validation for the new knobs: zero shards and negative or
        // non-numeric linger windows fail with a readable message.
        assert!(parse_args(args("--shards 0"))
            .unwrap_err()
            .contains("shards must be a positive integer"));
        assert!(parse_args(args("--shards -1")).is_err());
        assert!(parse_args(args("--journal-linger-ms -1"))
            .unwrap_err()
            .contains("non-negative"));
        assert!(parse_args(args("--journal-linger-ms nope")).is_err());
        assert!(parse_args(args("--shards")).is_err());
    }
}

//! Terminal client for the `mfbo-serve` evaluation service.
//!
//! ```text
//! mfbo-client start --addr 127.0.0.1:7877 --run pa1 --problem pa \
//!             --seed 7 --budget 40 --batch 4 --journal runs/pa1
//! mfbo-client wait  --addr 127.0.0.1:7877 --run pa1
//! mfbo-client list  --addr 127.0.0.1:7877
//! mfbo-client shutdown --addr 127.0.0.1:7877
//! ```
//!
//! Each subcommand sends one request frame and prints the server's JSON
//! reply to stdout. The exit code is nonzero when the server replies
//! `ok:false` or (for `wait`) when the run finished in the `failed` state.

use mfbo::InferenceMode;
use mfbo_server::Client;
use mfbo_telemetry::json::Json;
use std::process::ExitCode;

const USAGE: &str = "usage: mfbo-client COMMAND [--addr HOST:PORT] [options]

commands:
  ping                       check the server is alive
  start                      start a named optimization run
  status --run NAME          one-shot status snapshot
  wait --run NAME            block until the run finishes, print outcome
  list                       status of every run on the server
  shutdown                   stop the server's accept loop

start options:
  --run NAME --problem NAME  (required) registry problem: forrester,
                             pedagogical, branin, park, pa, charge-pump
  --seed N --budget N --init-low N --init-high N
  --batch N                  ask/tell batch width (constant-liar fantasies
                             when N > 1; N = 1 matches mfbo-cli bit for bit)
  --journal DIR [--resume]   write-ahead journal / resume after a crash
  --retries N --on-non-finite abort|penalize
  --stall-ms N               deadline before a hung evaluation is failed
  --gp-inference exact|iterative|subset-of-data
                             surrogate inference engine (default exact;
                             the approximate engines cap the cubic GP cost
                             on long runs)

--addr defaults to 127.0.0.1:7877.";

#[derive(Debug, Default, PartialEq)]
struct Options {
    command: String,
    addr: String,
    fields: Vec<(String, Json)>,
}

fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Options, String> {
    let mut it = args.into_iter();
    let command = match it.next() {
        Some(c) if !c.starts_with('-') => c,
        Some(h) if h == "--help" || h == "-h" => return Err(USAGE.to_string()),
        _ => return Err(format!("missing command\n{USAGE}")),
    };
    if !matches!(
        command.as_str(),
        "ping" | "start" | "status" | "wait" | "list" | "shutdown"
    ) {
        return Err(format!("unknown command '{command}'\n{USAGE}"));
    }
    let mut opts = Options {
        command: command.clone(),
        addr: "127.0.0.1:7877".into(),
        fields: vec![("op".to_string(), Json::Str(command))],
    };
    let push_num = |fields: &mut Vec<(String, Json)>, key: &str, v: String| -> Result<(), String> {
        let n: f64 = v.parse().map_err(|_| format!("'{key}' must be a number"))?;
        fields.push((key.to_string(), Json::Num(n)));
        Ok(())
    };
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--addr" => opts.addr = value("--addr")?,
            "--run" => {
                let v = value("--run")?;
                opts.fields.push(("run".into(), Json::Str(v)));
            }
            "--problem" => {
                let v = value("--problem")?;
                opts.fields.push(("problem".into(), Json::Str(v)));
            }
            "--seed" => push_num(&mut opts.fields, "seed", value("--seed")?)?,
            "--budget" => push_num(&mut opts.fields, "budget", value("--budget")?)?,
            "--init-low" => push_num(&mut opts.fields, "init_low", value("--init-low")?)?,
            "--init-high" => push_num(&mut opts.fields, "init_high", value("--init-high")?)?,
            "--batch" => push_num(&mut opts.fields, "batch", value("--batch")?)?,
            "--retries" => push_num(&mut opts.fields, "retries", value("--retries")?)?,
            "--stall-ms" => push_num(&mut opts.fields, "stall_ms", value("--stall-ms")?)?,
            "--max-evals" => push_num(&mut opts.fields, "max_evals", value("--max-evals")?)?,
            "--journal" => {
                let v = value("--journal")?;
                opts.fields.push(("journal".into(), Json::Str(v)));
            }
            "--resume" => opts.fields.push(("resume".into(), Json::Bool(true))),
            "--gp-inference" => {
                let v = value("--gp-inference")?;
                InferenceMode::parse(&v)?; // reject bad modes before the round trip
                opts.fields.push(("gp_inference".into(), Json::Str(v)));
            }
            "--on-non-finite" => {
                let v = value("--on-non-finite")?;
                if !matches!(v.as_str(), "abort" | "penalize") {
                    return Err("on-non-finite must be 'abort' or 'penalize'".into());
                }
                opts.fields.push(("on_non_finite".into(), Json::Str(v)));
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    Ok(opts)
}

/// One human-readable line per run status: state, in-flight candidates,
/// and committed observation counts (the raw JSON stays on the line above
/// for scripts).
fn summarize(status: &Json) -> Option<String> {
    let run = status.get("run")?.as_str()?;
    let state = status.get("state")?.as_str()?;
    let count = |key: &str| status.get(key).and_then(Json::as_f64).unwrap_or(0.0) as u64;
    Some(format!(
        "{run}: {state}, {} pending, {} low / {} high observations",
        count("pending"),
        count("obs_low"),
        count("obs_high"),
    ))
}

fn main() -> ExitCode {
    let opts = match parse_args(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let mut client = match Client::connect(&opts.addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot connect to {}: {e}", opts.addr);
            return ExitCode::FAILURE;
        }
    };
    let reply = match client.request(&Json::Obj(opts.fields)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("request failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{reply}");
    match opts.command.as_str() {
        "status" | "wait" => {
            if let Some(line) = summarize(&reply) {
                println!("{line}");
            }
        }
        "list" => {
            if let Some(Json::Arr(runs)) = reply.get("runs") {
                for run in runs {
                    if let Some(line) = summarize(run) {
                        println!("{line}");
                    }
                }
            }
        }
        _ => {}
    }
    let ok = reply.get("ok").and_then(Json::as_bool) == Some(true);
    let run_failed =
        opts.command == "wait" && reply.get("state").and_then(Json::as_str) == Some("failed");
    if ok && !run_failed {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> impl Iterator<Item = String> + '_ {
        s.split_whitespace().map(String::from)
    }

    fn field<'a>(o: &'a Options, key: &str) -> Option<&'a Json> {
        o.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    #[test]
    fn builds_start_requests() {
        let o = parse_args(args(
            "start --addr h:1 --run r1 --problem pa --seed 7 --budget 40 \
             --batch 4 --journal runs/r1 --resume --retries 2 \
             --on-non-finite penalize --stall-ms 500",
        ))
        .unwrap();
        assert_eq!(o.command, "start");
        assert_eq!(o.addr, "h:1");
        assert_eq!(field(&o, "op"), Some(&Json::Str("start".into())));
        assert_eq!(field(&o, "run"), Some(&Json::Str("r1".into())));
        assert_eq!(field(&o, "batch"), Some(&Json::Num(4.0)));
        assert_eq!(field(&o, "resume"), Some(&Json::Bool(true)));
        assert_eq!(field(&o, "stall_ms"), Some(&Json::Num(500.0)));
        assert_eq!(
            field(&o, "on_non_finite"),
            Some(&Json::Str("penalize".into()))
        );
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(args("")).is_err());
        assert!(parse_args(args("frobnicate")).is_err());
        assert!(parse_args(args("start --budget nope")).is_err());
        assert!(parse_args(args("start --on-non-finite maybe")).is_err());
        assert!(parse_args(args("start --gp-inference cholmod")).is_err());
        assert!(parse_args(args("--help")).unwrap_err().contains("usage"));
    }

    #[test]
    fn passes_gp_inference_through() {
        let o = parse_args(args("start --run r --problem pa --gp-inference iterative")).unwrap();
        assert_eq!(
            field(&o, "gp_inference"),
            Some(&Json::Str("iterative".into()))
        );
    }

    #[test]
    fn summarizes_status_counts() {
        let status = Json::Obj(vec![
            ("run".into(), Json::Str("r1".into())),
            ("state".into(), Json::Str("running".into())),
            ("pending".into(), Json::Num(2.0)),
            ("obs_low".into(), Json::Num(40.0)),
            ("obs_high".into(), Json::Num(12.0)),
        ]);
        assert_eq!(
            summarize(&status).unwrap(),
            "r1: running, 2 pending, 40 low / 12 high observations"
        );
        assert!(summarize(&Json::Obj(vec![])).is_none());
    }

    #[test]
    fn default_addr_and_minimal_commands() {
        let o = parse_args(args("ping")).unwrap();
        assert_eq!(o.addr, "127.0.0.1:7877");
        assert_eq!(o.fields.len(), 1, "ping sends only the op field");
    }
}

//! Command-line driver: run any built-in problem with any algorithm.
//!
//! ```text
//! mfbo-cli --problem pa --algo mf --budget 40 --seed 7 --csv trace.csv
//! ```
//!
//! Problems: `forrester`, `pedagogical`, `branin`, `park`, `pa`,
//! `charge-pump`. Algorithms: `mf` (the paper's method), `weibo`,
//! `gaspad`, `de`.
//!
//! Observability: `--trace out.jsonl` streams structured telemetry records
//! (one JSON object per line) to a file; `--verbosity info|debug|trace`
//! additionally mirrors records to stderr in human-readable form and raises
//! the level captured by the trace file.
//!
//! Durability (algorithms `mf` and `weibo`): `--journal DIR` write-ahead
//! journals every evaluation into DIR; `--resume` replays the journal after
//! an interruption, reproducing the original trajectory bit for bit;
//! `--cache` serves repeated evaluations from a cross-run cache in DIR;
//! `--warm-start` seeds the low-fidelity surrogate from that cache.
//! `--on-non-finite penalize` keeps a run alive across failing simulations
//! (with `--retries N` attempts first) instead of aborting.
//!
//! Metrics: `--metrics out.json` aggregates telemetry into the deterministic
//! metrics registry and writes a JSON snapshot; `--metrics-prom out.txt`
//! writes the same snapshot in Prometheus text exposition format.
//!
//! Offline analysis: `mfbo-cli report --journal DIR [--trace FILE]` joins a
//! journaled run with its telemetry trace and prints a text report (JSON via
//! `--report FILE`, shape-checked against a schema via `--schema FILE`).

use analog_mfbo::circuits::testfns;
use analog_mfbo::prelude::*;
use mfbo::problem::MultiFidelityProblem;
use mfbo::report;
use mfbo::run_report::{self, RunReport};
use mfbo::{InferenceMode, NonFinitePolicy, RunOptions, RunStore};
use mfbo_telemetry::metrics::MetricsRegistry;
use mfbo_telemetry::sinks::{JsonlSink, MultiSink, PrettySink};
use mfbo_telemetry::{Level, Sink};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;

/// Parsed command-line options.
#[derive(Debug, Clone, PartialEq)]
struct Options {
    problem: String,
    algo: String,
    budget: f64,
    initial_low: usize,
    initial_high: usize,
    seed: u64,
    csv: Option<String>,
    convergence: Option<String>,
    trace: Option<String>,
    metrics: Option<String>,
    metrics_prom: Option<String>,
    verbosity: Option<Level>,
    threads: Parallelism,
    journal: Option<String>,
    resume: bool,
    cache: bool,
    warm_start: bool,
    on_non_finite: NonFinitePolicy,
    retries: u32,
    max_evals: Option<u64>,
    simd: Option<mfbo_simd::SimdMode>,
    gp_inference: InferenceMode,
    refit_every: usize,
    warm_start_thetas: bool,
    adaptive_restarts: usize,
    acq_warm_start: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            problem: "forrester".into(),
            algo: "mf".into(),
            budget: 20.0,
            initial_low: 10,
            initial_high: 5,
            seed: 0,
            csv: None,
            convergence: None,
            trace: None,
            metrics: None,
            metrics_prom: None,
            verbosity: None,
            // Results are bit-identical in every mode, so the CLI defaults
            // to all cores (or the MFBO_THREADS override).
            threads: Parallelism::Auto,
            journal: None,
            resume: false,
            cache: false,
            warm_start: false,
            on_non_finite: NonFinitePolicy::Abort,
            retries: 0,
            max_evals: None,
            // None = defer to MFBO_SIMD (unset → auto detection).
            simd: None,
            gp_inference: InferenceMode::Exact,
            refit_every: 1,
            warm_start_thetas: false,
            adaptive_restarts: 0,
            acq_warm_start: false,
        }
    }
}

const USAGE: &str = "usage: mfbo-cli [--problem NAME] [--algo mf|weibo|gaspad|de]
                [--budget N] [--init-low N] [--init-high N]
                [--seed N] [--csv FILE] [--convergence FILE]
                [--trace FILE] [--verbosity info|debug|trace]
                [--metrics FILE] [--metrics-prom FILE]
                [--threads N|auto]
                [--journal DIR] [--resume] [--cache] [--warm-start]
                [--on-non-finite abort|penalize] [--retries N]
                [--max-evals N] [--simd scalar|auto]
                [--gp-inference exact|iterative|subset-of-data]
                [--refit-every N] [--warm-start-thetas]
                [--adaptive-restarts N] [--acq-warm-start]
       mfbo-cli report --journal DIR [--trace FILE] [--report FILE]
                [--schema FILE]

problems: forrester, pedagogical, branin, park, pa, charge-pump

--threads picks the worker count for the deterministic thread pool
(default: auto = all cores, or the MFBO_THREADS environment variable when
set). Results are bit-identical for every thread count.

--journal DIR write-ahead journals every evaluation into DIR (algorithms
mf and weibo). --resume replays that journal after an interruption and
continues the run, reproducing the uninterrupted trajectory bit for bit.
--cache serves repeated evaluations from a cross-run cache in DIR;
--warm-start additionally seeds the low-fidelity surrogate from it.
--on-non-finite penalize substitutes a penalty for failing simulations
(after --retries N attempts) instead of aborting; --max-evals caps fresh
simulator calls.

--simd picks the vectorized micro-kernel backend (default: auto = best
runtime-detected instruction set, or the MFBO_SIMD environment variable
when set). Results are bit-identical for every backend.

--gp-inference picks the GP inference engine for algorithms mf and weibo
(default: exact). 'iterative' and 'subset-of-data' cap the cubic surrogate
cost once a run accumulates more observations than the subset size (1024) —
see the README section on scaling to thousands of observations. Approximate
runs are still deterministic and journal-replayable.

--refit-every N re-optimizes surrogate hyperparameters every N iterations
(default 1; algorithms mf and weibo), refreshing the models with frozen
hyperparameters in between — the amortized-refit schedule. The remaining
three knobs apply to algorithm mf only: --warm-start-thetas seeds
frozen-refresh recovery fits with the previous optimum, --adaptive-restarts
N halves the cold-restart count after the warm seed wins N consecutive full
refits, and --acq-warm-start seeds the acquisition search with the previous
iteration's optimum and the current incumbent. Each changes the optimization
trajectory and carries its own golden; all are off by default.

--metrics FILE aggregates telemetry into histograms/counters/gauges with
deterministic fixed bucket edges and writes the snapshot as JSON;
--metrics-prom FILE writes the same snapshot as a Prometheus text
exposition.

The report subcommand analyzes a finished (or interrupted) journaled run
offline: it prints a text report to stdout and, with --report FILE, writes
a deterministic JSON report (bit-identical across thread counts, SIMD
backends, and resume). --schema FILE validates the JSON report against a
minimal JSON-Schema subset and fails nonzero on a shape break.";

/// Parses arguments; returns an error message on malformed input.
fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.into_iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--problem" => opts.problem = value("--problem")?,
            "--algo" => opts.algo = value("--algo")?,
            "--budget" => {
                let v: f64 = value("--budget")?
                    .parse()
                    .map_err(|_| "budget must be a number".to_string())?;
                // NaN would slip past the loop's `<= 0` guard; reject here.
                if !(v > 0.0 && v.is_finite()) {
                    return Err("budget must be positive and finite".to_string());
                }
                opts.budget = v;
            }
            "--init-low" => {
                opts.initial_low = value("--init-low")?
                    .parse()
                    .map_err(|_| "init-low must be an integer".to_string())?
            }
            "--init-high" => {
                opts.initial_high = value("--init-high")?
                    .parse()
                    .map_err(|_| "init-high must be an integer".to_string())?
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "seed must be an integer".to_string())?
            }
            "--csv" => opts.csv = Some(value("--csv")?),
            "--convergence" => opts.convergence = Some(value("--convergence")?),
            "--trace" => opts.trace = Some(value("--trace")?),
            "--metrics" => opts.metrics = Some(value("--metrics")?),
            "--metrics-prom" => opts.metrics_prom = Some(value("--metrics-prom")?),
            "--verbosity" => {
                let v = value("--verbosity")?;
                opts.verbosity = Some(
                    Level::parse(&v)
                        .ok_or_else(|| "verbosity must be info, debug, or trace".to_string())?,
                );
            }
            "--threads" => {
                let v = value("--threads")?;
                opts.threads = Parallelism::parse(&v)
                    .ok_or_else(|| "threads must be a positive integer or 'auto'".to_string())?;
            }
            "--journal" => opts.journal = Some(value("--journal")?),
            "--resume" => opts.resume = true,
            "--cache" => opts.cache = true,
            "--warm-start" => opts.warm_start = true,
            "--on-non-finite" => {
                let v = value("--on-non-finite")?;
                opts.on_non_finite = NonFinitePolicy::parse(&v)
                    .ok_or_else(|| "on-non-finite must be 'abort' or 'penalize'".to_string())?;
            }
            "--retries" => {
                opts.retries = value("--retries")?
                    .parse()
                    .map_err(|_| "retries must be a non-negative integer".to_string())?
            }
            "--max-evals" => {
                opts.max_evals = Some(
                    value("--max-evals")?
                        .parse()
                        .map_err(|_| "max-evals must be a positive integer".to_string())?,
                )
            }
            "--simd" => {
                let v = value("--simd")?;
                opts.simd = Some(
                    mfbo_simd::SimdMode::parse(&v)
                        .ok_or_else(|| "simd must be 'scalar' or 'auto'".to_string())?,
                );
            }
            "--gp-inference" => {
                opts.gp_inference = InferenceMode::parse(&value("--gp-inference")?)?;
            }
            "--refit-every" => {
                let v: usize = value("--refit-every")?
                    .parse()
                    .map_err(|_| "refit-every must be a positive integer".to_string())?;
                if v == 0 {
                    return Err("refit-every must be a positive integer".to_string());
                }
                opts.refit_every = v;
            }
            "--warm-start-thetas" => opts.warm_start_thetas = true,
            "--adaptive-restarts" => {
                opts.adaptive_restarts = value("--adaptive-restarts")?
                    .parse()
                    .map_err(|_| "adaptive-restarts must be a non-negative integer".to_string())?;
            }
            "--acq-warm-start" => opts.acq_warm_start = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    if opts.journal.is_none() && (opts.resume || opts.cache || opts.warm_start) {
        return Err("--resume, --cache, and --warm-start require --journal DIR".into());
    }
    if opts.journal.is_some() && !matches!(opts.algo.as_str(), "mf" | "weibo") {
        return Err(format!(
            "--journal is only supported for algorithms 'mf' and 'weibo', not '{}'",
            opts.algo
        ));
    }
    if opts.refit_every != 1 && !matches!(opts.algo.as_str(), "mf" | "weibo") {
        return Err(format!(
            "--refit-every is only supported for algorithms 'mf' and 'weibo', not '{}'",
            opts.algo
        ));
    }
    if (opts.warm_start_thetas || opts.adaptive_restarts > 0 || opts.acq_warm_start)
        && opts.algo != "mf"
    {
        return Err(format!(
            "--warm-start-thetas, --adaptive-restarts, and --acq-warm-start are only \
             supported for algorithm 'mf', not '{}'",
            opts.algo
        ));
    }
    Ok(opts)
}

/// Instantiates a built-in problem by name.
fn make_problem(name: &str) -> Result<Box<dyn MultiFidelityProblem>, String> {
    match name {
        "forrester" => Ok(Box::new(testfns::forrester())),
        "pedagogical" => Ok(Box::new(testfns::pedagogical())),
        "branin" => Ok(Box::new(testfns::branin())),
        "park" => Ok(Box::new(testfns::park())),
        "pa" => Ok(Box::new(PowerAmplifier::new())),
        "charge-pump" => Ok(Box::new(ChargePump::new())),
        other => Err(format!("unknown problem '{other}'\n{USAGE}")),
    }
}

/// Assembles the durability/fault-tolerance options from the flags.
fn make_run_options(opts: &Options) -> Result<RunOptions, String> {
    let mut ro = RunOptions::default();
    ro.policy.max_retries = opts.retries;
    ro.policy.non_finite = opts.on_non_finite;
    ro.policy.max_evaluations = opts.max_evals;
    ro.resume = opts.resume;
    ro.cache = opts.cache;
    ro.warm_start = opts.warm_start;
    match &opts.journal {
        Some(dir) => ro.store = Some(RunStore::open(dir).map_err(|e| e.to_string())?),
        None if opts.resume || opts.cache || opts.warm_start => {
            return Err("--resume, --cache, and --warm-start require --journal DIR".into());
        }
        None => {}
    }
    Ok(ro)
}

/// Runs the selected algorithm.
fn run_algo(opts: &Options, problem: &dyn MultiFidelityProblem) -> Result<mfbo::Outcome, String> {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let budget_int = opts.budget.round().max(2.0) as usize;
    if opts.journal.is_some() && !matches!(opts.algo.as_str(), "mf" | "weibo") {
        return Err(format!(
            "--journal is only supported for algorithms 'mf' and 'weibo', not '{}'",
            opts.algo
        ));
    }
    if opts.journal.is_none() && (opts.resume || opts.cache || opts.warm_start) {
        return Err("--resume, --cache, and --warm-start require --journal DIR".into());
    }
    if !opts.gp_inference.is_exact() && !matches!(opts.algo.as_str(), "mf" | "weibo") {
        return Err(format!(
            "--gp-inference is only supported for algorithms 'mf' and 'weibo', not '{}'",
            opts.algo
        ));
    }
    match opts.algo.as_str() {
        "mf" => MfBayesOpt::new(MfBoConfig {
            initial_low: opts.initial_low,
            initial_high: opts.initial_high,
            budget: opts.budget,
            parallelism: opts.threads,
            gp_inference: opts.gp_inference,
            refit_every: opts.refit_every,
            warm_start_thetas: opts.warm_start_thetas,
            adaptive_restarts: opts.adaptive_restarts,
            acq_warm_start: opts.acq_warm_start,
            ..MfBoConfig::default()
        })
        .run_with(&problem, &mut rng, &mut make_run_options(opts)?)
        .map_err(|e| e.to_string()),
        "weibo" => {
            let mut cfg = WeiboConfig {
                initial_points: opts.initial_high.max(4),
                budget: budget_int,
                parallelism: opts.threads,
                refit_every: opts.refit_every,
                ..WeiboConfig::default()
            };
            cfg.model.inference = opts.gp_inference;
            Weibo::new(cfg)
                .run_with(&problem, &mut rng, &mut make_run_options(opts)?)
                .map_err(|e| e.to_string())
        }
        "gaspad" => Gaspad::new(GaspadConfig {
            initial_points: opts.initial_high.max(8),
            budget: budget_int,
            ..GaspadConfig::default()
        })
        .run(&problem, &mut rng)
        .map_err(|e| e.to_string()),
        "de" => DifferentialEvolutionBaseline::new(DeBaselineConfig {
            budget: budget_int,
            ..DeBaselineConfig::default()
        })
        .run(&problem, &mut rng)
        .map_err(|e| e.to_string()),
        other => Err(format!("unknown algorithm '{other}'\n{USAGE}")),
    }
}

/// Builds the telemetry sink implied by `--trace` / `--verbosity` /
/// `--metrics*`.
///
/// The trace file always captures at least Debug (the solver-internals tier)
/// so a saved trace is useful for post-mortems; `--verbosity trace` raises
/// it. The stderr mirror only appears when `--verbosity` is given. When
/// either metrics flag is set, a [`MetricsRegistry`] joins the fan-out and
/// is returned separately so the run can snapshot it afterwards.
#[allow(clippy::type_complexity)]
fn make_sink(
    opts: &Options,
) -> Result<(Option<Arc<dyn Sink>>, Option<Arc<MetricsRegistry>>), String> {
    let mut sinks: Vec<Arc<dyn Sink>> = Vec::new();
    if let Some(path) = &opts.trace {
        let file_level = opts.verbosity.unwrap_or(Level::Debug).max(Level::Debug);
        let sink = JsonlSink::create(path, file_level)
            .map_err(|e| format!("cannot create {path}: {e}"))?;
        sinks.push(Arc::new(sink));
    }
    if let Some(level) = opts.verbosity {
        sinks.push(Arc::new(PrettySink::stderr(level)));
    }
    let registry = if opts.metrics.is_some() || opts.metrics_prom.is_some() {
        let registry = Arc::new(MetricsRegistry::new());
        sinks.push(registry.clone());
        Some(registry)
    } else {
        None
    };
    let sink = match sinks.len() {
        0 => None,
        1 => sinks.pop(),
        _ => Some(Arc::new(MultiSink::new(sinks)) as Arc<dyn Sink>),
    };
    Ok((sink, registry))
}

/// Verifies an output path is writable *before* the (potentially long) run,
/// so a typo'd directory fails in milliseconds, not after the last
/// simulation. Creates/truncates the file; it is rewritten after the run.
fn preflight_output(path: &str) -> Result<(), String> {
    std::fs::File::create(path)
        .map(drop)
        .map_err(|e| format!("cannot create {path}: {e}"))
}

/// Options for the `report` subcommand.
#[derive(Debug, Clone, Default, PartialEq)]
struct ReportOptions {
    journal: String,
    trace: Option<String>,
    report: Option<String>,
    schema: Option<String>,
}

/// Parses `mfbo-cli report ...` arguments (everything after the subcommand).
fn parse_report_args<I: IntoIterator<Item = String>>(args: I) -> Result<ReportOptions, String> {
    let mut opts = ReportOptions::default();
    let mut it = args.into_iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--journal" => opts.journal = value("--journal")?,
            "--trace" => opts.trace = Some(value("--trace")?),
            "--report" => opts.report = Some(value("--report")?),
            "--schema" => opts.schema = Some(value("--schema")?),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown report flag {other}\n{USAGE}")),
        }
    }
    if opts.journal.is_empty() {
        return Err(format!("report requires --journal DIR\n{USAGE}"));
    }
    Ok(opts)
}

/// Runs the `report` subcommand: load journal (+ trace), analyze, validate,
/// print, write. Returns an error message for a nonzero exit.
fn run_report_command(opts: &ReportOptions) -> Result<(), String> {
    if let Some(path) = &opts.report {
        preflight_output(path)?;
    }
    let trace_path = opts.trace.as_deref().map(Path::new);
    let report = RunReport::from_store(&opts.journal, trace_path).map_err(|e| e.to_string())?;
    if let Some(path) = &opts.schema {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let schema = mfbo_telemetry::json::parse(&text)
            .map_err(|e| format!("invalid schema {path}: {e}"))?;
        run_report::validate_schema(&schema, report.json())
            .map_err(|e| format!("report violates schema {path}: {e}"))?;
    }
    print!("{}", report.text());
    if let Some(path) = &opts.report {
        std::fs::write(path, report.to_json_string())
            .map_err(|e| format!("failed to write {path}: {e}"))?;
        println!("json report written to {path}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1).peekable();
    if args.peek().map(String::as_str) == Some("report") {
        let parsed = parse_report_args(args.skip(1));
        return match parsed.and_then(|o| run_report_command(&o)) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("{msg}");
                ExitCode::FAILURE
            }
        };
    }
    let opts = match parse_args(args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let problem = match make_problem(&opts.problem) {
        Ok(p) => p,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    for path in opts
        .csv
        .iter()
        .chain(&opts.convergence)
        .chain(&opts.metrics)
        .chain(&opts.metrics_prom)
    {
        if let Err(msg) = preflight_output(path) {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    }
    // Preflight MFBO_SIMD before any hot path resolves the backend: a
    // typo'd value exits nonzero with a clean message instead of panicking
    // mid-run. A --simd flag overrides the variable, so it needs no check.
    if opts.simd.is_none() {
        if let Err(msg) = mfbo_simd::backend_from_env() {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    }
    let registry = match make_sink(&opts) {
        Ok((sink, registry)) => {
            if let Some(sink) = sink {
                mfbo_telemetry::set_global_sink(sink);
            }
            registry
        }
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    // Resolve the SIMD backend after the sink is installed so the
    // `simd_dispatch` decision event lands in --trace output.
    let simd_backend = match opts.simd {
        Some(mode) => mfbo_simd::force(mode),
        None => mfbo_simd::active(),
    };
    println!(
        "running {} on {} (budget {}, seed {}, {} worker thread(s), simd {})",
        opts.algo,
        problem.name(),
        opts.budget,
        opts.seed,
        opts.threads.workers(),
        simd_backend.name(),
    );
    let mut outcome = match run_algo(&opts, problem.as_ref()) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("optimization failed: {msg}");
            mfbo_telemetry::clear_global_sink();
            return ExitCode::FAILURE;
        }
    };
    // Flush the trace file before printing the summary.
    mfbo_telemetry::clear_global_sink();
    if let Some(registry) = &registry {
        registry.set_gauge("best_objective", outcome.best_objective);
        registry.set_gauge("total_cost", outcome.total_cost);
        registry.set_gauge("cost_to_best", outcome.cost_to_best);
        registry.set_gauge("evals_low", outcome.n_low as f64);
        registry.set_gauge("evals_high", outcome.n_high as f64);
        registry.set_gauge("feasible", f64::from(u8::from(outcome.feasible)));
        let snapshot = registry.snapshot();
        if let Some(path) = &opts.metrics {
            if let Err(e) = std::fs::write(path, format!("{}\n", snapshot.to_json())) {
                eprintln!("failed to write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("metrics snapshot written to {path}");
        }
        if let Some(path) = &opts.metrics_prom {
            if let Err(e) = std::fs::write(path, snapshot.to_prometheus()) {
                eprintln!("failed to write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("prometheus metrics written to {path}");
        }
        outcome.telemetry.metrics = Some(snapshot);
    }
    println!("{}", report::summary(&outcome));
    if !outcome.telemetry.stages.is_empty() {
        println!("\n{}", outcome.telemetry.stage_table());
    }
    let decisions = outcome.telemetry.decision_table();
    if !decisions.is_empty() {
        println!("{decisions}");
    }
    if let Some(path) = &opts.trace {
        println!("telemetry trace written to {path}");
    }
    if let Some(dir) = &opts.journal {
        println!("evaluation journal in {dir}");
    }

    if let Some(path) = &opts.csv {
        match std::fs::File::create(path) {
            Ok(f) => {
                if let Err(e) = report::write_history_csv(&outcome, f) {
                    eprintln!("failed to write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("history written to {path}");
            }
            Err(e) => {
                eprintln!("cannot create {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = &opts.convergence {
        match std::fs::File::create(path) {
            Ok(f) => {
                if let Err(e) = report::write_convergence_csv(&outcome, f) {
                    eprintln!("failed to write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("convergence trace written to {path}");
            }
            Err(e) => {
                eprintln!("cannot create {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_full_flag_set() {
        let o = parse_args(args(
            "--problem pa --algo weibo --budget 33.5 --init-low 7 --init-high 3 --seed 9 --csv a.csv --convergence b.csv",
        ))
        .unwrap();
        assert_eq!(o.problem, "pa");
        assert_eq!(o.algo, "weibo");
        assert_eq!(o.budget, 33.5);
        assert_eq!(o.initial_low, 7);
        assert_eq!(o.initial_high, 3);
        assert_eq!(o.seed, 9);
        assert_eq!(o.csv.as_deref(), Some("a.csv"));
        assert_eq!(o.convergence.as_deref(), Some("b.csv"));
    }

    #[test]
    fn defaults_apply() {
        let o = parse_args(args("")).unwrap();
        assert_eq!(o, Options::default());
    }

    #[test]
    fn rejects_unknown_flag_and_bad_values() {
        assert!(parse_args(args("--bogus 1")).is_err());
        assert!(parse_args(args("--budget abc")).is_err());
        assert!(parse_args(args("--seed")).is_err());
        assert!(parse_args(args("--verbosity loud")).is_err());
        assert!(parse_args(args("--budget NaN")).is_err());
        assert!(parse_args(args("--budget -3")).is_err());
        assert!(parse_args(args("--budget inf")).is_err());
        assert!(parse_args(args("--on-non-finite shrug")).is_err());
        assert!(parse_args(args("--retries -1")).is_err());
    }

    #[test]
    fn parses_simd_flag_and_rejects_unknown() {
        let o = parse_args(args("--simd scalar")).unwrap();
        assert_eq!(o.simd, Some(mfbo_simd::SimdMode::Scalar));
        let o = parse_args(args("--simd auto")).unwrap();
        assert_eq!(o.simd, Some(mfbo_simd::SimdMode::Auto));
        assert_eq!(parse_args(args("")).unwrap().simd, None);
        let e = parse_args(args("--simd avx512")).unwrap_err();
        assert!(e.contains("'scalar' or 'auto'"), "{e}");
        assert!(parse_args(args("--simd")).is_err());
    }

    #[test]
    fn parses_gp_inference_flag_and_rejects_unknown() {
        assert_eq!(
            parse_args(args("")).unwrap().gp_inference,
            InferenceMode::Exact
        );
        assert_eq!(
            parse_args(args("--gp-inference exact"))
                .unwrap()
                .gp_inference,
            InferenceMode::Exact
        );
        assert_eq!(
            parse_args(args("--gp-inference iterative"))
                .unwrap()
                .gp_inference,
            InferenceMode::iterative()
        );
        assert_eq!(
            parse_args(args("--gp-inference subset-of-data"))
                .unwrap()
                .gp_inference,
            InferenceMode::subset_of_data()
        );
        let e = parse_args(args("--gp-inference cholmod")).unwrap_err();
        assert!(e.contains("unknown inference mode"), "{e}");
        assert!(parse_args(args("--gp-inference")).is_err());
    }

    #[test]
    fn parses_refit_and_warm_start_flags() {
        let o = parse_args(args(
            "--refit-every 4 --warm-start-thetas --adaptive-restarts 3 --acq-warm-start",
        ))
        .unwrap();
        assert_eq!(o.refit_every, 4);
        assert!(o.warm_start_thetas);
        assert_eq!(o.adaptive_restarts, 3);
        assert!(o.acq_warm_start);
        let d = parse_args(args("")).unwrap();
        assert_eq!(d.refit_every, 1);
        assert!(!d.warm_start_thetas);
        assert_eq!(d.adaptive_restarts, 0);
        assert!(!d.acq_warm_start);
    }

    #[test]
    fn rejects_bad_refit_and_warm_start_values() {
        let e = parse_args(args("--refit-every 0")).unwrap_err();
        assert!(e.contains("positive integer"), "{e}");
        assert!(parse_args(args("--refit-every abc")).is_err());
        assert!(parse_args(args("--refit-every")).is_err());
        assert!(parse_args(args("--adaptive-restarts -2")).is_err());
        assert!(parse_args(args("--adaptive-restarts")).is_err());
        // The mf-only knobs are rejected for algorithms without surrogates.
        let e = parse_args(args("--algo de --refit-every 4")).unwrap_err();
        assert!(e.contains("'mf' and 'weibo'"), "{e}");
        let e = parse_args(args("--algo weibo --acq-warm-start")).unwrap_err();
        assert!(e.contains("algorithm 'mf'"), "{e}");
        let e = parse_args(args("--algo gaspad --warm-start-thetas")).unwrap_err();
        assert!(e.contains("algorithm 'mf'"), "{e}");
    }

    #[test]
    fn gp_inference_rejected_for_non_gp_algorithms() {
        let p = make_problem("forrester").unwrap();
        let opts = Options {
            algo: "de".into(),
            gp_inference: InferenceMode::iterative(),
            ..Options::default()
        };
        let e = run_algo(&opts, p.as_ref()).unwrap_err();
        assert!(
            e.contains("only supported for algorithms 'mf' and 'weibo'"),
            "{e}"
        );
    }

    #[test]
    fn parses_durability_flags() {
        let o = parse_args(args(
            "--journal runs/a --resume --cache --warm-start --on-non-finite penalize --retries 3 --max-evals 100",
        ))
        .unwrap();
        assert_eq!(o.journal.as_deref(), Some("runs/a"));
        assert!(o.resume && o.cache && o.warm_start);
        assert!(matches!(
            o.on_non_finite,
            NonFinitePolicy::PenalizeAndQuarantine { .. }
        ));
        assert_eq!(o.retries, 3);
        assert_eq!(o.max_evals, Some(100));
    }

    #[test]
    fn durability_flags_without_journal_or_with_wrong_algo_fail() {
        let p = make_problem("forrester").unwrap();
        let no_journal = Options {
            resume: true,
            ..Options::default()
        };
        let e = run_algo(&no_journal, p.as_ref()).unwrap_err();
        assert!(e.contains("--journal"), "{e}");
        let wrong_algo = Options {
            algo: "de".into(),
            journal: Some("/tmp/x".into()),
            ..Options::default()
        };
        let e = run_algo(&wrong_algo, p.as_ref()).unwrap_err();
        assert!(e.contains("not 'de'"), "{e}");
    }

    #[test]
    fn preflight_catches_unwritable_paths() {
        assert!(preflight_output("/nonexistent-dir/trace.csv").is_err());
        let ok = std::env::temp_dir().join(format!("mfbo-cli-preflight-{}", std::process::id()));
        let ok = ok.to_str().unwrap();
        assert!(preflight_output(ok).is_ok());
        let _ = std::fs::remove_file(ok);
    }

    #[test]
    fn parses_telemetry_flags() {
        let o = parse_args(args("--trace t.jsonl --verbosity debug")).unwrap();
        assert_eq!(o.trace.as_deref(), Some("t.jsonl"));
        assert_eq!(o.verbosity, Some(Level::Debug));
        // Trace-only runs still get a (file) sink; quiet runs get none.
        let (sink, registry) = make_sink(&parse_args(args("")).unwrap()).unwrap();
        assert!(sink.is_none() && registry.is_none());
    }

    #[test]
    fn parses_metrics_flags_and_builds_registry_sink() {
        let o = parse_args(args("--metrics m.json --metrics-prom m.txt")).unwrap();
        assert_eq!(o.metrics.as_deref(), Some("m.json"));
        assert_eq!(o.metrics_prom.as_deref(), Some("m.txt"));
        let (sink, registry) = make_sink(&o).unwrap();
        assert!(sink.is_some() && registry.is_some());
        assert!(parse_args(args("--metrics")).is_err());
    }

    #[test]
    fn parses_report_subcommand_args() {
        let o = parse_report_args(args(
            "--journal runs/a --trace t.jsonl --report r.json --schema s.json",
        ))
        .unwrap();
        assert_eq!(o.journal, "runs/a");
        assert_eq!(o.trace.as_deref(), Some("t.jsonl"));
        assert_eq!(o.report.as_deref(), Some("r.json"));
        assert_eq!(o.schema.as_deref(), Some("s.json"));
        let e = parse_report_args(args("--trace t.jsonl")).unwrap_err();
        assert!(e.contains("--journal"), "{e}");
        assert!(parse_report_args(args("--journal a --bogus x")).is_err());
    }

    #[test]
    fn report_command_preflights_unwritable_output() {
        let o = ReportOptions {
            journal: "does-not-matter".into(),
            report: Some("/nonexistent-dir/report.json".into()),
            ..ReportOptions::default()
        };
        let e = run_report_command(&o).unwrap_err();
        assert!(e.contains("cannot create"), "{e}");
        // A missing journal dir fails *after* preflight, with a store error.
        let o = ReportOptions {
            journal: "/nonexistent-dir/journal".into(),
            ..ReportOptions::default()
        };
        let e = run_report_command(&o).unwrap_err();
        assert!(e.contains("no run found"), "{e}");
    }

    #[test]
    fn parses_thread_specs() {
        assert_eq!(
            parse_args(args("--threads 4")).unwrap().threads,
            Parallelism::Threads(4)
        );
        assert_eq!(
            parse_args(args("--threads 1")).unwrap().threads,
            Parallelism::Serial
        );
        assert_eq!(
            parse_args(args("--threads auto")).unwrap().threads,
            Parallelism::Auto
        );
        assert!(parse_args(args("--threads fast")).is_err());
        assert_eq!(parse_args(args("")).unwrap().threads, Parallelism::Auto);
    }

    #[test]
    fn help_prints_usage() {
        let e = parse_args(args("--help")).unwrap_err();
        assert!(e.contains("usage"));
    }

    #[test]
    fn problems_instantiate() {
        for name in [
            "forrester",
            "pedagogical",
            "branin",
            "park",
            "pa",
            "charge-pump",
        ] {
            assert!(make_problem(name).is_ok(), "{name}");
        }
        assert!(make_problem("nope").is_err());
    }

    #[test]
    fn end_to_end_tiny_run() {
        let opts = Options {
            problem: "forrester".into(),
            algo: "mf".into(),
            budget: 6.0,
            initial_low: 6,
            initial_high: 3,
            seed: 1,
            threads: Parallelism::Serial,
            ..Options::default()
        };
        let p = make_problem(&opts.problem).unwrap();
        let o = run_algo(&opts, p.as_ref()).unwrap();
        assert!(o.best_objective.is_finite());
    }
}

//! Minimal offline stand-in for the crates.io `criterion` crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! subset of the criterion 0.5 surface its microbenches use:
//! [`criterion_group!`]/[`criterion_main!`], [`Criterion::benchmark_group`],
//! [`Criterion::bench_function`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], and [`Bencher::iter`].
//!
//! Measurement is deliberately simple: each benchmark is warmed up briefly,
//! then timed over `sample_size` samples whose per-iteration mean, median, and
//! spread are printed. There are no HTML reports, no statistical regression
//! analysis, and no `target/criterion` history — good enough to compare
//! kernels within one run, which is all the offline harness needs.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Identifier with both a function name and a parameter value.
    pub fn new(function_id: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// Identifier from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    sample_size: usize,
    /// Mean nanoseconds per iteration over the measured samples.
    mean_ns: f64,
    median_ns: f64,
    min_ns: f64,
    max_ns: f64,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            sample_size,
            mean_ns: 0.0,
            median_ns: 0.0,
            min_ns: 0.0,
            max_ns: 0.0,
        }
    }

    /// Runs `routine` repeatedly and records per-iteration timing.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: find an iteration count that takes a measurable slice of
        // time (~5 ms per sample, capped so slow benches still finish).
        let warm_start = Instant::now();
        std::hint::black_box(routine());
        let once = warm_start.elapsed().max(Duration::from_nanos(1));
        let per_sample = Duration::from_millis(5);
        let iters = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 100_000) as usize;

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            samples_ns.push(t0.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        self.mean_ns = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        self.median_ns = samples_ns[samples_ns.len() / 2];
        self.min_ns = samples_ns[0];
        self.max_ns = *samples_ns.last().expect("non-empty samples");
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn report(name: &str, b: &Bencher) {
    println!(
        "{name:<40} time: [{} {} {}]  (min {}, {} samples)",
        fmt_ns(b.mean_ns),
        fmt_ns(b.median_ns),
        fmt_ns(b.max_ns),
        fmt_ns(b.min_ns),
        b.sample_size,
    );
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks `routine`, passing it `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut routine = routine;
        let mut bencher = Bencher::new(self.sample_size);
        routine(&mut bencher, input);
        let full = format!("{}/{}", self.name, id.into().label);
        report(&full, &bencher);
        self
    }

    /// Benchmarks `routine` with no external input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut routine = routine;
        let mut bencher = Bencher::new(self.sample_size);
        routine(&mut bencher);
        let full = format!("{}/{}", self.name, id.into().label);
        report(&full, &bencher);
        self
    }

    /// Ends the group (printing already happened per-bench).
    pub fn finish(&mut self) {
        let _ = &self.criterion;
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("-- group: {name}");
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            name,
            criterion: self,
            sample_size,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F>(&mut self, name: &str, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut routine = routine;
        let mut bencher = Bencher::new(self.default_sample_size);
        routine(&mut bencher);
        report(name, &bencher);
        self
    }
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Re-export matching upstream's `criterion::black_box`.
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::new(3);
        b.iter(|| (0..100u64).sum::<u64>());
        assert!(b.mean_ns > 0.0);
        assert!(b.min_ns <= b.median_ns && b.median_ns <= b.max_ns);
    }

    #[test]
    fn group_and_ids_run() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(2);
        g.bench_with_input(BenchmarkId::new("f", 3), &3u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        g.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
        c.bench_function("top", |b| b.iter(|| black_box(2 * 2)));
        assert_eq!(BenchmarkId::from_parameter(128).label, "128");
    }
}

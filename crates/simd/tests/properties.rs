//! Differential `to_bits` proptests: the dispatched backend must reproduce
//! the scalar reference **bit for bit** on every micro-kernel, for any
//! input. On hardware without AVX2/NEON the dispatched backend *is* the
//! scalar reference and the comparisons hold trivially; on the CI x86_64
//! runners (and any AVX2 machine) these exercise the intrinsic modules.

use mfbo_simd as simd;
use proptest::prelude::*;
use proptest::TestCaseError;
use simd::Backend;

fn assert_bits_eq(got: &[f64], want: &[f64]) -> Result<(), TestCaseError> {
    prop_assert_eq!(got.len(), want.len());
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        prop_assert_eq!(g.to_bits(), w.to_bits(), "element {}", i);
    }
    Ok(())
}

/// Mixed-magnitude values: rounding differences (e.g. a hidden FMA) show up
/// fastest when operand magnitudes differ wildly.
fn values(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e3f64..1e3, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Lengths straddle the 8/4-wide block boundaries and the scalar tail.
    #[test]
    fn sq_norm_dispatch_bit_identical(
        count in 1usize..40,
        dim in 1usize..8,
        seed in values(40 * 8),
        scale in values(8),
    ) {
        let rows = &seed[..count * dim];
        let inv_l = &scale[..dim];
        let mut fast = vec![0.0; count];
        let mut reference = vec![0.0; count];
        simd::sq_norm(simd::detect(), rows, count, inv_l, &mut fast);
        simd::scalar::sq_norm(rows, count, inv_l, &mut reference);
        assert_bits_eq(&fast, &reference)?;
    }

    #[test]
    fn elementwise_kernels_dispatch_bit_identical(
        len in 1usize..20,
        d in values(20),
        l in values(20),
        acc0 in values(20),
        k in -4.0f64..4.0,
        w in -4.0f64..4.0,
    ) {
        let be = simd::detect();
        let d = &d[..len];
        let l = &l[..len];

        let mut fast = vec![0.0; len];
        let mut reference = vec![0.0; len];
        simd::z2_into(be, d, l, &mut fast);
        simd::scalar::z2_into(d, l, &mut reference);
        assert_bits_eq(&fast, &reference)?;

        let z2 = reference.clone();
        let mut fast = acc0[..len].to_vec();
        let mut reference = acc0[..len].to_vec();
        simd::accum_scaled(be, &mut fast, &z2, k, w);
        simd::scalar::accum_scaled(&mut reference, &z2, k, w);
        assert_bits_eq(&fast, &reference)?;

        let mut fast = acc0[..len].to_vec();
        let mut reference = acc0[..len].to_vec();
        simd::accum_scaled2(be, &mut fast, &z2, k, w, 0.7);
        simd::scalar::accum_scaled2(&mut reference, &z2, k, w, 0.7);
        assert_bits_eq(&fast, &reference)?;

        let mut fast = acc0[..len].to_vec();
        let mut reference = acc0[..len].to_vec();
        simd::accum_weighted_sq(be, &mut fast, d, l, k, w);
        simd::scalar::accum_weighted_sq(&mut reference, d, l, k, w);
        assert_bits_eq(&fast, &reference)?;
    }

    #[test]
    fn fold_cols_dispatch_bit_identical(
        len in 1usize..30,
        ncols in 0usize..6,
        src in values(200),
        dst0 in values(30),
        mults in values(6),
    ) {
        // Column offsets spread through `src` like packed Cholesky columns.
        let cols: Vec<(usize, f64)> = (0..ncols)
            .map(|c| (c * (200 - len) / ncols.max(1), mults[c]))
            .collect();
        let mut fast = dst0[..len].to_vec();
        let mut reference = dst0[..len].to_vec();
        simd::fold_cols(simd::detect(), &mut fast, &src, &cols);
        simd::scalar::fold_cols(&mut reference, &src, &cols);
        assert_bits_eq(&fast, &reference)?;
    }

    #[test]
    fn interleaved_solves_bit_identical_to_per_rhs_scalar(
        n in 1usize..24,
        lseed in values(24 * 24),
        bseed in values(24 * 4),
    ) {
        let be = simd::detect();
        let lanes = be.lanes();
        // Well-conditioned lower-triangular factor: unit-offset diagonal.
        let mut l = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..=i {
                l[i * n + j] = lseed[i * n + j] / 1e3;
            }
            l[i * n + i] = 1.0 + l[i * n + i].abs();
        }
        let mut cols = vec![0.0; n * (n + 1) / 2];
        for j in 0..n {
            let off = j * (2 * n - j + 1) / 2;
            for i in j..n {
                cols[off + (i - j)] = l[i * n + j];
            }
        }
        let b = &bseed[..n * lanes];

        let mut fast = vec![0.0; n * lanes];
        simd::forward_solve_interleaved(be, &l, n, b, &mut fast);
        // Reference: each lane is one scalar single-RHS solve.
        let mut reference = vec![0.0; n * lanes];
        for c in 0..lanes {
            let bc: Vec<f64> = (0..n).map(|i| b[i * lanes + c]).collect();
            let mut xc = vec![0.0; n];
            simd::scalar::forward_solve_interleaved(&l, n, 1, &bc, &mut xc);
            for i in 0..n {
                reference[i * lanes + c] = xc[i];
            }
        }
        assert_bits_eq(&fast, &reference)?;

        let mut fast = vec![0.0; n * lanes];
        simd::back_solve_interleaved(be, &cols, n, b, &mut fast);
        let mut reference = vec![0.0; n * lanes];
        for c in 0..lanes {
            let bc: Vec<f64> = (0..n).map(|i| b[i * lanes + c]).collect();
            let mut xc = vec![0.0; n];
            simd::scalar::back_solve_interleaved(&cols, n, 1, &bc, &mut xc);
            for i in 0..n {
                reference[i * lanes + c] = xc[i];
            }
        }
        assert_bits_eq(&fast, &reference)?;
    }

    /// The dispatch *choice* never changes output bits: every constructible
    /// backend value — including a forced-scalar and a foreign-architecture
    /// one — produces identical bits on the same input.
    #[test]
    fn dispatch_choice_never_changes_bits(
        count in 1usize..24,
        dim in 1usize..6,
        seed in values(24 * 6),
        scale in values(6),
    ) {
        let rows = &seed[..count * dim];
        let inv_l = &scale[..dim];
        let mut want = vec![0.0; count];
        simd::scalar::sq_norm(rows, count, inv_l, &mut want);
        for be in [Backend::Scalar, Backend::Avx2, Backend::Neon, simd::detect()] {
            let mut got = vec![0.0; count];
            simd::sq_norm(be, rows, count, inv_l, &mut got);
            assert_bits_eq(&got, &want)?;
        }
    }
}

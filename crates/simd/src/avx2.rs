//! AVX2 intrinsic kernels (4 × f64 lanes).
//!
//! Every function is `#[target_feature(enable = "avx2")]` and therefore
//! `unsafe` to call: callers (the dispatch macro in `lib.rs`) must confirm
//! AVX2 via `is_x86_feature_detected!` first. No other invariants are
//! required — all memory access is through slice-derived pointers with the
//! bounds already checked by the safe wrappers, using unaligned loads and
//! stores throughout.
//!
//! Bit-exactness: multiply and add/subtract stay separate instructions
//! (`vmulpd` + `vaddpd`/`vsubpd`, never FMA), per-entry reductions run in
//! the same ascending order as the scalar reference, and `vdivpd` is IEEE
//! correctly rounded, so every lane reproduces the scalar result exactly.

use core::arch::x86_64::*;

const LANES: usize = 4;

#[target_feature(enable = "avx2")]
pub(crate) unsafe fn sq_norm(rows: &[f64], count: usize, inv_l: &[f64], out: &mut [f64]) {
    let rp = rows.as_ptr();
    let op = out.as_mut_ptr();
    let mut q = 0usize;
    // Two accumulator vectors per block hide the add latency; each lane's
    // chain still adds its t-terms in ascending order.
    while q + 2 * LANES <= count {
        let mut acc0 = _mm256_setzero_pd();
        let mut acc1 = _mm256_setzero_pd();
        for (t, &li) in inv_l.iter().enumerate() {
            let lv = _mm256_set1_pd(li);
            let base = t * count + q;
            let z0 = _mm256_mul_pd(_mm256_loadu_pd(rp.add(base)), lv);
            let z1 = _mm256_mul_pd(_mm256_loadu_pd(rp.add(base + LANES)), lv);
            acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(z0, z0));
            acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(z1, z1));
        }
        _mm256_storeu_pd(op.add(q), acc0);
        _mm256_storeu_pd(op.add(q + LANES), acc1);
        q += 2 * LANES;
    }
    while q + LANES <= count {
        let mut acc = _mm256_setzero_pd();
        for (t, &li) in inv_l.iter().enumerate() {
            let lv = _mm256_set1_pd(li);
            let z = _mm256_mul_pd(_mm256_loadu_pd(rp.add(t * count + q)), lv);
            acc = _mm256_add_pd(acc, _mm256_mul_pd(z, z));
        }
        _mm256_storeu_pd(op.add(q), acc);
        q += LANES;
    }
    for qq in q..count {
        let mut s = 0.0;
        for (t, &li) in inv_l.iter().enumerate() {
            let z = rows[t * count + qq] * li;
            s += z * z;
        }
        out[qq] = s;
    }
}

#[target_feature(enable = "avx2")]
pub(crate) unsafe fn z2_into(d: &[f64], inv_l: &[f64], out: &mut [f64]) {
    let n = d.len();
    let mut i = 0usize;
    while i + LANES <= n {
        let z = _mm256_mul_pd(
            _mm256_loadu_pd(d.as_ptr().add(i)),
            _mm256_loadu_pd(inv_l.as_ptr().add(i)),
        );
        _mm256_storeu_pd(out.as_mut_ptr().add(i), _mm256_mul_pd(z, z));
        i += LANES;
    }
    while i < n {
        let z = d[i] * inv_l[i];
        out[i] = z * z;
        i += 1;
    }
}

#[target_feature(enable = "avx2")]
pub(crate) unsafe fn accum_scaled(acc: &mut [f64], z2: &[f64], k: f64, w: f64) {
    let n = acc.len();
    let kv = _mm256_set1_pd(k);
    let wv = _mm256_set1_pd(w);
    let mut i = 0usize;
    while i + LANES <= n {
        let t = _mm256_mul_pd(kv, _mm256_loadu_pd(z2.as_ptr().add(i)));
        let a = _mm256_loadu_pd(acc.as_ptr().add(i));
        _mm256_storeu_pd(
            acc.as_mut_ptr().add(i),
            _mm256_add_pd(a, _mm256_mul_pd(wv, t)),
        );
        i += LANES;
    }
    while i < n {
        acc[i] += w * (k * z2[i]);
        i += 1;
    }
}

#[target_feature(enable = "avx2")]
pub(crate) unsafe fn accum_scaled2(acc: &mut [f64], z2: &[f64], a: f64, b: f64, w: f64) {
    let n = acc.len();
    let av = _mm256_set1_pd(a);
    let bv = _mm256_set1_pd(b);
    let wv = _mm256_set1_pd(w);
    let mut i = 0usize;
    while i + LANES <= n {
        let t = _mm256_mul_pd(_mm256_mul_pd(av, _mm256_loadu_pd(z2.as_ptr().add(i))), bv);
        let g = _mm256_loadu_pd(acc.as_ptr().add(i));
        _mm256_storeu_pd(
            acc.as_mut_ptr().add(i),
            _mm256_add_pd(g, _mm256_mul_pd(wv, t)),
        );
        i += LANES;
    }
    while i < n {
        acc[i] += w * ((a * z2[i]) * b);
        i += 1;
    }
}

#[target_feature(enable = "avx2")]
pub(crate) unsafe fn accum_weighted_sq(acc: &mut [f64], d: &[f64], inv_l: &[f64], k: f64, w: f64) {
    let n = acc.len();
    let kv = _mm256_set1_pd(k);
    let wv = _mm256_set1_pd(w);
    let mut i = 0usize;
    while i + LANES <= n {
        let z = _mm256_mul_pd(
            _mm256_loadu_pd(d.as_ptr().add(i)),
            _mm256_loadu_pd(inv_l.as_ptr().add(i)),
        );
        let t = _mm256_mul_pd(kv, _mm256_mul_pd(z, z));
        let a = _mm256_loadu_pd(acc.as_ptr().add(i));
        _mm256_storeu_pd(
            acc.as_mut_ptr().add(i),
            _mm256_add_pd(a, _mm256_mul_pd(wv, t)),
        );
        i += LANES;
    }
    while i < n {
        let z = d[i] * inv_l[i];
        acc[i] += w * (k * (z * z));
        i += 1;
    }
}

#[target_feature(enable = "avx2")]
pub(crate) unsafe fn fold_cols(dst: &mut [f64], src: &[f64], cols: &[(usize, f64)]) {
    let len = dst.len();
    let dp = dst.as_mut_ptr();
    let sp = src.as_ptr();
    let mut i = 0usize;
    // The destination block stays in registers across the whole column
    // list, so each panel touches `dst` memory once instead of once per
    // column. Per element the subtractions still run in column order.
    while i + 4 * LANES <= len {
        let mut d0 = _mm256_loadu_pd(dp.add(i));
        let mut d1 = _mm256_loadu_pd(dp.add(i + LANES));
        let mut d2 = _mm256_loadu_pd(dp.add(i + 2 * LANES));
        let mut d3 = _mm256_loadu_pd(dp.add(i + 3 * LANES));
        for &(off, m) in cols {
            let mv = _mm256_set1_pd(m);
            let s0 = _mm256_loadu_pd(sp.add(off + i));
            let s1 = _mm256_loadu_pd(sp.add(off + i + LANES));
            let s2 = _mm256_loadu_pd(sp.add(off + i + 2 * LANES));
            let s3 = _mm256_loadu_pd(sp.add(off + i + 3 * LANES));
            d0 = _mm256_sub_pd(d0, _mm256_mul_pd(s0, mv));
            d1 = _mm256_sub_pd(d1, _mm256_mul_pd(s1, mv));
            d2 = _mm256_sub_pd(d2, _mm256_mul_pd(s2, mv));
            d3 = _mm256_sub_pd(d3, _mm256_mul_pd(s3, mv));
        }
        _mm256_storeu_pd(dp.add(i), d0);
        _mm256_storeu_pd(dp.add(i + LANES), d1);
        _mm256_storeu_pd(dp.add(i + 2 * LANES), d2);
        _mm256_storeu_pd(dp.add(i + 3 * LANES), d3);
        i += 4 * LANES;
    }
    while i + 2 * LANES <= len {
        let mut d0 = _mm256_loadu_pd(dp.add(i));
        let mut d1 = _mm256_loadu_pd(dp.add(i + LANES));
        for &(off, m) in cols {
            let mv = _mm256_set1_pd(m);
            let s0 = _mm256_loadu_pd(sp.add(off + i));
            let s1 = _mm256_loadu_pd(sp.add(off + i + LANES));
            d0 = _mm256_sub_pd(d0, _mm256_mul_pd(s0, mv));
            d1 = _mm256_sub_pd(d1, _mm256_mul_pd(s1, mv));
        }
        _mm256_storeu_pd(dp.add(i), d0);
        _mm256_storeu_pd(dp.add(i + LANES), d1);
        i += 2 * LANES;
    }
    while i + LANES <= len {
        let mut d0 = _mm256_loadu_pd(dp.add(i));
        for &(off, m) in cols {
            let mv = _mm256_set1_pd(m);
            d0 = _mm256_sub_pd(d0, _mm256_mul_pd(_mm256_loadu_pd(sp.add(off + i)), mv));
        }
        _mm256_storeu_pd(dp.add(i), d0);
        i += LANES;
    }
    while i < len {
        let mut d = dst[i];
        for &(off, m) in cols {
            d -= src[off + i] * m;
        }
        dst[i] = d;
        i += 1;
    }
}

#[target_feature(enable = "avx2")]
pub(crate) unsafe fn forward_solve_interleaved(l: &[f64], n: usize, b: &[f64], out: &mut [f64]) {
    let op = out.as_mut_ptr();
    for i in 0..n {
        let row = &l[i * n..i * n + n];
        let mut s = _mm256_loadu_pd(b.as_ptr().add(i * LANES));
        for (k, &lik) in row[..i].iter().enumerate() {
            let xv = _mm256_loadu_pd(op.add(k * LANES) as *const f64);
            s = _mm256_sub_pd(s, _mm256_mul_pd(_mm256_set1_pd(lik), xv));
        }
        s = _mm256_div_pd(s, _mm256_set1_pd(row[i]));
        _mm256_storeu_pd(op.add(i * LANES), s);
    }
}

#[target_feature(enable = "avx2")]
pub(crate) unsafe fn back_solve_interleaved(cols: &[f64], n: usize, b: &[f64], out: &mut [f64]) {
    let op = out.as_mut_ptr();
    for i in (0..n).rev() {
        let off = i * (2 * n - i + 1) / 2;
        let col = &cols[off..off + (n - i)];
        let mut s = _mm256_loadu_pd(b.as_ptr().add(i * LANES));
        for (k, &cki) in col.iter().enumerate().skip(1) {
            let xv = _mm256_loadu_pd(op.add((i + k) * LANES) as *const f64);
            s = _mm256_sub_pd(s, _mm256_mul_pd(_mm256_set1_pd(cki), xv));
        }
        s = _mm256_div_pd(s, _mm256_set1_pd(col[0]));
        _mm256_storeu_pd(op.add(i * LANES), s);
    }
}

//! Portable scalar reference kernels.
//!
//! These functions *define* the semantics of the crate: every accelerated
//! backend must reproduce them bit for bit on every input (enforced by the
//! differential proptests in `tests/properties.rs`). They are also the
//! dispatch target for [`Backend::Scalar`](crate::Backend::Scalar), so they
//! are written in the same iterator style as the pre-SIMD hot loops they
//! replaced — LLVM auto-vectorizes them to baseline 128-bit code exactly as
//! it did before, keeping the forced-scalar mode at its pre-SIMD speed.

/// `out[q] = Σ_t (rows[t*count + q] · inv_l[t])²`, terms added in ascending
/// `t` order per entry. `rows` is dimension-major: row `t` holds the `t`-th
/// difference component of all `count` entries contiguously.
pub fn sq_norm(rows: &[f64], count: usize, inv_l: &[f64], out: &mut [f64]) {
    for o in out.iter_mut() {
        *o = 0.0;
    }
    for (t, &li) in inv_l.iter().enumerate() {
        let row = &rows[t * count..(t + 1) * count];
        for (o, &d) in out.iter_mut().zip(row) {
            let z = d * li;
            *o += z * z;
        }
    }
}

/// `out[i] = (d[i]·inv_l[i])²`.
pub fn z2_into(d: &[f64], inv_l: &[f64], out: &mut [f64]) {
    for ((o, &di), &li) in out.iter_mut().zip(d).zip(inv_l) {
        let z = di * li;
        *o = z * z;
    }
}

/// `acc[i] += w · (k · z2[i])`.
pub fn accum_scaled(acc: &mut [f64], z2: &[f64], k: f64, w: f64) {
    for (a, &z) in acc.iter_mut().zip(z2) {
        *a += w * (k * z);
    }
}

/// `acc[i] += w · ((a · z2[i]) · b)`.
pub fn accum_scaled2(acc: &mut [f64], z2: &[f64], a: f64, b: f64, w: f64) {
    for (g, &z) in acc.iter_mut().zip(z2) {
        *g += w * ((a * z) * b);
    }
}

/// `acc[i] += w · (k · ((d[i]·inv_l[i]) · (d[i]·inv_l[i])))`.
pub fn accum_weighted_sq(acc: &mut [f64], d: &[f64], inv_l: &[f64], k: f64, w: f64) {
    for ((a, &di), &li) in acc.iter_mut().zip(d).zip(inv_l) {
        let z = di * li;
        *a += w * (k * (z * z));
    }
}

/// `dst[i] -= src[off + i] · m` for each `(off, m)` in `cols`, columns
/// applied in slice order. This loop nest (column outer, element inner) is
/// the exact shape of the pre-SIMD blocked-Cholesky trailing update.
pub fn fold_cols(dst: &mut [f64], src: &[f64], cols: &[(usize, f64)]) {
    for &(off, m) in cols {
        let col = &src[off..off + dst.len()];
        for (d, &s) in dst.iter_mut().zip(col) {
            *d -= s * m;
        }
    }
}

/// Forward substitution `L z = b` for `lanes` lane-interleaved right-hand
/// sides against the row-major factor `l`. Each lane `c` runs the exact
/// scalar single-RHS recurrence: `s = b[i]; s -= L[i][k]·z[k] (k ascending);
/// z[i] = s / L[i][i]`.
pub fn forward_solve_interleaved(l: &[f64], n: usize, lanes: usize, b: &[f64], out: &mut [f64]) {
    for i in 0..n {
        let row = &l[i * n..i * n + n];
        for c in 0..lanes {
            let mut s = b[i * lanes + c];
            for k in 0..i {
                s -= row[k] * out[k * lanes + c];
            }
            out[i * lanes + c] = s / row[i];
        }
    }
}

/// Back substitution `Lᵀ x = b` for `lanes` lane-interleaved right-hand
/// sides against the packed column-major factor (`cols[j·(2n−j+1)/2..]`
/// holds `L[j..n][j]`). Each lane runs the exact scalar recurrence with the
/// `k` terms subtracted in ascending order.
pub fn back_solve_interleaved(cols: &[f64], n: usize, lanes: usize, b: &[f64], out: &mut [f64]) {
    for i in (0..n).rev() {
        let off = i * (2 * n - i + 1) / 2;
        let col = &cols[off..off + (n - i)];
        for c in 0..lanes {
            let mut s = b[i * lanes + c];
            for k in (i + 1)..n {
                s -= col[k - i] * out[k * lanes + c];
            }
            out[i * lanes + c] = s / col[0];
        }
    }
}

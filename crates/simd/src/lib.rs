//! Bit-exact vectorized micro-kernels with runtime CPU dispatch.
//!
//! The GP hot loops (pairwise kernel sweeps, the blocked-Cholesky trailing
//! update, batched triangular solves) are straight-line floating-point code
//! whose cost is dominated by instruction throughput. This crate provides
//! SIMD implementations of those inner loops that are **bit-identical** to
//! the portable scalar reference in [`scalar`], which is what lets them sit
//! underneath the repository's reproducibility contract (golden trajectory
//! CSVs, `to_bits` differential tests) without a tolerance anywhere.
//!
//! # The bit-exactness rule
//!
//! Floating-point addition is not associative, so a vectorized loop is only
//! bit-exact when it assigns *whole* scalar reduction chains to SIMD lanes
//! instead of splitting one chain across lanes:
//!
//! - Vectorize **across independent entries** (pairs of a [`sq_norm`] batch,
//!   elements of a [`fold_cols`] column, right-hand sides of an interleaved
//!   solve). Each lane then executes exactly the scalar operation sequence
//!   for its entry.
//! - Keep every per-entry reduction (the `Σ_t z_t²` of one kernel pair, the
//!   `Σ_k L[i][k]·x[k]` of one solve row) **sequential in ascending order**,
//!   never tree- or lane-reduced.
//! - Use separate multiply and add/subtract instructions — **no FMA**. A
//!   fused `a*b+c` rounds once where the scalar path rounds twice, so fusing
//!   changes low bits even with identical ordering.
//! - Division and square root are IEEE-754 correctly rounded in both scalar
//!   and vector form, so `vdivpd`/`vsqrtpd` are safe to use; transcendental
//!   functions (`exp`) are **not** vectorized — callers keep them in scalar
//!   `libm` form.
//!
//! # Dispatch
//!
//! [`active`] resolves the process-wide backend once: AVX2 on `x86_64`,
//! NEON on `aarch64` (both runtime-detected), scalar otherwise. The
//! `MFBO_SIMD` environment variable overrides it (`scalar` forces the
//! fallback, `auto` is the default); any other value aborts loudly rather
//! than silently degrading — reproducibility knobs must not guess. Every
//! kernel takes the backend as an explicit argument so callers hoist the
//! decision out of their inner loops and differential tests can pin both
//! paths in one process.
//!
//! All `unsafe` lives in the private `avx2`/`neon` intrinsic modules; every
//! call into them is fenced by a runtime feature check at the dispatch site.

use std::sync::OnceLock;

pub mod scalar;

#[cfg(target_arch = "x86_64")]
mod avx2;
#[cfg(target_arch = "aarch64")]
mod neon;

/// Instruction-set backend executing the micro-kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Portable scalar reference ([`scalar`]).
    Scalar,
    /// 256-bit AVX2 on `x86_64` (4 f64 lanes).
    Avx2,
    /// 128-bit NEON on `aarch64` (2 f64 lanes).
    Neon,
}

impl Backend {
    /// Number of f64 lanes the backend processes per vector — the interleave
    /// factor callers use to lay out multi-RHS solves.
    pub fn lanes(self) -> usize {
        match self {
            Backend::Scalar => 1,
            Backend::Avx2 => 4,
            Backend::Neon => 2,
        }
    }

    /// Telemetry / display name.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2 => "avx2",
            Backend::Neon => "neon",
        }
    }
}

/// User-facing dispatch mode, mirroring the `MFBO_THREADS` knob style.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdMode {
    /// Force the portable scalar fallback.
    Scalar,
    /// Use the best runtime-detected instruction set.
    Auto,
}

impl SimdMode {
    /// Parses `"scalar"` / `"auto"` (the `MFBO_SIMD` and `--simd` values).
    /// Returns `None` for anything else — callers must fail loudly.
    pub fn parse(s: &str) -> Option<SimdMode> {
        match s {
            "scalar" => Some(SimdMode::Scalar),
            "auto" => Some(SimdMode::Auto),
            _ => None,
        }
    }
}

/// Best backend the running CPU supports, ignoring `MFBO_SIMD`.
pub fn detect() -> Backend {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return Backend::Avx2;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if std::arch::is_aarch64_feature_detected!("neon") {
            return Backend::Neon;
        }
    }
    Backend::Scalar
}

/// Resolves a dispatch mode to a concrete backend.
pub fn backend_for(mode: SimdMode) -> Backend {
    match mode {
        SimdMode::Scalar => Backend::Scalar,
        SimdMode::Auto => detect(),
    }
}

/// Pure resolution of an `MFBO_SIMD` value (`None` = variable unset).
///
/// # Errors
///
/// Returns the validation message for an unknown value.
fn resolve(var: Option<&str>) -> Result<Backend, String> {
    match var {
        None => Ok(backend_for(SimdMode::Auto)),
        Some(v) => match SimdMode::parse(v) {
            Some(m) => Ok(backend_for(m)),
            None => Err(format!(
                "invalid MFBO_SIMD value '{v}' (expected 'scalar' or 'auto')"
            )),
        },
    }
}

/// Resolves the backend from the `MFBO_SIMD` environment variable without
/// touching the process-wide cache — the CLI preflights this so a bad value
/// exits nonzero with a clean message instead of panicking mid-run.
///
/// # Errors
///
/// Returns the validation message for an unknown `MFBO_SIMD` value.
pub fn backend_from_env() -> Result<Backend, String> {
    resolve(std::env::var("MFBO_SIMD").ok().as_deref())
}

static ACTIVE: OnceLock<Backend> = OnceLock::new();

fn init_backend(forced: Option<SimdMode>) -> Backend {
    let (backend, source) = match forced {
        Some(m) => (backend_for(m), "cli"),
        None => match std::env::var("MFBO_SIMD") {
            Ok(v) => match SimdMode::parse(&v) {
                Some(m) => (backend_for(m), "env"),
                // Loud failure: a typo'd MFBO_SIMD silently running the
                // wrong backend would defeat the point of the knob.
                None => panic!("invalid MFBO_SIMD value '{v}' (expected 'scalar' or 'auto')"),
            },
            Err(_) => (backend_for(SimdMode::Auto), "default"),
        },
    };
    mfbo_telemetry::debug_event!(
        "simd_dispatch",
        backend = backend.name(),
        lanes = backend.lanes(),
        source = source,
    );
    mfbo_telemetry::counter!("simd_dispatch", 1u64);
    backend
}

/// The process-wide backend, resolved once from `MFBO_SIMD` (unset → auto
/// detection). The decision is reported as a `simd_dispatch` telemetry
/// event + counter on first call.
///
/// # Panics
///
/// Panics on an invalid `MFBO_SIMD` value (see [`backend_from_env`] for the
/// non-panicking preflight).
pub fn active() -> Backend {
    *ACTIVE.get_or_init(|| init_backend(None))
}

/// Seeds the process-wide backend from an explicit mode (the CLI `--simd`
/// flag), taking precedence over `MFBO_SIMD`. Must run before the first
/// [`active`] call; if the backend was already resolved, the existing
/// decision is returned unchanged.
pub fn force(mode: SimdMode) -> Backend {
    *ACTIVE.get_or_init(|| init_backend(Some(mode)))
}

/// Dispatches one micro-kernel call: scalar reference, or the intrinsic
/// module fenced by a runtime feature check (so even a hand-constructed
/// [`Backend`] value on the wrong CPU degrades safely to scalar).
macro_rules! dispatch {
    ($be:expr, $f:ident($($arg:expr),* $(,)?)) => {
        match $be {
            Backend::Scalar => scalar::$f($($arg),*),
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 if std::arch::is_x86_feature_detected!("avx2") =>
                // SAFETY: the guard just confirmed AVX2 is available on the
                // running CPU, which is the only requirement of the
                // `#[target_feature(enable = "avx2")]` kernels.
                unsafe { avx2::$f($($arg),*) },
            #[cfg(target_arch = "aarch64")]
            Backend::Neon if std::arch::is_aarch64_feature_detected!("neon") =>
                // SAFETY: the guard just confirmed NEON is available on the
                // running CPU, which is the only requirement of the
                // `#[target_feature(enable = "neon")]` kernels.
                unsafe { neon::$f($($arg),*) },
            _ => scalar::$f($($arg),*),
        }
    };
}

/// Batched squared weighted norms across independent entries:
/// `out[q] = Σ_t (rows[t*count + q] · inv_l[t])²`, the `t` terms added in
/// ascending order per entry — the per-pair reduction of the stationary
/// kernels, with `rows` holding the pair differences dimension-major.
///
/// # Panics
///
/// Panics if `rows.len() != count * inv_l.len()` or `out.len() != count`.
pub fn sq_norm(be: Backend, rows: &[f64], count: usize, inv_l: &[f64], out: &mut [f64]) {
    assert_eq!(rows.len(), count * inv_l.len(), "sq_norm shape mismatch");
    assert_eq!(out.len(), count, "sq_norm output length mismatch");
    dispatch!(be, sq_norm(rows, count, inv_l, out));
}

/// Elementwise scaled squares: `out[i] = (d[i]·inv_l[i])²` — the `z_i²`
/// terms of one kernel pair's ARD gradient.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn z2_into(be: Backend, d: &[f64], inv_l: &[f64], out: &mut [f64]) {
    assert_eq!(d.len(), inv_l.len(), "z2_into shape mismatch");
    assert_eq!(out.len(), d.len(), "z2_into output length mismatch");
    dispatch!(be, z2_into(d, inv_l, out));
}

/// Weighted gradient accumulation `acc[i] += w · (k · z2[i])` — the SE
/// lengthscale gradient of one pair, parenthesized exactly as the scalar
/// path computes it.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn accum_scaled(be: Backend, acc: &mut [f64], z2: &[f64], k: f64, w: f64) {
    assert_eq!(acc.len(), z2.len(), "accum_scaled shape mismatch");
    dispatch!(be, accum_scaled(acc, z2, k, w));
}

/// Weighted cross-term gradient accumulation
/// `acc[i] += w · ((a · z2[i]) · b)` — the product-rule shape of the NARGP
/// `k2` lengthscale gradients (`a` the owning component value, `b` the
/// cross-scaling component value).
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn accum_scaled2(be: Backend, acc: &mut [f64], z2: &[f64], a: f64, b: f64, w: f64) {
    assert_eq!(acc.len(), z2.len(), "accum_scaled2 shape mismatch");
    dispatch!(be, accum_scaled2(acc, z2, a, b, w));
}

/// Fused weighted-square gradient accumulation
/// `acc[i] += w · (k · ((d[i]·inv_l[i]) · (d[i]·inv_l[i])))` — the
/// values-supplied SE gradient of one pair without materializing `z²`.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn accum_weighted_sq(be: Backend, acc: &mut [f64], d: &[f64], inv_l: &[f64], k: f64, w: f64) {
    assert_eq!(acc.len(), d.len(), "accum_weighted_sq shape mismatch");
    assert_eq!(inv_l.len(), d.len(), "accum_weighted_sq shape mismatch");
    dispatch!(be, accum_weighted_sq(acc, d, inv_l, k, w));
}

/// Multi-column axpy fold `dst[i] -= src[off + i] · m` for every
/// `(off, m)` in `cols`, columns applied in slice order per element — the
/// blocked-Cholesky trailing update with the destination column kept in
/// registers across the whole panel.
///
/// # Panics
///
/// Panics if any column slice `src[off..off + dst.len()]` is out of range.
pub fn fold_cols(be: Backend, dst: &mut [f64], src: &[f64], cols: &[(usize, f64)]) {
    for &(off, _) in cols {
        assert!(
            off + dst.len() <= src.len(),
            "fold_cols column out of range"
        );
    }
    dispatch!(be, fold_cols(dst, src, cols));
}

/// Interleaved multi-RHS forward substitution: solves `L z = b` for
/// `be.lanes()` right-hand sides stored lane-interleaved
/// (`b[i*lanes + c]` is row `i` of RHS `c`), each lane executing exactly
/// the scalar single-RHS operation sequence. `l` is the row-major `n × n`
/// lower-triangular factor.
///
/// # Panics
///
/// Panics if `l.len() != n*n` or the RHS/output lengths are not
/// `n * be.lanes()`.
pub fn forward_solve_interleaved(be: Backend, l: &[f64], n: usize, b: &[f64], out: &mut [f64]) {
    let lanes = be.lanes();
    assert_eq!(l.len(), n * n, "forward_solve_interleaved factor mismatch");
    assert_eq!(b.len(), n * lanes, "forward_solve_interleaved rhs mismatch");
    assert_eq!(
        out.len(),
        n * lanes,
        "forward_solve_interleaved out mismatch"
    );
    match be {
        Backend::Scalar => scalar::forward_solve_interleaved(l, n, 1, b, out),
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 if std::arch::is_x86_feature_detected!("avx2") =>
        // SAFETY: AVX2 availability confirmed by the guard.
        unsafe { avx2::forward_solve_interleaved(l, n, b, out) },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon if std::arch::is_aarch64_feature_detected!("neon") =>
        // SAFETY: NEON availability confirmed by the guard.
        unsafe { neon::forward_solve_interleaved(l, n, b, out) },
        _ => scalar::forward_solve_interleaved(l, n, lanes, b, out),
    }
}

/// Interleaved multi-RHS back substitution: solves `Lᵀ x = b` for
/// `be.lanes()` lane-interleaved right-hand sides against the packed
/// column-major factor (`cols[j·(2n−j+1)/2..][..n−j]` holds `L[j..n][j]`).
///
/// # Panics
///
/// Panics if `cols.len() != n(n+1)/2` or the RHS/output lengths are not
/// `n * be.lanes()`.
pub fn back_solve_interleaved(be: Backend, cols: &[f64], n: usize, b: &[f64], out: &mut [f64]) {
    let lanes = be.lanes();
    assert_eq!(
        cols.len(),
        n * (n + 1) / 2,
        "back_solve_interleaved factor mismatch"
    );
    assert_eq!(b.len(), n * lanes, "back_solve_interleaved rhs mismatch");
    assert_eq!(out.len(), n * lanes, "back_solve_interleaved out mismatch");
    match be {
        Backend::Scalar => scalar::back_solve_interleaved(cols, n, 1, b, out),
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 if std::arch::is_x86_feature_detected!("avx2") =>
        // SAFETY: AVX2 availability confirmed by the guard.
        unsafe { avx2::back_solve_interleaved(cols, n, b, out) },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon if std::arch::is_aarch64_feature_detected!("neon") =>
        // SAFETY: NEON availability confirmed by the guard.
        unsafe { neon::back_solve_interleaved(cols, n, b, out) },
        _ => scalar::back_solve_interleaved(cols, n, lanes, b, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parse_accepts_known_values_only() {
        assert_eq!(SimdMode::parse("scalar"), Some(SimdMode::Scalar));
        assert_eq!(SimdMode::parse("auto"), Some(SimdMode::Auto));
        assert_eq!(SimdMode::parse("avx2"), None);
        assert_eq!(SimdMode::parse("SCALAR"), None);
        assert_eq!(SimdMode::parse(""), None);
    }

    #[test]
    fn resolve_forces_scalar_and_rejects_unknown() {
        // `MFBO_SIMD=scalar` must force the fallback even on SIMD hardware.
        assert_eq!(resolve(Some("scalar")), Ok(Backend::Scalar));
        // `auto` and unset follow detection.
        assert_eq!(resolve(Some("auto")), Ok(detect()));
        assert_eq!(resolve(None), Ok(detect()));
        // Unknown values are an error, never a silent fallback.
        let err = resolve(Some("fast")).unwrap_err();
        assert!(err.contains("MFBO_SIMD") && err.contains("fast"));
    }

    #[test]
    fn lanes_match_vector_widths() {
        assert_eq!(Backend::Scalar.lanes(), 1);
        assert_eq!(Backend::Avx2.lanes(), 4);
        assert_eq!(Backend::Neon.lanes(), 2);
    }

    #[test]
    fn detect_never_picks_a_foreign_backend() {
        let b = detect();
        #[cfg(target_arch = "x86_64")]
        assert_ne!(b, Backend::Neon);
        #[cfg(target_arch = "aarch64")]
        assert_ne!(b, Backend::Avx2);
        #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
        assert_eq!(b, Backend::Scalar);
    }

    #[test]
    fn foreign_backend_degrades_to_scalar() {
        // A hand-constructed backend for another architecture must fall
        // back to the scalar kernels, not crash: the dispatch guard, not
        // the enum value, decides what runs.
        #[cfg(target_arch = "x86_64")]
        let foreign = Backend::Neon;
        #[cfg(not(target_arch = "x86_64"))]
        let foreign = Backend::Avx2;
        let d = [1.5, -2.0, 0.25];
        let l = [0.5, 2.0, 4.0];
        let mut got = [0.0; 3];
        let mut want = [0.0; 3];
        z2_into(foreign, &d, &l, &mut got);
        scalar::z2_into(&d, &l, &mut want);
        assert_eq!(got, want);
    }

    #[test]
    fn dispatch_decision_emits_telemetry() {
        let sink = std::sync::Arc::new(mfbo_telemetry::sinks::CollectSink::with_level(
            mfbo_telemetry::Level::Debug,
        ));
        let _g = mfbo_telemetry::scoped_sink(sink.clone());
        let b = active();
        // `active` caches after the first call in the process, so the event
        // may have fired before this sink was installed; exercise the init
        // path directly to pin the payload.
        let fresh = init_backend(None);
        assert_eq!(b, fresh);
        let recs = sink.named("simd_dispatch");
        // Both the event and the counter share the name; pin the event.
        let rec = recs
            .iter()
            .find(|r| r.field("backend").is_some())
            .expect("simd_dispatch event with backend field");
        assert_eq!(
            rec.field("backend"),
            Some(&mfbo_telemetry::Value::Str(fresh.name().to_string()))
        );
        assert_eq!(
            rec.field("lanes"),
            Some(&mfbo_telemetry::Value::U64(fresh.lanes() as u64))
        );
        // The counter fired too.
        assert!(recs.iter().any(|r| r.field("backend").is_none()));
    }
}

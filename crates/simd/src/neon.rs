//! NEON intrinsic kernels (2 × f64 lanes) — the aarch64 mirror of `avx2.rs`.
//!
//! Every function is `#[target_feature(enable = "neon")]` and therefore
//! `unsafe` to call: callers (the dispatch macro in `lib.rs`) must confirm
//! NEON via `is_aarch64_feature_detected!` first. No other invariants are
//! required — all memory access is through slice-derived pointers with the
//! bounds already checked by the safe wrappers.
//!
//! Bit-exactness: multiply and add/subtract stay separate instructions
//! (`vmulq_f64` + `vaddq_f64`/`vsubq_f64`, never `vfmaq_f64`), per-entry
//! reductions run in the same ascending order as the scalar reference, and
//! `vdivq_f64` is IEEE correctly rounded.

use core::arch::aarch64::*;

const LANES: usize = 2;

#[target_feature(enable = "neon")]
pub(crate) unsafe fn sq_norm(rows: &[f64], count: usize, inv_l: &[f64], out: &mut [f64]) {
    let rp = rows.as_ptr();
    let op = out.as_mut_ptr();
    let mut q = 0usize;
    while q + 2 * LANES <= count {
        let mut acc0 = vdupq_n_f64(0.0);
        let mut acc1 = vdupq_n_f64(0.0);
        for (t, &li) in inv_l.iter().enumerate() {
            let lv = vdupq_n_f64(li);
            let base = t * count + q;
            let z0 = vmulq_f64(vld1q_f64(rp.add(base)), lv);
            let z1 = vmulq_f64(vld1q_f64(rp.add(base + LANES)), lv);
            acc0 = vaddq_f64(acc0, vmulq_f64(z0, z0));
            acc1 = vaddq_f64(acc1, vmulq_f64(z1, z1));
        }
        vst1q_f64(op.add(q), acc0);
        vst1q_f64(op.add(q + LANES), acc1);
        q += 2 * LANES;
    }
    while q + LANES <= count {
        let mut acc = vdupq_n_f64(0.0);
        for (t, &li) in inv_l.iter().enumerate() {
            let z = vmulq_f64(vld1q_f64(rp.add(t * count + q)), vdupq_n_f64(li));
            acc = vaddq_f64(acc, vmulq_f64(z, z));
        }
        vst1q_f64(op.add(q), acc);
        q += LANES;
    }
    for qq in q..count {
        let mut s = 0.0;
        for (t, &li) in inv_l.iter().enumerate() {
            let z = rows[t * count + qq] * li;
            s += z * z;
        }
        out[qq] = s;
    }
}

#[target_feature(enable = "neon")]
pub(crate) unsafe fn z2_into(d: &[f64], inv_l: &[f64], out: &mut [f64]) {
    let n = d.len();
    let mut i = 0usize;
    while i + LANES <= n {
        let z = vmulq_f64(
            vld1q_f64(d.as_ptr().add(i)),
            vld1q_f64(inv_l.as_ptr().add(i)),
        );
        vst1q_f64(out.as_mut_ptr().add(i), vmulq_f64(z, z));
        i += LANES;
    }
    while i < n {
        let z = d[i] * inv_l[i];
        out[i] = z * z;
        i += 1;
    }
}

#[target_feature(enable = "neon")]
pub(crate) unsafe fn accum_scaled(acc: &mut [f64], z2: &[f64], k: f64, w: f64) {
    let n = acc.len();
    let kv = vdupq_n_f64(k);
    let wv = vdupq_n_f64(w);
    let mut i = 0usize;
    while i + LANES <= n {
        let t = vmulq_f64(kv, vld1q_f64(z2.as_ptr().add(i)));
        let a = vld1q_f64(acc.as_ptr().add(i));
        vst1q_f64(acc.as_mut_ptr().add(i), vaddq_f64(a, vmulq_f64(wv, t)));
        i += LANES;
    }
    while i < n {
        acc[i] += w * (k * z2[i]);
        i += 1;
    }
}

#[target_feature(enable = "neon")]
pub(crate) unsafe fn accum_scaled2(acc: &mut [f64], z2: &[f64], a: f64, b: f64, w: f64) {
    let n = acc.len();
    let av = vdupq_n_f64(a);
    let bv = vdupq_n_f64(b);
    let wv = vdupq_n_f64(w);
    let mut i = 0usize;
    while i + LANES <= n {
        let t = vmulq_f64(vmulq_f64(av, vld1q_f64(z2.as_ptr().add(i))), bv);
        let g = vld1q_f64(acc.as_ptr().add(i));
        vst1q_f64(acc.as_mut_ptr().add(i), vaddq_f64(g, vmulq_f64(wv, t)));
        i += LANES;
    }
    while i < n {
        acc[i] += w * ((a * z2[i]) * b);
        i += 1;
    }
}

#[target_feature(enable = "neon")]
pub(crate) unsafe fn accum_weighted_sq(acc: &mut [f64], d: &[f64], inv_l: &[f64], k: f64, w: f64) {
    let n = acc.len();
    let kv = vdupq_n_f64(k);
    let wv = vdupq_n_f64(w);
    let mut i = 0usize;
    while i + LANES <= n {
        let z = vmulq_f64(
            vld1q_f64(d.as_ptr().add(i)),
            vld1q_f64(inv_l.as_ptr().add(i)),
        );
        let t = vmulq_f64(kv, vmulq_f64(z, z));
        let a = vld1q_f64(acc.as_ptr().add(i));
        vst1q_f64(acc.as_mut_ptr().add(i), vaddq_f64(a, vmulq_f64(wv, t)));
        i += LANES;
    }
    while i < n {
        let z = d[i] * inv_l[i];
        acc[i] += w * (k * (z * z));
        i += 1;
    }
}

#[target_feature(enable = "neon")]
pub(crate) unsafe fn fold_cols(dst: &mut [f64], src: &[f64], cols: &[(usize, f64)]) {
    let len = dst.len();
    let dp = dst.as_mut_ptr();
    let sp = src.as_ptr();
    let mut i = 0usize;
    while i + 4 * LANES <= len {
        let mut d0 = vld1q_f64(dp.add(i));
        let mut d1 = vld1q_f64(dp.add(i + LANES));
        let mut d2 = vld1q_f64(dp.add(i + 2 * LANES));
        let mut d3 = vld1q_f64(dp.add(i + 3 * LANES));
        for &(off, m) in cols {
            let mv = vdupq_n_f64(m);
            let s0 = vld1q_f64(sp.add(off + i));
            let s1 = vld1q_f64(sp.add(off + i + LANES));
            let s2 = vld1q_f64(sp.add(off + i + 2 * LANES));
            let s3 = vld1q_f64(sp.add(off + i + 3 * LANES));
            d0 = vsubq_f64(d0, vmulq_f64(s0, mv));
            d1 = vsubq_f64(d1, vmulq_f64(s1, mv));
            d2 = vsubq_f64(d2, vmulq_f64(s2, mv));
            d3 = vsubq_f64(d3, vmulq_f64(s3, mv));
        }
        vst1q_f64(dp.add(i), d0);
        vst1q_f64(dp.add(i + LANES), d1);
        vst1q_f64(dp.add(i + 2 * LANES), d2);
        vst1q_f64(dp.add(i + 3 * LANES), d3);
        i += 4 * LANES;
    }
    while i + 2 * LANES <= len {
        let mut d0 = vld1q_f64(dp.add(i));
        let mut d1 = vld1q_f64(dp.add(i + LANES));
        for &(off, m) in cols {
            let mv = vdupq_n_f64(m);
            let s0 = vld1q_f64(sp.add(off + i));
            let s1 = vld1q_f64(sp.add(off + i + LANES));
            d0 = vsubq_f64(d0, vmulq_f64(s0, mv));
            d1 = vsubq_f64(d1, vmulq_f64(s1, mv));
        }
        vst1q_f64(dp.add(i), d0);
        vst1q_f64(dp.add(i + LANES), d1);
        i += 2 * LANES;
    }
    while i + LANES <= len {
        let mut d0 = vld1q_f64(dp.add(i));
        for &(off, m) in cols {
            d0 = vsubq_f64(d0, vmulq_f64(vld1q_f64(sp.add(off + i)), vdupq_n_f64(m)));
        }
        vst1q_f64(dp.add(i), d0);
        i += LANES;
    }
    while i < len {
        let mut d = dst[i];
        for &(off, m) in cols {
            d -= src[off + i] * m;
        }
        dst[i] = d;
        i += 1;
    }
}

#[target_feature(enable = "neon")]
pub(crate) unsafe fn forward_solve_interleaved(l: &[f64], n: usize, b: &[f64], out: &mut [f64]) {
    let op = out.as_mut_ptr();
    for i in 0..n {
        let row = &l[i * n..i * n + n];
        let mut s = vld1q_f64(b.as_ptr().add(i * LANES));
        for (k, &lik) in row[..i].iter().enumerate() {
            let xv = vld1q_f64(op.add(k * LANES) as *const f64);
            s = vsubq_f64(s, vmulq_f64(vdupq_n_f64(lik), xv));
        }
        s = vdivq_f64(s, vdupq_n_f64(row[i]));
        vst1q_f64(op.add(i * LANES), s);
    }
}

#[target_feature(enable = "neon")]
pub(crate) unsafe fn back_solve_interleaved(cols: &[f64], n: usize, b: &[f64], out: &mut [f64]) {
    let op = out.as_mut_ptr();
    for i in (0..n).rev() {
        let off = i * (2 * n - i + 1) / 2;
        let col = &cols[off..off + (n - i)];
        let mut s = vld1q_f64(b.as_ptr().add(i * LANES));
        for (k, &cki) in col.iter().enumerate().skip(1) {
            let xv = vld1q_f64(op.add((i + k) * LANES) as *const f64);
            s = vsubq_f64(s, vmulq_f64(vdupq_n_f64(cki), xv));
        }
        s = vdivq_f64(s, vdupq_n_f64(col[0]));
        vst1q_f64(op.add(i * LANES), s);
    }
}

//! Gaussian-process regression model: training and posterior prediction.

use crate::kernel::Kernel;
use crate::nlml::{kernel_matrix_cached, nlml_with_grad_cached, NlmlWorkspace};
use crate::workspace::DiffBatch;
use crate::GpError;
use mfbo_infer::InferenceMode;
use mfbo_linalg::{Cholesky, Standardizer};
use mfbo_opt::{lbfgs::Lbfgs, sampling, Bounds};
use mfbo_pool::{par_map, Parallelism};
use rand::Rng;

/// Posterior prediction at a single query point, in raw (de-standardized)
/// output units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Posterior mean `μ(x*)`.
    pub mean: f64,
    /// Posterior *latent* variance `σ²(x*)` (observation noise excluded).
    pub var: f64,
}

impl Prediction {
    /// Posterior standard deviation (clamped at zero for numerical safety).
    pub fn std_dev(&self) -> f64 {
        self.var.max(0.0).sqrt()
    }
}

/// Training configuration for [`Gp::fit`].
#[derive(Debug, Clone)]
pub struct GpConfig {
    /// Number of random hyperparameter restarts (in addition to the kernel
    /// defaults and any warm start).
    pub restarts: usize,
    /// L-BFGS iteration cap per restart.
    pub max_iters: usize,
    /// If `false`, the observation noise is frozen at
    /// [`GpConfig::log_noise_init`] instead of being optimized.
    pub train_noise: bool,
    /// Initial `log σ_n` (standardized output units).
    pub log_noise_init: f64,
    /// Bounds for `log σ_n` during training.
    pub log_noise_bounds: (f64, f64),
    /// Whether to z-score the outputs before training (recommended; all the
    /// default kernel bounds assume standardized outputs).
    pub standardize: bool,
    /// Optional warm-start hyperparameters `[kernel params…, log σ_n]`,
    /// tried as an additional restart — the BO loop passes the previous
    /// iteration's optimum here.
    pub warm_start: Option<Vec<f64>>,
    /// Distributes the (pure) per-restart L-BFGS runs over a thread pool.
    /// All randomness is drawn before the restarts launch and the best
    /// restart is selected in start order, so every mode returns
    /// bit-identical models.
    pub parallelism: Parallelism,
    /// Inference engine for training and the final model build (see
    /// [`InferenceMode`]). `Exact` — the default — runs the historical
    /// O(n³) Cholesky path bit for bit; the approximate modes cap the
    /// cubic cost once the training set outgrows their subset size.
    pub inference: InferenceMode,
}

impl Default for GpConfig {
    fn default() -> Self {
        GpConfig {
            restarts: 4,
            max_iters: 80,
            train_noise: true,
            log_noise_init: (1e-3f64).ln(),
            log_noise_bounds: ((1e-6f64).ln(), (0.3f64).ln()),
            standardize: true,
            warm_start: None,
            parallelism: Parallelism::Serial,
            inference: InferenceMode::Exact,
        }
    }
}

impl GpConfig {
    /// A cheaper configuration for inner-loop refits (fewer restarts and
    /// iterations); used by the BO loops which refit every iteration.
    pub fn fast() -> Self {
        GpConfig {
            restarts: 2,
            max_iters: 40,
            ..Self::default()
        }
    }
}

/// Companion state of a model built under [`InferenceMode::Iterative`]:
/// the subset behind the variance factor and the subset model's own alpha.
#[derive(Debug, Clone)]
struct IterState {
    /// Ascending training-set indices of the subset behind `Gp::chol`.
    subset: Vec<usize>,
    /// `K_sub⁻¹ y_sub` — the subset model's alpha, used by the closed-form
    /// LOO diagnostics (which need a factor and alpha of matching size).
    sub_alpha: Vec<f64>,
    /// Conjugate-gradient iterations spent on the full-data mean solve.
    cg_iters: usize,
}

/// A trained Gaussian-process regression model (paper §2.3).
///
/// See the crate-level example for typical usage.
#[derive(Debug, Clone)]
pub struct Gp<K: Kernel> {
    kernel: K,
    /// Optimized kernel log-parameters.
    params: Vec<f64>,
    /// Optimized `log σ_n`.
    log_noise: f64,
    xs: Vec<Vec<f64>>,
    /// Raw observations.
    ys_raw: Vec<f64>,
    /// Standardized observations.
    ys: Vec<f64>,
    standardizer: Standardizer,
    /// Full-data factor for exact/subset-of-data models; the *subset*
    /// factor when `iter_state` is present.
    chol: Cholesky,
    /// `K⁻¹ y` in standardized space (over the full training set in every
    /// mode — under iterative inference it is the CG solution).
    alpha: Vec<f64>,
    /// Final negative log marginal likelihood (of the subset model under
    /// iterative inference).
    nlml: f64,
    /// Present iff the model was built by [`InferenceMode::Iterative`].
    iter_state: Option<IterState>,
    /// Index into the planned starts of the restart that won the NLML
    /// search (0 = kernel default, 1 = warm start when one was supplied);
    /// `None` for frozen-hyperparameter builds, which run no search.
    best_start: Option<usize>,
}

impl<K: Kernel> Gp<K> {
    /// Trains a GP on `(xs, ys)` by multi-restart NLML minimization.
    ///
    /// # Errors
    ///
    /// Returns [`GpError::InvalidTrainingSet`] for empty or mismatched data
    /// and [`GpError::TrainingFailed`] if no restart produced a finite NLML.
    pub fn fit<R: Rng + ?Sized>(
        kernel: K,
        xs: Vec<Vec<f64>>,
        ys: Vec<f64>,
        config: &GpConfig,
        rng: &mut R,
    ) -> Result<Self, GpError> {
        Self::validate(&kernel, &xs, &ys)?;
        let starts = Self::plan_starts(&kernel, config, rng);
        Self::fit_planned(kernel, xs, ys, config, starts)
    }

    /// Draws the NLML starting points `fit` would use, consuming the RNG in
    /// exactly the same order: the clamped kernel default, the warm start
    /// (when present and well-shaped), then `config.restarts` Latin-hypercube
    /// draws.
    ///
    /// Splitting planning (randomness) from [`Gp::fit_planned`] (pure
    /// optimization) lets bundle fitters front-load every random draw for a
    /// whole family of models and then train the models in parallel with
    /// bit-identical results in any [`Parallelism`] mode.
    pub fn plan_starts<R: Rng + ?Sized>(
        kernel: &K,
        config: &GpConfig,
        rng: &mut R,
    ) -> Vec<Vec<f64>> {
        let theta_bounds = Self::theta_bounds(kernel, config);
        let mut starts: Vec<Vec<f64>> = Vec::new();
        let mut default_start = kernel.default_params();
        default_start.push(config.log_noise_init);
        starts.push(theta_bounds.clamp(&default_start));
        if let Some(ws) = &config.warm_start {
            if ws.len() == kernel.num_params() + 1 {
                starts.push(theta_bounds.clamp(ws));
            }
        }
        starts.extend(sampling::latin_hypercube(
            &theta_bounds,
            config.restarts,
            rng,
        ));
        starts
    }

    /// Hyperparameter search space: kernel bounds ⊕ noise bounds.
    fn theta_bounds(kernel: &K, config: &GpConfig) -> Bounds {
        let (mut lo, mut hi) = kernel.param_bounds();
        if config.train_noise {
            lo.push(config.log_noise_bounds.0);
            hi.push(config.log_noise_bounds.1.max(config.log_noise_bounds.0));
        } else {
            lo.push(config.log_noise_init);
            hi.push(config.log_noise_init);
        }
        Bounds::new(lo, hi)
    }

    fn validate(kernel: &K, xs: &[Vec<f64>], ys: &[f64]) -> Result<(), GpError> {
        if xs.is_empty() {
            return Err(GpError::InvalidTrainingSet {
                reason: "no training points".into(),
            });
        }
        if xs.len() != ys.len() {
            return Err(GpError::InvalidTrainingSet {
                reason: format!("{} inputs but {} outputs", xs.len(), ys.len()),
            });
        }
        for (i, x) in xs.iter().enumerate() {
            if x.len() != kernel.input_dim() {
                return Err(GpError::InvalidTrainingSet {
                    reason: format!(
                        "input {i} has dimension {} but kernel expects {}",
                        x.len(),
                        kernel.input_dim()
                    ),
                });
            }
        }
        if ys.iter().any(|y| !y.is_finite()) {
            return Err(GpError::InvalidTrainingSet {
                reason: "non-finite observation".into(),
            });
        }
        Ok(())
    }

    /// Trains a GP from pre-drawn starting points (see [`Gp::plan_starts`]).
    /// Consumes no randomness: the per-start L-BFGS runs are pure and may be
    /// distributed over [`GpConfig::parallelism`] worker threads; the best
    /// restart is selected in start order.
    ///
    /// Dispatches on [`GpConfig::inference`]: `Exact` (and any approximate
    /// mode whose subset cap the training set has not yet outgrown) runs the
    /// historical Cholesky path bit for bit; `SubsetOfData` reduces the
    /// training set with a deterministic farthest-point selection over
    /// committed history order and then runs the exact path on the subset;
    /// `Iterative` trains hyperparameters on the subset and recovers the
    /// full-data mean with a matrix-free preconditioned CG solve.
    ///
    /// # Errors
    ///
    /// Same contract as [`Gp::fit`].
    pub fn fit_planned(
        kernel: K,
        xs: Vec<Vec<f64>>,
        ys: Vec<f64>,
        config: &GpConfig,
        starts: Vec<Vec<f64>>,
    ) -> Result<Self, GpError> {
        Self::fit_planned_shared(kernel, xs, ys, config, starts, None)
    }

    /// [`Gp::fit_planned`] with an optional pre-built lower-triangle
    /// difference batch over `xs` — the bundle fitters' sharing hook (the
    /// objective and constraint GPs of one bundle train on the same `X`, so
    /// one batch serves every model's NLML workspace). The batch must hold
    /// the exact diffs a fresh build over `xs` would (bit-identical
    /// results); a batch whose shape does not match `xs` is ignored and a
    /// fresh build is used. Only the exact path consumes the batch — the
    /// subset/iterative engines train on reduced point sets.
    ///
    /// # Errors
    ///
    /// Same contract as [`Gp::fit`].
    pub fn fit_planned_shared(
        kernel: K,
        xs: Vec<Vec<f64>>,
        ys: Vec<f64>,
        config: &GpConfig,
        starts: Vec<Vec<f64>>,
        shared: Option<&DiffBatch<'_>>,
    ) -> Result<Self, GpError> {
        Self::validate(&kernel, &xs, &ys)?;
        match config.inference {
            InferenceMode::SubsetOfData { max_points } if xs.len() > max_points => {
                let keep = mfbo_infer::select_subset(&xs, max_points, 0);
                let xs_sub: Vec<Vec<f64>> = keep.iter().map(|&i| xs[i].clone()).collect();
                let ys_sub: Vec<f64> = keep.iter().map(|&i| ys[i]).collect();
                Self::fit_planned_exact(kernel, xs_sub, ys_sub, config, starts, None)
            }
            InferenceMode::Iterative { subset, max_iters } if xs.len() > subset => {
                Self::fit_planned_iterative(kernel, xs, ys, config, starts, subset, max_iters)
            }
            _ => Self::fit_planned_exact(kernel, xs, ys, config, starts, shared),
        }
    }

    /// Whether `batch` is a usable lower-triangle difference tensor for
    /// `xs` (right pair count and dimensionality).
    fn shared_usable(batch: &DiffBatch<'_>, xs: &[Vec<f64>]) -> bool {
        let n = xs.len();
        batch.len() == n * (n + 1) / 2 && batch.dim() == xs.first().map_or(0, Vec::len)
    }

    /// The historical exact training path: full-data hyperopt, one final
    /// Cholesky factorization — every byte of the pre-inference-mode
    /// behavior.
    fn fit_planned_exact(
        kernel: K,
        xs: Vec<Vec<f64>>,
        ys: Vec<f64>,
        config: &GpConfig,
        starts: Vec<Vec<f64>>,
        shared: Option<&DiffBatch<'_>>,
    ) -> Result<Self, GpError> {
        Self::validate(&kernel, &xs, &ys)?;

        let standardizer = if config.standardize {
            Standardizer::fit(&ys)
        } else {
            Standardizer::identity()
        };
        let ys_std = standardizer.transform_all(&ys);
        let theta_bounds = Self::theta_bounds(&kernel, config);

        // One distance workspace for the whole fit: every NLML evaluation
        // of every restart reuses the pairwise difference tensor (the
        // workspace is read-only, so parallel restarts share it). A shared
        // bundle batch replaces even that single build.
        let ws = match shared {
            Some(b) if Self::shared_usable(b, &xs) => NlmlWorkspace::from_batch(b, xs.len()),
            _ => NlmlWorkspace::new(&xs),
        };
        let objective = |theta: &[f64]| nlml_with_grad_cached(&kernel, theta, &ws, &ys_std);
        let optimizer = Lbfgs::new()
            .with_max_iters(config.max_iters)
            .with_grad_tol(1e-5);

        let results = par_map(config.parallelism, &starts, |s| {
            optimizer.minimize(&objective, s, &theta_bounds)
        });
        let mut best: Option<(Vec<f64>, f64)> = None;
        let mut best_start = 0usize;
        let mut nlml_evals = 0usize;
        let mut lbfgs_iters = 0usize;
        for (k, r) in results.into_iter().enumerate() {
            nlml_evals += r.evaluations;
            lbfgs_iters += r.iterations;
            if r.value.is_finite() {
                let better = best.as_ref().is_none_or(|(_, v)| r.value < *v);
                if better {
                    best = Some((r.x, r.value));
                    best_start = k;
                }
            }
        }
        let (theta, best_nlml) = best.ok_or(GpError::TrainingFailed)?;

        let np = kernel.num_params();
        let params = theta[..np].to_vec();
        let log_noise = theta[np];
        let km = kernel_matrix_cached(&kernel, &params, log_noise, &ws);
        drop(ws);
        let chol = Cholesky::new_with_jitter(&km, 1e-10, 1e-4)?;
        let alpha = chol.solve_vec(&ys_std);
        // A winning hyperparameter pinned at its search-space boundary
        // usually means the bound, not the data, chose the value — the
        // classic symptom of a degenerating surrogate (lengthscale collapsed
        // to the floor, or noise railed at its cap). Components whose bounds
        // are pinned (lo == hi, e.g. log_noise with train_noise off) cannot
        // meaningfully "hit" a bound and are skipped.
        let bound_hits = theta
            .iter()
            .zip(theta_bounds.lower().iter().zip(theta_bounds.upper()))
            .filter(|&(&t, (&lo, &hi))| {
                let span = hi - lo;
                span > 0.0 && ((t - lo).abs() <= 1e-9 * span || (hi - t).abs() <= 1e-9 * span)
            })
            .count();
        // Start 0 is always the kernel default; 1 is the warm start when one
        // was supplied — best_start tells which strategy won this refit.
        // `factorizations` counts Cholesky factorization entry points: one
        // per NLML evaluation plus the final model build (jitter retries
        // within an entry are reported separately via `cholesky_jitter`).
        mfbo_telemetry::debug_event!(
            "gp_fit",
            n = xs.len(),
            dim = kernel.input_dim(),
            starts = starts.len(),
            best_start = best_start,
            nlml = best_nlml,
            nlml_evals = nlml_evals,
            factorizations = nlml_evals + 1,
            lbfgs_iters = lbfgs_iters,
            log_noise = log_noise,
            jitter = chol.jitter(),
            condition = chol.condition_estimate(),
            bound_hits = bound_hits,
        );

        Ok(Gp {
            kernel,
            params,
            log_noise,
            xs,
            ys_raw: ys,
            ys: ys_std,
            standardizer,
            chol,
            alpha,
            nlml: best_nlml,
            iter_state: None,
            best_start: Some(best_start),
        })
    }

    /// [`InferenceMode::Iterative`] training: hyperparameters are optimized
    /// on a deterministic subset (cubic cost capped at `subset³`), then the
    /// full-data mean solve `α = (K + σ_n²I)⁻¹ y` is recovered matrix-free
    /// with preconditioned conjugate gradients. Predictive variances come
    /// from the subset factor.
    fn fit_planned_iterative(
        kernel: K,
        xs: Vec<Vec<f64>>,
        ys: Vec<f64>,
        config: &GpConfig,
        starts: Vec<Vec<f64>>,
        subset: usize,
        max_iters: usize,
    ) -> Result<Self, GpError> {
        // The standardizer is fit on the FULL outputs — the CG mean solve
        // uses every observation — and the subset hyperopt then runs on the
        // pre-standardized values with standardization disabled, so both
        // stages agree on the output space.
        let standardizer = if config.standardize {
            Standardizer::fit(&ys)
        } else {
            Standardizer::identity()
        };
        let ys_std = standardizer.transform_all(&ys);
        let keep = mfbo_infer::select_subset(&xs, subset, 0);
        let xs_sub: Vec<Vec<f64>> = keep.iter().map(|&i| xs[i].clone()).collect();
        let ys_sub: Vec<f64> = keep.iter().map(|&i| ys_std[i]).collect();
        let sub_cfg = GpConfig {
            standardize: false,
            inference: InferenceMode::Exact,
            ..config.clone()
        };
        let sub = Self::fit_planned_exact(kernel, xs_sub, ys_sub, &sub_cfg, starts, None)?;
        Self::finish_iterative(
            sub,
            xs,
            ys,
            ys_std,
            standardizer,
            keep,
            max_iters,
            config.parallelism,
        )
    }

    /// Completes an iterative-mode build from a trained subset model: runs
    /// the full-data CG mean solve and assembles the combined model. Falls
    /// back to a full exact factorization (counted as
    /// `infer_exact_fallbacks`) when CG produces an unusable vector.
    #[allow(clippy::too_many_arguments)]
    fn finish_iterative(
        sub: Self,
        xs: Vec<Vec<f64>>,
        ys_raw: Vec<f64>,
        ys_std: Vec<f64>,
        standardizer: Standardizer,
        keep: Vec<usize>,
        max_iters: usize,
        parallelism: Parallelism,
    ) -> Result<Self, GpError> {
        let Gp {
            kernel,
            params,
            log_noise,
            chol,
            alpha: sub_alpha,
            nlml,
            best_start,
            ..
        } = sub;
        let sn2 = (2.0 * log_noise).exp();
        // The CG system folds noise and the subset factor's jitter into the
        // diagonal, mirroring what a full factorization at these
        // hyperparameters would solve.
        let shift = sn2 + chol.jitter();
        let diag = DiffBatch::diagonal_with_backend(&xs, mfbo_simd::Backend::Scalar);
        let mut precond = vec![0.0; xs.len()];
        kernel.eval_from_diffs(&params, &diag, &mut precond);
        for d in precond.iter_mut() {
            *d += shift;
        }
        let outcome = mfbo_infer::cg_solve(
            |v, out| Self::dense_matvec(&kernel, &params, &xs, shift, v, out, parallelism),
            &precond,
            &ys_std,
            max_iters,
            mfbo_infer::DEFAULT_CG_RTOL,
        );
        let unusable =
            !outcome.x.iter().all(|a| a.is_finite()) || (outcome.iters == 0 && !outcome.converged);
        if unusable {
            // Exact-oracle fallback: one full factorization at the subset's
            // hyperparameters. Expensive but always well-defined.
            mfbo_telemetry::counter!("infer_exact_fallbacks", 1u64);
            let ws = NlmlWorkspace::new(&xs);
            let km = kernel_matrix_cached(&kernel, &params, log_noise, &ws);
            drop(ws);
            let chol_full = Cholesky::new_with_jitter(&km, 1e-10, 1e-4)?;
            let alpha = chol_full.solve_vec(&ys_std);
            return Ok(Gp {
                kernel,
                params,
                log_noise,
                xs,
                ys_raw,
                ys: ys_std,
                standardizer,
                chol: chol_full,
                alpha,
                nlml,
                iter_state: None,
                best_start,
            });
        }
        mfbo_telemetry::debug_event!(
            "gp_fit_iterative",
            n = xs.len(),
            subset = keep.len(),
            cg_iters = outcome.iters,
            cg_converged = outcome.converged,
            rel_residual = outcome.rel_residual,
        );
        Ok(Gp {
            kernel,
            params,
            log_noise,
            xs,
            ys_raw,
            ys: ys_std,
            standardizer,
            chol,
            alpha: outcome.x,
            nlml,
            iter_state: Some(IterState {
                subset: keep,
                sub_alpha,
                cg_iters: outcome.iters,
            }),
            best_start,
        })
    }

    /// `out = (K + shift·I) v`, assembled tile by tile through the kernel's
    /// batch hook. Tiles have fixed 64-row boundaries and the per-tile
    /// results are concatenated in index order, with every in-tile reduction
    /// a sequential ascending loop — so all [`Parallelism`] modes produce
    /// bit-identical vectors and the CG trajectory is reproducible across
    /// resume.
    fn dense_matvec(
        kernel: &K,
        params: &[f64],
        xs: &[Vec<f64>],
        shift: f64,
        v: &[f64],
        out: &mut [f64],
        parallelism: Parallelism,
    ) {
        const TILE: usize = 64;
        let n = xs.len();
        let tiles: Vec<(usize, &[Vec<f64>])> = xs.chunks(TILE).enumerate().collect();
        let rows = par_map(parallelism, &tiles, |&(t, tile)| {
            let batch = DiffBatch::cross_with_backend(tile, xs, mfbo_simd::Backend::Scalar);
            let mut kv = vec![0.0; tile.len() * n];
            kernel.eval_from_diffs(params, &batch, &mut kv);
            let mut o = vec![0.0; tile.len()];
            for (r, slot) in o.iter_mut().enumerate() {
                let row = &kv[r * n..(r + 1) * n];
                *slot = mfbo_linalg::dot(row, v) + shift * v[t * TILE + r];
            }
            o
        });
        let mut k = 0;
        for tile_out in rows {
            for x in tile_out {
                out[k] = x;
                k += 1;
            }
        }
    }

    /// Builds a GP with *fixed* hyperparameters (no training). Useful for
    /// tests and for refitting with warm hyperparameters when new data
    /// arrives mid-optimization.
    ///
    /// # Errors
    ///
    /// Same validation as [`Gp::fit`], plus
    /// [`GpError::KernelNotPositiveDefinite`] if the kernel matrix cannot be
    /// factorized.
    pub fn with_params(
        kernel: K,
        xs: Vec<Vec<f64>>,
        ys: Vec<f64>,
        params: Vec<f64>,
        log_noise: f64,
        standardize: bool,
    ) -> Result<Self, GpError> {
        Self::with_params_shared(kernel, xs, ys, params, log_noise, standardize, None)
    }

    /// [`Gp::with_params`] with an optional pre-built lower-triangle
    /// difference batch over `xs` (see [`Gp::fit_planned_shared`]) — the
    /// frozen-refresh bundle path builds the batch once and rebuilds every
    /// model of the bundle from it. Bit-identical to [`Gp::with_params`].
    ///
    /// # Errors
    ///
    /// As for [`Gp::with_params`].
    pub fn with_params_shared(
        kernel: K,
        xs: Vec<Vec<f64>>,
        ys: Vec<f64>,
        params: Vec<f64>,
        log_noise: f64,
        standardize: bool,
        shared: Option<&DiffBatch<'_>>,
    ) -> Result<Self, GpError> {
        if xs.is_empty() || xs.len() != ys.len() {
            return Err(GpError::InvalidTrainingSet {
                reason: "empty or mismatched training set".into(),
            });
        }
        if params.len() != kernel.num_params() {
            return Err(GpError::InvalidTrainingSet {
                reason: "wrong number of kernel parameters".into(),
            });
        }
        let standardizer = if standardize {
            Standardizer::fit(&ys)
        } else {
            Standardizer::identity()
        };
        let ys_std = standardizer.transform_all(&ys);
        let ws = match shared {
            Some(b) if Self::shared_usable(b, &xs) => NlmlWorkspace::from_batch(b, xs.len()),
            _ => NlmlWorkspace::new(&xs),
        };
        let km = kernel_matrix_cached(&kernel, &params, log_noise, &ws);
        let chol = Cholesky::new_with_jitter(&km, 1e-10, 1e-4)?;
        let alpha = chol.solve_vec(&ys_std);
        // The frozen θ's NLML falls out of the factorization already in
        // hand: `nlml_cached` would rebuild the identical kernel matrix and
        // refactorize it, doubling the cost of every frozen refresh for
        // bit-identical output (same workspace + same θ ⇒ same matrix ⇒
        // same factor, and this is the same quad-form/log-det expression).
        let nlml = 0.5
            * (chol.quad_form(&ys_std) + chol.log_det() + xs.len() as f64 * crate::nlml::LOG_2PI);
        mfbo_telemetry::counter!("nlml_evals", 1u64);
        drop(ws);
        Ok(Gp {
            kernel,
            params,
            log_noise,
            xs,
            ys_raw: ys,
            ys: ys_std,
            standardizer,
            chol,
            alpha,
            nlml,
            iter_state: None,
            best_start: None,
        })
    }

    /// [`Gp::with_params`] with an explicit inference mode — the
    /// frozen-hyperparameter entry point for approximate inference, used by
    /// the BO loop's frozen refits and the scaling benches. With
    /// [`InferenceMode::Exact`] (or a training set no larger than the
    /// mode's subset cap) this is byte-identical to [`Gp::with_params`].
    ///
    /// # Errors
    ///
    /// As for [`Gp::with_params`].
    #[allow(clippy::too_many_arguments)]
    pub fn with_params_inference(
        kernel: K,
        xs: Vec<Vec<f64>>,
        ys: Vec<f64>,
        params: Vec<f64>,
        log_noise: f64,
        standardize: bool,
        inference: InferenceMode,
        parallelism: Parallelism,
    ) -> Result<Self, GpError> {
        Self::with_params_inference_shared(
            kernel,
            xs,
            ys,
            params,
            log_noise,
            standardize,
            inference,
            parallelism,
            None,
        )
    }

    /// [`Gp::with_params_inference`] with an optional pre-built
    /// lower-triangle difference batch over `xs` (see
    /// [`Gp::fit_planned_shared`]); only the exact path consumes it.
    ///
    /// # Errors
    ///
    /// As for [`Gp::with_params`].
    #[allow(clippy::too_many_arguments)]
    pub fn with_params_inference_shared(
        kernel: K,
        xs: Vec<Vec<f64>>,
        ys: Vec<f64>,
        params: Vec<f64>,
        log_noise: f64,
        standardize: bool,
        inference: InferenceMode,
        parallelism: Parallelism,
        shared: Option<&DiffBatch<'_>>,
    ) -> Result<Self, GpError> {
        if xs.is_empty() || xs.len() != ys.len() {
            return Err(GpError::InvalidTrainingSet {
                reason: "empty or mismatched training set".into(),
            });
        }
        match inference {
            InferenceMode::SubsetOfData { max_points } if xs.len() > max_points => {
                let keep = mfbo_infer::select_subset(&xs, max_points, 0);
                let xs_sub: Vec<Vec<f64>> = keep.iter().map(|&i| xs[i].clone()).collect();
                let ys_sub: Vec<f64> = keep.iter().map(|&i| ys[i]).collect();
                Self::with_params(kernel, xs_sub, ys_sub, params, log_noise, standardize)
            }
            InferenceMode::Iterative { subset, max_iters } if xs.len() > subset => {
                let standardizer = if standardize {
                    Standardizer::fit(&ys)
                } else {
                    Standardizer::identity()
                };
                let ys_std = standardizer.transform_all(&ys);
                let keep = mfbo_infer::select_subset(&xs, subset, 0);
                let xs_sub: Vec<Vec<f64>> = keep.iter().map(|&i| xs[i].clone()).collect();
                let ys_sub: Vec<f64> = keep.iter().map(|&i| ys_std[i]).collect();
                let sub = Self::with_params(kernel, xs_sub, ys_sub, params, log_noise, false)?;
                Self::finish_iterative(
                    sub,
                    xs,
                    ys,
                    ys_std,
                    standardizer,
                    keep,
                    max_iters,
                    parallelism,
                )
            }
            _ => Self::with_params_shared(kernel, xs, ys, params, log_noise, standardize, shared),
        }
    }

    /// Posterior prediction (mean and latent variance) in raw output units.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != kernel.input_dim()`.
    pub fn predict(&self, x: &[f64]) -> Prediction {
        let (m, v) = self.predict_standardized(x);
        Prediction {
            mean: self.standardizer.inverse(m),
            var: self.standardizer.inverse_std(v.max(0.0).sqrt()).powi(2),
        }
    }

    /// Posterior prediction in *standardized* output space — the space the
    /// fidelity-selection threshold `γ` (paper eq. 11) and the NARGP
    /// augmented inputs live in.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != kernel.input_dim()`.
    pub fn predict_standardized(&self, x: &[f64]) -> (f64, f64) {
        assert_eq!(x.len(), self.kernel.input_dim(), "query dimension mismatch");
        let n = self.xs.len();
        let mut kstar = vec![0.0; n];
        for (ks, xi) in kstar.iter_mut().zip(&self.xs) {
            *ks = self.kernel.eval(&self.params, x, xi);
        }
        let mean = mfbo_linalg::dot(&kstar, &self.alpha);
        let kss = self.kernel.eval(&self.params, x, x);
        let var = match &self.iter_state {
            None => {
                let v = self.chol.forward_solve(&kstar);
                (kss - mfbo_linalg::dot(&v, &v)).max(0.0)
            }
            Some(st) => {
                // Iterative inference: the mean above already used the
                // full-data CG alpha; the variance comes from the subset
                // model, whose cross-covariances are a gather of the full
                // kstar row (subset variances upper-bound the exact ones —
                // dropping conditioning data can only widen the posterior).
                let ksub: Vec<f64> = st.subset.iter().map(|&i| kstar[i]).collect();
                let v = self.chol.forward_solve(&ksub);
                (kss - mfbo_linalg::dot(&v, &v)).max(0.0)
            }
        };
        (mean, var)
    }

    /// Batched [`Gp::predict_standardized`]: one `(mean, var)` pair per
    /// query point, bit-identical to the pointwise calls.
    ///
    /// The M×n cross-covariance block is assembled through the kernel's
    /// batch hook (parameter `exp` transforms hoisted out of the M·n pair
    /// loop) and the per-query triangular solves reuse one scratch buffer,
    /// so the per-point cost collapses to the unavoidable O(n²) forward
    /// solve plus O(n) dot products.
    ///
    /// # Panics
    ///
    /// Panics if any query dimension differs from `kernel.input_dim()`.
    pub fn predict_batch_standardized(&self, points: &[Vec<f64>]) -> Vec<(f64, f64)> {
        self.predict_batch_standardized_with_backend(points, mfbo_simd::active())
    }

    /// [`Gp::predict_batch_standardized`] with an explicit SIMD backend —
    /// the differential-testing and A/B-bench hook.
    ///
    /// Queries are processed in cache-sized tiles (the tile's
    /// cross-covariance rows, difference workspace, and transpose stay
    /// resident while the Cholesky factor streams through), and within each
    /// tile groups of [`mfbo_simd::Backend::lanes`] queries share one
    /// interleaved multi-RHS forward solve. Both the tiling and the
    /// interleaving are bit-invisible: each query's mean and variance run
    /// the exact pointwise operation sequence.
    ///
    /// # Panics
    ///
    /// As for [`Gp::predict_batch_standardized`].
    pub fn predict_batch_standardized_with_backend(
        &self,
        points: &[Vec<f64>],
        be: mfbo_simd::Backend,
    ) -> Vec<(f64, f64)> {
        if points.is_empty() {
            return Vec::new();
        }
        if self.iter_state.is_some() {
            // The tiled fast path streams the full-data factor; an
            // iteratively-inferred model only owns the subset factor, so
            // route through the pointwise path (solves are O(subset²)
            // there anyway — the tiling would save little).
            mfbo_telemetry::counter!("predict_batch_points", points.len() as u64);
            return points
                .iter()
                .map(|x| self.predict_standardized(x))
                .collect();
        }
        let n = self.xs.len();
        mfbo_telemetry::counter!("predict_batch_points", points.len() as u64);
        for x in points {
            assert_eq!(x.len(), self.kernel.input_dim(), "query dimension mismatch");
        }
        let dim = self.kernel.input_dim();
        let lanes = be.lanes();
        // Tile size: per query the hot working set is the n×dim difference
        // rows plus their dim-major transpose (16·n·dim bytes) and the
        // cross-covariance row (8·n bytes). Budget ~1 MiB so the tile stays
        // cache-resident across the kernel sweep and the solves; round down
        // to a whole number of SIMD lanes.
        let per_query = 16 * n * dim + 8 * n;
        let tile_len = (1 << 20) / per_query.max(1);
        let tile_len = (tile_len / lanes * lanes).clamp(lanes, points.len().max(lanes));

        let mut kv = vec![0.0; tile_len * n];
        let mut kss = vec![0.0; tile_len];
        let mut v = vec![0.0; n];
        let mut bi = vec![0.0; n * lanes];
        let mut vi = vec![0.0; n * lanes];
        let mut out = Vec::with_capacity(points.len());
        for tile in points.chunks(tile_len) {
            let m = tile.len();
            // The per-tile batches are deliberately built in the scalar
            // layout whatever `be` says: a prediction tile evaluates its
            // kernel rows exactly once, so the dim-major transpose the
            // vector kernels want costs more to build than it saves (unlike
            // the NLML training batch, which is evaluated hundreds of times
            // per build). The SIMD win here is the interleaved multi-RHS
            // solves below, which read `kv` directly — and scalar vs vector
            // kernel evaluation is bit-identical by construction, so the
            // mix is invisible in the output.
            let batch = DiffBatch::cross_with_backend(tile, &self.xs, mfbo_simd::Backend::Scalar);
            let kv = &mut kv[..m * n];
            self.kernel.eval_from_diffs(&self.params, &batch, kv);
            // Prior-variance terms k(x, x) through the batch hook too: one
            // parameter hoist per tile instead of a scalar `eval` each.
            let diag = DiffBatch::diagonal_with_backend(tile, mfbo_simd::Backend::Scalar);
            let kss = &mut kss[..m];
            self.kernel.eval_from_diffs(&self.params, &diag, kss);
            let mut q = 0;
            if lanes > 1 {
                // Lane-groups of queries share one interleaved forward
                // solve; the variance reduction walks lane `c`'s strided
                // entries in the same ascending order (and from the same
                // 0.0 start) as `dot(&v, &v)` on the de-interleaved vector.
                while q + lanes <= m {
                    for i in 0..n {
                        for (c, slot) in bi[i * lanes..(i + 1) * lanes].iter_mut().enumerate() {
                            *slot = kv[(q + c) * n + i];
                        }
                    }
                    self.chol.forward_solve_interleaved_into(be, &bi, &mut vi);
                    for c in 0..lanes {
                        let kstar = &kv[(q + c) * n..(q + c + 1) * n];
                        let mean = mfbo_linalg::dot(kstar, &self.alpha);
                        let mut s = 0.0;
                        for k in 0..n {
                            let x = vi[k * lanes + c];
                            s += x * x;
                        }
                        let var = (kss[q + c] - s).max(0.0);
                        out.push((mean, var));
                    }
                    q += lanes;
                }
            }
            for q in q..m {
                let kstar = &kv[q * n..(q + 1) * n];
                let mean = mfbo_linalg::dot(kstar, &self.alpha);
                self.chol.forward_solve_into(kstar, &mut v);
                let var = (kss[q] - mfbo_linalg::dot(&v, &v)).max(0.0);
                out.push((mean, var));
            }
        }
        out
    }

    /// Batched [`Gp::predict`]: raw-unit predictions for a set of query
    /// points, bit-identical to the pointwise calls.
    ///
    /// # Panics
    ///
    /// Panics if any query dimension differs from `kernel.input_dim()`.
    pub fn predict_batch(&self, points: &[Vec<f64>]) -> Vec<Prediction> {
        self.predict_batch_standardized(points)
            .into_iter()
            .map(|(m, v)| Prediction {
                mean: self.standardizer.inverse(m),
                var: self.standardizer.inverse_std(v.max(0.0).sqrt()).powi(2),
            })
            .collect()
    }

    /// Appends one observation by extending the Cholesky factor in place —
    /// O(n²) instead of the O(n³) refactorization of a full refit.
    ///
    /// This is an *approximate* frozen refit: hyperparameters stay fixed
    /// (as in [`Gp::with_params`]) **and** the output standardizer is not
    /// re-fit — the new observation is transformed with the existing one,
    /// so the model drifts slightly from what a from-scratch frozen refit
    /// (which re-standardizes) would produce. `α` and the stored NLML are
    /// recomputed exactly for the extended factor. Opt-in for BO loops that
    /// refit hyperparameters periodically anyway; off the bit-exact
    /// reproducibility contract.
    ///
    /// # Errors
    ///
    /// - [`GpError::InvalidTrainingSet`] for a dimension mismatch or
    ///   non-finite observation (the model is untouched);
    /// - [`GpError::KernelNotPositiveDefinite`] when the new point makes
    ///   the extended matrix numerically singular at the current jitter
    ///   (e.g. a near-duplicate input) — the model is untouched and the
    ///   caller should fall back to a full refit.
    pub fn append_observation(&mut self, x: Vec<f64>, y_raw: f64) -> Result<(), GpError> {
        if self.iter_state.is_some() {
            return Err(GpError::UnsupportedOperation {
                reason: "append_observation requires exact inference: an iteratively-inferred \
                         model has no full-data Cholesky factor to extend"
                    .into(),
            });
        }
        if x.len() != self.kernel.input_dim() {
            return Err(GpError::InvalidTrainingSet {
                reason: format!(
                    "appended input has dimension {} but kernel expects {}",
                    x.len(),
                    self.kernel.input_dim()
                ),
            });
        }
        if !y_raw.is_finite() {
            return Err(GpError::InvalidTrainingSet {
                reason: "non-finite observation".into(),
            });
        }
        let n = self.xs.len();
        let mut k_new = vec![0.0; n];
        for (k, xi) in k_new.iter_mut().zip(&self.xs) {
            // Argument order matches the kernel-matrix build's
            // `eval(xs[i], xs[j])` for row i = n.
            *k = self.kernel.eval(&self.params, &x, xi);
        }
        let sn2 = (2.0 * self.log_noise).exp();
        // Fold noise and the factor's jitter into the diagonal exactly as
        // the kernel-matrix build + factorization would, so the appended
        // row matches a from-scratch factorization bit for bit.
        let diag = (self.kernel.eval(&self.params, &x, &x) + sn2) + self.chol.jitter();
        self.chol.append_row(&k_new, diag)?;
        let y_std = self.standardizer.transform(y_raw);
        self.xs.push(x);
        self.ys_raw.push(y_raw);
        self.ys.push(y_std);
        // Two O(n²) triangular solves refresh α exactly; NLML follows in
        // closed form from the updated factor, using the same `‖L⁻¹y‖²`
        // quadratic form as the training-path NLML so the stored value
        // matches a from-scratch frozen refit.
        self.alpha = self.chol.solve_vec(&self.ys);
        self.nlml = 0.5
            * (self.chol.quad_form(&self.ys)
                + self.chol.log_det()
                + (n + 1) as f64 * crate::nlml::LOG_2PI);
        mfbo_telemetry::counter!("chol_rank1_appends", 1u64);
        Ok(())
    }

    /// Posterior prediction including observation noise (paper eq. 4).
    pub fn predict_with_noise(&self, x: &[f64]) -> Prediction {
        let (m, v) = self.predict_standardized(x);
        let noisy = v + self.noise_var_standardized();
        Prediction {
            mean: self.standardizer.inverse(m),
            var: self.standardizer.inverse_std(noisy.max(0.0).sqrt()).powi(2),
        }
    }

    /// Observation-noise variance `σ_n²` in standardized space.
    pub fn noise_var_standardized(&self) -> f64 {
        (2.0 * self.log_noise).exp()
    }

    /// The training inputs.
    pub fn xs(&self) -> &[Vec<f64>] {
        &self.xs
    }

    /// The raw (de-standardized) training observations.
    pub fn ys_raw(&self) -> &[f64] {
        &self.ys_raw
    }

    /// The standardized training observations.
    pub fn ys_standardized(&self) -> &[f64] {
        &self.ys
    }

    /// The output standardizer fitted at training time.
    pub fn standardizer(&self) -> &Standardizer {
        &self.standardizer
    }

    /// The kernel.
    pub fn kernel(&self) -> &K {
        &self.kernel
    }

    /// Optimized kernel log-parameters.
    pub fn params(&self) -> &[f64] {
        &self.params
    }

    /// Optimized `log σ_n`.
    pub fn log_noise(&self) -> f64 {
        self.log_noise
    }

    /// The full hyperparameter vector `[kernel params…, log σ_n]` — feed
    /// this back as [`GpConfig::warm_start`] on the next refit.
    pub fn theta(&self) -> Vec<f64> {
        let mut t = self.params.clone();
        t.push(self.log_noise);
        t
    }

    /// Final negative log marginal likelihood of the trained model.
    pub fn nlml(&self) -> f64 {
        self.nlml
    }

    /// Index of the planned start that won the NLML search (0 = kernel
    /// default, 1 = warm start when one was supplied); `None` for
    /// frozen-hyperparameter builds. The adaptive-restart policy uses this
    /// to detect refits where the warm seed keeps winning.
    pub fn best_start(&self) -> Option<usize> {
        self.best_start
    }

    /// Leave-one-out cross-validation residuals and predictive variances in
    /// *standardized* space, computed in closed form from the full
    /// factorization (Rasmussen & Williams, §5.4.2):
    ///
    /// `μ_{-i} = y_i − α_i / K⁻¹_ii`, `σ²_{-i} = 1 / K⁻¹_ii`.
    ///
    /// Returns one `(residual, variance)` pair per training point, where
    /// `residual = y_i − μ_{-i}`. Large standardized residuals
    /// (`residual/√variance`) flag observations the model cannot explain —
    /// a practical diagnostic for misconverged circuit simulations entering
    /// the training set.
    /// Under [`InferenceMode::Iterative`] the closed form applies to the
    /// *subset* model (the only one with a factorization), so the returned
    /// vector has one pair per subset point, in subset order.
    pub fn loo_residuals(&self) -> Vec<(f64, f64)> {
        let kinv = self.chol.inverse();
        let alpha = match &self.iter_state {
            None => &self.alpha,
            Some(st) => &st.sub_alpha,
        };
        (0..alpha.len())
            .map(|i| {
                let kii = kinv[(i, i)].max(1e-300);
                let var = 1.0 / kii;
                let resid = alpha[i] / kii;
                (resid, var)
            })
            .collect()
    }

    /// Mean negative log predictive density of the leave-one-out folds
    /// (standardized space); lower is better. A robust model-quality score
    /// that, unlike NLML, is comparable across different noise levels.
    pub fn loo_nlpd(&self) -> f64 {
        let loo = self.loo_residuals();
        let n = loo.len() as f64;
        loo.iter()
            .map(|(r, v)| 0.5 * (v.ln() + r * r / v + (2.0 * std::f64::consts::PI).ln()))
            .sum::<f64>()
            / n
    }

    /// Index and raw value of the minimum observation.
    pub fn best_observation(&self) -> (usize, f64) {
        let mut bi = 0;
        for i in 1..self.ys_raw.len() {
            if self.ys_raw[i] < self.ys_raw[bi] {
                bi = i;
            }
        }
        (bi, self.ys_raw[bi])
    }

    /// Indices (ascending, into the training set) of the subset behind the
    /// variance factor when the model was built by
    /// [`InferenceMode::Iterative`]; `None` for exact and subset-of-data
    /// models, which own their factor outright.
    pub fn iterative_subset(&self) -> Option<&[usize]> {
        self.iter_state.as_ref().map(|s| s.subset.as_slice())
    }

    /// Conjugate-gradient iterations spent on the mean solve, when the
    /// model was built by [`InferenceMode::Iterative`].
    pub fn cg_iterations(&self) -> Option<usize> {
        self.iter_state.as_ref().map(|s| s.cg_iters)
    }

    /// Number of training points.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the training set is empty (never true for a constructed GP).
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{Matern52, SquaredExponential};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    fn sine_data(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (5.0 * x[0]).sin() + 2.0).collect();
        (xs, ys)
    }

    #[test]
    fn interpolates_training_points() {
        let (xs, ys) = sine_data(15);
        let gp = Gp::fit(
            SquaredExponential::new(1),
            xs.clone(),
            ys.clone(),
            &GpConfig::default(),
            &mut rng(),
        )
        .unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            let p = gp.predict(x);
            assert!((p.mean - y).abs() < 0.05, "at {x:?}: {} vs {y}", p.mean);
        }
    }

    #[test]
    fn uncertainty_grows_away_from_data() {
        let (xs, ys) = sine_data(10);
        let gp = Gp::fit(
            SquaredExponential::new(1),
            xs,
            ys,
            &GpConfig::default(),
            &mut rng(),
        )
        .unwrap();
        let near = gp.predict(&[0.5]);
        let far = gp.predict(&[3.0]);
        assert!(
            far.var > near.var * 5.0,
            "near {} far {}",
            near.var,
            far.var
        );
    }

    #[test]
    fn predictions_are_in_raw_units() {
        // Outputs centered at 1000 — standardization must round-trip.
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 / 9.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 1000.0 + 5.0 * x[0]).collect();
        let gp = Gp::fit(
            SquaredExponential::new(1),
            xs,
            ys,
            &GpConfig::default(),
            &mut rng(),
        )
        .unwrap();
        let p = gp.predict(&[0.5]);
        assert!((p.mean - 1002.5).abs() < 1.0, "mean = {}", p.mean);
    }

    #[test]
    fn with_params_skips_training() {
        let (xs, ys) = sine_data(8);
        let k = SquaredExponential::new(1);
        let params = k.default_params();
        let gp = Gp::with_params(k, xs.clone(), ys.clone(), params, -3.0, true).unwrap();
        // Still interpolates decently with default hyperparameters.
        let p = gp.predict(&xs[3]);
        assert!((p.mean - ys[3]).abs() < 0.2);
        assert!(gp.nlml().is_finite());
    }

    #[test]
    fn rejects_bad_training_sets() {
        let k = SquaredExponential::new(1);
        let e = Gp::fit(k.clone(), vec![], vec![], &GpConfig::default(), &mut rng());
        assert!(matches!(e, Err(GpError::InvalidTrainingSet { .. })));

        let e = Gp::fit(
            k.clone(),
            vec![vec![0.0]],
            vec![1.0, 2.0],
            &GpConfig::default(),
            &mut rng(),
        );
        assert!(matches!(e, Err(GpError::InvalidTrainingSet { .. })));

        let e = Gp::fit(
            k.clone(),
            vec![vec![0.0, 1.0]],
            vec![1.0],
            &GpConfig::default(),
            &mut rng(),
        );
        assert!(matches!(e, Err(GpError::InvalidTrainingSet { .. })));

        let e = Gp::fit(
            k,
            vec![vec![0.0]],
            vec![f64::NAN],
            &GpConfig::default(),
            &mut rng(),
        );
        assert!(matches!(e, Err(GpError::InvalidTrainingSet { .. })));
    }

    #[test]
    fn fixed_noise_stays_fixed() {
        let (xs, ys) = sine_data(10);
        let config = GpConfig {
            train_noise: false,
            log_noise_init: -4.0,
            ..GpConfig::default()
        };
        let gp = Gp::fit(SquaredExponential::new(1), xs, ys, &config, &mut rng()).unwrap();
        assert!((gp.log_noise() - (-4.0)).abs() < 1e-12);
    }

    #[test]
    fn warm_start_is_used_and_theta_round_trips() {
        let (xs, ys) = sine_data(10);
        let gp1 = Gp::fit(
            SquaredExponential::new(1),
            xs.clone(),
            ys.clone(),
            &GpConfig::default(),
            &mut rng(),
        )
        .unwrap();
        let config = GpConfig {
            restarts: 0,
            warm_start: Some(gp1.theta()),
            ..GpConfig::default()
        };
        let gp2 = Gp::fit(SquaredExponential::new(1), xs, ys, &config, &mut rng()).unwrap();
        // Warm-started training should be at least as good as the default
        // start alone, and close to the original optimum.
        assert!(gp2.nlml() <= gp1.nlml() + 1e-3);
    }

    #[test]
    fn single_point_training_set() {
        let gp = Gp::fit(
            SquaredExponential::new(1),
            vec![vec![0.5]],
            vec![2.0],
            &GpConfig::default(),
            &mut rng(),
        )
        .unwrap();
        let p = gp.predict(&[0.5]);
        assert!((p.mean - 2.0).abs() < 1e-3);
        assert_eq!(gp.len(), 1);
        assert!(!gp.is_empty());
    }

    #[test]
    fn fit_emits_gp_fit_debug_event() {
        let sink = std::sync::Arc::new(mfbo_telemetry::sinks::CollectSink::with_level(
            mfbo_telemetry::Level::Debug,
        ));
        let _g = mfbo_telemetry::scoped_sink(sink.clone());
        let (xs, ys) = sine_data(8);
        let gp = Gp::fit(
            SquaredExponential::new(1),
            xs,
            ys,
            &GpConfig::fast(),
            &mut rng(),
        )
        .unwrap();
        let recs = sink.named("gp_fit");
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].field("n"), Some(&mfbo_telemetry::Value::U64(8)));
        match recs[0].field("nlml") {
            Some(mfbo_telemetry::Value::F64(v)) => assert!((v - gp.nlml()).abs() < 1e-12),
            other => panic!("nlml field missing or mistyped: {other:?}"),
        }
        // Health diagnostics ride along on the same event.
        match recs[0].field("bound_hits") {
            Some(&mfbo_telemetry::Value::U64(hits)) => {
                assert!(hits <= 4, "at most one hit per theta component")
            }
            other => panic!("bound_hits field missing or mistyped: {other:?}"),
        }
        match recs[0].field("condition") {
            Some(mfbo_telemetry::Value::F64(c)) => assert!(c.is_finite() && *c >= 1.0),
            other => panic!("condition field missing or mistyped: {other:?}"),
        }
    }

    #[test]
    fn matern_kernel_also_trains() {
        let (xs, ys) = sine_data(12);
        let gp = Gp::fit(
            Matern52::new(1),
            xs.clone(),
            ys.clone(),
            &GpConfig::fast(),
            &mut rng(),
        )
        .unwrap();
        let p = gp.predict(&xs[6]);
        assert!((p.mean - ys[6]).abs() < 0.1);
    }

    #[test]
    fn best_observation_finds_minimum() {
        let xs: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64]).collect();
        let ys = vec![3.0, 1.0, 4.0, 0.5, 2.0];
        let gp = Gp::fit(
            SquaredExponential::new(1),
            xs,
            ys,
            &GpConfig::fast(),
            &mut rng(),
        )
        .unwrap();
        let (i, v) = gp.best_observation();
        assert_eq!(i, 3);
        assert_eq!(v, 0.5);
    }

    #[test]
    fn loo_matches_brute_force_refits() {
        let (xs, ys) = sine_data(9);
        let k = SquaredExponential::new(1);
        let params = vec![0.1, -1.0];
        let log_noise = -2.0;
        let gp = Gp::with_params(
            k.clone(),
            xs.clone(),
            ys.clone(),
            params.clone(),
            log_noise,
            false,
        )
        .unwrap();
        let loo = gp.loo_residuals();
        for i in 0..xs.len() {
            // Brute force: refit without point i (same fixed params, no
            // standardization so spaces coincide) and predict at x_i.
            let mut xs2 = xs.clone();
            let mut ys2 = ys.clone();
            xs2.remove(i);
            ys2.remove(i);
            let gp2 =
                Gp::with_params(k.clone(), xs2, ys2, params.clone(), log_noise, false).unwrap();
            let (mu, var) = gp2.predict_standardized(&xs[i]);
            let noise = gp2.noise_var_standardized();
            let (resid, loo_var) = loo[i];
            assert!(
                (resid - (ys[i] - mu)).abs() < 1e-8,
                "point {i}: residual {resid} vs brute {}",
                ys[i] - mu
            );
            assert!(
                (loo_var - (var + noise)).abs() < 1e-8,
                "point {i}: var {loo_var} vs brute {}",
                var + noise
            );
        }
    }

    #[test]
    fn loo_nlpd_prefers_correct_lengthscale() {
        let (xs, ys) = sine_data(15);
        let k = SquaredExponential::new(1);
        let good = Gp::with_params(
            k.clone(),
            xs.clone(),
            ys.clone(),
            vec![0.0, -1.2],
            -3.0,
            true,
        )
        .unwrap();
        // Absurdly long lengthscale = underfit.
        let bad = Gp::with_params(k, xs, ys, vec![0.0, 3.0], -3.0, true).unwrap();
        assert!(good.loo_nlpd() < bad.loo_nlpd());
    }

    #[test]
    fn noise_prediction_is_larger() {
        let (xs, ys) = sine_data(10);
        let gp = Gp::fit(
            SquaredExponential::new(1),
            xs,
            ys,
            &GpConfig::default(),
            &mut rng(),
        )
        .unwrap();
        let latent = gp.predict(&[0.33]);
        let noisy = gp.predict_with_noise(&[0.33]);
        assert!(noisy.var >= latent.var);
        assert_eq!(noisy.mean, latent.mean);
        assert!(latent.std_dev() >= 0.0);
    }

    #[test]
    fn batched_predict_bit_identical_to_pointwise() {
        let (xs, ys) = sine_data(20);
        let gp = Gp::fit(
            SquaredExponential::new(1),
            xs,
            ys,
            &GpConfig::fast(),
            &mut rng(),
        )
        .unwrap();
        let queries: Vec<Vec<f64>> = (0..31).map(|i| vec![i as f64 / 30.0 * 1.4 - 0.2]).collect();
        let batched = gp.predict_batch_standardized(&queries);
        assert_eq!(batched.len(), queries.len());
        for (q, &(m, v)) in queries.iter().zip(&batched) {
            let (pm, pv) = gp.predict_standardized(q);
            assert_eq!(m.to_bits(), pm.to_bits());
            assert_eq!(v.to_bits(), pv.to_bits());
        }
        let raw = gp.predict_batch(&queries);
        for (q, r) in queries.iter().zip(&raw) {
            let p = gp.predict(q);
            assert_eq!(r.mean.to_bits(), p.mean.to_bits());
            assert_eq!(r.var.to_bits(), p.var.to_bits());
        }
        assert!(gp.predict_batch_standardized(&[]).is_empty());
    }

    #[test]
    fn append_observation_matches_frozen_rebuild() {
        // Without standardization the appended model must coincide with a
        // from-scratch frozen refit on the extended data: the appended
        // Cholesky row solves the same recurrence the factorization does.
        let (xs, ys) = sine_data(12);
        let k = SquaredExponential::new(1);
        let params = vec![0.1, -1.0];
        let mut gp = Gp::with_params(
            k.clone(),
            xs[..11].to_vec(),
            ys[..11].to_vec(),
            params.clone(),
            -2.0,
            false,
        )
        .unwrap();
        gp.append_observation(xs[11].clone(), ys[11]).unwrap();
        let rebuilt = Gp::with_params(k, xs.clone(), ys, params, -2.0, false).unwrap();
        assert_eq!(gp.len(), 12);
        assert_eq!(gp.nlml().to_bits(), rebuilt.nlml().to_bits());
        for q in [&[0.17][..], &[0.5], &[0.93]] {
            let (am, av) = gp.predict_standardized(q);
            let (rm, rv) = rebuilt.predict_standardized(q);
            assert_eq!(am.to_bits(), rm.to_bits());
            assert_eq!(av.to_bits(), rv.to_bits());
        }
    }

    #[test]
    fn append_observation_keeps_standardizer_frozen() {
        let (xs, ys) = sine_data(10);
        let mut gp = Gp::fit(
            SquaredExponential::new(1),
            xs[..9].to_vec(),
            ys[..9].to_vec(),
            &GpConfig::fast(),
            &mut rng(),
        )
        .unwrap();
        let before = *gp.standardizer();
        gp.append_observation(xs[9].clone(), ys[9]).unwrap();
        assert_eq!(gp.standardizer().mean(), before.mean());
        assert_eq!(gp.standardizer().std(), before.std());
        // Tolerance contract vs a true frozen refit (which re-standardizes):
        // predictions agree closely but not bitwise.
        let rebuilt = Gp::with_params(
            gp.kernel().clone(),
            xs,
            ys,
            gp.params().to_vec(),
            gp.log_noise(),
            true,
        )
        .unwrap();
        for q in [&[0.25][..], &[0.75]] {
            let a = gp.predict(q);
            let r = rebuilt.predict(q);
            assert!((a.mean - r.mean).abs() < 1e-6, "{} vs {}", a.mean, r.mean);
            assert!((a.var - r.var).abs() < 1e-6);
        }
    }

    #[test]
    fn append_observation_rejects_bad_input() {
        let (xs, ys) = sine_data(8);
        let mut gp = Gp::fit(
            SquaredExponential::new(1),
            xs.clone(),
            ys,
            &GpConfig::fast(),
            &mut rng(),
        )
        .unwrap();
        assert!(matches!(
            gp.append_observation(vec![0.1, 0.2], 1.0),
            Err(GpError::InvalidTrainingSet { .. })
        ));
        assert!(matches!(
            gp.append_observation(vec![0.1], f64::NAN),
            Err(GpError::InvalidTrainingSet { .. })
        ));
        assert_eq!(gp.len(), 8);
    }

    #[test]
    fn subset_of_data_matches_exact_on_selected_points() {
        let (xs, ys) = sine_data(30);
        let k = SquaredExponential::new(1);
        let params = vec![0.1, -1.0];
        let mode = InferenceMode::SubsetOfData { max_points: 10 };
        let gp = Gp::with_params_inference(
            k.clone(),
            xs.clone(),
            ys.clone(),
            params.clone(),
            -2.0,
            true,
            mode,
            Parallelism::Serial,
        )
        .unwrap();
        assert_eq!(gp.len(), 10);
        assert!(gp.iterative_subset().is_none());
        // Byte-identical to an exact model built on the hand-selected subset.
        let keep = mfbo_infer::select_subset(&xs, 10, 0);
        let xs_sub: Vec<Vec<f64>> = keep.iter().map(|&i| xs[i].clone()).collect();
        let ys_sub: Vec<f64> = keep.iter().map(|&i| ys[i]).collect();
        let oracle = Gp::with_params(k, xs_sub, ys_sub, params, -2.0, true).unwrap();
        for q in [&[0.13][..], &[0.5], &[0.88]] {
            let (am, av) = gp.predict_standardized(q);
            let (om, ov) = oracle.predict_standardized(q);
            assert_eq!(am.to_bits(), om.to_bits());
            assert_eq!(av.to_bits(), ov.to_bits());
        }
    }

    #[test]
    fn iterative_mean_matches_exact_and_variance_upper_bounds() {
        let (xs, ys) = sine_data(40);
        let k = SquaredExponential::new(1);
        let params = vec![0.1, -1.0];
        let mode = InferenceMode::Iterative {
            subset: 24,
            max_iters: 400,
        };
        let gp = Gp::with_params_inference(
            k.clone(),
            xs.clone(),
            ys.clone(),
            params.clone(),
            -2.0,
            true,
            mode,
            Parallelism::Serial,
        )
        .unwrap();
        assert_eq!(gp.len(), 40);
        assert_eq!(gp.iterative_subset().map(<[usize]>::len), Some(24));
        assert!(gp.cg_iterations().unwrap() > 0);
        let exact = Gp::with_params(k, xs, ys, params, -2.0, true).unwrap();
        for q in [&[0.07][..], &[0.4], &[0.73], &[0.98]] {
            let (am, av) = gp.predict_standardized(q);
            let (em, ev) = exact.predict_standardized(q);
            // CG solves the same full-data system as the exact path.
            assert!((am - em).abs() < 1e-6, "mean {am} vs exact {em}");
            // Subset variances can only widen the posterior (up to the
            // subset factor's slightly different jitter).
            assert!(av >= ev - 1e-9, "var {av} vs exact {ev}");
        }
    }

    #[test]
    fn iterative_below_cap_is_bitwise_exact_path() {
        let (xs, ys) = sine_data(12);
        let k = SquaredExponential::new(1);
        let params = vec![0.1, -1.0];
        let gp = Gp::with_params_inference(
            k.clone(),
            xs.clone(),
            ys.clone(),
            params.clone(),
            -2.0,
            true,
            InferenceMode::iterative(),
            Parallelism::Serial,
        )
        .unwrap();
        assert!(gp.iterative_subset().is_none());
        let exact = Gp::with_params(k, xs, ys, params, -2.0, true).unwrap();
        assert_eq!(gp.nlml().to_bits(), exact.nlml().to_bits());
        for q in [&[0.2][..], &[0.6]] {
            let (am, av) = gp.predict_standardized(q);
            let (em, ev) = exact.predict_standardized(q);
            assert_eq!(am.to_bits(), em.to_bits());
            assert_eq!(av.to_bits(), ev.to_bits());
        }
    }

    #[test]
    fn iterative_batch_predict_matches_pointwise_bitwise() {
        let (xs, ys) = sine_data(40);
        let gp = Gp::with_params_inference(
            SquaredExponential::new(1),
            xs,
            ys,
            vec![0.1, -1.0],
            -2.0,
            true,
            InferenceMode::Iterative {
                subset: 16,
                max_iters: 200,
            },
            Parallelism::Serial,
        )
        .unwrap();
        let queries: Vec<Vec<f64>> = (0..17).map(|i| vec![i as f64 / 16.0]).collect();
        let batched = gp.predict_batch_standardized(&queries);
        for (q, &(m, v)) in queries.iter().zip(&batched) {
            let (pm, pv) = gp.predict_standardized(q);
            assert_eq!(m.to_bits(), pm.to_bits());
            assert_eq!(v.to_bits(), pv.to_bits());
        }
    }

    #[test]
    fn iterative_threads_match_serial_bitwise() {
        let (xs, ys) = sine_data(40);
        let build = |par: Parallelism| {
            Gp::with_params_inference(
                SquaredExponential::new(1),
                xs.clone(),
                ys.clone(),
                vec![0.1, -1.0],
                -2.0,
                true,
                InferenceMode::Iterative {
                    subset: 16,
                    max_iters: 200,
                },
                par,
            )
            .unwrap()
        };
        let serial = build(Parallelism::Serial);
        let threaded = build(Parallelism::Threads(4));
        for q in [&[0.11][..], &[0.5], &[0.91]] {
            let (sm, sv) = serial.predict_standardized(q);
            let (tm, tv) = threaded.predict_standardized(q);
            assert_eq!(sm.to_bits(), tm.to_bits());
            assert_eq!(sv.to_bits(), tv.to_bits());
        }
    }

    #[test]
    fn iterative_rejects_append_observation() {
        let (xs, ys) = sine_data(40);
        let mut gp = Gp::with_params_inference(
            SquaredExponential::new(1),
            xs,
            ys,
            vec![0.1, -1.0],
            -2.0,
            true,
            InferenceMode::Iterative {
                subset: 16,
                max_iters: 50,
            },
            Parallelism::Serial,
        )
        .unwrap();
        assert!(matches!(
            gp.append_observation(vec![0.5], 1.0),
            Err(GpError::UnsupportedOperation { .. })
        ));
        assert_eq!(gp.len(), 40);
    }

    #[test]
    fn iterative_loo_covers_subset() {
        let (xs, ys) = sine_data(40);
        let gp = Gp::with_params_inference(
            SquaredExponential::new(1),
            xs,
            ys,
            vec![0.1, -1.0],
            -2.0,
            true,
            InferenceMode::Iterative {
                subset: 16,
                max_iters: 200,
            },
            Parallelism::Serial,
        )
        .unwrap();
        let loo = gp.loo_residuals();
        assert_eq!(loo.len(), 16);
        assert!(loo.iter().all(|(r, v)| r.is_finite() && *v > 0.0));
        assert!(gp.loo_nlpd().is_finite());
    }

    #[test]
    fn fit_dispatches_inference_modes() {
        let (xs, ys) = sine_data(40);
        let cfg = GpConfig {
            inference: InferenceMode::Iterative {
                subset: 20,
                max_iters: 200,
            },
            ..GpConfig::fast()
        };
        let gp = Gp::fit(
            SquaredExponential::new(1),
            xs.clone(),
            ys.clone(),
            &cfg,
            &mut rng(),
        )
        .unwrap();
        assert_eq!(gp.len(), 40);
        assert_eq!(gp.iterative_subset().map(<[usize]>::len), Some(20));
        // Interpolation quality survives the approximation.
        for (x, y) in xs.iter().zip(&ys).step_by(7) {
            let p = gp.predict(x);
            assert!((p.mean - y).abs() < 0.1, "at {x:?}: {} vs {y}", p.mean);
        }
        let sod = GpConfig {
            inference: InferenceMode::SubsetOfData { max_points: 20 },
            ..GpConfig::fast()
        };
        let gp = Gp::fit(SquaredExponential::new(1), xs, ys, &sod, &mut rng()).unwrap();
        assert_eq!(gp.len(), 20);
        assert!(gp.iterative_subset().is_none());
    }

    #[test]
    fn two_d_model_learns_anisotropy() {
        // Function varies strongly in x0, weakly in x1: the trained ARD
        // lengthscale for x1 should be longer.
        let mut pts = Vec::new();
        let mut vals = Vec::new();
        for i in 0..7 {
            for j in 0..7 {
                let x0 = i as f64 / 6.0;
                let x1 = j as f64 / 6.0;
                pts.push(vec![x0, x1]);
                vals.push((8.0 * x0).sin() + 0.01 * x1);
            }
        }
        let gp = Gp::fit(
            SquaredExponential::new(2),
            pts,
            vals,
            &GpConfig::default(),
            &mut rng(),
        )
        .unwrap();
        let l0 = gp.params()[1];
        let l1 = gp.params()[2];
        assert!(l1 > l0, "l0 = {l0}, l1 = {l1}");
    }
}

//! Gaussian-process regression for the `analog-mfbo` workspace.
//!
//! Implements the surrogate-model layer of the DAC'19 paper (§2.3):
//! zero-mean GPs with squared-exponential ARD kernels, trained by minimizing
//! the negative log marginal likelihood (NLML, paper eq. 3) with analytic
//! gradients and multi-restart L-BFGS, and providing the posterior mean and
//! variance of eq. 4.
//!
//! The multi-fidelity model of paper §3.1 needs one extra ingredient: the
//! composite NARGP kernel of eq. 9,
//! `k_h((x,f), (x',f')) = k1(f, f')·k2(x, x') + k3(x, x')`,
//! which treats the low-fidelity posterior mean as an additional input
//! coordinate. That kernel lives here too ([`kernel::NargpKernel`]) so that
//! the high-fidelity GP is just an ordinary [`Gp`] over augmented inputs.
//!
//! # Example
//!
//! ```
//! use mfbo_gp::{Gp, GpConfig, kernel::SquaredExponential};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), mfbo_gp::GpError> {
//! let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 19.0]).collect();
//! let ys: Vec<f64> = xs.iter().map(|x| (6.0 * x[0]).sin()).collect();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let gp = Gp::fit(
//!     SquaredExponential::new(1),
//!     xs.clone(),
//!     ys.clone(),
//!     &GpConfig::default(),
//!     &mut rng,
//! )?;
//! let p = gp.predict(&[0.5]);
//! assert!((p.mean - (3.0f64).sin()).abs() < 0.05);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub mod combinators;
mod error;
mod gp;
pub mod kernel;
mod nlml;
pub mod workspace;

pub use error::GpError;
pub use gp::{Gp, GpConfig, Prediction};
pub use mfbo_infer::InferenceMode;
pub use nlml::{nlml, nlml_cached, nlml_with_grad, nlml_with_grad_cached, NlmlWorkspace};
pub use workspace::{DiffBatch, FitCache};

//! Kernel combinators: sums and products of kernels.
//!
//! Sums and products of positive-definite kernels are positive definite,
//! so these combinators let users compose richer priors (e.g.
//! `SE + Matérn` for multi-scale structure, or `SE × periodic` families)
//! without writing a new kernel type. The NARGP fusion kernel
//! ([`crate::kernel::NargpKernel`]) is a hand-specialized instance of the
//! same idea — `k1·k2 + k3` over split input coordinates — kept separate
//! because it routes *different slices* of the input to each factor.
//!
//! Parameter layout of a combinator: the left kernel's parameters followed
//! by the right kernel's.

use crate::kernel::Kernel;

/// Sum of two kernels over the same input: `k(a,b) = k_l(a,b) + k_r(a,b)`.
///
/// # Examples
///
/// ```
/// use mfbo_gp::kernel::{Kernel, Matern52, SquaredExponential};
/// use mfbo_gp::combinators::SumKernel;
///
/// let k = SumKernel::new(SquaredExponential::new(2), Matern52::new(2));
/// let p = k.default_params();
/// assert_eq!(p.len(), k.num_params());
/// assert!(k.eval(&p, &[0.1, 0.2], &[0.1, 0.2]) > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct SumKernel<L, R> {
    left: L,
    right: R,
}

impl<L: Kernel, R: Kernel> SumKernel<L, R> {
    /// Combines two kernels over the same input dimensionality.
    ///
    /// # Panics
    ///
    /// Panics if the input dimensions differ.
    pub fn new(left: L, right: R) -> Self {
        assert_eq!(
            left.input_dim(),
            right.input_dim(),
            "summed kernels must share the input dimension"
        );
        SumKernel { left, right }
    }
}

impl<L: Kernel, R: Kernel> Kernel for SumKernel<L, R> {
    fn input_dim(&self) -> usize {
        self.left.input_dim()
    }

    fn num_params(&self) -> usize {
        self.left.num_params() + self.right.num_params()
    }

    fn eval(&self, p: &[f64], a: &[f64], b: &[f64]) -> f64 {
        let (pl, pr) = p.split_at(self.left.num_params());
        self.left.eval(pl, a, b) + self.right.eval(pr, a, b)
    }

    fn eval_grad(&self, p: &[f64], a: &[f64], b: &[f64], grad: &mut [f64]) -> f64 {
        let nl = self.left.num_params();
        let (pl, pr) = p.split_at(nl);
        let (gl, gr) = grad.split_at_mut(nl);
        self.left.eval_grad(pl, a, b, gl) + self.right.eval_grad(pr, a, b, gr)
    }

    fn default_params(&self) -> Vec<f64> {
        let mut p = self.left.default_params();
        p.extend(self.right.default_params());
        p
    }

    fn param_bounds(&self) -> (Vec<f64>, Vec<f64>) {
        let (mut lo, mut hi) = self.left.param_bounds();
        let (rlo, rhi) = self.right.param_bounds();
        lo.extend(rlo);
        hi.extend(rhi);
        (lo, hi)
    }
}

/// Product of two kernels over the same input:
/// `k(a,b) = k_l(a,b) · k_r(a,b)`.
#[derive(Debug, Clone)]
pub struct ProductKernel<L, R> {
    left: L,
    right: R,
}

impl<L: Kernel, R: Kernel> ProductKernel<L, R> {
    /// Combines two kernels over the same input dimensionality.
    ///
    /// # Panics
    ///
    /// Panics if the input dimensions differ.
    pub fn new(left: L, right: R) -> Self {
        assert_eq!(
            left.input_dim(),
            right.input_dim(),
            "multiplied kernels must share the input dimension"
        );
        ProductKernel { left, right }
    }
}

impl<L: Kernel, R: Kernel> Kernel for ProductKernel<L, R> {
    fn input_dim(&self) -> usize {
        self.left.input_dim()
    }

    fn num_params(&self) -> usize {
        self.left.num_params() + self.right.num_params()
    }

    fn eval(&self, p: &[f64], a: &[f64], b: &[f64]) -> f64 {
        let (pl, pr) = p.split_at(self.left.num_params());
        self.left.eval(pl, a, b) * self.right.eval(pr, a, b)
    }

    fn eval_grad(&self, p: &[f64], a: &[f64], b: &[f64], grad: &mut [f64]) -> f64 {
        let nl = self.left.num_params();
        let (pl, pr) = p.split_at(nl);
        let (gl, gr) = grad.split_at_mut(nl);
        let kl = self.left.eval_grad(pl, a, b, gl);
        let kr = self.right.eval_grad(pr, a, b, gr);
        // Product rule.
        for g in gl.iter_mut() {
            *g *= kr;
        }
        for g in gr.iter_mut() {
            *g *= kl;
        }
        kl * kr
    }

    fn default_params(&self) -> Vec<f64> {
        let mut p = self.left.default_params();
        p.extend(self.right.default_params());
        p
    }

    fn param_bounds(&self) -> (Vec<f64>, Vec<f64>) {
        let (mut lo, mut hi) = self.left.param_bounds();
        let (rlo, rhi) = self.right.param_bounds();
        lo.extend(rlo);
        hi.extend(rhi);
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{Matern52, SquaredExponential};
    use crate::{Gp, GpConfig};
    use mfbo_linalg::{Cholesky, Matrix};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_grad<K: Kernel>(k: &K, p: &[f64], a: &[f64], b: &[f64]) {
        let mut grad = vec![0.0; k.num_params()];
        let v = k.eval_grad(p, a, b, &mut grad);
        assert!((v - k.eval(p, a, b)).abs() < 1e-14);
        let h = 1e-6;
        for j in 0..k.num_params() {
            let mut pp = p.to_vec();
            pp[j] += h;
            let fp = k.eval(&pp, a, b);
            pp[j] -= 2.0 * h;
            let fm = k.eval(&pp, a, b);
            let num = (fp - fm) / (2.0 * h);
            assert!(
                (num - grad[j]).abs() < 1e-5 * (1.0 + num.abs()),
                "param {j}: numeric {num} vs analytic {}",
                grad[j]
            );
        }
    }

    #[test]
    fn sum_is_sum() {
        let se = SquaredExponential::new(2);
        let ma = Matern52::new(2);
        let k = SumKernel::new(se.clone(), ma.clone());
        let p = k.default_params();
        let (pl, pr) = p.split_at(se.num_params());
        let a = [0.1, 0.7];
        let b = [0.4, 0.2];
        assert!((k.eval(&p, &a, &b) - (se.eval(pl, &a, &b) + ma.eval(pr, &a, &b))).abs() < 1e-15);
    }

    #[test]
    fn product_is_product() {
        let se = SquaredExponential::new(1);
        let ma = Matern52::new(1);
        let k = ProductKernel::new(se.clone(), ma.clone());
        let p = k.default_params();
        let (pl, pr) = p.split_at(se.num_params());
        let a = [0.3];
        let b = [0.9];
        assert!((k.eval(&p, &a, &b) - se.eval(pl, &a, &b) * ma.eval(pr, &a, &b)).abs() < 1e-15);
    }

    #[test]
    fn combinator_gradients_match_finite_differences() {
        let sum = SumKernel::new(SquaredExponential::new(2), Matern52::new(2));
        check_grad(&sum, &sum.default_params(), &[0.1, 0.9], &[0.5, 0.3]);
        let prod = ProductKernel::new(SquaredExponential::new(2), Matern52::new(2));
        let mut p = prod.default_params();
        p[0] = 0.2;
        p[4] = -0.3;
        check_grad(&prod, &p, &[0.1, 0.9], &[0.5, 0.3]);
    }

    #[test]
    fn composed_gram_is_psd() {
        let k = SumKernel::new(
            ProductKernel::new(SquaredExponential::new(1), Matern52::new(1)),
            SquaredExponential::new(1),
        );
        let p = k.default_params();
        let xs: Vec<Vec<f64>> = (0..9).map(|i| vec![i as f64 / 8.0]).collect();
        let g = Matrix::from_fn(9, 9, |i, j| k.eval(&p, &xs[i], &xs[j]));
        assert!(g.is_symmetric(1e-12));
        assert!(Cholesky::new_with_jitter(&g, 1e-10, 1e-3).is_ok());
    }

    #[test]
    fn gp_trains_on_composed_kernel() {
        let xs: Vec<Vec<f64>> = (0..14).map(|i| vec![i as f64 / 13.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (6.0 * x[0]).sin() + 0.2 * x[0]).collect();
        let k = SumKernel::new(SquaredExponential::new(1), Matern52::new(1));
        let mut rng = StdRng::seed_from_u64(0);
        let gp = Gp::fit(k, xs.clone(), ys.clone(), &GpConfig::fast(), &mut rng).unwrap();
        let p = gp.predict(&xs[7]);
        assert!((p.mean - ys[7]).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "share the input dimension")]
    fn rejects_dimension_mismatch() {
        let _ = SumKernel::new(SquaredExponential::new(1), Matern52::new(2));
    }
}

//! Covariance functions and their log-hyperparameter gradients.
//!
//! All kernels are parameterized in **log space**: a parameter vector `p`
//! holds `log σ_f` followed by `log ℓ_1 … log ℓ_d` (and, for composites, the
//! concatenation of the component layouts). Working in log space makes the
//! positivity constraints implicit and the NLML landscape far better
//! conditioned — the universal practice in GP software.
//!
//! The gradient convention: [`Kernel::eval_grad`] writes `∂k/∂p_j` (the
//! derivative with respect to the *log* parameter) into the output slice.

use crate::workspace::DiffBatch;
use std::fmt::Debug;

/// A positive-definite covariance function over `R^dim`.
///
/// Implementors must be cheap to clone (they carry only shape information;
/// the hyperparameters travel separately so the optimizer can own them).
pub trait Kernel: Debug + Clone + Send + Sync {
    /// Input dimensionality the kernel expects.
    fn input_dim(&self) -> usize;

    /// Number of hyperparameters (in log space).
    fn num_params(&self) -> usize;

    /// Evaluates `k(a, b)` under log-parameters `p`.
    fn eval(&self, p: &[f64], a: &[f64], b: &[f64]) -> f64;

    /// Evaluates `k(a, b)` and writes `∂k/∂p_j` into `grad`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `grad.len() != self.num_params()`.
    fn eval_grad(&self, p: &[f64], a: &[f64], b: &[f64], grad: &mut [f64]) -> f64;

    /// Evaluates the kernel over every pair of a precomputed difference
    /// workspace, writing one value per pair into `out` (pair order).
    ///
    /// The contract is **bit-identity** with calling [`Kernel::eval`] on
    /// each pair: overrides may only reorganize parameter-dependent work
    /// (hoisting `exp(log θ)` transforms out of the pair loop), never the
    /// per-pair floating-point sequence. The default does exactly the
    /// per-pair calls, so kernels that cannot be evaluated from differences
    /// alone (non-stationary or third-party kernels) remain correct.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `out.len() != batch.len()` or the batch
    /// dimension does not match [`Kernel::input_dim`].
    fn eval_from_diffs(&self, p: &[f64], batch: &DiffBatch<'_>, out: &mut [f64]) {
        debug_assert_eq!(out.len(), batch.len());
        for (q, o) in out.iter_mut().enumerate() {
            let (a, b) = batch.pair_points(q);
            *o = self.eval(p, a, b);
        }
    }

    /// Accumulates the weighted parameter gradient over every pair of a
    /// difference workspace: `acc[j] += weights[q] · ∂k_q/∂p_j`, pairs in
    /// order, parameters innermost — the exact accumulation the NLML
    /// gradient performs pair by pair, so overrides are bit-identical to
    /// the default as long as they keep that order.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `weights.len() != batch.len()` or
    /// `acc.len() != self.num_params()`.
    fn grad_from_diffs(&self, p: &[f64], batch: &DiffBatch<'_>, weights: &[f64], acc: &mut [f64]) {
        debug_assert_eq!(weights.len(), batch.len());
        debug_assert_eq!(acc.len(), self.num_params());
        let mut kg = vec![0.0; self.num_params()];
        for (q, &w) in weights.iter().enumerate() {
            let (a, b) = batch.pair_points(q);
            self.eval_grad(p, a, b, &mut kg);
            for (g, &dk) in acc.iter_mut().zip(kg.iter()) {
                *g += w * dk;
            }
        }
    }

    /// [`Kernel::grad_from_diffs`] with the kernel values of the same batch
    /// (as produced by [`Kernel::eval_from_diffs`] under the same `p`)
    /// supplied by the caller. The NLML gradient always evaluates the kernel
    /// matrix first, so kernels whose parameter gradient factors through the
    /// kernel value (e.g. squared-exponential: `∂k/∂log σ_f = 2k`,
    /// `∂k/∂log ℓ_i = k z_i²`) can skip the per-pair `exp` entirely. The
    /// supplied value is the bit-exact `f64` the gradient path would have
    /// recomputed, so overrides remain bit-identical. The default ignores
    /// `values` and delegates to [`Kernel::grad_from_diffs`].
    ///
    /// # Panics
    ///
    /// Implementations may panic if `values.len() != batch.len()` or the
    /// other slice lengths disagree as in [`Kernel::grad_from_diffs`].
    fn grad_from_diffs_with_values(
        &self,
        p: &[f64],
        batch: &DiffBatch<'_>,
        weights: &[f64],
        values: &[f64],
        acc: &mut [f64],
    ) {
        debug_assert_eq!(values.len(), batch.len());
        let _ = values;
        self.grad_from_diffs(p, batch, weights, acc);
    }

    /// A reasonable starting point for hyperparameter optimization, assuming
    /// inputs roughly in the unit box and standardized outputs.
    fn default_params(&self) -> Vec<f64>;

    /// Box bounds `(lower, upper)` for the log-parameters.
    fn param_bounds(&self) -> (Vec<f64>, Vec<f64>);
}

/// Squared-exponential (RBF) kernel with automatic relevance determination:
/// `k(a,b) = σ_f² exp(-½ Σ_i (a_i-b_i)²/ℓ_i²)` — paper eq. (2).
///
/// Parameter layout: `[log σ_f, log ℓ_1, …, log ℓ_d]`.
///
/// # Examples
///
/// ```
/// use mfbo_gp::kernel::{Kernel, SquaredExponential};
///
/// let k = SquaredExponential::new(2);
/// let p = k.default_params();
/// let same = k.eval(&p, &[0.3, 0.4], &[0.3, 0.4]);
/// let far = k.eval(&p, &[0.3, 0.4], &[5.0, -5.0]);
/// assert!(same > far); // covariance decays with distance
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SquaredExponential {
    dim: usize,
}

impl SquaredExponential {
    /// Creates an SE-ARD kernel over `dim` input dimensions.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "kernel dimension must be positive");
        SquaredExponential { dim }
    }
}

impl Kernel for SquaredExponential {
    fn input_dim(&self) -> usize {
        self.dim
    }

    fn num_params(&self) -> usize {
        1 + self.dim
    }

    fn eval(&self, p: &[f64], a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(p.len(), self.num_params());
        debug_assert_eq!(a.len(), self.dim);
        debug_assert_eq!(b.len(), self.dim);
        let sf2 = (2.0 * p[0]).exp();
        let mut q = 0.0;
        for i in 0..self.dim {
            let inv_l = (-p[1 + i]).exp();
            let z = (a[i] - b[i]) * inv_l;
            q += z * z;
        }
        sf2 * (-0.5 * q).exp()
    }

    fn eval_grad(&self, p: &[f64], a: &[f64], b: &[f64], grad: &mut [f64]) -> f64 {
        debug_assert_eq!(grad.len(), self.num_params());
        let sf2 = (2.0 * p[0]).exp();
        let mut q = 0.0;
        let mut z2 = vec![0.0; self.dim];
        for i in 0..self.dim {
            let inv_l = (-p[1 + i]).exp();
            let z = (a[i] - b[i]) * inv_l;
            z2[i] = z * z;
            q += z2[i];
        }
        let k = sf2 * (-0.5 * q).exp();
        // ∂k/∂log σ_f = 2k;   ∂k/∂log ℓ_i = k · z_i².
        grad[0] = 2.0 * k;
        for i in 0..self.dim {
            grad[1 + i] = k * z2[i];
        }
        k
    }

    fn eval_from_diffs(&self, p: &[f64], batch: &DiffBatch<'_>, out: &mut [f64]) {
        debug_assert_eq!(out.len(), batch.len());
        debug_assert_eq!(batch.dim(), self.dim);
        // The only parameter-dependent scalars: hoisted out of the pair
        // loop. Per pair, the arithmetic below is the exact sequence of
        // `eval` (signed difference × inv_l, squared, accumulated in
        // dimension order), so values are bit-identical.
        let sf2 = (2.0 * p[0]).exp();
        let inv_l: Vec<f64> = p[1..1 + self.dim].iter().map(|&l| (-l).exp()).collect();
        if let Some((be, rows)) = batch.simd_rows() {
            // Vectorized across pairs: `sq_norm` fills `out` with the exact
            // `q` each scalar pair iteration would accumulate (ascending
            // dimension order, separate mul and add), then the
            // parameter-dependent finish runs per entry as before.
            mfbo_simd::sq_norm(be, rows, batch.len(), &inv_l, out);
            for o in out.iter_mut() {
                *o = sf2 * (-0.5 * *o).exp();
            }
            return;
        }
        for (d, o) in batch.diffs().chunks_exact(self.dim).zip(out.iter_mut()) {
            let mut q = 0.0;
            for (di, li) in d.iter().zip(&inv_l) {
                let z = di * li;
                q += z * z;
            }
            *o = sf2 * (-0.5 * q).exp();
        }
    }

    fn grad_from_diffs(&self, p: &[f64], batch: &DiffBatch<'_>, weights: &[f64], acc: &mut [f64]) {
        debug_assert_eq!(weights.len(), batch.len());
        debug_assert_eq!(acc.len(), self.num_params());
        debug_assert_eq!(batch.dim(), self.dim);
        let sf2 = (2.0 * p[0]).exp();
        let inv_l: Vec<f64> = p[1..1 + self.dim].iter().map(|&l| (-l).exp()).collect();
        // One scratch for the whole batch instead of `eval_grad`'s
        // per-pair allocation.
        let mut z2 = vec![0.0; self.dim];
        if let Some((be, _)) = batch.simd_rows() {
            // Vectorized across dimensions within each pair; the per-pair
            // accumulation into `acc` keeps the scalar pair order, so every
            // partial sum matches the scalar path bit for bit.
            let (acc0, accl) = acc.split_at_mut(1);
            for (d, &w) in batch.diffs().chunks_exact(self.dim).zip(weights.iter()) {
                mfbo_simd::z2_into(be, d, &inv_l, &mut z2);
                let mut q = 0.0;
                for &z2i in &z2 {
                    q += z2i;
                }
                let k = sf2 * (-0.5 * q).exp();
                acc0[0] += w * (2.0 * k);
                mfbo_simd::accum_scaled(be, accl, &z2, k, w);
            }
            return;
        }
        for (d, &w) in batch.diffs().chunks_exact(self.dim).zip(weights.iter()) {
            let mut q = 0.0;
            for i in 0..self.dim {
                let z = d[i] * inv_l[i];
                z2[i] = z * z;
                q += z2[i];
            }
            let k = sf2 * (-0.5 * q).exp();
            acc[0] += w * (2.0 * k);
            for i in 0..self.dim {
                acc[1 + i] += w * (k * z2[i]);
            }
        }
    }

    fn grad_from_diffs_with_values(
        &self,
        p: &[f64],
        batch: &DiffBatch<'_>,
        weights: &[f64],
        values: &[f64],
        acc: &mut [f64],
    ) {
        debug_assert_eq!(weights.len(), batch.len());
        debug_assert_eq!(values.len(), batch.len());
        debug_assert_eq!(acc.len(), self.num_params());
        debug_assert_eq!(batch.dim(), self.dim);
        // The SE gradient factors through the kernel value (`2k` and
        // `k z_i²`), and `values[q]` is the bit-exact `k` the pair loop of
        // `grad_from_diffs` would recompute — so the per-pair `exp`
        // disappears and only the `z_i²` products remain.
        let inv_l: Vec<f64> = p[1..1 + self.dim].iter().map(|&l| (-l).exp()).collect();
        if let Some((be, _)) = batch.simd_rows() {
            let (acc0, accl) = acc.split_at_mut(1);
            for ((d, &w), &k) in batch
                .diffs()
                .chunks_exact(self.dim)
                .zip(weights.iter())
                .zip(values.iter())
            {
                acc0[0] += w * (2.0 * k);
                mfbo_simd::accum_weighted_sq(be, accl, d, &inv_l, k, w);
            }
            return;
        }
        for ((d, &w), &k) in batch
            .diffs()
            .chunks_exact(self.dim)
            .zip(weights.iter())
            .zip(values.iter())
        {
            acc[0] += w * (2.0 * k);
            for i in 0..self.dim {
                let z = d[i] * inv_l[i];
                acc[1 + i] += w * (k * (z * z));
            }
        }
    }

    fn default_params(&self) -> Vec<f64> {
        // σ_f = 1, ℓ_i = 0.3 of the unit box.
        let mut p = vec![0.0];
        p.extend(std::iter::repeat_n((0.3f64).ln(), self.dim));
        p
    }

    fn param_bounds(&self) -> (Vec<f64>, Vec<f64>) {
        // σ_f ∈ [e^-3, e^3]; ℓ ∈ [e^-5, e^3] ≈ [0.0067, 20] of the unit box.
        let mut lo = vec![-3.0];
        let mut hi = vec![3.0];
        lo.extend(std::iter::repeat_n(-5.0, self.dim));
        hi.extend(std::iter::repeat_n(3.0, self.dim));
        (lo, hi)
    }
}

/// Matérn-5/2 kernel with ARD lengthscales:
/// `k = σ_f² (1 + √5 r + 5r²/3) exp(-√5 r)` with
/// `r = sqrt(Σ (a_i-b_i)²/ℓ_i²)`.
///
/// Not used by the paper (which fixes the SE kernel), but provided for the
/// ablation benches: circuit responses with sharp turn-on behaviour are
/// often better modelled by the rougher Matérn family.
///
/// Parameter layout: `[log σ_f, log ℓ_1, …, log ℓ_d]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matern52 {
    dim: usize,
}

impl Matern52 {
    /// Creates a Matérn-5/2 kernel over `dim` input dimensions.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "kernel dimension must be positive");
        Matern52 { dim }
    }
}

impl Kernel for Matern52 {
    fn input_dim(&self) -> usize {
        self.dim
    }

    fn num_params(&self) -> usize {
        1 + self.dim
    }

    fn eval(&self, p: &[f64], a: &[f64], b: &[f64]) -> f64 {
        let sf2 = (2.0 * p[0]).exp();
        let mut q = 0.0;
        for i in 0..self.dim {
            let inv_l = (-p[1 + i]).exp();
            let z = (a[i] - b[i]) * inv_l;
            q += z * z;
        }
        let r = q.sqrt();
        let s5r = 5.0f64.sqrt() * r;
        sf2 * (1.0 + s5r + 5.0 * q / 3.0) * (-s5r).exp()
    }

    fn eval_grad(&self, p: &[f64], a: &[f64], b: &[f64], grad: &mut [f64]) -> f64 {
        let sf2 = (2.0 * p[0]).exp();
        let mut q = 0.0;
        let mut z2 = vec![0.0; self.dim];
        for i in 0..self.dim {
            let inv_l = (-p[1 + i]).exp();
            let z = (a[i] - b[i]) * inv_l;
            z2[i] = z * z;
            q += z2[i];
        }
        let r = q.sqrt();
        let sqrt5 = 5.0f64.sqrt();
        let s5r = sqrt5 * r;
        let e = (-s5r).exp();
        let k = sf2 * (1.0 + s5r + 5.0 * q / 3.0) * e;
        grad[0] = 2.0 * k;
        // dk/dr = -(5r/3)(1 + √5 r) σ_f² e^{-√5 r};
        // ∂r/∂log ℓ_i = -z_i²/r  (for r > 0).
        if r > 1e-300 {
            let dk_dr = -(5.0 * r / 3.0) * (1.0 + s5r) * sf2 * e;
            for i in 0..self.dim {
                grad[1 + i] = dk_dr * (-z2[i] / r);
            }
        } else {
            for g in grad[1..].iter_mut() {
                *g = 0.0;
            }
        }
        k
    }

    fn eval_from_diffs(&self, p: &[f64], batch: &DiffBatch<'_>, out: &mut [f64]) {
        debug_assert_eq!(out.len(), batch.len());
        debug_assert_eq!(batch.dim(), self.dim);
        let sf2 = (2.0 * p[0]).exp();
        let inv_l: Vec<f64> = p[1..1 + self.dim].iter().map(|&l| (-l).exp()).collect();
        if let Some((be, rows)) = batch.simd_rows() {
            // `sq_norm` reproduces each pair's `q` bit for bit; the √·/exp
            // finish is per entry in both paths.
            mfbo_simd::sq_norm(be, rows, batch.len(), &inv_l, out);
            for o in out.iter_mut() {
                let q = *o;
                let r = q.sqrt();
                let s5r = 5.0f64.sqrt() * r;
                *o = sf2 * (1.0 + s5r + 5.0 * q / 3.0) * (-s5r).exp();
            }
            return;
        }
        for (d, o) in batch.diffs().chunks_exact(self.dim).zip(out.iter_mut()) {
            let mut q = 0.0;
            for (di, li) in d.iter().zip(&inv_l) {
                let z = di * li;
                q += z * z;
            }
            let r = q.sqrt();
            let s5r = 5.0f64.sqrt() * r;
            *o = sf2 * (1.0 + s5r + 5.0 * q / 3.0) * (-s5r).exp();
        }
    }

    fn grad_from_diffs(&self, p: &[f64], batch: &DiffBatch<'_>, weights: &[f64], acc: &mut [f64]) {
        debug_assert_eq!(weights.len(), batch.len());
        debug_assert_eq!(acc.len(), self.num_params());
        debug_assert_eq!(batch.dim(), self.dim);
        let sf2 = (2.0 * p[0]).exp();
        let inv_l: Vec<f64> = p[1..1 + self.dim].iter().map(|&l| (-l).exp()).collect();
        let sqrt5 = 5.0f64.sqrt();
        let mut z2 = vec![0.0; self.dim];
        for (d, &w) in batch.diffs().chunks_exact(self.dim).zip(weights.iter()) {
            let mut q = 0.0;
            for i in 0..self.dim {
                let z = d[i] * inv_l[i];
                z2[i] = z * z;
                q += z2[i];
            }
            let r = q.sqrt();
            let s5r = sqrt5 * r;
            let e = (-s5r).exp();
            let k = sf2 * (1.0 + s5r + 5.0 * q / 3.0) * e;
            acc[0] += w * (2.0 * k);
            if r > 1e-300 {
                let dk_dr = -(5.0 * r / 3.0) * (1.0 + s5r) * sf2 * e;
                for i in 0..self.dim {
                    acc[1 + i] += w * (dk_dr * (-z2[i] / r));
                }
            } else {
                // Not a no-op: the scalar path accumulates `w · 0.0`, whose
                // sign can flip an accumulated `-0.0` to `+0.0`. Replicate
                // it so the batch gradient stays bit-identical.
                for i in 0..self.dim {
                    acc[1 + i] += w * 0.0;
                }
            }
        }
    }

    fn default_params(&self) -> Vec<f64> {
        let mut p = vec![0.0];
        p.extend(std::iter::repeat_n((0.3f64).ln(), self.dim));
        p
    }

    fn param_bounds(&self) -> (Vec<f64>, Vec<f64>) {
        let mut lo = vec![-3.0];
        let mut hi = vec![3.0];
        lo.extend(std::iter::repeat_n(-5.0, self.dim));
        hi.extend(std::iter::repeat_n(3.0, self.dim));
        (lo, hi)
    }
}

/// The nonlinear-information-fusion kernel of paper eq. (9):
///
/// `k_h((x, f), (x', f')) = k1(f, f') · k2(x, x') + k3(x, x')`
///
/// operating on *augmented* inputs `z = (x_1 … x_d, f)` where `f` is the
/// low-fidelity posterior mean at `x`. `k1` captures the (possibly strongly
/// nonlinear) map `z(·)` from low- to high-fidelity output; `k2` modulates
/// that map across the design space (space-dependent correlation); `k3`
/// models the independent discrepancy GP `δ(x)`.
///
/// All three components are squared-exponential. Parameter layout:
/// `[θ1 (2: log σ_f, log ℓ_f), θ2 (1+d), θ3 (1+d)]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NargpKernel {
    /// Design-space dimensionality `d` (the augmented input has `d + 1`).
    design_dim: usize,
    k1: SquaredExponential,
    k2: SquaredExponential,
    k3: SquaredExponential,
}

impl NargpKernel {
    /// Creates the fusion kernel for a `design_dim`-dimensional design
    /// space; the kernel itself operates on `design_dim + 1` inputs.
    pub fn new(design_dim: usize) -> Self {
        assert!(design_dim > 0, "design dimension must be positive");
        NargpKernel {
            design_dim,
            k1: SquaredExponential::new(1),
            k2: SquaredExponential::new(design_dim),
            k3: SquaredExponential::new(design_dim),
        }
    }

    /// The design-space dimensionality `d`.
    pub fn design_dim(&self) -> usize {
        self.design_dim
    }

    fn split<'a>(&self, p: &'a [f64]) -> (&'a [f64], &'a [f64], &'a [f64]) {
        let n1 = self.k1.num_params();
        let n2 = self.k2.num_params();
        let n3 = self.k3.num_params();
        debug_assert_eq!(p.len(), n1 + n2 + n3);
        (&p[..n1], &p[n1..n1 + n2], &p[n1 + n2..])
    }
}

impl Kernel for NargpKernel {
    fn input_dim(&self) -> usize {
        self.design_dim + 1
    }

    fn num_params(&self) -> usize {
        self.k1.num_params() + self.k2.num_params() + self.k3.num_params()
    }

    fn eval(&self, p: &[f64], a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), self.input_dim());
        debug_assert_eq!(b.len(), self.input_dim());
        let d = self.design_dim;
        let (p1, p2, p3) = self.split(p);
        let fa = &a[d..];
        let fb = &b[d..];
        let xa = &a[..d];
        let xb = &b[..d];
        self.k1.eval(p1, fa, fb) * self.k2.eval(p2, xa, xb) + self.k3.eval(p3, xa, xb)
    }

    fn eval_grad(&self, p: &[f64], a: &[f64], b: &[f64], grad: &mut [f64]) -> f64 {
        let d = self.design_dim;
        let (p1, p2, p3) = self.split(p);
        let n1 = self.k1.num_params();
        let n2 = self.k2.num_params();
        let fa = &a[d..];
        let fb = &b[d..];
        let xa = &a[..d];
        let xb = &b[..d];

        let (g1, rest) = grad.split_at_mut(n1);
        let (g2, g3) = rest.split_at_mut(n2);
        let k1v = self.k1.eval_grad(p1, fa, fb, g1);
        let k2v = self.k2.eval_grad(p2, xa, xb, g2);
        let k3v = self.k3.eval_grad(p3, xa, xb, g3);
        // Product rule for the k1·k2 term; k3 is additive.
        for g in g1.iter_mut() {
            *g *= k2v;
        }
        for g in g2.iter_mut() {
            *g *= k1v;
        }
        k1v * k2v + k3v
    }

    fn eval_from_diffs(&self, p: &[f64], batch: &DiffBatch<'_>, out: &mut [f64]) {
        debug_assert_eq!(out.len(), batch.len());
        debug_assert_eq!(batch.dim(), self.input_dim());
        let d = self.design_dim;
        let (p1, p2, p3) = self.split(p);
        // All three components are SE: hoist every parameter transform.
        let sf2_1 = (2.0 * p1[0]).exp();
        let inv_l1 = (-p1[1]).exp();
        let sf2_2 = (2.0 * p2[0]).exp();
        let inv_l2: Vec<f64> = p2[1..1 + d].iter().map(|&l| (-l).exp()).collect();
        let sf2_3 = (2.0 * p3[0]).exp();
        let inv_l3: Vec<f64> = p3[1..1 + d].iter().map(|&l| (-l).exp()).collect();
        if let Some((be, rows)) = batch.simd_rows() {
            // Dim-major rows split cleanly into the design-space block
            // (dimensions 0..d) and the fidelity channel (dimension d), so
            // each SE component is one `sq_norm` sweep across all pairs.
            // `sq_norm` with a single dimension yields `0.0 + z_f²`, which
            // is bit-identical to the scalar path's bare `z_f · z_f` (a
            // square is never -0.0).
            let count = batch.len();
            let (design_rows, fid_row) = rows.split_at(d * count);
            let mut q1 = vec![0.0; count];
            let mut q3 = vec![0.0; count];
            mfbo_simd::sq_norm(be, fid_row, count, &[inv_l1], &mut q1);
            mfbo_simd::sq_norm(be, design_rows, count, &inv_l3, &mut q3);
            mfbo_simd::sq_norm(be, design_rows, count, &inv_l2, out);
            for ((o, &q1v), &q3v) in out.iter_mut().zip(&q1).zip(&q3) {
                let k1v = sf2_1 * (-0.5 * q1v).exp();
                let k2v = sf2_2 * (-0.5 * *o).exp();
                let k3v = sf2_3 * (-0.5 * q3v).exp();
                *o = k1v * k2v + k3v;
            }
            return;
        }
        for (df, o) in batch.diffs().chunks_exact(d + 1).zip(out.iter_mut()) {
            // The augmented layout is (x_1 … x_d, f): the fidelity channel
            // difference is the last entry, the design-space differences
            // the first `d`.
            let zf = df[d] * inv_l1;
            let k1v = sf2_1 * (-0.5 * (zf * zf)).exp();
            let mut q2 = 0.0;
            for (di, li) in df[..d].iter().zip(&inv_l2) {
                let z = di * li;
                q2 += z * z;
            }
            let k2v = sf2_2 * (-0.5 * q2).exp();
            let mut q3 = 0.0;
            for (di, li) in df[..d].iter().zip(&inv_l3) {
                let z = di * li;
                q3 += z * z;
            }
            let k3v = sf2_3 * (-0.5 * q3).exp();
            *o = k1v * k2v + k3v;
        }
    }

    fn grad_from_diffs(&self, p: &[f64], batch: &DiffBatch<'_>, weights: &[f64], acc: &mut [f64]) {
        debug_assert_eq!(weights.len(), batch.len());
        debug_assert_eq!(acc.len(), self.num_params());
        debug_assert_eq!(batch.dim(), self.input_dim());
        let d = self.design_dim;
        let (p1, p2, p3) = self.split(p);
        let n1 = self.k1.num_params();
        let n2 = self.k2.num_params();
        let sf2_1 = (2.0 * p1[0]).exp();
        let inv_l1 = (-p1[1]).exp();
        let sf2_2 = (2.0 * p2[0]).exp();
        let inv_l2: Vec<f64> = p2[1..1 + d].iter().map(|&l| (-l).exp()).collect();
        let sf2_3 = (2.0 * p3[0]).exp();
        let inv_l3: Vec<f64> = p3[1..1 + d].iter().map(|&l| (-l).exp()).collect();
        let mut z2_2 = vec![0.0; d];
        let mut z2_3 = vec![0.0; d];
        if let Some((be, _)) = batch.simd_rows() {
            // Vectorized across design dimensions within each pair, scalar
            // over the single fidelity channel; per-pair accumulation order
            // into `acc` is unchanged.
            for (df, &w) in batch.diffs().chunks_exact(d + 1).zip(weights.iter()) {
                let zf = df[d] * inv_l1;
                let z2f = zf * zf;
                let k1v = sf2_1 * (-0.5 * z2f).exp();
                mfbo_simd::z2_into(be, &df[..d], &inv_l2, &mut z2_2);
                let mut q2 = 0.0;
                for &v in &z2_2 {
                    q2 += v;
                }
                let k2v = sf2_2 * (-0.5 * q2).exp();
                mfbo_simd::z2_into(be, &df[..d], &inv_l3, &mut z2_3);
                let mut q3 = 0.0;
                for &v in &z2_3 {
                    q3 += v;
                }
                let k3v = sf2_3 * (-0.5 * q3).exp();
                acc[0] += w * ((2.0 * k1v) * k2v);
                acc[1] += w * ((k1v * z2f) * k2v);
                acc[n1] += w * ((2.0 * k2v) * k1v);
                mfbo_simd::accum_scaled2(be, &mut acc[n1 + 1..n1 + 1 + d], &z2_2, k2v, k1v, w);
                acc[n1 + n2] += w * (2.0 * k3v);
                mfbo_simd::accum_scaled(be, &mut acc[n1 + n2 + 1..], &z2_3, k3v, w);
            }
            return;
        }
        for (df, &w) in batch.diffs().chunks_exact(d + 1).zip(weights.iter()) {
            let zf = df[d] * inv_l1;
            let z2f = zf * zf;
            let k1v = sf2_1 * (-0.5 * z2f).exp();
            let mut q2 = 0.0;
            for i in 0..d {
                let z = df[i] * inv_l2[i];
                z2_2[i] = z * z;
                q2 += z2_2[i];
            }
            let k2v = sf2_2 * (-0.5 * q2).exp();
            let mut q3 = 0.0;
            for i in 0..d {
                let z = df[i] * inv_l3[i];
                z2_3[i] = z * z;
                q3 += z2_3[i];
            }
            let k3v = sf2_3 * (-0.5 * q3).exp();
            // Product rule exactly as `eval_grad`: component gradients
            // first, then the cross-scaling, then the weighted
            // accumulation — each product parenthesized the way the scalar
            // path computes it.
            acc[0] += w * ((2.0 * k1v) * k2v);
            acc[1] += w * ((k1v * z2f) * k2v);
            acc[n1] += w * ((2.0 * k2v) * k1v);
            for i in 0..d {
                acc[n1 + 1 + i] += w * ((k2v * z2_2[i]) * k1v);
            }
            acc[n1 + n2] += w * (2.0 * k3v);
            for i in 0..d {
                acc[n1 + n2 + 1 + i] += w * (k3v * z2_3[i]);
            }
        }
    }

    fn default_params(&self) -> Vec<f64> {
        let mut p = self.k1.default_params();
        p.extend(self.k2.default_params());
        // Start the discrepancy term small: the prior belief is that the
        // low-fidelity map explains most of the high-fidelity signal.
        let mut p3 = self.k3.default_params();
        p3[0] = -2.0;
        p.extend(p3);
        p
    }

    fn param_bounds(&self) -> (Vec<f64>, Vec<f64>) {
        let (l1, u1) = self.k1.param_bounds();
        let (l2, u2) = self.k2.param_bounds();
        let (l3, u3) = self.k3.param_bounds();
        let mut lo = l1;
        lo.extend(l2);
        lo.extend(l3);
        let mut hi = u1;
        hi.extend(u2);
        hi.extend(u3);
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Finite-difference check of `eval_grad` against `eval`.
    fn check_grad<K: Kernel>(k: &K, p: &[f64], a: &[f64], b: &[f64]) {
        let mut grad = vec![0.0; k.num_params()];
        let v = k.eval_grad(p, a, b, &mut grad);
        assert!((v - k.eval(p, a, b)).abs() < 1e-14);
        let h = 1e-6;
        for j in 0..k.num_params() {
            let mut pp = p.to_vec();
            pp[j] += h;
            let fp = k.eval(&pp, a, b);
            pp[j] -= 2.0 * h;
            let fm = k.eval(&pp, a, b);
            let num = (fp - fm) / (2.0 * h);
            assert!(
                (num - grad[j]).abs() < 1e-5 * (1.0 + num.abs()),
                "param {j}: numeric {num} vs analytic {}",
                grad[j]
            );
        }
    }

    #[test]
    fn se_value_at_zero_distance_is_sf2() {
        let k = SquaredExponential::new(3);
        let p = vec![0.5, 0.0, 0.0, 0.0];
        let x = [0.1, 0.2, 0.3];
        assert!((k.eval(&p, &x, &x) - (1.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn se_symmetry() {
        let k = SquaredExponential::new(2);
        let p = k.default_params();
        let a = [0.1, 0.9];
        let b = [0.7, 0.2];
        assert!((k.eval(&p, &a, &b) - k.eval(&p, &b, &a)).abs() < 1e-15);
    }

    #[test]
    fn se_gradient_matches_finite_differences() {
        let k = SquaredExponential::new(2);
        check_grad(&k, &[0.3, -0.5, 0.2], &[0.1, 0.9], &[0.4, 0.3]);
        check_grad(&k, &[-1.0, 1.0, -2.0], &[0.0, 0.0], &[0.0, 0.0]);
    }

    #[test]
    fn se_ard_lengthscales_act_per_dimension() {
        let k = SquaredExponential::new(2);
        // Long lengthscale on dim 0, short on dim 1.
        let p = vec![0.0, 2.0, -2.0];
        let base = [0.0, 0.0];
        let move0 = k.eval(&p, &base, &[0.5, 0.0]);
        let move1 = k.eval(&p, &base, &[0.0, 0.5]);
        assert!(move0 > move1, "short lengthscale should decay faster");
    }

    #[test]
    fn matern_value_and_decay() {
        let k = Matern52::new(1);
        let p = vec![0.0, 0.0];
        let k0 = k.eval(&p, &[0.0], &[0.0]);
        assert!((k0 - 1.0).abs() < 1e-12);
        let k1 = k.eval(&p, &[0.0], &[1.0]);
        let k2 = k.eval(&p, &[0.0], &[2.0]);
        assert!(k0 > k1 && k1 > k2);
    }

    #[test]
    fn matern_gradient_matches_finite_differences() {
        let k = Matern52::new(3);
        check_grad(
            &k,
            &[0.2, -0.3, 0.4, 0.0],
            &[0.1, 0.5, 0.9],
            &[0.3, 0.2, 0.8],
        );
    }

    #[test]
    fn matern_gradient_at_coincident_points_is_finite() {
        let k = Matern52::new(2);
        let mut g = vec![0.0; 3];
        let v = k.eval_grad(&[0.0, 0.0, 0.0], &[0.5, 0.5], &[0.5, 0.5], &mut g);
        assert!((v - 1.0).abs() < 1e-12);
        assert!(g.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn nargp_layout_and_value() {
        let k = NargpKernel::new(2);
        assert_eq!(k.input_dim(), 3);
        assert_eq!(k.num_params(), 2 + 3 + 3);
        let p = k.default_params();
        assert_eq!(p.len(), k.num_params());
        let a = [0.1, 0.2, 0.5]; // (x1, x2, f_l)
        let b = [0.3, 0.1, 0.4];
        let v = k.eval(&p, &a, &b);
        assert!(v.is_finite() && v > 0.0);
        // Symmetry.
        assert!((v - k.eval(&p, &b, &a)).abs() < 1e-15);
    }

    #[test]
    fn nargp_gradient_matches_finite_differences() {
        let k = NargpKernel::new(2);
        let p: Vec<f64> = vec![0.1, -0.2, 0.3, 0.0, -0.4, -1.0, 0.5, -0.3];
        check_grad(&k, &p, &[0.1, 0.9, 0.3], &[0.5, 0.2, -0.1]);
    }

    #[test]
    fn nargp_reduces_to_discrepancy_when_k1_vanishes() {
        let k = NargpKernel::new(1);
        // σ_f of k1 pushed to e^-30 ≈ 0: only k3 remains.
        let p = vec![-30.0, 0.0, 0.0, 0.0, 0.2, -0.1];
        let a = [0.3, 5.0];
        let b = [0.7, -5.0];
        let direct = k.eval(&p, &a, &b);
        let k3 = SquaredExponential::new(1);
        let expect = k3.eval(&[0.2, -0.1], &[0.3], &[0.7]);
        assert!((direct - expect).abs() < 1e-12);
    }

    /// Batch hooks must reproduce the scalar paths bit for bit: values via
    /// the default per-pair fallback, gradients via the default weighted
    /// accumulation.
    fn check_batch_bit_identity<K: Kernel>(k: &K, p: &[f64], xs: &[Vec<f64>]) {
        let batch = crate::workspace::DiffBatch::lower_triangle(xs);
        let mut fast = vec![0.0; batch.len()];
        k.eval_from_diffs(p, &batch, &mut fast);
        for (q, &v) in fast.iter().enumerate() {
            let (a, b) = batch.pair_points(q);
            assert_eq!(v.to_bits(), k.eval(p, a, b).to_bits(), "pair {q}");
        }
        let weights: Vec<f64> = (0..batch.len())
            .map(|q| (q as f64 * 0.37).sin() - 0.3)
            .collect();
        let mut acc_fast = vec![0.0; k.num_params()];
        k.grad_from_diffs(p, &batch, &weights, &mut acc_fast);
        let mut acc_ref = vec![0.0; k.num_params()];
        let mut kg = vec![0.0; k.num_params()];
        for (q, &w) in weights.iter().enumerate() {
            let (a, b) = batch.pair_points(q);
            k.eval_grad(p, a, b, &mut kg);
            for (g, &dk) in acc_ref.iter_mut().zip(kg.iter()) {
                *g += w * dk;
            }
        }
        for (j, (f, r)) in acc_fast.iter().zip(&acc_ref).enumerate() {
            assert_eq!(f.to_bits(), r.to_bits(), "grad param {j}");
        }
        // Values-supplied gradient variant (fed the eval-pass output, as the
        // cached NLML does) must match the same reference.
        let mut acc_vals = vec![0.0; k.num_params()];
        k.grad_from_diffs_with_values(p, &batch, &weights, &fast, &mut acc_vals);
        for (j, (f, r)) in acc_vals.iter().zip(&acc_ref).enumerate() {
            assert_eq!(f.to_bits(), r.to_bits(), "grad-with-values param {j}");
        }
        // Diagonal batch must reproduce the scalar eval(x, x) terms.
        let dbatch = crate::workspace::DiffBatch::diagonal(xs);
        let mut dvals = vec![0.0; dbatch.len()];
        k.eval_from_diffs(p, &dbatch, &mut dvals);
        for (i, &v) in dvals.iter().enumerate() {
            assert_eq!(v.to_bits(), k.eval(p, &xs[i], &xs[i]).to_bits(), "diag {i}");
        }
    }

    #[test]
    fn batch_hooks_bit_identical_to_scalar_paths() {
        let xs: Vec<Vec<f64>> = (0..7)
            .map(|i| {
                (0..3)
                    .map(|t| ((i * 5 + t * 3) % 11) as f64 / 11.0)
                    .collect()
            })
            .collect();
        check_batch_bit_identity(&SquaredExponential::new(3), &[0.3, -0.5, 0.2, 0.9], &xs);
        check_batch_bit_identity(&Matern52::new(3), &[0.2, -0.3, 0.4, 0.0], &xs);
        check_batch_bit_identity(
            &NargpKernel::new(2),
            &[0.1, -0.2, 0.3, 0.0, -0.4, -1.0, 0.5, -0.3],
            &xs,
        );
    }

    #[test]
    fn bounds_contain_defaults() {
        for dim in [1usize, 3, 10] {
            let k = SquaredExponential::new(dim);
            let p = k.default_params();
            let (lo, hi) = k.param_bounds();
            for j in 0..p.len() {
                assert!(lo[j] <= p[j] && p[j] <= hi[j]);
            }
            let n = NargpKernel::new(dim);
            let p = n.default_params();
            let (lo, hi) = n.param_bounds();
            for j in 0..p.len() {
                assert!(lo[j] <= p[j] && p[j] <= hi[j]);
            }
        }
    }
}

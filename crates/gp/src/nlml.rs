//! Negative log marginal likelihood (paper eq. 3) and its gradient.
//!
//! The hyperparameter vector `θ` is the kernel's log-parameters with
//! `log σ_n` (observation-noise standard deviation) appended:
//! `θ = [kernel params…, log σ_n]`.
//!
//! `NLML(θ) = ½ (yᵀ K_θ⁻¹ y + log|K_θ| + N log 2π)` with
//! `K_θ = K(X, X) + σ_n² I`, and the gradient uses the classic identity
//! `∂NLML/∂θ_j = ½ tr((K⁻¹ − α αᵀ) ∂K/∂θ_j)` with `α = K⁻¹ y`.

use crate::kernel::Kernel;
use crate::workspace::DiffBatch;
use mfbo_linalg::{Cholesky, Matrix};

pub(crate) const LOG_2PI: f64 = 1.837_877_066_409_345_5;

/// Per-fit workspace for repeated NLML evaluations over a fixed point set.
///
/// Holds the pairwise signed-difference tensor ([`DiffBatch`]) that every
/// kernel-matrix build of the fit reuses — L-BFGS steps and restarts change
/// only the hyperparameters, so the `O(n² d)` difference computation is paid
/// once per fit instead of once per evaluation, and stationary kernels
/// additionally hoist their `O(n² d)` parameter `exp` calls out of the pair
/// loop (see [`Kernel::eval_from_diffs`]).
///
/// The workspace is read-only after construction and `Sync`: parallel
/// restarts share one instance.
pub struct NlmlWorkspace<'a> {
    batch: WsBatch<'a>,
    n: usize,
}

/// The difference tensor behind an [`NlmlWorkspace`]: built fresh for this
/// fit, or a reference to a batch shared across a bundle of fits over the
/// same point set.
enum WsBatch<'a> {
    Owned(DiffBatch<'a>),
    Shared(&'a DiffBatch<'a>),
}

impl<'a> NlmlWorkspace<'a> {
    /// Builds the lower-triangle difference tensor over `xs`.
    pub fn new(xs: &'a [Vec<f64>]) -> Self {
        NlmlWorkspace {
            batch: WsBatch::Owned(DiffBatch::lower_triangle(xs)),
            n: xs.len(),
        }
    }

    /// A workspace over a pre-built lower-triangle batch — the bundle
    /// fitters' sharing hook: the objective GP and every constraint GP train
    /// on the same `X`, so one difference tensor serves all of their NLML
    /// workspaces. Bit-identical to [`NlmlWorkspace::new`] over the same
    /// points (the batch holds the exact values a fresh build computes).
    ///
    /// # Panics
    ///
    /// Panics if `batch` does not cover the lower triangle of `n` points.
    pub fn from_batch(batch: &'a DiffBatch<'a>, n: usize) -> Self {
        assert_eq!(
            batch.len(),
            n * (n + 1) / 2,
            "shared batch pair count does not match the training set"
        );
        mfbo_telemetry::counter!("diffbatch_shared_hits", 1u64);
        NlmlWorkspace {
            batch: WsBatch::Shared(batch),
            n,
        }
    }

    /// The underlying difference tensor.
    fn batch(&self) -> &DiffBatch<'a> {
        match &self.batch {
            WsBatch::Owned(b) => b,
            WsBatch::Shared(b) => b,
        }
    }

    /// Number of training points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the workspace covers an empty point set.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

/// Assembles the noisy kernel matrix `K(X,X) + σ_n² I`.
pub(crate) fn kernel_matrix<K: Kernel>(
    kernel: &K,
    p: &[f64],
    log_noise: f64,
    xs: &[Vec<f64>],
) -> Matrix {
    let n = xs.len();
    let sn2 = (2.0 * log_noise).exp();
    let mut k = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let v = kernel.eval(p, &xs[i], &xs[j]);
            k[(i, j)] = v;
            k[(j, i)] = v;
        }
        k[(i, i)] += sn2;
    }
    mfbo_telemetry::counter!("kernel_matrix_builds", 1u64);
    k
}

/// [`kernel_matrix`] from a precomputed difference workspace: same matrix
/// bit for bit, but the per-pair kernel values come from the batch hook.
pub(crate) fn kernel_matrix_cached<K: Kernel>(
    kernel: &K,
    p: &[f64],
    log_noise: f64,
    ws: &NlmlWorkspace<'_>,
) -> Matrix {
    let mut kv = vec![0.0; ws.batch().len()];
    kernel.eval_from_diffs(p, ws.batch(), &mut kv);
    assemble_from_lower(ws.n, &kv, (2.0 * log_noise).exp())
}

/// Mirrors the noisy lower-triangle kernel values into a full symmetric
/// matrix — the assembly half of [`kernel_matrix`], shared by every cached
/// path so the gradient path can keep the value buffer alive.
fn assemble_from_lower(n: usize, kv: &[f64], sn2: f64) -> Matrix {
    let mut k = Matrix::zeros(n, n);
    let mut q = 0;
    for i in 0..n {
        for j in 0..=i {
            let v = kv[q];
            q += 1;
            k[(i, j)] = v;
            k[(j, i)] = v;
        }
        k[(i, i)] += sn2;
    }
    mfbo_telemetry::counter!("kernel_matrix_builds", 1u64);
    k
}

/// Computes the NLML for hyperparameters `theta = [kernel params…, log σ_n]`.
///
/// Returns `f64::INFINITY` when the kernel matrix cannot be factorized.
///
/// # Panics
///
/// Panics if `theta.len() != kernel.num_params() + 1` or if `xs`/`ys`
/// lengths disagree.
pub fn nlml<K: Kernel>(kernel: &K, theta: &[f64], xs: &[Vec<f64>], ys: &[f64]) -> f64 {
    assert_eq!(
        theta.len(),
        kernel.num_params() + 1,
        "theta layout mismatch"
    );
    assert_eq!(xs.len(), ys.len(), "xs/ys length mismatch");
    let (kp, log_noise) = theta.split_at(kernel.num_params());
    let n = xs.len();
    let km = kernel_matrix(kernel, kp, log_noise[0], xs);
    mfbo_telemetry::counter!("nlml_evals", 1u64);
    nlml_from_matrix(&km, n, ys)
}

/// [`nlml`] evaluated through a per-fit difference workspace — bit-identical
/// to the naive path, which it uses as its differential-testing reference.
///
/// # Panics
///
/// Panics if `theta.len() != kernel.num_params() + 1` or if the workspace
/// and `ys` lengths disagree.
pub fn nlml_cached<K: Kernel>(
    kernel: &K,
    theta: &[f64],
    ws: &NlmlWorkspace<'_>,
    ys: &[f64],
) -> f64 {
    assert_eq!(
        theta.len(),
        kernel.num_params() + 1,
        "theta layout mismatch"
    );
    assert_eq!(ws.n, ys.len(), "workspace/ys length mismatch");
    let (kp, log_noise) = theta.split_at(kernel.num_params());
    let km = kernel_matrix_cached(kernel, kp, log_noise[0], ws);
    mfbo_telemetry::counter!("nlml_evals", 1u64);
    nlml_from_matrix(&km, ws.n, ys)
}

fn nlml_from_matrix(km: &Matrix, n: usize, ys: &[f64]) -> f64 {
    let chol = match Cholesky::new_with_jitter(km, 1e-10, 1e-4) {
        Ok(c) => c,
        Err(_) => return f64::INFINITY,
    };
    let quad = chol.quad_form(ys);
    0.5 * (quad + chol.log_det() + n as f64 * LOG_2PI)
}

/// Computes the NLML and its gradient with respect to `theta`.
///
/// Returns `(f64::INFINITY, zeros)` when the kernel matrix cannot be
/// factorized — the L-BFGS line search treats that as an infeasible step.
///
/// # Panics
///
/// Panics if `theta.len() != kernel.num_params() + 1` or if `xs`/`ys`
/// lengths disagree.
pub fn nlml_with_grad<K: Kernel>(
    kernel: &K,
    theta: &[f64],
    xs: &[Vec<f64>],
    ys: &[f64],
) -> (f64, Vec<f64>) {
    assert_eq!(
        theta.len(),
        kernel.num_params() + 1,
        "theta layout mismatch"
    );
    assert_eq!(xs.len(), ys.len(), "xs/ys length mismatch");
    let np = kernel.num_params();
    let (kp, log_noise) = theta.split_at(np);
    let n = xs.len();
    let km = kernel_matrix(kernel, kp, log_noise[0], xs);
    mfbo_telemetry::counter!("nlml_evals", 1u64);
    let chol = match Cholesky::new_with_jitter(&km, 1e-10, 1e-4) {
        Ok(c) => c,
        Err(_) => return (f64::INFINITY, vec![0.0; theta.len()]),
    };
    let alpha = chol.solve_vec(ys);
    let value = 0.5 * (mfbo_linalg::dot(ys, &alpha) + chol.log_det() + n as f64 * LOG_2PI);

    // W = K⁻¹ − α αᵀ (symmetric).
    let kinv = chol.inverse();
    let mut grad = vec![0.0; theta.len()];
    let mut kg = vec![0.0; np];
    let sn2 = (2.0 * log_noise[0]).exp();
    for i in 0..n {
        for j in 0..=i {
            let w = kinv[(i, j)] - alpha[i] * alpha[j];
            let weight = if i == j { 0.5 * w } else { w };
            kernel.eval_grad(kp, &xs[i], &xs[j], &mut kg);
            for (g, &dk) in grad[..np].iter_mut().zip(kg.iter()) {
                *g += weight * dk;
            }
            if i == j {
                // ∂K_ii/∂log σ_n = 2 σ_n².
                grad[np] += weight * 2.0 * sn2;
            }
        }
    }
    (value, grad)
}

/// [`nlml_with_grad`] evaluated through a per-fit difference workspace.
///
/// Bit-identical to the naive path: the trace weights `Wᵢⱼ` are computed in
/// the same lower-triangle order and handed to
/// [`Kernel::grad_from_diffs_with_values`] (together with the kernel values
/// the eval pass already produced), whose accumulation contract matches the
/// naive pair-by-pair loop exactly. The noise-slot gradient is a separate
/// accumulator, so summing it over the diagonal afterwards reproduces the
/// naive interleaved order bit for bit.
///
/// # Panics
///
/// Panics if `theta.len() != kernel.num_params() + 1` or if the workspace
/// and `ys` lengths disagree.
pub fn nlml_with_grad_cached<K: Kernel>(
    kernel: &K,
    theta: &[f64],
    ws: &NlmlWorkspace<'_>,
    ys: &[f64],
) -> (f64, Vec<f64>) {
    assert_eq!(
        theta.len(),
        kernel.num_params() + 1,
        "theta layout mismatch"
    );
    assert_eq!(ws.n, ys.len(), "workspace/ys length mismatch");
    let np = kernel.num_params();
    let (kp, log_noise) = theta.split_at(np);
    let n = ws.n;
    // Keep the raw (noise-free) kernel values of the eval pass alive: the
    // gradient hook below reuses them, saving kernels whose gradient
    // factors through the value a second per-pair `exp` sweep.
    let mut kv = vec![0.0; ws.batch().len()];
    kernel.eval_from_diffs(kp, ws.batch(), &mut kv);
    let sn2 = (2.0 * log_noise[0]).exp();
    let km = assemble_from_lower(n, &kv, sn2);
    mfbo_telemetry::counter!("nlml_evals", 1u64);
    let chol = match Cholesky::new_with_jitter(&km, 1e-10, 1e-4) {
        Ok(c) => c,
        Err(_) => return (f64::INFINITY, vec![0.0; theta.len()]),
    };
    let alpha = chol.solve_vec(ys);
    let value = 0.5 * (mfbo_linalg::dot(ys, &alpha) + chol.log_det() + n as f64 * LOG_2PI);

    // W = K⁻¹ − α αᵀ (symmetric), flattened in lower-triangle pair order
    // (diagonal entries carry the ½ trace factor). Only the lower triangle
    // of K⁻¹ is read, so the early-stopped inverse suffices — its computed
    // entries are bit-identical to the full inverse.
    let kinv = chol.inverse_lower();
    let mut weights = vec![0.0; ws.batch().len()];
    let mut q = 0;
    for i in 0..n {
        for j in 0..=i {
            let w = kinv[(i, j)] - alpha[i] * alpha[j];
            weights[q] = if i == j { 0.5 * w } else { w };
            q += 1;
        }
    }
    let mut grad = vec![0.0; theta.len()];
    kernel.grad_from_diffs_with_values(kp, ws.batch(), &weights, &kv, &mut grad[..np]);
    for i in 0..n {
        // Diagonal pair (i, i) sits at lower-triangle index i(i+3)/2.
        let weight = weights[i * (i + 3) / 2];
        grad[np] += weight * 2.0 * sn2;
    }
    (value, grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{NargpKernel, SquaredExponential};

    fn toy_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..12).map(|i| vec![i as f64 / 11.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (4.0 * x[0]).sin()).collect();
        (xs, ys)
    }

    #[test]
    fn value_is_finite_for_reasonable_params() {
        let (xs, ys) = toy_data();
        let k = SquaredExponential::new(1);
        let mut theta = k.default_params();
        theta.push(-2.0);
        let v = nlml(&k, &theta, &xs, &ys);
        assert!(v.is_finite());
    }

    #[test]
    fn grad_matches_finite_differences_se() {
        let (xs, ys) = toy_data();
        let k = SquaredExponential::new(1);
        let theta = vec![0.2, -0.8, -1.5];
        let (v, g) = nlml_with_grad(&k, &theta, &xs, &ys);
        assert!(v.is_finite());
        let h = 1e-6;
        for j in 0..theta.len() {
            let mut tp = theta.clone();
            tp[j] += h;
            let fp = nlml(&k, &tp, &xs, &ys);
            tp[j] -= 2.0 * h;
            let fm = nlml(&k, &tp, &xs, &ys);
            let num = (fp - fm) / (2.0 * h);
            assert!(
                (num - g[j]).abs() < 1e-4 * (1.0 + num.abs()),
                "param {j}: numeric {num} vs analytic {}",
                g[j]
            );
        }
    }

    #[test]
    fn grad_matches_finite_differences_nargp() {
        // Augmented 2-D inputs (x, f_l).
        let xs: Vec<Vec<f64>> = (0..10)
            .map(|i| {
                let x = i as f64 / 9.0;
                vec![x, (8.0 * x).sin()]
            })
            .collect();
        let ys: Vec<f64> = xs.iter().map(|z| (z[0] - 0.3) * z[1] * z[1]).collect();
        let k = NargpKernel::new(1);
        let mut theta = k.default_params();
        theta.push(-2.0);
        let (v, g) = nlml_with_grad(&k, &theta, &xs, &ys);
        assert!(v.is_finite());
        let h = 1e-6;
        for j in 0..theta.len() {
            let mut tp = theta.clone();
            tp[j] += h;
            let fp = nlml(&k, &tp, &xs, &ys);
            tp[j] -= 2.0 * h;
            let fm = nlml(&k, &tp, &xs, &ys);
            let num = (fp - fm) / (2.0 * h);
            assert!(
                (num - g[j]).abs() < 1e-4 * (1.0 + num.abs()),
                "param {j}: numeric {num} vs analytic {}",
                g[j]
            );
        }
    }

    #[test]
    fn cached_path_bit_identical_to_naive() {
        let (xs, ys) = toy_data();
        let k = SquaredExponential::new(1);
        let ws = NlmlWorkspace::new(&xs);
        for theta in [[0.2, -0.8, -1.5], [0.0, -1.0, -3.0], [1.0, 0.5, -2.0]] {
            let naive = nlml(&k, &theta, &xs, &ys);
            let cached = nlml_cached(&k, &theta, &ws, &ys);
            assert_eq!(naive.to_bits(), cached.to_bits());
            let (nv, ng) = nlml_with_grad(&k, &theta, &xs, &ys);
            let (cv, cg) = nlml_with_grad_cached(&k, &theta, &ws, &ys);
            assert_eq!(nv.to_bits(), cv.to_bits());
            for (a, b) in ng.iter().zip(&cg) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn shared_workspace_bit_identical_to_owned() {
        let (xs, ys) = toy_data();
        let k = SquaredExponential::new(1);
        let owned = NlmlWorkspace::new(&xs);
        let batch = DiffBatch::lower_triangle(&xs);
        let shared = NlmlWorkspace::from_batch(&batch, xs.len());
        for theta in [[0.2, -0.8, -1.5], [0.0, -1.0, -3.0]] {
            assert_eq!(
                nlml_cached(&k, &theta, &owned, &ys).to_bits(),
                nlml_cached(&k, &theta, &shared, &ys).to_bits()
            );
            let (ov, og) = nlml_with_grad_cached(&k, &theta, &owned, &ys);
            let (sv, sg) = nlml_with_grad_cached(&k, &theta, &shared, &ys);
            assert_eq!(ov.to_bits(), sv.to_bits());
            for (a, b) in og.iter().zip(&sg) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn pathological_params_return_infinity_not_panic() {
        let (xs, ys) = toy_data();
        let k = SquaredExponential::new(1);
        // Gigantic signal with zero noise on duplicated inputs → singular.
        let mut dup_xs = xs.clone();
        dup_xs.extend(xs.iter().cloned());
        let mut dup_ys = ys.clone();
        // Conflicting observations at identical inputs.
        dup_ys.extend(ys.iter().map(|v| v + 3.0));
        let theta = vec![3.0, -5.0, -30.0];
        let v = nlml(&k, &theta, &dup_xs, &dup_ys);
        // Either jitter rescues it (finite) or we get +inf; never NaN/panic.
        assert!(!v.is_nan());
    }

    #[test]
    fn good_fit_has_lower_nlml_than_bad_fit() {
        let (xs, ys) = toy_data();
        let k = SquaredExponential::new(1);
        // Reasonable lengthscale vs absurdly short one with huge noise.
        let good = nlml(&k, &[0.0, -1.0, -3.0], &xs, &ys);
        let bad = nlml(&k, &[0.0, -5.0, 1.0], &xs, &ys);
        assert!(good < bad);
    }
}

//! Precomputed pairwise-difference workspaces for batch kernel evaluation.
//!
//! Every NLML evaluation of a fit rebuilds the kernel matrix over the *same*
//! point set — only the hyperparameters change between L-BFGS steps and
//! restarts. A [`DiffBatch`] materializes the per-dimension signed
//! differences `a_i - b_i` for every pair once, so the per-evaluation work
//! collapses to the parameter-dependent part (for stationary kernels, a
//! handful of `exp` calls hoisted out of the pair loop — see
//! [`Kernel::eval_from_diffs`](crate::kernel::Kernel::eval_from_diffs)).
//!
//! The stored differences are the exact floating-point values the scalar
//! kernel paths compute internally (signed, *not* squared: `(a-b)·w` and
//! `√((a-b)²)·w` differ in floating point), which is what lets the batch
//! paths reproduce the scalar paths bit for bit.

/// Pairwise signed-difference tensor over two point sets, plus the pair
/// index map.
///
/// Two layouts exist:
/// - [`DiffBatch::lower_triangle`] — all pairs `(i, j)` with `j ≤ i` of one
///   set, in the row-major lower-triangle order the kernel-matrix builder
///   walks. Used by NLML training.
/// - [`DiffBatch::cross`] — all pairs of an `M`-point query set against an
///   `n`-point training set, query-major. Used by batched prediction.
#[derive(Debug)]
pub struct DiffBatch<'a> {
    left: &'a [Vec<f64>],
    right: &'a [Vec<f64>],
    dim: usize,
    /// Number of pairs.
    count: usize,
    /// Pair layout: `(i, j)` indices are computed from `q` on demand, so no
    /// per-pair index storage is built (the batch kernel hooks never look at
    /// indices, only the fallback path does).
    index: PairIndex,
    /// Backing storage — owned by this batch (the fresh-build constructors)
    /// or borrowed from a [`FitCache`] that persists across fits.
    storage: Storage<'a>,
    /// Backend the transpose was built for; `None` when the backend is
    /// scalar and only the diff tensor exists.
    simd_backend: Option<mfbo_simd::Backend>,
}

/// Backing storage for a [`DiffBatch`].
#[derive(Debug)]
enum Storage<'a> {
    /// The first `count*dim` elements are the row-major difference tensor:
    /// `diffs[q*dim + t] = left[t] - right[t]` for pair `q`. When a SIMD
    /// backend is active the buffer is twice that size and the second half
    /// holds the dim-major transpose `rows[t*count + q]`, so a vector
    /// kernel can stream `lanes` consecutive pairs per load. One allocation
    /// holds both halves deliberately: batches are rebuilt per prediction
    /// tile, and two transient multi-hundred-KB allocations per build make
    /// glibc bounce the second one through fresh `mmap` pages every time
    /// (measured ~7× the cost of the copies themselves).
    Owned(Vec<f64>),
    /// Views into a [`FitCache`]'s persistent buffers. `rows` is empty when
    /// no transpose is needed (scalar backend).
    Borrowed { diffs: &'a [f64], rows: &'a [f64] },
}

/// Whether a dim-major transpose should be built for this backend/shape.
fn simd_wanted(be: mfbo_simd::Backend, count: usize, dim: usize) -> bool {
    be.lanes() > 1 && count > 0 && dim > 0
}

/// Fill the second half of `buf` with the dim-major transpose of the
/// pair-major diff tensor in its first half.
fn fill_simd_rows(buf: &mut [f64], count: usize, dim: usize) {
    let (diffs, rows) = buf.split_at_mut(count * dim);
    transpose_rows(diffs, rows, count, dim);
}

/// Transpose the pair-major diff tensor into the dim-major `rows` layout.
fn transpose_rows(diffs: &[f64], rows: &mut [f64], count: usize, dim: usize) {
    // Tiled transpose: within each block of pairs the dimension loop is
    // outer, so writes into every `rows[t·count ..]` row are contiguous
    // runs while the block of `diffs` being read stays cache-resident
    // across all `dim` passes. A plain q-outer loop strides writes `count`
    // elements apart (every store on a fresh, set-conflicting cache line);
    // a plain t-outer loop re-streams the whole diff buffer `dim` times.
    const PAIR_BLOCK: usize = 256;
    let mut qb = 0;
    while qb < count {
        let qe = (qb + PAIR_BLOCK).min(count);
        for t in 0..dim {
            let row = &mut rows[t * count..t * count + count];
            for q in qb..qe {
                row[q] = diffs[q * dim + t];
            }
        }
        qb = qe;
    }
}

/// How pair `q` maps to `(left[i], right[j])` for each constructor layout.
#[derive(Debug)]
enum PairIndex {
    /// `(0,0), (1,0), (1,1), (2,0), …` — row `i` starts at `i(i+1)/2`.
    LowerTriangle,
    /// Query-major: `i = q / right.len()`, `j = q % right.len()`.
    Cross,
    /// `(q, q)`.
    Diagonal,
}

impl<'a> DiffBatch<'a> {
    /// Workspace over the lower triangle (`j ≤ i`) of one point set, in the
    /// `(0,0), (1,0), (1,1), (2,0), …` order of the kernel-matrix builder.
    ///
    /// # Panics
    ///
    /// Panics if the points have inconsistent dimensions.
    pub fn lower_triangle(xs: &'a [Vec<f64>]) -> Self {
        Self::lower_triangle_with_backend(xs, mfbo_simd::active())
    }

    /// [`DiffBatch::lower_triangle`] with an explicit SIMD backend — the
    /// differential-testing and A/B-bench hook.
    ///
    /// # Panics
    ///
    /// Panics if the points have inconsistent dimensions.
    pub fn lower_triangle_with_backend(xs: &'a [Vec<f64>], be: mfbo_simd::Backend) -> Self {
        // Every from-scratch O(n²·d) training-side difference build is
        // counted here; cache-served batches (`FitCache::batch`) and shared
        // workspaces (`NlmlWorkspace::from_batch`) avoid this cost and bump
        // `diffbatch_appends` / `diffbatch_shared_hits` instead.
        mfbo_telemetry::counter!("diffbatch_builds", 1u64);
        let n = xs.len();
        let dim = xs.first().map_or(0, Vec::len);
        let count = n * (n + 1) / 2;
        let want = simd_wanted(be, count, dim);
        let mut buf = vec![0.0; count * dim * if want { 2 } else { 1 }];
        let mut idx = 0;
        for (i, a) in xs.iter().enumerate() {
            assert_eq!(a.len(), dim, "inconsistent point dimension");
            for b in &xs[..=i] {
                for ((o, &at), &bt) in buf[idx..idx + dim].iter_mut().zip(a).zip(b) {
                    *o = at - bt;
                }
                idx += dim;
            }
        }
        if want {
            fill_simd_rows(&mut buf, count, dim);
        }
        DiffBatch {
            left: xs,
            right: xs,
            dim,
            count,
            index: PairIndex::LowerTriangle,
            storage: Storage::Owned(buf),
            simd_backend: want.then_some(be),
        }
    }

    /// Workspace over all `queries × xs` pairs, query-major — pair
    /// `qi * xs.len() + xj` is `(queries[qi], xs[xj])`, matching the
    /// `k(x_query, x_train)` argument order of the pointwise predict path.
    ///
    /// # Panics
    ///
    /// Panics if the points have inconsistent dimensions.
    pub fn cross(queries: &'a [Vec<f64>], xs: &'a [Vec<f64>]) -> Self {
        Self::cross_with_backend(queries, xs, mfbo_simd::active())
    }

    /// [`DiffBatch::cross`] with an explicit SIMD backend — the
    /// differential-testing and A/B-bench hook.
    ///
    /// # Panics
    ///
    /// Panics if the points have inconsistent dimensions.
    pub fn cross_with_backend(
        queries: &'a [Vec<f64>],
        xs: &'a [Vec<f64>],
        be: mfbo_simd::Backend,
    ) -> Self {
        let dim = queries.first().or_else(|| xs.first()).map_or(0, Vec::len);
        for b in xs {
            assert_eq!(b.len(), dim, "inconsistent point dimension");
        }
        let count = queries.len() * xs.len();
        let want = simd_wanted(be, count, dim);
        let mut buf = vec![0.0; count * dim * if want { 2 } else { 1 }];
        let mut idx = 0;
        for a in queries {
            assert_eq!(a.len(), dim, "inconsistent query dimension");
            for b in xs {
                for ((o, &at), &bt) in buf[idx..idx + dim].iter_mut().zip(a).zip(b) {
                    *o = at - bt;
                }
                idx += dim;
            }
        }
        if want {
            fill_simd_rows(&mut buf, count, dim);
        }
        DiffBatch {
            left: queries,
            right: xs,
            dim,
            count,
            index: PairIndex::Cross,
            storage: Storage::Owned(buf),
            simd_backend: want.then_some(be),
        }
    }

    /// Workspace over the diagonal pairs `(i, i)` of one point set — the
    /// prior-variance terms `k(x, x)` of a batched prediction. The stored
    /// differences are the exact `a_i - a_i` values the scalar path
    /// computes (always `+0.0` for finite inputs), so the batch hook
    /// reproduces `eval(x, x)` bit for bit while hoisting the parameter
    /// `exp` transforms out of the per-query loop.
    ///
    /// # Panics
    ///
    /// Panics if the points have inconsistent dimensions.
    pub fn diagonal(xs: &'a [Vec<f64>]) -> Self {
        Self::diagonal_with_backend(xs, mfbo_simd::active())
    }

    /// [`DiffBatch::diagonal`] with an explicit SIMD backend — the
    /// differential-testing and A/B-bench hook.
    ///
    /// # Panics
    ///
    /// Panics if the points have inconsistent dimensions.
    pub fn diagonal_with_backend(xs: &'a [Vec<f64>], be: mfbo_simd::Backend) -> Self {
        let dim = xs.first().map_or(0, Vec::len);
        let count = xs.len();
        let want = simd_wanted(be, count, dim);
        let mut buf = vec![0.0; count * dim * if want { 2 } else { 1 }];
        let mut idx = 0;
        for a in xs {
            assert_eq!(a.len(), dim, "inconsistent point dimension");
            // Deliberately `a − a`, not a constant 0.0: the batch must hold
            // the exact value the scalar path computes for the pair (i, i).
            #[allow(clippy::eq_op)]
            for (o, &at) in buf[idx..idx + dim].iter_mut().zip(a) {
                *o = at - at;
            }
            idx += dim;
        }
        if want {
            fill_simd_rows(&mut buf, count, dim);
        }
        DiffBatch {
            left: xs,
            right: xs,
            dim,
            count,
            index: PairIndex::Diagonal,
            storage: Storage::Owned(buf),
            simd_backend: want.then_some(be),
        }
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the workspace holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Dimensionality of the stored differences.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The flat `len() × dim` difference tensor; pair `q` occupies
    /// `[q*dim, (q+1)*dim)`.
    pub fn diffs(&self) -> &[f64] {
        match &self.storage {
            Storage::Owned(buf) => &buf[..self.count * self.dim],
            Storage::Borrowed { diffs, .. } => diffs,
        }
    }

    /// The SIMD backend this workspace was built for, and the dim-major
    /// transpose `rows[t*len() + q]` of [`DiffBatch::diffs`] — `None` when
    /// the backend is scalar (no transpose is built). Kernel batch hooks use
    /// this to route to the vector micro-kernels; absence means "run the
    /// scalar path".
    pub fn simd_rows(&self) -> Option<(mfbo_simd::Backend, &[f64])> {
        self.simd_backend.map(|be| {
            let rows = match &self.storage {
                Storage::Owned(buf) => &buf[self.count * self.dim..],
                Storage::Borrowed { rows, .. } => *rows,
            };
            (be, rows)
        })
    }

    /// The original `(a, b)` points of pair `q`, for kernels that cannot be
    /// evaluated from differences alone (the default trait fallback).
    ///
    /// # Panics
    ///
    /// Panics if `q >= self.len()`.
    pub fn pair_points(&self, q: usize) -> (&[f64], &[f64]) {
        assert!(q < self.count, "pair index out of range");
        let (i, j) = match self.index {
            PairIndex::LowerTriangle => {
                // Row i covers pairs [i(i+1)/2, (i+1)(i+2)/2); invert the
                // triangular numbering via a float sqrt, then fix rounding.
                let mut i = (((8 * q + 1) as f64).sqrt() as usize).saturating_sub(1) / 2;
                while (i + 1) * (i + 2) / 2 <= q {
                    i += 1;
                }
                while i * (i + 1) / 2 > q {
                    i -= 1;
                }
                (i, q - i * (i + 1) / 2)
            }
            PairIndex::Cross => (q / self.right.len(), q % self.right.len()),
            PairIndex::Diagonal => (q, q),
        };
        (&self.left[i], &self.right[j])
    }
}

/// Persistent, growable lower-triangle difference cache over one training
/// set that grows across BO iterations.
///
/// The lower-triangle pair order `(0,0), (1,0), (1,1), (2,0), …` means
/// appending point `n` adds its `n + 1` pairs *contiguously at the end* of
/// the pair-major diff buffer, so [`FitCache::append_points`] does O(n·d)
/// work per new point instead of the O(n²·d) of a fresh
/// [`DiffBatch::lower_triangle`] build — while the resulting buffer is
/// bit-identical to the fresh build (the subtraction sequence per pair is
/// the same; the fresh build stays the differential oracle, see
/// `tests/properties.rs`). Only the dim-major SIMD transpose depends on the
/// total pair count (its row stride is `count`); it is rebuilt lazily in
/// [`FitCache::batch_with_backend`], and that rebuild is a pure copy of
/// already-computed diffs, so it cannot change any bits either.
///
/// [`FitCache::sync`] reconciles the cache with an arbitrary target set by
/// keeping the longest bitwise-identical prefix — this absorbs the
/// constant-liar batching flow where fantasy points are appended one
/// iteration and gone the next.
#[derive(Debug, Default)]
pub struct FitCache {
    xs: Vec<Vec<f64>>,
    dim: usize,
    /// Pair-major lower-triangle diffs over `xs`, append-only.
    diffs: Vec<f64>,
    /// Dim-major transpose of `diffs`, rebuilt lazily when stale.
    rows: Vec<f64>,
    /// Number of points `rows` currently covers; `None` means stale (never
    /// built, or invalidated by a mutation that can rewind the point count —
    /// a count match alone does not prove the contents match).
    rows_points: Option<usize>,
}

impl FitCache {
    /// An empty cache; the dimension is fixed by the first appended point.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached points.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the cache holds no points.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// The cached points.
    pub fn xs(&self) -> &[Vec<f64>] {
        &self.xs
    }

    /// Appends points, computing only their new pair diffs (O(n·d) per
    /// point). The diff buffer afterwards is bit-identical to a fresh
    /// [`DiffBatch::lower_triangle`] build over the full set.
    ///
    /// # Panics
    ///
    /// Panics if a point's dimension disagrees with the cache's.
    pub fn append_points(&mut self, new_xs: &[Vec<f64>]) {
        if new_xs.is_empty() {
            return;
        }
        if self.xs.is_empty() {
            self.dim = new_xs[0].len();
        }
        for a in new_xs {
            assert_eq!(a.len(), self.dim, "inconsistent point dimension");
            self.xs.push(a.clone());
            let i = self.xs.len() - 1;
            for j in 0..=i {
                let (a, b) = (&self.xs[i], &self.xs[j]);
                for (&at, &bt) in a.iter().zip(b.iter()) {
                    self.diffs.push(at - bt);
                }
            }
        }
        mfbo_telemetry::counter!("diffbatch_appends", new_xs.len() as u64);
    }

    /// Drops all points past the first `n`, truncating the diff buffer to
    /// the corresponding triangle — O(1) (no diffs are recomputed).
    pub fn truncate(&mut self, n: usize) {
        if n >= self.xs.len() {
            return;
        }
        self.xs.truncate(n);
        self.diffs.truncate(n * (n + 1) / 2 * self.dim);
        // A later append can bring the point count back to exactly
        // `rows_points` with different contents (constant-liar resync), so
        // the transpose must be marked stale on any rewind.
        self.rows_points = None;
    }

    /// Makes the cache match `xs` exactly: keeps the longest
    /// bitwise-identical prefix, truncates past it, and appends the rest.
    pub fn sync(&mut self, xs: &[Vec<f64>]) {
        let dim = xs.first().map_or(0, Vec::len);
        if !xs.is_empty() && !self.xs.is_empty() && dim != self.dim {
            self.xs.clear();
            self.diffs.clear();
            // `rows` is sized for the old dim; the `truncate(0)` below
            // early-returns on the now-empty set, so invalidate here.
            self.rows.clear();
            self.rows_points = None;
        }
        let keep = self
            .xs
            .iter()
            .zip(xs)
            .take_while(|(a, b)| {
                a.len() == b.len()
                    && a.iter()
                        .zip(b.iter())
                        .all(|(x, y)| x.to_bits() == y.to_bits())
            })
            .count();
        self.truncate(keep);
        self.append_points(&xs[keep..]);
    }

    /// A lower-triangle [`DiffBatch`] view over the cached set, under the
    /// active SIMD backend.
    pub fn batch(&mut self) -> DiffBatch<'_> {
        self.batch_with_backend(mfbo_simd::active())
    }

    /// [`FitCache::batch`] with an explicit SIMD backend. Rebuilds the
    /// dim-major transpose only when it is stale for the current point
    /// count (a pure copy of the cached diffs — no bits change).
    pub fn batch_with_backend(&mut self, be: mfbo_simd::Backend) -> DiffBatch<'_> {
        let n = self.xs.len();
        let count = n * (n + 1) / 2;
        let want = simd_wanted(be, count, self.dim);
        if want && self.rows_points != Some(n) {
            self.rows.clear();
            self.rows.resize(count * self.dim, 0.0);
            transpose_rows(&self.diffs, &mut self.rows, count, self.dim);
            self.rows_points = Some(n);
        }
        DiffBatch {
            left: &self.xs,
            right: &self.xs,
            dim: self.dim,
            count,
            index: PairIndex::LowerTriangle,
            storage: Storage::Borrowed {
                diffs: &self.diffs,
                rows: if want {
                    &self.rows[..count * self.dim]
                } else {
                    &[]
                },
            },
            simd_backend: want.then_some(be),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_triangle_layout_and_values() {
        let xs = vec![vec![1.0, 2.0], vec![4.0, 8.0], vec![0.5, -1.0]];
        let b = DiffBatch::lower_triangle(&xs);
        assert_eq!(b.len(), 6);
        assert_eq!(b.dim(), 2);
        // Pair order (0,0), (1,0), (1,1), (2,0), (2,1), (2,2).
        assert_eq!(b.pair_points(1), (&xs[1][..], &xs[0][..]));
        let d = &b.diffs()[2..4]; // pair (1,0)
        assert_eq!(d, &[3.0, 6.0]);
        // Diagonal pairs have zero differences.
        assert_eq!(&b.diffs()[4..6], &[0.0, 0.0]);
    }

    #[test]
    fn cross_layout_and_values() {
        let queries = vec![vec![1.0], vec![5.0]];
        let xs = vec![vec![0.0], vec![2.0], vec![3.0]];
        let b = DiffBatch::cross(&queries, &xs);
        assert_eq!(b.len(), 6);
        // Query-major: pair 4 is (queries[1], xs[1]).
        assert_eq!(b.pair_points(4), (&queries[1][..], &xs[1][..]));
        assert_eq!(b.diffs(), &[1.0, -1.0, -2.0, 5.0, 3.0, 2.0]);
    }

    #[test]
    fn lower_triangle_pair_index_inversion_is_exact() {
        // The lazy (i, j) recovery must match the construction order for
        // every pair, including around the float-sqrt rounding boundaries.
        let xs: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64]).collect();
        let b = DiffBatch::lower_triangle(&xs);
        let mut q = 0;
        for i in 0..xs.len() {
            for j in 0..=i {
                assert_eq!(b.pair_points(q), (&xs[i][..], &xs[j][..]));
                q += 1;
            }
        }
        assert_eq!(q, b.len());
    }

    #[test]
    fn diagonal_layout_and_values() {
        let xs = vec![vec![1.0, 2.0], vec![4.0, 8.0], vec![0.5, -1.0]];
        let b = DiffBatch::diagonal(&xs);
        assert_eq!(b.len(), 3);
        assert_eq!(b.dim(), 2);
        assert_eq!(b.pair_points(1), (&xs[1][..], &xs[1][..]));
        assert!(b.diffs().iter().all(|&d| d == 0.0));
    }

    #[test]
    fn simd_rows_is_exact_transpose_of_diffs() {
        let xs = vec![
            vec![1.0, 2.0, 3.0],
            vec![4.0, 8.0, 16.0],
            vec![0.5, -1.0, 2.5],
        ];
        for b in [
            DiffBatch::lower_triangle_with_backend(&xs, mfbo_simd::Backend::Avx2),
            DiffBatch::cross_with_backend(&xs[..2], &xs, mfbo_simd::Backend::Avx2),
            DiffBatch::diagonal_with_backend(&xs, mfbo_simd::Backend::Avx2),
        ] {
            let (be, rows) = b.simd_rows().expect("vector backend builds rows");
            assert_eq!(be, mfbo_simd::Backend::Avx2);
            for q in 0..b.len() {
                for t in 0..b.dim() {
                    assert_eq!(
                        rows[t * b.len() + q].to_bits(),
                        b.diffs()[q * b.dim() + t].to_bits()
                    );
                }
            }
        }
        let scalar = DiffBatch::lower_triangle_with_backend(&xs, mfbo_simd::Backend::Scalar);
        assert!(scalar.simd_rows().is_none());
    }

    #[test]
    fn differences_are_signed_exact_values() {
        // The workspace must store a−b, not |a−b| or (a−b)²: the scalar
        // kernel path scales the signed difference before squaring.
        let xs = vec![vec![0.1], vec![0.3]];
        let b = DiffBatch::lower_triangle(&xs);
        assert_eq!(b.diffs()[1].to_bits(), (0.3f64 - 0.1f64).to_bits());
    }

    fn cache_points(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                (0..3)
                    .map(|d| ((i * 7 + d * 5) % 11) as f64 / 10.0)
                    .collect()
            })
            .collect()
    }

    /// Fresh lower-triangle build is the oracle for an appended cache.
    fn assert_matches_fresh(cache: &mut FitCache, xs: &[Vec<f64>], be: mfbo_simd::Backend) {
        let fresh = DiffBatch::lower_triangle_with_backend(xs, be);
        let view = cache.batch_with_backend(be);
        assert_eq!(view.len(), fresh.len());
        assert_eq!(view.dim(), fresh.dim());
        for (a, b) in view.diffs().iter().zip(fresh.diffs()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        match (view.simd_rows(), fresh.simd_rows()) {
            (None, None) => {}
            (Some((ba, ra)), Some((bb, rb))) => {
                assert_eq!(ba, bb);
                for (a, b) in ra.iter().zip(rb) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
            (a, b) => panic!("simd_rows mismatch: {:?} vs {:?}", a.is_some(), b.is_some()),
        }
    }

    #[test]
    fn fit_cache_append_bit_identity_with_fresh_build() {
        for be in [mfbo_simd::Backend::Scalar, mfbo_simd::Backend::Avx2] {
            let xs = cache_points(9);
            let mut cache = FitCache::new();
            cache.append_points(&xs[..4]);
            cache.append_points(&xs[4..7]);
            assert_matches_fresh(&mut cache, &xs[..7], be);
            cache.append_points(&xs[7..]);
            assert_matches_fresh(&mut cache, &xs, be);
        }
    }

    #[test]
    fn fit_cache_truncate_then_append_bit_identity() {
        let xs = cache_points(8);
        let mut cache = FitCache::new();
        cache.append_points(&xs);
        cache.truncate(5);
        assert_eq!(cache.len(), 5);
        let mut other = cache_points(10);
        other.reverse();
        cache.append_points(&other[..2]);
        let mut target = xs[..5].to_vec();
        target.extend_from_slice(&other[..2]);
        assert_matches_fresh(&mut cache, &target, mfbo_simd::Backend::Avx2);
    }

    #[test]
    fn fit_cache_sync_keeps_common_prefix_and_matches_target() {
        let xs = cache_points(8);
        let mut cache = FitCache::new();
        // Simulate the constant-liar flow: fantasy tail one iteration,
        // different tail the next.
        let mut with_fantasy = xs[..6].to_vec();
        with_fantasy.push(vec![0.9, 0.8, 0.7]);
        cache.sync(&with_fantasy);
        assert_matches_fresh(&mut cache, &with_fantasy, mfbo_simd::Backend::Scalar);
        cache.sync(&xs);
        assert_eq!(cache.len(), xs.len());
        assert_matches_fresh(&mut cache, &xs, mfbo_simd::Backend::Avx2);
        // Dimension change forces a clean rebuild.
        let flat: Vec<Vec<f64>> = (0..4).map(|i| vec![i as f64]).collect();
        cache.sync(&flat);
        assert_matches_fresh(&mut cache, &flat, mfbo_simd::Backend::Scalar);
    }

    #[test]
    fn fit_cache_sync_to_same_count_invalidates_simd_rows() {
        // Regression: a sync that rewinds the cache and re-appends back to
        // the *same* point count must not serve the previous transpose —
        // the count matches but the contents don't (constant-liar flow
        // where one fantasy point is replaced by a different point).
        let xs = cache_points(6);
        let mut cache = FitCache::new();
        cache.append_points(&xs);
        // Build the transpose for the original set under a SIMD backend.
        assert_matches_fresh(&mut cache, &xs, mfbo_simd::Backend::Avx2);
        let mut swapped = xs.clone();
        swapped[5] = vec![0.9, 0.8, 0.7];
        cache.sync(&swapped);
        assert_eq!(cache.len(), xs.len());
        assert_matches_fresh(&mut cache, &swapped, mfbo_simd::Backend::Avx2);
    }

    #[test]
    fn fit_cache_dim_change_to_same_count_rebuilds_simd_rows() {
        // Regression: a dimension-change sync landing on the same point
        // count must rebuild the transpose for the new dim instead of
        // slicing the old-dim buffer (out-of-bounds when the dim grows).
        let flat: Vec<Vec<f64>> = (0..4).map(|i| vec![i as f64 / 10.0]).collect();
        let mut cache = FitCache::new();
        cache.append_points(&flat);
        assert_matches_fresh(&mut cache, &flat, mfbo_simd::Backend::Avx2);
        let wide = cache_points(4);
        cache.sync(&wide);
        assert_eq!(cache.len(), 4);
        assert_matches_fresh(&mut cache, &wide, mfbo_simd::Backend::Avx2);
    }

    #[test]
    fn fit_cache_empty_and_single_point() {
        let mut cache = FitCache::new();
        assert!(cache.is_empty());
        let view = cache.batch();
        assert!(view.is_empty());
        drop(view);
        cache.sync(&[vec![0.25, 0.5]]);
        assert_eq!(cache.len(), 1);
        assert_matches_fresh(&mut cache, &[vec![0.25, 0.5]], mfbo_simd::Backend::Scalar);
    }
}

//! Precomputed pairwise-difference workspaces for batch kernel evaluation.
//!
//! Every NLML evaluation of a fit rebuilds the kernel matrix over the *same*
//! point set — only the hyperparameters change between L-BFGS steps and
//! restarts. A [`DiffBatch`] materializes the per-dimension signed
//! differences `a_i - b_i` for every pair once, so the per-evaluation work
//! collapses to the parameter-dependent part (for stationary kernels, a
//! handful of `exp` calls hoisted out of the pair loop — see
//! [`Kernel::eval_from_diffs`](crate::kernel::Kernel::eval_from_diffs)).
//!
//! The stored differences are the exact floating-point values the scalar
//! kernel paths compute internally (signed, *not* squared: `(a-b)·w` and
//! `√((a-b)²)·w` differ in floating point), which is what lets the batch
//! paths reproduce the scalar paths bit for bit.

/// Pairwise signed-difference tensor over two point sets, plus the pair
/// index map.
///
/// Two layouts exist:
/// - [`DiffBatch::lower_triangle`] — all pairs `(i, j)` with `j ≤ i` of one
///   set, in the row-major lower-triangle order the kernel-matrix builder
///   walks. Used by NLML training.
/// - [`DiffBatch::cross`] — all pairs of an `M`-point query set against an
///   `n`-point training set, query-major. Used by batched prediction.
#[derive(Debug)]
pub struct DiffBatch<'a> {
    left: &'a [Vec<f64>],
    right: &'a [Vec<f64>],
    dim: usize,
    /// Number of pairs.
    count: usize,
    /// Pair layout: `(i, j)` indices are computed from `q` on demand, so no
    /// per-pair index storage is built (the batch kernel hooks never look at
    /// indices, only the fallback path does).
    index: PairIndex,
    /// Backing storage. The first `count*dim` elements are the row-major
    /// difference tensor: `diffs[q*dim + t] = left[t] - right[t]` for pair
    /// `q`. When `simd_backend` is set the buffer is twice that size and the
    /// second half holds the dim-major transpose `rows[t*count + q]`, so a
    /// vector kernel can stream `lanes` consecutive pairs per load. One
    /// allocation holds both halves deliberately: batches are rebuilt per
    /// prediction tile, and two transient multi-hundred-KB allocations per
    /// build make glibc bounce the second one through fresh `mmap` pages
    /// every time (measured ~7× the cost of the copies themselves).
    buf: Vec<f64>,
    /// Backend the transpose half of `buf` was built for; `None` when the
    /// backend is scalar and only the diff half exists.
    simd_backend: Option<mfbo_simd::Backend>,
}

/// Whether a dim-major transpose should be built for this backend/shape.
fn simd_wanted(be: mfbo_simd::Backend, count: usize, dim: usize) -> bool {
    be.lanes() > 1 && count > 0 && dim > 0
}

/// Fill the second half of `buf` with the dim-major transpose of the
/// pair-major diff tensor in its first half.
fn fill_simd_rows(buf: &mut [f64], count: usize, dim: usize) {
    // Tiled transpose: within each block of pairs the dimension loop is
    // outer, so writes into every `rows[t·count ..]` row are contiguous
    // runs while the block of `diffs` being read stays cache-resident
    // across all `dim` passes. A plain q-outer loop strides writes `count`
    // elements apart (every store on a fresh, set-conflicting cache line);
    // a plain t-outer loop re-streams the whole diff buffer `dim` times.
    const PAIR_BLOCK: usize = 256;
    let (diffs, rows) = buf.split_at_mut(count * dim);
    let mut qb = 0;
    while qb < count {
        let qe = (qb + PAIR_BLOCK).min(count);
        for t in 0..dim {
            let row = &mut rows[t * count..t * count + count];
            for q in qb..qe {
                row[q] = diffs[q * dim + t];
            }
        }
        qb = qe;
    }
}

/// How pair `q` maps to `(left[i], right[j])` for each constructor layout.
#[derive(Debug)]
enum PairIndex {
    /// `(0,0), (1,0), (1,1), (2,0), …` — row `i` starts at `i(i+1)/2`.
    LowerTriangle,
    /// Query-major: `i = q / right.len()`, `j = q % right.len()`.
    Cross,
    /// `(q, q)`.
    Diagonal,
}

impl<'a> DiffBatch<'a> {
    /// Workspace over the lower triangle (`j ≤ i`) of one point set, in the
    /// `(0,0), (1,0), (1,1), (2,0), …` order of the kernel-matrix builder.
    ///
    /// # Panics
    ///
    /// Panics if the points have inconsistent dimensions.
    pub fn lower_triangle(xs: &'a [Vec<f64>]) -> Self {
        Self::lower_triangle_with_backend(xs, mfbo_simd::active())
    }

    /// [`DiffBatch::lower_triangle`] with an explicit SIMD backend — the
    /// differential-testing and A/B-bench hook.
    ///
    /// # Panics
    ///
    /// Panics if the points have inconsistent dimensions.
    pub fn lower_triangle_with_backend(xs: &'a [Vec<f64>], be: mfbo_simd::Backend) -> Self {
        let n = xs.len();
        let dim = xs.first().map_or(0, Vec::len);
        let count = n * (n + 1) / 2;
        let want = simd_wanted(be, count, dim);
        let mut buf = vec![0.0; count * dim * if want { 2 } else { 1 }];
        let mut idx = 0;
        for (i, a) in xs.iter().enumerate() {
            assert_eq!(a.len(), dim, "inconsistent point dimension");
            for b in &xs[..=i] {
                for ((o, &at), &bt) in buf[idx..idx + dim].iter_mut().zip(a).zip(b) {
                    *o = at - bt;
                }
                idx += dim;
            }
        }
        if want {
            fill_simd_rows(&mut buf, count, dim);
        }
        DiffBatch {
            left: xs,
            right: xs,
            dim,
            count,
            index: PairIndex::LowerTriangle,
            buf,
            simd_backend: want.then_some(be),
        }
    }

    /// Workspace over all `queries × xs` pairs, query-major — pair
    /// `qi * xs.len() + xj` is `(queries[qi], xs[xj])`, matching the
    /// `k(x_query, x_train)` argument order of the pointwise predict path.
    ///
    /// # Panics
    ///
    /// Panics if the points have inconsistent dimensions.
    pub fn cross(queries: &'a [Vec<f64>], xs: &'a [Vec<f64>]) -> Self {
        Self::cross_with_backend(queries, xs, mfbo_simd::active())
    }

    /// [`DiffBatch::cross`] with an explicit SIMD backend — the
    /// differential-testing and A/B-bench hook.
    ///
    /// # Panics
    ///
    /// Panics if the points have inconsistent dimensions.
    pub fn cross_with_backend(
        queries: &'a [Vec<f64>],
        xs: &'a [Vec<f64>],
        be: mfbo_simd::Backend,
    ) -> Self {
        let dim = queries.first().or_else(|| xs.first()).map_or(0, Vec::len);
        for b in xs {
            assert_eq!(b.len(), dim, "inconsistent point dimension");
        }
        let count = queries.len() * xs.len();
        let want = simd_wanted(be, count, dim);
        let mut buf = vec![0.0; count * dim * if want { 2 } else { 1 }];
        let mut idx = 0;
        for a in queries {
            assert_eq!(a.len(), dim, "inconsistent query dimension");
            for b in xs {
                for ((o, &at), &bt) in buf[idx..idx + dim].iter_mut().zip(a).zip(b) {
                    *o = at - bt;
                }
                idx += dim;
            }
        }
        if want {
            fill_simd_rows(&mut buf, count, dim);
        }
        DiffBatch {
            left: queries,
            right: xs,
            dim,
            count,
            index: PairIndex::Cross,
            buf,
            simd_backend: want.then_some(be),
        }
    }

    /// Workspace over the diagonal pairs `(i, i)` of one point set — the
    /// prior-variance terms `k(x, x)` of a batched prediction. The stored
    /// differences are the exact `a_i - a_i` values the scalar path
    /// computes (always `+0.0` for finite inputs), so the batch hook
    /// reproduces `eval(x, x)` bit for bit while hoisting the parameter
    /// `exp` transforms out of the per-query loop.
    ///
    /// # Panics
    ///
    /// Panics if the points have inconsistent dimensions.
    pub fn diagonal(xs: &'a [Vec<f64>]) -> Self {
        Self::diagonal_with_backend(xs, mfbo_simd::active())
    }

    /// [`DiffBatch::diagonal`] with an explicit SIMD backend — the
    /// differential-testing and A/B-bench hook.
    ///
    /// # Panics
    ///
    /// Panics if the points have inconsistent dimensions.
    pub fn diagonal_with_backend(xs: &'a [Vec<f64>], be: mfbo_simd::Backend) -> Self {
        let dim = xs.first().map_or(0, Vec::len);
        let count = xs.len();
        let want = simd_wanted(be, count, dim);
        let mut buf = vec![0.0; count * dim * if want { 2 } else { 1 }];
        let mut idx = 0;
        for a in xs {
            assert_eq!(a.len(), dim, "inconsistent point dimension");
            // Deliberately `a − a`, not a constant 0.0: the batch must hold
            // the exact value the scalar path computes for the pair (i, i).
            #[allow(clippy::eq_op)]
            for (o, &at) in buf[idx..idx + dim].iter_mut().zip(a) {
                *o = at - at;
            }
            idx += dim;
        }
        if want {
            fill_simd_rows(&mut buf, count, dim);
        }
        DiffBatch {
            left: xs,
            right: xs,
            dim,
            count,
            index: PairIndex::Diagonal,
            buf,
            simd_backend: want.then_some(be),
        }
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the workspace holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Dimensionality of the stored differences.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The flat `len() × dim` difference tensor; pair `q` occupies
    /// `[q*dim, (q+1)*dim)`.
    pub fn diffs(&self) -> &[f64] {
        &self.buf[..self.count * self.dim]
    }

    /// The SIMD backend this workspace was built for, and the dim-major
    /// transpose `rows[t*len() + q]` of [`DiffBatch::diffs`] — `None` when
    /// the backend is scalar (no transpose is built). Kernel batch hooks use
    /// this to route to the vector micro-kernels; absence means "run the
    /// scalar path".
    pub fn simd_rows(&self) -> Option<(mfbo_simd::Backend, &[f64])> {
        self.simd_backend
            .map(|be| (be, &self.buf[self.count * self.dim..]))
    }

    /// The original `(a, b)` points of pair `q`, for kernels that cannot be
    /// evaluated from differences alone (the default trait fallback).
    ///
    /// # Panics
    ///
    /// Panics if `q >= self.len()`.
    pub fn pair_points(&self, q: usize) -> (&[f64], &[f64]) {
        assert!(q < self.count, "pair index out of range");
        let (i, j) = match self.index {
            PairIndex::LowerTriangle => {
                // Row i covers pairs [i(i+1)/2, (i+1)(i+2)/2); invert the
                // triangular numbering via a float sqrt, then fix rounding.
                let mut i = (((8 * q + 1) as f64).sqrt() as usize).saturating_sub(1) / 2;
                while (i + 1) * (i + 2) / 2 <= q {
                    i += 1;
                }
                while i * (i + 1) / 2 > q {
                    i -= 1;
                }
                (i, q - i * (i + 1) / 2)
            }
            PairIndex::Cross => (q / self.right.len(), q % self.right.len()),
            PairIndex::Diagonal => (q, q),
        };
        (&self.left[i], &self.right[j])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_triangle_layout_and_values() {
        let xs = vec![vec![1.0, 2.0], vec![4.0, 8.0], vec![0.5, -1.0]];
        let b = DiffBatch::lower_triangle(&xs);
        assert_eq!(b.len(), 6);
        assert_eq!(b.dim(), 2);
        // Pair order (0,0), (1,0), (1,1), (2,0), (2,1), (2,2).
        assert_eq!(b.pair_points(1), (&xs[1][..], &xs[0][..]));
        let d = &b.diffs()[2..4]; // pair (1,0)
        assert_eq!(d, &[3.0, 6.0]);
        // Diagonal pairs have zero differences.
        assert_eq!(&b.diffs()[4..6], &[0.0, 0.0]);
    }

    #[test]
    fn cross_layout_and_values() {
        let queries = vec![vec![1.0], vec![5.0]];
        let xs = vec![vec![0.0], vec![2.0], vec![3.0]];
        let b = DiffBatch::cross(&queries, &xs);
        assert_eq!(b.len(), 6);
        // Query-major: pair 4 is (queries[1], xs[1]).
        assert_eq!(b.pair_points(4), (&queries[1][..], &xs[1][..]));
        assert_eq!(b.diffs(), &[1.0, -1.0, -2.0, 5.0, 3.0, 2.0]);
    }

    #[test]
    fn lower_triangle_pair_index_inversion_is_exact() {
        // The lazy (i, j) recovery must match the construction order for
        // every pair, including around the float-sqrt rounding boundaries.
        let xs: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64]).collect();
        let b = DiffBatch::lower_triangle(&xs);
        let mut q = 0;
        for i in 0..xs.len() {
            for j in 0..=i {
                assert_eq!(b.pair_points(q), (&xs[i][..], &xs[j][..]));
                q += 1;
            }
        }
        assert_eq!(q, b.len());
    }

    #[test]
    fn diagonal_layout_and_values() {
        let xs = vec![vec![1.0, 2.0], vec![4.0, 8.0], vec![0.5, -1.0]];
        let b = DiffBatch::diagonal(&xs);
        assert_eq!(b.len(), 3);
        assert_eq!(b.dim(), 2);
        assert_eq!(b.pair_points(1), (&xs[1][..], &xs[1][..]));
        assert!(b.diffs().iter().all(|&d| d == 0.0));
    }

    #[test]
    fn simd_rows_is_exact_transpose_of_diffs() {
        let xs = vec![
            vec![1.0, 2.0, 3.0],
            vec![4.0, 8.0, 16.0],
            vec![0.5, -1.0, 2.5],
        ];
        for b in [
            DiffBatch::lower_triangle_with_backend(&xs, mfbo_simd::Backend::Avx2),
            DiffBatch::cross_with_backend(&xs[..2], &xs, mfbo_simd::Backend::Avx2),
            DiffBatch::diagonal_with_backend(&xs, mfbo_simd::Backend::Avx2),
        ] {
            let (be, rows) = b.simd_rows().expect("vector backend builds rows");
            assert_eq!(be, mfbo_simd::Backend::Avx2);
            for q in 0..b.len() {
                for t in 0..b.dim() {
                    assert_eq!(
                        rows[t * b.len() + q].to_bits(),
                        b.diffs()[q * b.dim() + t].to_bits()
                    );
                }
            }
        }
        let scalar = DiffBatch::lower_triangle_with_backend(&xs, mfbo_simd::Backend::Scalar);
        assert!(scalar.simd_rows().is_none());
    }

    #[test]
    fn differences_are_signed_exact_values() {
        // The workspace must store a−b, not |a−b| or (a−b)²: the scalar
        // kernel path scales the signed difference before squaring.
        let xs = vec![vec![0.1], vec![0.3]];
        let b = DiffBatch::lower_triangle(&xs);
        assert_eq!(b.diffs()[1].to_bits(), (0.3f64 - 0.1f64).to_bits());
    }
}

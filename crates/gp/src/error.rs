//! Error type for GP construction and training.

use std::error::Error;
use std::fmt;

/// Error raised by GP fitting and prediction.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GpError {
    /// The training set is empty or inputs/outputs disagree in length.
    InvalidTrainingSet {
        /// Description of the problem.
        reason: String,
    },
    /// The kernel matrix could not be factorized even with maximum jitter.
    KernelNotPositiveDefinite,
    /// Every training restart produced a non-finite marginal likelihood.
    TrainingFailed,
    /// The requested operation is not available under the model's inference
    /// mode (e.g. rank-one appends on an iteratively-inferred model).
    UnsupportedOperation {
        /// Description of the problem.
        reason: String,
    },
}

impl fmt::Display for GpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpError::InvalidTrainingSet { reason } => {
                write!(f, "invalid training set: {reason}")
            }
            GpError::KernelNotPositiveDefinite => {
                write!(f, "kernel matrix is not positive definite")
            }
            GpError::TrainingFailed => {
                write!(
                    f,
                    "all hyperparameter restarts failed to produce a finite likelihood"
                )
            }
            GpError::UnsupportedOperation { reason } => {
                write!(f, "unsupported operation: {reason}")
            }
        }
    }
}

impl Error for GpError {}

impl From<mfbo_linalg::LinalgError> for GpError {
    fn from(_: mfbo_linalg::LinalgError) -> Self {
        GpError::KernelNotPositiveDefinite
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = GpError::InvalidTrainingSet {
            reason: "empty".into(),
        };
        assert!(e.to_string().contains("empty"));
        assert!(GpError::KernelNotPositiveDefinite
            .to_string()
            .contains("positive definite"));
    }

    #[test]
    fn converts_from_linalg_error() {
        let le = mfbo_linalg::LinalgError::NotPositiveDefinite { pivot: 0 };
        let ge: GpError = le.into();
        assert_eq!(ge, GpError::KernelNotPositiveDefinite);
    }
}

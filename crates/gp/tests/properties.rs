//! Property-based tests of the kernel and GP layers.

use mfbo_gp::kernel::{Kernel, Matern52, NargpKernel, SquaredExponential};
use mfbo_gp::{nlml, nlml_with_grad, Gp, GpConfig};
use mfbo_linalg::{Cholesky, Matrix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: n points in [0,1]^dim, flattened.
fn points(n: usize, dim: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(0.0f64..1.0, n * dim)
        .prop_map(move |flat| flat.chunks(dim).map(|c| c.to_vec()).collect())
}

/// Builds the kernel Gram matrix.
fn gram<K: Kernel>(k: &K, p: &[f64], xs: &[Vec<f64>]) -> Matrix {
    Matrix::from_fn(xs.len(), xs.len(), |i, j| k.eval(p, &xs[i], &xs[j]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn se_gram_is_psd(xs in points(8, 2), logsf in -1.0f64..1.0, logl in -2.0f64..1.0) {
        let k = SquaredExponential::new(2);
        let p = vec![logsf, logl, logl];
        let g = gram(&k, &p, &xs);
        prop_assert!(g.is_symmetric(1e-12));
        // PSD: Cholesky with a whisker of jitter must succeed.
        prop_assert!(Cholesky::new_with_jitter(&g, 1e-10, 1e-3).is_ok());
    }

    #[test]
    fn matern_gram_is_psd(xs in points(7, 3), logsf in -1.0f64..1.0) {
        let k = Matern52::new(3);
        let p = vec![logsf, -0.5, 0.0, -1.0];
        let g = gram(&k, &p, &xs);
        prop_assert!(g.is_symmetric(1e-12));
        prop_assert!(Cholesky::new_with_jitter(&g, 1e-10, 1e-3).is_ok());
    }

    #[test]
    fn nargp_gram_is_psd(xs in points(7, 3)) {
        // Augmented input: 2 design dims + 1 fidelity feature.
        let k = NargpKernel::new(2);
        let p = k.default_params();
        let g = gram(&k, &p, &xs);
        prop_assert!(g.is_symmetric(1e-12));
        prop_assert!(Cholesky::new_with_jitter(&g, 1e-10, 1e-3).is_ok());
    }

    #[test]
    fn kernel_cauchy_schwarz(a in points(1, 2), b in points(1, 2), logl in -1.5f64..1.0) {
        // |k(a,b)| <= sqrt(k(a,a) k(b,b)) for any PSD kernel.
        let k = SquaredExponential::new(2);
        let p = vec![0.3, logl, logl];
        let kab = k.eval(&p, &a[0], &b[0]);
        let kaa = k.eval(&p, &a[0], &a[0]);
        let kbb = k.eval(&p, &b[0], &b[0]);
        prop_assert!(kab.abs() <= (kaa * kbb).sqrt() + 1e-12);
    }

    #[test]
    fn nlml_gradient_is_consistent(
        xs in points(9, 1),
        theta0 in -0.5f64..0.5,
        theta1 in -1.5f64..0.0,
    ) {
        let ys: Vec<f64> = xs.iter().map(|x| (5.0 * x[0]).sin()).collect();
        let k = SquaredExponential::new(1);
        let theta = vec![theta0, theta1, -2.0];
        let (v, g) = nlml_with_grad(&k, &theta, &xs, &ys);
        prop_assume!(v.is_finite());
        let h = 1e-6;
        for j in 0..theta.len() {
            let mut tp = theta.clone();
            tp[j] += h;
            let fp = nlml(&k, &tp, &xs, &ys);
            tp[j] -= 2.0 * h;
            let fm = nlml(&k, &tp, &xs, &ys);
            prop_assume!(fp.is_finite() && fm.is_finite());
            let num = (fp - fm) / (2.0 * h);
            prop_assert!((num - g[j]).abs() < 1e-3 * (1.0 + num.abs()),
                "param {j}: numeric {num} vs analytic {}", g[j]);
        }
    }

    #[test]
    fn posterior_variance_shrinks_at_observations(xs in points(6, 1)) {
        // Deduplicate: coincident points make the latent variance claim
        // trivially true but can stress the jitter path.
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * 2.0 - 0.5).collect();
        let k = SquaredExponential::new(1);
        let gp = Gp::with_params(k, xs.clone(), ys, vec![0.0, -1.0], -4.0, true).unwrap();
        for x in &xs {
            let (_, var_at_obs) = gp.predict_standardized(x);
            // Far from all data the latent variance approaches the prior
            // variance (= 1 here); at observations it must be far below.
            prop_assert!(var_at_obs < 0.1, "var at observation = {var_at_obs}");
        }
        let (_, var_far) = gp.predict_standardized(&[57.0]);
        prop_assert!(var_far > 0.9);
    }

    #[test]
    fn output_shift_equivariance(shift in -50.0f64..50.0) {
        // Standardization makes the posterior mean equivariant under
        // output shifts: predict(y + c) == predict(y) + c.
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 / 9.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (3.0 * x[0]).cos()).collect();
        let ys_shifted: Vec<f64> = ys.iter().map(|y| y + shift).collect();
        let k = SquaredExponential::new(1);
        let params = vec![0.0, -1.0];
        let a = Gp::with_params(k.clone(), xs.clone(), ys, params.clone(), -3.0, true).unwrap();
        let b = Gp::with_params(k, xs, ys_shifted, params, -3.0, true).unwrap();
        for q in [0.05, 0.37, 0.81] {
            let pa = a.predict(&[q]);
            let pb = b.predict(&[q]);
            prop_assert!((pb.mean - pa.mean - shift).abs() < 1e-9);
            prop_assert!((pb.var - pa.var).abs() < 1e-9 * (1.0 + pa.var));
        }
    }
}

#[test]
fn training_is_deterministic_given_seed() {
    let xs: Vec<Vec<f64>> = (0..12).map(|i| vec![i as f64 / 11.0]).collect();
    let ys: Vec<f64> = xs.iter().map(|x| (6.0 * x[0]).sin()).collect();
    let fit = || {
        let mut rng = StdRng::seed_from_u64(5);
        Gp::fit(
            SquaredExponential::new(1),
            xs.clone(),
            ys.clone(),
            &GpConfig::default(),
            &mut rng,
        )
        .unwrap()
    };
    let a = fit();
    let b = fit();
    assert_eq!(a.theta(), b.theta());
    assert_eq!(a.nlml(), b.nlml());
}

//! Property-based tests of the kernel and GP layers.

use mfbo_gp::kernel::{Kernel, Matern52, NargpKernel, SquaredExponential};
use mfbo_gp::{
    nlml, nlml_cached, nlml_with_grad, nlml_with_grad_cached, DiffBatch, Gp, GpConfig,
    NlmlWorkspace,
};
use mfbo_linalg::{Cholesky, Matrix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: n points in [0,1]^dim, flattened.
fn points(n: usize, dim: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(0.0f64..1.0, n * dim)
        .prop_map(move |flat| flat.chunks(dim).map(|c| c.to_vec()).collect())
}

/// Builds the kernel Gram matrix.
fn gram<K: Kernel>(k: &K, p: &[f64], xs: &[Vec<f64>]) -> Matrix {
    Matrix::from_fn(xs.len(), xs.len(), |i, j| k.eval(p, &xs[i], &xs[j]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn se_gram_is_psd(xs in points(8, 2), logsf in -1.0f64..1.0, logl in -2.0f64..1.0) {
        let k = SquaredExponential::new(2);
        let p = vec![logsf, logl, logl];
        let g = gram(&k, &p, &xs);
        prop_assert!(g.is_symmetric(1e-12));
        // PSD: Cholesky with a whisker of jitter must succeed.
        prop_assert!(Cholesky::new_with_jitter(&g, 1e-10, 1e-3).is_ok());
    }

    #[test]
    fn matern_gram_is_psd(xs in points(7, 3), logsf in -1.0f64..1.0) {
        let k = Matern52::new(3);
        let p = vec![logsf, -0.5, 0.0, -1.0];
        let g = gram(&k, &p, &xs);
        prop_assert!(g.is_symmetric(1e-12));
        prop_assert!(Cholesky::new_with_jitter(&g, 1e-10, 1e-3).is_ok());
    }

    #[test]
    fn nargp_gram_is_psd(xs in points(7, 3)) {
        // Augmented input: 2 design dims + 1 fidelity feature.
        let k = NargpKernel::new(2);
        let p = k.default_params();
        let g = gram(&k, &p, &xs);
        prop_assert!(g.is_symmetric(1e-12));
        prop_assert!(Cholesky::new_with_jitter(&g, 1e-10, 1e-3).is_ok());
    }

    #[test]
    fn kernel_cauchy_schwarz(a in points(1, 2), b in points(1, 2), logl in -1.5f64..1.0) {
        // |k(a,b)| <= sqrt(k(a,a) k(b,b)) for any PSD kernel.
        let k = SquaredExponential::new(2);
        let p = vec![0.3, logl, logl];
        let kab = k.eval(&p, &a[0], &b[0]);
        let kaa = k.eval(&p, &a[0], &a[0]);
        let kbb = k.eval(&p, &b[0], &b[0]);
        prop_assert!(kab.abs() <= (kaa * kbb).sqrt() + 1e-12);
    }

    #[test]
    fn nlml_gradient_is_consistent(
        xs in points(9, 1),
        theta0 in -0.5f64..0.5,
        theta1 in -1.5f64..0.0,
    ) {
        let ys: Vec<f64> = xs.iter().map(|x| (5.0 * x[0]).sin()).collect();
        let k = SquaredExponential::new(1);
        let theta = vec![theta0, theta1, -2.0];
        let (v, g) = nlml_with_grad(&k, &theta, &xs, &ys);
        prop_assume!(v.is_finite());
        let h = 1e-6;
        for j in 0..theta.len() {
            let mut tp = theta.clone();
            tp[j] += h;
            let fp = nlml(&k, &tp, &xs, &ys);
            tp[j] -= 2.0 * h;
            let fm = nlml(&k, &tp, &xs, &ys);
            prop_assume!(fp.is_finite() && fm.is_finite());
            let num = (fp - fm) / (2.0 * h);
            prop_assert!((num - g[j]).abs() < 1e-3 * (1.0 + num.abs()),
                "param {j}: numeric {num} vs analytic {}", g[j]);
        }
    }

    #[test]
    fn posterior_variance_shrinks_at_observations(xs in points(6, 1)) {
        // Deduplicate: coincident points make the latent variance claim
        // trivially true but can stress the jitter path.
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * 2.0 - 0.5).collect();
        let k = SquaredExponential::new(1);
        let gp = Gp::with_params(k, xs.clone(), ys, vec![0.0, -1.0], -4.0, true).unwrap();
        for x in &xs {
            let (_, var_at_obs) = gp.predict_standardized(x);
            // Far from all data the latent variance approaches the prior
            // variance (= 1 here); at observations it must be far below.
            prop_assert!(var_at_obs < 0.1, "var at observation = {var_at_obs}");
        }
        let (_, var_far) = gp.predict_standardized(&[57.0]);
        prop_assert!(var_far > 0.9);
    }

    #[test]
    fn output_shift_equivariance(shift in -50.0f64..50.0) {
        // Standardization makes the posterior mean equivariant under
        // output shifts: predict(y + c) == predict(y) + c.
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 / 9.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (3.0 * x[0]).cos()).collect();
        let ys_shifted: Vec<f64> = ys.iter().map(|y| y + shift).collect();
        let k = SquaredExponential::new(1);
        let params = vec![0.0, -1.0];
        let a = Gp::with_params(k.clone(), xs.clone(), ys, params.clone(), -3.0, true).unwrap();
        let b = Gp::with_params(k, xs, ys_shifted, params, -3.0, true).unwrap();
        for q in [0.05, 0.37, 0.81] {
            let pa = a.predict(&[q]);
            let pb = b.predict(&[q]);
            prop_assert!((pb.mean - pa.mean - shift).abs() < 1e-9);
            prop_assert!((pb.var - pa.var).abs() < 1e-9 * (1.0 + pa.var));
        }
    }
}

/// Bit-identity pins for the cached hot paths: the workspace-backed NLML
/// (value and gradient) and the batched posterior must reproduce the naive
/// per-pair/per-point paths **exactly** — compared via `f64::to_bits`, no
/// tolerances — for every kernel that overrides the batch hooks.
mod bit_identity {
    use super::*;
    use proptest::TestCaseError;

    /// All three batch hooks of `kernel` under the detected backend must
    /// reproduce the forced-scalar workspace bit for bit.
    fn check_kernel_backend_invisible<K: Kernel>(
        kernel: &K,
        theta: &[f64],
        xs: &[Vec<f64>],
    ) -> Result<(), TestCaseError> {
        let weights: Vec<f64> = (0..xs.len() * (xs.len() + 1) / 2)
            .map(|i| (i as f64 * 0.37).sin())
            .collect();
        let fast = DiffBatch::lower_triangle_with_backend(xs, mfbo_simd::detect());
        let reference = DiffBatch::lower_triangle_with_backend(xs, mfbo_simd::Backend::Scalar);
        let mut kf = vec![0.0; fast.len()];
        let mut kr = vec![0.0; fast.len()];
        kernel.eval_from_diffs(theta, &fast, &mut kf);
        kernel.eval_from_diffs(theta, &reference, &mut kr);
        for (a, b) in kf.iter().zip(&kr) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        let mut gf = vec![0.0; kernel.num_params()];
        let mut gr = vec![0.0; kernel.num_params()];
        kernel.grad_from_diffs(theta, &fast, &weights, &mut gf);
        kernel.grad_from_diffs(theta, &reference, &weights, &mut gr);
        for (a, b) in gf.iter().zip(&gr) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        let mut gf2 = vec![0.0; kernel.num_params()];
        let mut gr2 = vec![0.0; kernel.num_params()];
        kernel.grad_from_diffs_with_values(theta, &fast, &weights, &kf, &mut gf2);
        kernel.grad_from_diffs_with_values(theta, &reference, &weights, &kr, &mut gr2);
        for (a, b) in gf2.iter().zip(&gr2) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        Ok(())
    }

    fn check_nlml_cached<K: Kernel>(
        kernel: &K,
        theta: &[f64],
        xs: &[Vec<f64>],
        ys: &[f64],
    ) -> Result<(), TestCaseError> {
        let ws = NlmlWorkspace::new(xs);
        let naive = nlml(kernel, theta, xs, ys);
        let cached = nlml_cached(kernel, theta, &ws, ys);
        prop_assert_eq!(naive.to_bits(), cached.to_bits());
        let (nv, ng) = nlml_with_grad(kernel, theta, xs, ys);
        let (cv, cg) = nlml_with_grad_cached(kernel, theta, &ws, ys);
        prop_assert_eq!(nv.to_bits(), cv.to_bits());
        for (a, b) in ng.iter().zip(&cg) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Differential oracle for the cross-iteration fit cache: a cache
        /// grown by arbitrary append/truncate/sync sequences must serve a
        /// batch bit-identical to a fresh `lower_triangle` build over the
        /// same points — diffs and SIMD transpose alike, under both the
        /// detected backend and forced scalar (exercised by the
        /// `MFBO_SIMD` CI matrix).
        #[test]
        fn fit_cache_append_bit_identity_vs_fresh(
            xs in points(12, 3),
            split in 1usize..11,
            resync_at in 1usize..11,
        ) {
            let mut cache = mfbo_gp::FitCache::new();
            cache.append_points(&xs[..split]);
            cache.append_points(&xs[split..]);
            for be in [mfbo_simd::detect(), mfbo_simd::Backend::Scalar] {
                let fresh = DiffBatch::lower_triangle_with_backend(&xs, be);
                let view = cache.batch_with_backend(be);
                prop_assert_eq!(view.len(), fresh.len());
                for (a, b) in view.diffs().iter().zip(fresh.diffs()) {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
                match (view.simd_rows(), fresh.simd_rows()) {
                    (None, None) => {}
                    (Some((ba, ra)), Some((bb, rb))) => {
                        prop_assert_eq!(ba, bb);
                        for (a, b) in ra.iter().zip(rb) {
                            prop_assert_eq!(a.to_bits(), b.to_bits());
                        }
                    }
                    _ => prop_assert!(false, "simd_rows presence mismatch"),
                }
            }
            // Sync to a prefix + divergent tail (the constant-liar flow).
            let mut target = xs[..resync_at].to_vec();
            target.push(vec![0.123, 0.456, 0.789]);
            cache.sync(&target);
            let fresh = DiffBatch::lower_triangle_with_backend(&target, mfbo_simd::detect());
            let view = cache.batch_with_backend(mfbo_simd::detect());
            prop_assert_eq!(view.len(), fresh.len());
            for (a, b) in view.diffs().iter().zip(fresh.diffs()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        /// A shared-workspace NLML (value + gradient) is bit-identical to
        /// the per-model owned workspace — the invariant behind the
        /// default-on bundle distance-cache sharing.
        #[test]
        fn shared_workspace_nlml_bit_identity(
            xs in points(9, 2),
            logsf in -0.5f64..0.5,
            logl in -1.5f64..0.5,
        ) {
            let ys: Vec<f64> = xs.iter().map(|x| (4.0 * x[0] - x[1]).sin()).collect();
            let k = SquaredExponential::new(2);
            let theta = [logsf, logl, -1.0, -2.0];
            let owned = NlmlWorkspace::new(&xs);
            let batch = DiffBatch::lower_triangle(&xs);
            let shared = NlmlWorkspace::from_batch(&batch, xs.len());
            prop_assert_eq!(
                nlml_cached(&k, &theta, &owned, &ys).to_bits(),
                nlml_cached(&k, &theta, &shared, &ys).to_bits()
            );
            let (ov, og) = nlml_with_grad_cached(&k, &theta, &owned, &ys);
            let (sv, sg) = nlml_with_grad_cached(&k, &theta, &shared, &ys);
            prop_assert_eq!(ov.to_bits(), sv.to_bits());
            for (a, b) in og.iter().zip(&sg) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        #[test]
        fn cached_nlml_bit_identical_se(
            xs in points(9, 2),
            logsf in -0.5f64..0.5,
            logl in -1.5f64..0.5,
        ) {
            let ys: Vec<f64> = xs.iter().map(|x| (4.0 * x[0] - x[1]).sin()).collect();
            let k = SquaredExponential::new(2);
            check_nlml_cached(&k, &[logsf, logl, -1.0, -2.0], &xs, &ys)?;
        }

        #[test]
        fn cached_nlml_bit_identical_matern(
            xs in points(8, 2),
            logsf in -0.5f64..0.5,
        ) {
            let ys: Vec<f64> = xs.iter().map(|x| x[0] * x[0] - 0.3 * x[1]).collect();
            let k = Matern52::new(2);
            check_nlml_cached(&k, &[logsf, -0.4, 0.2, -2.5], &xs, &ys)?;
        }

        #[test]
        fn cached_nlml_bit_identical_nargp(xs in points(8, 3)) {
            // Augmented input: 2 design dims + 1 fidelity feature.
            let ys: Vec<f64> = xs.iter().map(|x| x[0] + x[1] * x[2]).collect();
            let k = NargpKernel::new(2);
            let mut theta = k.default_params();
            theta.push(-2.0);
            check_nlml_cached(&k, &theta, &xs, &ys)?;
        }

        #[test]
        fn batched_predict_bit_identical_to_pointwise(
            xs in points(10, 2),
            queries in points(6, 2),
            logl in -1.0f64..0.5,
        ) {
            let ys: Vec<f64> = xs.iter().map(|x| (3.0 * x[0]).cos() + x[1]).collect();
            let gp = Gp::with_params(
                SquaredExponential::new(2),
                xs,
                ys,
                vec![0.1, logl, logl],
                -2.0,
                true,
            )
            .unwrap();
            let batch = gp.predict_batch_standardized(&queries);
            let raw = gp.predict_batch(&queries);
            for ((q, (bm, bv)), pr) in queries.iter().zip(&batch).zip(&raw) {
                let (m, v) = gp.predict_standardized(q);
                prop_assert_eq!(m.to_bits(), bm.to_bits());
                prop_assert_eq!(v.to_bits(), bv.to_bits());
                let p = gp.predict(q);
                prop_assert_eq!(p.mean.to_bits(), pr.mean.to_bits());
                prop_assert_eq!(p.var.to_bits(), pr.var.to_bits());
            }
        }

        /// The SIMD backend choice must be bit-invisible end to end: forced
        /// scalar and the detected backend produce identical predictions.
        /// Query counts sweep the lane-group remainders (0..lanes-1 queries
        /// left over after the interleaved groups).
        #[test]
        fn predict_batch_backend_bit_invisible(
            xs in points(11, 2),
            queries in points(9, 2),
            m in 1usize..9,
            logl in -1.0f64..0.5,
        ) {
            let ys: Vec<f64> = xs.iter().map(|x| (2.0 * x[0]).sin() - x[1]).collect();
            let gp = Gp::with_params(
                SquaredExponential::new(2),
                xs,
                ys,
                vec![0.1, logl, logl],
                -2.0,
                true,
            )
            .unwrap();
            let queries = &queries[..m];
            let fast = gp.predict_batch_standardized_with_backend(queries, mfbo_simd::detect());
            let reference =
                gp.predict_batch_standardized_with_backend(queries, mfbo_simd::Backend::Scalar);
            for ((fm, fv), (rm, rv)) in fast.iter().zip(&reference) {
                prop_assert_eq!(fm.to_bits(), rm.to_bits());
                prop_assert_eq!(fv.to_bits(), rv.to_bits());
            }
        }

        /// Kernel batch hooks under every constructible backend reproduce
        /// the scalar workspace bit for bit, for all three kernels.
        #[test]
        fn kernel_batch_hooks_backend_bit_invisible(xs in points(9, 3)) {
            check_kernel_backend_invisible(&SquaredExponential::new(3), &[0.2, -0.5, 0.1, -1.0], &xs)?;
            check_kernel_backend_invisible(&Matern52::new(3), &[0.2, -0.5, 0.1, -1.0], &xs)?;
            let nargp = NargpKernel::new(2);
            let theta = nargp.default_params();
            check_kernel_backend_invisible(&nargp, &theta, &xs)?;
        }

        #[test]
        fn append_observation_bit_identical_to_frozen_rebuild(
            xs in points(12, 2),
            ynew in -1.0f64..1.0,
        ) {
            // Without re-standardization (standardize = false) the appended
            // model must equal a from-scratch rebuild on the extended data
            // bit for bit: same factor recurrence, same α solves, same NLML
            // quadratic form.
            let ys: Vec<f64> = xs.iter().map(|x| x[0] - 0.5 * x[1]).collect();
            let (head, tail) = xs.split_at(11);
            let params = vec![0.0, -0.7, -0.3];
            let mut grown = Gp::with_params(
                SquaredExponential::new(2),
                head.to_vec(),
                ys[..11].to_vec(),
                params.clone(),
                -2.0,
                false,
            )
            .unwrap();
            grown.append_observation(tail[0].clone(), ynew).unwrap();
            let mut ys_full = ys[..11].to_vec();
            ys_full.push(ynew);
            let rebuilt = Gp::with_params(
                SquaredExponential::new(2),
                xs.clone(),
                ys_full,
                params,
                -2.0,
                false,
            )
            .unwrap();
            prop_assert_eq!(grown.nlml().to_bits(), rebuilt.nlml().to_bits());
            for q in [[0.2, 0.8], [0.6, 0.1]] {
                let (gm, gv) = grown.predict_standardized(&q);
                let (rm, rv) = rebuilt.predict_standardized(&q);
                prop_assert_eq!(gm.to_bits(), rm.to_bits());
                prop_assert_eq!(gv.to_bits(), rv.to_bits());
            }
        }
    }
}

#[test]
fn training_is_deterministic_given_seed() {
    let xs: Vec<Vec<f64>> = (0..12).map(|i| vec![i as f64 / 11.0]).collect();
    let ys: Vec<f64> = xs.iter().map(|x| (6.0 * x[0]).sin()).collect();
    let fit = || {
        let mut rng = StdRng::seed_from_u64(5);
        Gp::fit(
            SquaredExponential::new(1),
            xs.clone(),
            ys.clone(),
            &GpConfig::default(),
            &mut rng,
        )
        .unwrap()
    };
    let a = fit();
    let b = fit();
    assert_eq!(a.theta(), b.theta());
    assert_eq!(a.nlml(), b.nlml());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The iterative (CG) engine is a drop-in approximation of the exact
    /// one: identical hyperparameters, means within the CG tolerance, and
    /// variances no tighter than exact (conditioning on a subset can only
    /// widen the posterior).
    #[test]
    fn iterative_engine_matches_exact_to_tolerance(
        xs in points(24, 2),
        q in points(6, 2),
    ) {
        use mfbo_gp::InferenceMode;
        use mfbo_pool::Parallelism;
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| (4.0 * x[0]).sin() + 0.5 * x[1] * x[1])
            .collect();
        let params = vec![0.0, -0.5, -0.5];
        let fit = |mode| {
            Gp::with_params_inference(
                SquaredExponential::new(2),
                xs.clone(),
                ys.clone(),
                params.clone(),
                -3.0,
                true,
                mode,
                Parallelism::Serial,
            )
            .unwrap()
        };
        let exact = fit(InferenceMode::Exact);
        let iter = fit(InferenceMode::Iterative { subset: 12, max_iters: 128 });
        for point in &q {
            let (em, ev) = exact.predict_standardized(point);
            let (im, iv) = iter.predict_standardized(point);
            // The mean uses the full-data CG solve; DEFAULT_CG_RTOL drives
            // the relative residual far below this assertion's slack.
            prop_assert!((em - im).abs() <= 1e-5 * (1.0 + em.abs()), "{em} vs {im}");
            prop_assert!(iv >= ev - 1e-9, "iterative variance {iv} tighter than exact {ev}");
        }
    }
}

//! Sequence helpers (`rand::seq` subset).

use crate::Rng;

/// Slice extension methods.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Returns one uniformly chosen element, or `None` on an empty slice.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = crate::bounded_u64(rng, (i + 1) as u64) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[crate::bounded_u64(rng, self.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_moves_elements_eventually() {
        let mut rng = StdRng::seed_from_u64(2);
        let before: Vec<usize> = (0..20).collect();
        let mut v = before.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, before);
    }

    #[test]
    fn choose_handles_empty_and_singleton() {
        let mut rng = StdRng::seed_from_u64(3);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert_eq!([42u8].choose(&mut rng), Some(&42));
    }
}

//! Generator implementations.

use crate::{RngCore, SeedableRng};

/// SplitMix64 step — used to expand a `u64` seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The workspace's standard deterministic generator: xoshiro256++.
///
/// Not stream-compatible with upstream `rand::rngs::StdRng` (ChaCha12), but
/// deterministic across platforms and releases, which is what the
/// reproduction harnesses rely on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Returns the four xoshiro256++ state words. Together with
    /// [`StdRng::from_state`] this lets checkpoint/resume machinery verify
    /// (or restore) the exact position in the random stream.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Reconstructs a generator at the exact position captured by
    /// [`StdRng::state`]. The all-zero state (invalid for xoshiro) is
    /// remapped the same way as [`SeedableRng::from_seed`].
    pub fn from_state(s: [u64; 4]) -> StdRng {
        if s.iter().all(|&w| w == 0) {
            return StdRng {
                s: [0x9E37_79B9_7F4A_7C15, 1, 2, 3],
            };
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn state_snapshot(&self) -> Option<[u64; 4]> {
        Some(self.s)
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // xoshiro must not start from the all-zero state.
        if s.iter().all(|&w| w == 0) {
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        StdRng { s }
    }

    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_seed_round_trip_and_zero_guard() {
        let a = StdRng::from_seed([0u8; 32]);
        let b = StdRng::from_seed([0u8; 32]);
        assert_eq!(a, b);
        let mut c = a.clone();
        assert_ne!(c.next_u64(), 0); // escaped the all-zero trap
    }

    #[test]
    fn state_round_trip_resumes_the_stream() {
        let mut a = StdRng::seed_from_u64(99);
        for _ in 0..17 {
            a.next_u64();
        }
        let snap = a.state();
        assert_eq!(crate::RngCore::state_snapshot(&a), Some(snap));
        let mut b = StdRng::from_state(snap);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // The all-zero state maps onto the same guard as from_seed.
        let mut z = StdRng::from_state([0; 4]);
        assert_ne!(z.next_u64(), 0);
    }

    #[test]
    fn splitmix_expansion_is_stable() {
        // Pin the seeding path so seeded runs stay reproducible across
        // refactors.
        let rng = StdRng::seed_from_u64(0);
        let expect = StdRng {
            s: [
                0xE220_A839_7B1D_CDAF,
                0x6E78_9E6A_A1B9_65F4,
                0x06C4_5D18_8009_454F,
                0xF88B_B8A8_724C_81EC,
            ],
        };
        assert_eq!(rng, expect);
    }
}

//! Minimal offline stand-in for the crates.io `rand` crate (0.8 API subset).
//!
//! The build environment for this repository has no network access and no
//! pre-populated cargo registry, so the workspace vendors the small slice of
//! the `rand` 0.8 surface it actually uses: [`Rng::gen`], [`Rng::gen_range`],
//! [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64 — deterministic and high-quality, but **not** stream-compatible
//! with upstream `rand`'s ChaCha12-based `StdRng`. Seed-sensitive tests in
//! the workspace were re-calibrated against this generator.

pub mod rngs;
pub mod seq;

use std::ops::Range;

/// The raw generator interface: a source of uniformly random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Snapshot of the generator's internal state words, when the concrete
    /// generator exposes them ([`rngs::StdRng`] does). The MFBO run journal
    /// records this alongside each evaluation as an *RNG cursor*, so a
    /// resumed run can verify it is replaying against the same random
    /// stream. Generators without an accessible fixed-width state return
    /// `None`. (Extension over the upstream `rand` 0.8 API.)
    fn state_snapshot(&self) -> Option<[u64; 4]> {
        None
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn state_snapshot(&self) -> Option<[u64; 4]> {
        (**self).state_snapshot()
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn state_snapshot(&self) -> Option<[u64; 4]> {
        (**self).state_snapshot()
    }
}

/// Types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 sample range");
        let u = f64::sample_standard(rng);
        let v = self.start + u * (self.end - self.start);
        // Floating-point rounding can land exactly on `end`; nudge back in.
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty f32 sample range");
        let u = f32::sample_standard(rng);
        (self.start + u * (self.end - self.start)).min(self.end - f32::EPSILON)
    }
}

/// Unbiased bounded integer sampling by rejection.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer sample range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive sample range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, i64, i32, isize);

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`] (mirrors `rand`'s extension-trait design so `R: Rng + ?Sized`
/// bounds work unchanged).
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers uniform over the full
    /// domain).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rge: SampleRange<T>>(&mut self, range: Rge) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// Seed type (fixed-width byte array).
    type Seed;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a single `u64` (expanded via
    /// SplitMix64, as upstream `rand` does).
    fn seed_from_u64(state: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn unit_floats_in_range_and_spread() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v = rng.gen_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&v));
            let k = rng.gen_range(3usize..9);
            assert!((3..9).contains(&k));
            let j = rng.gen_range(0u64..=5);
            assert!(j <= 5);
        }
    }

    #[test]
    fn integer_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 7];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn works_through_unsized_references() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen_range(0.0f64..1.0)
        }
        let mut rng = StdRng::seed_from_u64(6);
        let v = draw(&mut rng);
        assert!((0.0..1.0).contains(&v));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(8);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}

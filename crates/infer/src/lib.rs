//! Scalable GP inference engines for the `analog-mfbo` workspace.
//!
//! The paper's budgets are ~100 evaluations, but a long-lived evaluation
//! service accumulates thousands of observations per run, and exact GP
//! inference is cubic in the training-set size. This crate provides the
//! two standard approximations surveyed in the MFBO literature
//! (Do & Zhang, arXiv:2311.13050) in a form that preserves the workspace's
//! determinism contract:
//!
//! * [`cg_solve`] — a Jacobi-preconditioned conjugate-gradient solver for
//!   `A x = b` that never materializes `A`: the caller supplies the matvec.
//!   Every reduction is a sequential ascending-index loop, the iteration
//!   count is a deterministic function of the data (capped at a fixed
//!   maximum), and the matvec contract requires bit-identical results in
//!   every [`Parallelism`](https://docs.rs) mode — so `Threads(n) ≡ Serial`
//!   and resumed runs replay bit-for-bit.
//! * [`select_subset`] — seeded farthest-point selection over the
//!   *committed history order* of the training set. The output depends only
//!   on `(points, max_points, seed)`, never on wall clock, threading, or
//!   map iteration order, so approximate runs journal and replay
//!   bit-identically.
//! * [`InferenceMode`] — the user-facing knob threaded through
//!   `GpConfig`/`MfGpConfig`, `mfbo-cli --gp-inference`, and the server
//!   `start` request. The exact Cholesky path stays the differential
//!   oracle: `Exact` must remain byte-identical to the pre-existing
//!   behavior, and the approximate modes are tested against it.
//!
//! Telemetry: [`cg_solve`] emits `infer_cg_solves` / `infer_cg_iters`
//! counters and [`select_subset`] emits `infer_subset_selections` /
//! `infer_subset_size`, so operators can watch solver effort and subset
//! occupancy without instrumenting callers.

#![deny(missing_docs)]

use std::fmt;

/// Default training-point cap for the subset-of-data regime and for the
/// hyperparameter-training subset of the iterative regime.
pub const DEFAULT_SUBSET: usize = 1024;

/// Default cap on conjugate-gradient iterations.
pub const DEFAULT_CG_ITERS: usize = 64;

/// Default relative-residual target for [`cg_solve`].
pub const DEFAULT_CG_RTOL: f64 = 1e-10;

/// Which inference engine a GP uses for fitting and prediction.
///
/// `Exact` is the pre-existing Cholesky path and the differential oracle
/// for the other two; it must stay byte-identical when selected. The
/// approximate modes trade posterior fidelity for asymptotic cost and are
/// only worthwhile past ~1–2k observations (see BENCH_infer.json).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InferenceMode {
    /// Full Cholesky factorization: O(n³) fit, O(n²) per predictive
    /// variance. The default, and the oracle the approximate modes are
    /// differentially tested against.
    #[default]
    Exact,
    /// Hyperparameters and predictive variance from a farthest-point
    /// subset (exact on `subset` points); the posterior-mean weights are
    /// solved on the **full** training set by matrix-free preconditioned
    /// CG with at most `max_iters` iterations.
    Iterative {
        /// Training-point cap for the hyperparameter/variance subset.
        subset: usize,
        /// Fixed cap on CG iterations (the solve stops early only on a
        /// deterministic residual test).
        max_iters: usize,
    },
    /// Train and predict on a farthest-point subset of at most
    /// `max_points` observations; everything downstream of the selection
    /// is the exact path on the reduced set.
    SubsetOfData {
        /// Training-point cap.
        max_points: usize,
    },
}

impl InferenceMode {
    /// The iterative regime with default knobs.
    pub fn iterative() -> Self {
        InferenceMode::Iterative {
            subset: DEFAULT_SUBSET,
            max_iters: DEFAULT_CG_ITERS,
        }
    }

    /// The subset-of-data regime with the default cap.
    pub fn subset_of_data() -> Self {
        InferenceMode::SubsetOfData {
            max_points: DEFAULT_SUBSET,
        }
    }

    /// Parses the CLI/server spelling: `exact`, `iterative`, or
    /// `subset-of-data` (knobs take their defaults).
    ///
    /// # Errors
    ///
    /// Returns a one-line message listing the accepted spellings.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "exact" => Ok(InferenceMode::Exact),
            "iterative" => Ok(InferenceMode::iterative()),
            "subset-of-data" => Ok(InferenceMode::subset_of_data()),
            other => Err(format!(
                "unknown inference mode '{other}': expected 'exact', 'iterative', or 'subset-of-data'"
            )),
        }
    }

    /// Canonical spelling used by the CLI, the server protocol, and
    /// `meta.json` (knob values are not round-tripped).
    pub fn as_str(&self) -> &'static str {
        match self {
            InferenceMode::Exact => "exact",
            InferenceMode::Iterative { .. } => "iterative",
            InferenceMode::SubsetOfData { .. } => "subset-of-data",
        }
    }

    /// `true` for the exact Cholesky path.
    pub fn is_exact(&self) -> bool {
        matches!(self, InferenceMode::Exact)
    }
}

impl fmt::Display for InferenceMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Result of a [`cg_solve`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct CgOutcome {
    /// The approximate solution of `A x = b`.
    pub x: Vec<f64>,
    /// Iterations actually performed (≤ the configured cap).
    pub iters: usize,
    /// Final relative residual `‖b − A x‖ / ‖b‖` as tracked by the
    /// recurrence (preconditioned norm ratio).
    pub rel_residual: f64,
    /// Whether the residual target was met within the iteration cap.
    /// Callers treat `false` (or a non-finite solution) as the signal to
    /// fall back to the exact path.
    pub converged: bool,
}

/// Sequential ascending-index dot product — the only reduction order used
/// in this crate, so results never depend on threading.
fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut s = 0.0;
    for i in 0..a.len() {
        s += a[i] * b[i];
    }
    s
}

/// Jacobi-preconditioned conjugate gradients for SPD `A x = b`, matrix-free.
///
/// `matvec(v, out)` must write `A v` into `out`; it is called once per
/// iteration and must be bit-deterministic (same input → same bits,
/// regardless of threading — the GP layer guarantees this by tiling with
/// fixed boundaries and concatenating in index order). `precond_diag`
/// holds the diagonal of `A`; entries are clamped away from zero.
///
/// The solve runs until the preconditioned residual satisfies the
/// relative tolerance `rtol` or `max_iters` iterations elapse — both
/// tests are deterministic, so the iteration count is a pure function of
/// the inputs. All inner reductions are sequential ascending loops.
///
/// # Panics
///
/// Panics if `precond_diag.len() != b.len()`.
pub fn cg_solve<F>(
    matvec: F,
    precond_diag: &[f64],
    b: &[f64],
    max_iters: usize,
    rtol: f64,
) -> CgOutcome
where
    F: Fn(&[f64], &mut [f64]),
{
    let n = b.len();
    assert_eq!(precond_diag.len(), n, "preconditioner length mismatch");
    let inv_diag: Vec<f64> = precond_diag
        .iter()
        .map(|&d| 1.0 / d.max(f64::MIN_POSITIVE))
        .collect();

    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut z: Vec<f64> = (0..n).map(|i| inv_diag[i] * r[i]).collect();
    let mut p = z.clone();
    let mut ap = vec![0.0; n];
    let mut rz = dot(&r, &z);
    let rz0 = rz.abs().max(f64::MIN_POSITIVE);
    let target = rtol * rtol * rz0;

    let mut iters = 0;
    let mut converged = rz.abs() <= target;
    while iters < max_iters && !converged {
        matvec(&p, &mut ap);
        let pap = dot(&p, &ap);
        if pap <= 0.0 || !pap.is_finite() {
            break;
        }
        let alpha = rz / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
        }
        for i in 0..n {
            r[i] -= alpha * ap[i];
        }
        for i in 0..n {
            z[i] = inv_diag[i] * r[i];
        }
        let rz_next = dot(&r, &z);
        let beta = rz_next / rz;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
        rz = rz_next;
        iters += 1;
        converged = rz.abs() <= target;
    }
    mfbo_telemetry::counter!("infer_cg_solves", 1u64);
    mfbo_telemetry::counter!("infer_cg_iters", iters as u64);
    CgOutcome {
        x,
        iters,
        rel_residual: (rz.abs() / rz0).sqrt(),
        converged,
    }
}

/// Squared Euclidean distance, summed in ascending coordinate order.
fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    let mut s = 0.0;
    for i in 0..a.len() {
        let d = a[i] - b[i];
        s += d * d;
    }
    s
}

/// Deterministic seeded farthest-point selection over committed history
/// order.
///
/// Returns the indices of at most `max_points` points, **sorted
/// ascending** so downstream kernel matrices are assembled in the same
/// order the observations were committed — that (plus the seed) is what
/// makes approximate runs journal-stable: the selection is a pure function
/// of `(points, max_points, seed)`.
///
/// The walk starts at index `seed % n` and greedily adds the point with
/// the largest squared distance to the selected set, breaking ties toward
/// the lowest (earliest-committed) index.
pub fn select_subset(points: &[Vec<f64>], max_points: usize, seed: u64) -> Vec<usize> {
    let n = points.len();
    if n <= max_points {
        return (0..n).collect();
    }
    let m = max_points.max(1);
    let start = (seed % n as u64) as usize;
    let mut selected = Vec::with_capacity(m);
    selected.push(start);
    // min squared distance from each point to the selected set
    let mut mind: Vec<f64> = (0..n)
        .map(|i| sq_dist(&points[i], &points[start]))
        .collect();
    while selected.len() < m {
        let mut best = usize::MAX;
        let mut best_d = f64::NEG_INFINITY;
        for (i, &d) in mind.iter().enumerate() {
            if d > best_d {
                best_d = d;
                best = i;
            }
        }
        if best == usize::MAX || best_d <= 0.0 {
            // Remaining points duplicate the selected set; fill in
            // committed order for determinism.
            for i in 0..n {
                if !selected.contains(&i) {
                    selected.push(i);
                    if selected.len() == m {
                        break;
                    }
                }
            }
            break;
        }
        selected.push(best);
        mind[best] = f64::NEG_INFINITY;
        for i in 0..n {
            let d = sq_dist(&points[i], &points[best]);
            if d < mind[i] {
                mind[i] = d;
            }
        }
    }
    selected.sort_unstable();
    selected.dedup();
    mfbo_telemetry::counter!("infer_subset_selections", 1u64);
    mfbo_telemetry::counter!("infer_subset_size", selected.len() as u64);
    selected
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_matvec(a: &[Vec<f64>]) -> impl Fn(&[f64], &mut [f64]) + '_ {
        move |v: &[f64], out: &mut [f64]| {
            for (i, row) in a.iter().enumerate() {
                out[i] = dot(row, v);
            }
        }
    }

    /// Deterministic SPD test matrix (same recipe as the linalg tests).
    fn spd(n: usize) -> Vec<Vec<f64>> {
        let b: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..n)
                    .map(|j| ((i * 31 + j * 17) % 13) as f64 / 13.0 - 0.5)
                    .collect()
            })
            .collect();
        let mut a = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..n {
                let mut s = if i == j { n as f64 } else { 0.0 };
                for (bi, bj) in b[i].iter().zip(&b[j]) {
                    s += bi * bj;
                }
                a[i][j] = s;
            }
        }
        a
    }

    #[test]
    fn cg_solves_spd_system() {
        let n = 40;
        let a = spd(n);
        let b: Vec<f64> = (0..n).map(|i| ((i * 7) % 11) as f64 / 11.0 - 0.4).collect();
        let diag: Vec<f64> = (0..n).map(|i| a[i][i]).collect();
        let out = cg_solve(dense_matvec(&a), &diag, &b, 200, 1e-12);
        assert!(out.converged, "rel_residual = {}", out.rel_residual);
        assert!(out.iters <= 200);
        // Check A x ≈ b directly.
        let mut ax = vec![0.0; n];
        dense_matvec(&a)(&out.x, &mut ax);
        for (got, want) in ax.iter().zip(&b) {
            assert!((got - want).abs() < 1e-8, "{got} vs {want}");
        }
    }

    #[test]
    fn cg_is_deterministic() {
        let n = 24;
        let a = spd(n);
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let diag: Vec<f64> = (0..n).map(|i| a[i][i]).collect();
        let one = cg_solve(dense_matvec(&a), &diag, &b, 64, 1e-10);
        let two = cg_solve(dense_matvec(&a), &diag, &b, 64, 1e-10);
        assert_eq!(one.iters, two.iters);
        for (x, y) in one.x.iter().zip(&two.x) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn cg_respects_iteration_cap() {
        let n = 32;
        let a = spd(n);
        let b = vec![1.0; n];
        let diag: Vec<f64> = (0..n).map(|i| a[i][i]).collect();
        let out = cg_solve(dense_matvec(&a), &diag, &b, 3, 1e-16);
        assert_eq!(out.iters, 3);
        assert!(!out.converged);
        assert!(out.x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn cg_zero_rhs_returns_zero_without_iterating() {
        let n = 8;
        let a = spd(n);
        let diag: Vec<f64> = (0..n).map(|i| a[i][i]).collect();
        let out = cg_solve(dense_matvec(&a), &diag, &vec![0.0; n], 10, 1e-10);
        assert_eq!(out.iters, 0);
        assert!(out.converged);
        assert!(out.x.iter().all(|&v| v == 0.0));
    }

    fn grid(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| vec![i as f64 / n as f64, ((i * 13) % n) as f64 / n as f64])
            .collect()
    }

    #[test]
    fn subset_is_identity_when_small_enough() {
        let pts = grid(10);
        assert_eq!(select_subset(&pts, 10, 7), (0..10).collect::<Vec<_>>());
        assert_eq!(select_subset(&pts, 64, 7), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn subset_is_sorted_deterministic_and_seed_dependent() {
        let pts = grid(50);
        let a = select_subset(&pts, 12, 3);
        let b = select_subset(&pts, 12, 3);
        assert_eq!(a, b);
        assert_eq!(a.len(), 12);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted ascending");
        assert!(a.iter().all(|&i| i < 50));
        // The seed moves the starting point, which (generically) changes
        // the selection.
        let c = select_subset(&pts, 12, 4);
        assert!(a.contains(&3) || c.contains(&4));
    }

    #[test]
    fn subset_handles_duplicate_points() {
        let pts: Vec<Vec<f64>> = (0..20).map(|_| vec![0.5, 0.5]).collect();
        let s = select_subset(&pts, 6, 1);
        assert_eq!(s.len(), 6);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn subset_spreads_over_the_input_range() {
        // 1-D line: farthest-point with cap 3 must pick both extremes.
        let pts: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let s = select_subset(&pts, 3, 0);
        assert!(s.contains(&0));
        assert!(s.contains(&99));
    }

    #[test]
    fn mode_parse_round_trips() {
        for s in ["exact", "iterative", "subset-of-data"] {
            let m = InferenceMode::parse(s).unwrap();
            assert_eq!(m.as_str(), s);
            assert_eq!(m.to_string(), s);
        }
        assert_eq!(InferenceMode::default(), InferenceMode::Exact);
        assert!(InferenceMode::Exact.is_exact());
        assert!(!InferenceMode::iterative().is_exact());
        let e = InferenceMode::parse("bogus").unwrap_err();
        assert!(e.contains("bogus") && e.contains("subset-of-data"));
    }
}

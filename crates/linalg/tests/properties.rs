//! Property-based tests for the linear-algebra kernels.

use mfbo_linalg::{Cholesky, Lu, Matrix};
use proptest::prelude::*;

/// Strategy: a random `n x n` matrix with entries in [-1, 1].
fn square_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-1.0f64..1.0, n * n).prop_map(move |data| Matrix::from_vec(n, n, data))
}

/// Strategy: a random SPD matrix built as `B Bᵀ + n·I` (guaranteed SPD).
fn spd_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    square_matrix(n).prop_map(move |b| {
        let mut a = b.matmul(&b.transpose());
        a.add_diag(n as f64);
        a
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cholesky_reconstructs(a in spd_matrix(5)) {
        let chol = Cholesky::new(&a).unwrap();
        let l = chol.factor();
        let recon = l.matmul(&l.transpose());
        prop_assert!(recon.max_abs_diff(&a) < 1e-9);
    }

    #[test]
    fn cholesky_solve_inverts(a in spd_matrix(5), b in prop::collection::vec(-2.0f64..2.0, 5)) {
        let chol = Cholesky::new(&a).unwrap();
        let x = chol.solve_vec(&b);
        let back = a.matvec(&x);
        for (u, v) in b.iter().zip(&back) {
            prop_assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    fn cholesky_quad_form_nonnegative(a in spd_matrix(4), b in prop::collection::vec(-2.0f64..2.0, 4)) {
        let chol = Cholesky::new(&a).unwrap();
        prop_assert!(chol.quad_form(&b) >= -1e-12);
    }

    #[test]
    fn cholesky_log_det_matches_lu_det(a in spd_matrix(4)) {
        let chol = Cholesky::new(&a).unwrap();
        let lu = Lu::new(&a).unwrap();
        // det of an SPD matrix is positive, so log|A| should match.
        prop_assert!(lu.det() > 0.0);
        prop_assert!((chol.log_det() - lu.det().ln()).abs() < 1e-7);
    }

    #[test]
    fn lu_solve_inverts(a in spd_matrix(6), b in prop::collection::vec(-2.0f64..2.0, 6)) {
        // SPD matrices are well-conditioned enough for a tight round-trip.
        let lu = Lu::new(&a).unwrap();
        let x = lu.solve(&b);
        let back = a.matvec(&x);
        for (u, v) in b.iter().zip(&back) {
            prop_assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    fn matmul_associativity(
        a in square_matrix(3),
        b in square_matrix(3),
        c in square_matrix(3),
    ) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(left.max_abs_diff(&right) < 1e-10);
    }

    #[test]
    fn transpose_of_product(a in square_matrix(4), b in square_matrix(4)) {
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-12);
    }

    #[test]
    fn norm_cdf_inverse_round_trip(p in 1e-5f64..0.99999) {
        let x = mfbo_linalg::norm_inv_cdf(p);
        prop_assert!((mfbo_linalg::norm_cdf(x) - p).abs() < 1e-5);
    }

    #[test]
    fn standardizer_is_affine_invertible(ys in prop::collection::vec(-100.0f64..100.0, 2..40)) {
        let s = mfbo_linalg::Standardizer::fit(&ys);
        for &y in &ys {
            prop_assert!((s.inverse(s.transform(y)) - y).abs() < 1e-8);
        }
    }
}

//! Property-based tests for the linear-algebra kernels.

use mfbo_linalg::{Cholesky, Lu, Matrix};
use proptest::prelude::*;

/// Strategy: a random `n x n` matrix with entries in [-1, 1].
fn square_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-1.0f64..1.0, n * n).prop_map(move |data| Matrix::from_vec(n, n, data))
}

/// Strategy: a random SPD matrix built as `B Bᵀ + n·I` (guaranteed SPD).
fn spd_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    square_matrix(n).prop_map(move |b| {
        let mut a = b.matmul(&b.transpose());
        a.add_diag(n as f64);
        a
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cholesky_reconstructs(a in spd_matrix(5)) {
        let chol = Cholesky::new(&a).unwrap();
        let l = chol.factor();
        let recon = l.matmul(&l.transpose());
        prop_assert!(recon.max_abs_diff(&a) < 1e-9);
    }

    #[test]
    fn cholesky_solve_inverts(a in spd_matrix(5), b in prop::collection::vec(-2.0f64..2.0, 5)) {
        let chol = Cholesky::new(&a).unwrap();
        let x = chol.solve_vec(&b);
        let back = a.matvec(&x);
        for (u, v) in b.iter().zip(&back) {
            prop_assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    fn cholesky_quad_form_nonnegative(a in spd_matrix(4), b in prop::collection::vec(-2.0f64..2.0, 4)) {
        let chol = Cholesky::new(&a).unwrap();
        prop_assert!(chol.quad_form(&b) >= -1e-12);
    }

    #[test]
    fn cholesky_log_det_matches_lu_det(a in spd_matrix(4)) {
        let chol = Cholesky::new(&a).unwrap();
        let lu = Lu::new(&a).unwrap();
        // det of an SPD matrix is positive, so log|A| should match.
        prop_assert!(lu.det() > 0.0);
        prop_assert!((chol.log_det() - lu.det().ln()).abs() < 1e-7);
    }

    #[test]
    fn lu_solve_inverts(a in spd_matrix(6), b in prop::collection::vec(-2.0f64..2.0, 6)) {
        // SPD matrices are well-conditioned enough for a tight round-trip.
        let lu = Lu::new(&a).unwrap();
        let x = lu.solve(&b);
        let back = a.matvec(&x);
        for (u, v) in b.iter().zip(&back) {
            prop_assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    fn matmul_associativity(
        a in square_matrix(3),
        b in square_matrix(3),
        c in square_matrix(3),
    ) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(left.max_abs_diff(&right) < 1e-10);
    }

    #[test]
    fn transpose_of_product(a in square_matrix(4), b in square_matrix(4)) {
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-12);
    }

    #[test]
    fn norm_cdf_inverse_round_trip(p in 1e-5f64..0.99999) {
        let x = mfbo_linalg::norm_inv_cdf(p);
        prop_assert!((mfbo_linalg::norm_cdf(x) - p).abs() < 1e-5);
    }

    #[test]
    fn standardizer_is_affine_invertible(ys in prop::collection::vec(-100.0f64..100.0, 2..40)) {
        let s = mfbo_linalg::Standardizer::fit(&ys);
        for &y in &ys {
            prop_assert!((s.inverse(s.transform(y)) - y).abs() < 1e-8);
        }
    }
}

/// Bit-identity pins for the blocked/workspace Cholesky paths: the blocked
/// factorization, the triangular-inverse fast path, the `_into` variants,
/// and the rank-one append must reproduce their reference counterparts
/// **exactly** — these guard the reproducibility contract, so they compare
/// `f64::to_bits`, not tolerances. Sizes straddle the panel width so the
/// multi-panel code paths run.
mod bit_identity {
    use super::*;
    use proptest::TestCaseError;

    fn assert_bits_eq(a: &[f64], b: &[f64]) -> Result<(), TestCaseError> {
        for (x, y) in a.iter().zip(b) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn blocked_factorization_bit_identical_to_unblocked(a in spd_matrix(60)) {
            let blocked = Cholesky::new(&a).unwrap();
            let reference = Cholesky::new_unblocked(&a).unwrap();
            assert_bits_eq(blocked.factor().as_slice(), reference.factor().as_slice())?;
        }

        /// Block-edge fuzzing for the blocked factorization: sizes pinned to
        /// `PANEL ± 1`, `2·PANEL ± 1` (PANEL = 48) and nearby primes, where
        /// panel-boundary indexing bugs hide. Every size must reproduce the
        /// unblocked reference bit for bit.
        #[test]
        fn blocked_factorization_bit_identical_at_block_edges(
            size_idx in 0usize..9,
            seed in 0u64..u64::MAX,
        ) {
            let n = [47usize, 48, 49, 53, 89, 95, 96, 97, 101][size_idx];
            // Deterministic pseudo-random SPD matrix seeded per case: a
            // strategy-generated matrix at the largest size would dominate
            // runtime, and the entries' exact distribution is irrelevant to
            // the indexing paths under test.
            let mut state = seed | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            };
            let b = Matrix::from_fn(n, n, |_, _| next());
            let mut a = b.matmul(&b.transpose());
            a.add_diag(n as f64);
            let blocked = Cholesky::new(&a).unwrap();
            let reference = Cholesky::new_unblocked(&a).unwrap();
            assert_bits_eq(blocked.factor().as_slice(), reference.factor().as_slice())?;
        }

        /// The lane-interleaved multi-RHS solve path must match the scalar
        /// per-column path bit for bit, including the remainder columns.
        #[test]
        fn solve_matrix_backend_bit_identical(
            a in spd_matrix(19),
            rhs in prop::collection::vec(-2.0f64..2.0, 19 * 7),
        ) {
            let chol = Cholesky::new(&a).unwrap();
            let b = Matrix::from_vec(19, 7, rhs);
            let mut fast = Matrix::zeros(19, 7);
            let mut reference = Matrix::zeros(19, 7);
            chol.solve_matrix_into_with_backend(&b, &mut fast, mfbo_simd::detect());
            chol.solve_matrix_into_with_backend(&b, &mut reference, mfbo_simd::Backend::Scalar);
            assert_bits_eq(fast.as_slice(), reference.as_slice())?;
        }

        #[test]
        fn inverse_bit_identical_to_identity_solves(a in spd_matrix(24)) {
            let chol = Cholesky::new(&a).unwrap();
            let inv = chol.inverse();
            // Reference: solve against each identity column.
            let n = a.rows();
            for j in 0..n {
                let mut e = vec![0.0; n];
                e[j] = 1.0;
                let col = chol.solve_vec(&e);
                for i in 0..n {
                    prop_assert_eq!(inv[(i, j)].to_bits(), col[i].to_bits());
                }
            }
        }

        #[test]
        fn inverse_lower_bit_identical_on_lower_triangle(a in spd_matrix(24)) {
            let chol = Cholesky::new(&a).unwrap();
            let lower = chol.inverse_lower();
            let full = chol.inverse();
            let n = a.rows();
            for i in 0..n {
                for j in 0..=i {
                    prop_assert_eq!(lower[(i, j)].to_bits(), full[(i, j)].to_bits());
                    prop_assert_eq!(lower[(j, i)].to_bits(), lower[(i, j)].to_bits());
                }
            }
        }

        #[test]
        fn into_variants_bit_identical_to_allocating(
            a in spd_matrix(17),
            b in prop::collection::vec(-2.0f64..2.0, 17),
        ) {
            let chol = Cholesky::new(&a).unwrap();
            let n = 17;
            let mut out = vec![0.0; n];
            let mut scratch = vec![0.0; n];
            chol.forward_solve_into(&b, &mut out);
            assert_bits_eq(&chol.forward_solve(&b), &out)?;
            chol.back_solve_into(&b, &mut out);
            assert_bits_eq(&chol.back_solve(&b), &out)?;
            chol.solve_vec_into(&b, &mut scratch, &mut out);
            assert_bits_eq(&chol.solve_vec(&b), &out)?;
            prop_assert_eq!(
                chol.quad_form(&b).to_bits(),
                chol.quad_form_with(&b, &mut scratch).to_bits()
            );
        }

        #[test]
        fn append_row_bit_identical_to_refactorization(a in spd_matrix(20)) {
            // Factor the leading 19×19 block, append row 19, and compare
            // against factorizing the full matrix in one shot.
            let n = a.rows();
            let mut leading = Matrix::zeros(n - 1, n - 1);
            for i in 0..n - 1 {
                for j in 0..n - 1 {
                    leading[(i, j)] = a[(i, j)];
                }
            }
            let mut grown = Cholesky::new(&leading).unwrap();
            let full = Cholesky::new(&a).unwrap();
            // `new` applies no jitter to SPD input, so the appended diagonal
            // is the raw entry (plus the factor's zero jitter).
            prop_assert_eq!(grown.jitter(), full.jitter());
            let k_new: Vec<f64> = (0..n - 1).map(|j| a[(n - 1, j)]).collect();
            grown.append_row(&k_new, a[(n - 1, n - 1)] + grown.jitter()).unwrap();
            assert_bits_eq(grown.factor().as_slice(), full.factor().as_slice())?;
        }

        #[test]
        fn remove_row_inverts_append_row_bit_exactly(a in spd_matrix(14)) {
            // Downdating away the row just appended must restore the
            // original factor byte for byte: last-row removal touches no
            // other entries, so append → remove is the identity.
            let n = a.rows();
            let mut leading = Matrix::zeros(n - 1, n - 1);
            for i in 0..n - 1 {
                for j in 0..n - 1 {
                    leading[(i, j)] = a[(i, j)];
                }
            }
            let original = Cholesky::new(&leading).unwrap();
            let mut working = Cholesky::new(&leading).unwrap();
            let k_new: Vec<f64> = (0..n - 1).map(|j| a[(n - 1, j)]).collect();
            working
                .append_row(&k_new, a[(n - 1, n - 1)] + working.jitter())
                .unwrap();
            working.remove_row(n - 1);
            assert_bits_eq(working.factor().as_slice(), original.factor().as_slice())?;
        }

        #[test]
        fn append_row_backend_bit_identity(a in spd_matrix(60)) {
            // Differential across SIMD backends at a size past the blocked
            // panel width, so the dispatched fold kernels actually engage
            // (the small-n append proptests above never leave the scalar
            // code path): growing a scalar-built factor and a
            // dispatched-built factor by the same row must agree bit for
            // bit, both with each other and with one-shot refactorization.
            let n = a.rows();
            let mut leading = Matrix::zeros(n - 1, n - 1);
            for i in 0..n - 1 {
                for j in 0..n - 1 {
                    leading[(i, j)] = a[(i, j)];
                }
            }
            let mut scalar =
                Cholesky::new_with_backend(&leading, mfbo_simd::Backend::Scalar).unwrap();
            let mut dispatched =
                Cholesky::new_with_backend(&leading, mfbo_simd::detect()).unwrap();
            prop_assert_eq!(scalar.jitter(), dispatched.jitter());
            let k_new: Vec<f64> = (0..n - 1).map(|j| a[(n - 1, j)]).collect();
            scalar.append_row(&k_new, a[(n - 1, n - 1)] + scalar.jitter()).unwrap();
            dispatched
                .append_row(&k_new, a[(n - 1, n - 1)] + dispatched.jitter())
                .unwrap();
            assert_bits_eq(scalar.factor().as_slice(), dispatched.factor().as_slice())?;
            let full = Cholesky::new(&a).unwrap();
            assert_bits_eq(dispatched.factor().as_slice(), full.factor().as_slice())?;
        }

        #[test]
        fn remove_row_backend_bit_identity(a in spd_matrix(60), pick in 0usize..60) {
            // The trailing-block downdate of an interior removal must also
            // be backend-invariant at SIMD-engaging sizes.
            let mut scalar =
                Cholesky::new_with_backend(&a, mfbo_simd::Backend::Scalar).unwrap();
            let mut dispatched =
                Cholesky::new_with_backend(&a, mfbo_simd::detect()).unwrap();
            scalar.remove_row(pick);
            dispatched.remove_row(pick);
            assert_bits_eq(scalar.factor().as_slice(), dispatched.factor().as_slice())?;
        }

        #[test]
        fn remove_row_matches_refactorization_of_reduced_matrix(
            a in spd_matrix(9),
            pick in 0usize..9,
        ) {
            // Removing an interior row is a rank-one downdate of the
            // trailing block; the result must agree with factorizing the
            // reduced matrix from scratch to rounding accuracy.
            let n = a.rows();
            let mut downdated = Cholesky::new(&a).unwrap();
            downdated.remove_row(pick);
            let mut reduced = Matrix::zeros(n - 1, n - 1);
            for i in 0..n - 1 {
                let si = i + usize::from(i >= pick);
                for j in 0..n - 1 {
                    let sj = j + usize::from(j >= pick);
                    reduced[(i, j)] = a[(si, sj)];
                }
            }
            let fresh = Cholesky::new(&reduced).unwrap();
            for (d, f) in downdated.factor().as_slice().iter().zip(fresh.factor().as_slice()) {
                prop_assert!((d - f).abs() <= 1e-8 * (1.0 + f.abs()), "{d} vs {f}");
            }
        }
    }
}

//! Error type shared by the factorization routines.

use std::error::Error;
use std::fmt;

/// Error raised by linear-algebra routines in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LinalgError {
    /// The matrix passed to [`crate::Cholesky::new`] was not positive
    /// definite, even after the maximum jitter was added to its diagonal.
    NotPositiveDefinite {
        /// Index of the pivot that first failed.
        pivot: usize,
    },
    /// The matrix passed to [`crate::Lu::new`] is singular to working
    /// precision.
    Singular {
        /// Index of the pivot column where elimination broke down.
        pivot: usize,
    },
    /// Operand shapes do not agree (e.g. multiplying a 3x2 by a 3x3).
    ShapeMismatch {
        /// Human-readable description of the offending operation.
        context: &'static str,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular to working precision (pivot {pivot})")
            }
            LinalgError::ShapeMismatch { context } => {
                write!(f, "operand shapes do not agree in {context}")
            }
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = LinalgError::NotPositiveDefinite { pivot: 3 };
        let s = e.to_string();
        assert!(s.contains("positive definite"));
        assert!(s.contains('3'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}

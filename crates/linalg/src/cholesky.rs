//! Cholesky factorization of symmetric positive-definite matrices.
//!
//! The Gaussian-process stack funnels every covariance operation through
//! this module: training needs `log|K|` and `K⁻¹y`, prediction needs
//! triangular solves against kernel cross-covariance vectors, and the
//! Monte-Carlo posterior propagation in the multi-fidelity model needs
//! `L z` products for sampling. Kernel matrices are only positive
//! *semi*-definite in exact arithmetic and frequently slip below zero in
//! floating point when inputs nearly coincide, so [`Cholesky::new_with_jitter`]
//! retries with a geometrically growing diagonal "jitter" — the standard GP
//! practice.

use crate::{LinalgError, Matrix};

/// Lower-triangular Cholesky factor `L` of an SPD matrix `A = L Lᵀ`.
///
/// # Examples
///
/// ```
/// use mfbo_linalg::{Matrix, Cholesky};
///
/// # fn main() -> Result<(), mfbo_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[25.0, 15.0, -5.0],
///                             &[15.0, 18.0,  0.0],
///                             &[-5.0,  0.0, 11.0]]);
/// let chol = Cholesky::new(&a)?;
/// // Known factor of this classic example.
/// assert!((chol.factor()[(0, 0)] - 5.0).abs() < 1e-12);
/// // det(A) = 2025 for this matrix, so log|A| = ln 2025.
/// assert!((chol.log_det() - 2025f64.ln()).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
    /// Diagonal jitter that had to be added for the factorization to succeed.
    jitter: f64,
}

impl Cholesky {
    /// Factorizes `a` without adding jitter.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotPositiveDefinite`] if a pivot is not
    /// strictly positive, and [`LinalgError::ShapeMismatch`] if `a` is not
    /// square.
    pub fn new(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::ShapeMismatch {
                context: "cholesky",
            });
        }
        Self::factorize(a, 0.0)
    }

    /// Factorizes `a`, retrying with a diagonal jitter that grows
    /// geometrically from `initial` to `max` until the factorization
    /// succeeds.
    ///
    /// This is the entry point used by the GP code. The jitter actually used
    /// is available via [`Cholesky::jitter`] so callers can fold it into
    /// their noise estimate.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotPositiveDefinite`] if even the maximum
    /// jitter fails, and [`LinalgError::ShapeMismatch`] if `a` is not square.
    pub fn new_with_jitter(a: &Matrix, initial: f64, max: f64) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::ShapeMismatch {
                context: "cholesky",
            });
        }
        match Self::factorize(a, 0.0) {
            Ok(c) => Ok(c),
            Err(_) => {
                let mut jitter = initial.max(f64::MIN_POSITIVE);
                let mut attempts = 1u64;
                loop {
                    attempts += 1;
                    match Self::factorize(a, jitter) {
                        Ok(c) => {
                            mfbo_telemetry::debug_event!(
                                "cholesky_jitter",
                                n = a.rows(),
                                jitter = c.jitter,
                                attempts = attempts,
                                condition = c.condition_estimate(),
                            );
                            return Ok(c);
                        }
                        Err(e) if jitter >= max => {
                            mfbo_telemetry::debug_event!(
                                "cholesky_failed",
                                n = a.rows(),
                                max_jitter = max,
                                attempts = attempts,
                            );
                            return Err(e);
                        }
                        Err(_) => jitter = (jitter * 10.0).min(max),
                    }
                }
            }
        }
    }

    fn factorize(a: &Matrix, jitter: f64) -> Result<Self, LinalgError> {
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            // Diagonal element.
            let mut d = a[(j, j)] + jitter;
            for k in 0..j {
                d -= l[(j, k)] * l[(j, k)];
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(LinalgError::NotPositiveDefinite { pivot: j });
            }
            let dj = d.sqrt();
            l[(j, j)] = dj;
            // Column below the diagonal.
            for i in (j + 1)..n {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = s / dj;
            }
        }
        Ok(Cholesky { l, jitter })
    }

    /// The lower-triangular factor `L`.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Diagonal jitter added during factorization (`0.0` when none was
    /// needed).
    pub fn jitter(&self) -> f64 {
        self.jitter
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Cheap condition-number estimate `(max L_ii / min L_ii)²`.
    ///
    /// The squared ratio of extreme Cholesky pivots lower-bounds the
    /// 2-norm condition number of `A`; it is free to compute from the
    /// existing factor and tracks the true κ₂ closely enough to flag
    /// near-singular kernel matrices in telemetry.
    pub fn condition_estimate(&self) -> f64 {
        let n = self.dim();
        if n == 0 {
            return 1.0;
        }
        let mut lo = f64::INFINITY;
        let mut hi = 0.0f64;
        for i in 0..n {
            let d = self.l[(i, i)];
            lo = lo.min(d);
            hi = hi.max(d);
        }
        if lo <= 0.0 {
            f64::INFINITY
        } else {
            (hi / lo).powi(2)
        }
    }

    /// `log |A| = 2 Σ log L_ii`.
    pub fn log_det(&self) -> f64 {
        (0..self.l.rows()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// Solves `L z = b` by forward substitution.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    pub fn forward_solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(b.len(), n, "forward_solve length mismatch");
        let mut z = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            let row = self.l.row(i);
            for k in 0..i {
                s -= row[k] * z[k];
            }
            z[i] = s / row[i];
        }
        z
    }

    /// Solves `Lᵀ x = b` by back substitution.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    pub fn back_solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(b.len(), n, "back_solve length mismatch");
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = b[i];
            for (k, xk) in x.iter().enumerate().skip(i + 1) {
                s -= self.l[(k, i)] * xk;
            }
            x[i] = s / self.l[(i, i)];
        }
        x
    }

    /// Solves `A x = b` (both triangular solves).
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    pub fn solve_vec(&self, b: &[f64]) -> Vec<f64> {
        self.back_solve(&self.forward_solve(b))
    }

    /// Solves `A X = B` column by column.
    ///
    /// # Panics
    ///
    /// Panics if `b.rows() != self.dim()`.
    pub fn solve_matrix(&self, b: &Matrix) -> Matrix {
        assert_eq!(b.rows(), self.dim(), "solve_matrix shape mismatch");
        let mut out = Matrix::zeros(b.rows(), b.cols());
        for j in 0..b.cols() {
            let col = b.col(j);
            let x = self.solve_vec(&col);
            for i in 0..b.rows() {
                out[(i, j)] = x[i];
            }
        }
        out
    }

    /// The explicit inverse `A⁻¹`.
    ///
    /// Prefer the `solve_*` methods; the explicit inverse is only needed for
    /// the trace terms in NLML gradients.
    pub fn inverse(&self) -> Matrix {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }

    /// Quadratic form `bᵀ A⁻¹ b`, computed stably as `‖L⁻¹ b‖²`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    pub fn quad_form(&self, b: &[f64]) -> f64 {
        let z = self.forward_solve(b);
        crate::dot(&z, &z)
    }

    /// Returns `L z` — used to draw correlated Gaussian samples from
    /// i.i.d. standard normals `z`.
    ///
    /// # Panics
    ///
    /// Panics if `z.len() != self.dim()`.
    pub fn l_matvec(&self, z: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(z.len(), n, "l_matvec length mismatch");
        let mut out = vec![0.0; n];
        for (i, o) in out.iter_mut().enumerate() {
            let row = self.l.row(i);
            let mut s = 0.0;
            for k in 0..=i {
                s += row[k] * z[k];
            }
            *o = s;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd_example() -> Matrix {
        Matrix::from_rows(&[&[25.0, 15.0, -5.0], &[15.0, 18.0, 0.0], &[-5.0, 0.0, 11.0]])
    }

    #[test]
    fn factor_matches_known_result() {
        let chol = Cholesky::new(&spd_example()).unwrap();
        let l = chol.factor();
        let expect = Matrix::from_rows(&[&[5.0, 0.0, 0.0], &[3.0, 3.0, 0.0], &[-1.0, 1.0, 3.0]]);
        assert!(l.max_abs_diff(&expect) < 1e-12);
        assert_eq!(chol.jitter(), 0.0);
    }

    #[test]
    fn reconstruction_l_lt() {
        let a = spd_example();
        let chol = Cholesky::new(&a).unwrap();
        let l = chol.factor();
        let recon = l.matmul(&l.transpose());
        assert!(recon.max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn log_det_matches_eigen_product() {
        // det = 5^2 * 3^2 * 3^2 = 2025.
        let chol = Cholesky::new(&spd_example()).unwrap();
        assert!((chol.log_det() - 2025.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn solve_recovers_rhs() {
        let a = spd_example();
        let chol = Cholesky::new(&a).unwrap();
        let b = vec![1.0, -2.0, 0.5];
        let x = chol.solve_vec(&b);
        let back = a.matvec(&x);
        for (bi, bb) in b.iter().zip(&back) {
            assert!((bi - bb).abs() < 1e-12);
        }
    }

    #[test]
    fn solve_matrix_and_inverse() {
        let a = spd_example();
        let chol = Cholesky::new(&a).unwrap();
        let inv = chol.inverse();
        let prod = a.matmul(&inv);
        assert!(prod.max_abs_diff(&Matrix::identity(3)) < 1e-12);
    }

    #[test]
    fn quad_form_matches_direct() {
        let a = spd_example();
        let chol = Cholesky::new(&a).unwrap();
        let b = vec![0.3, 1.0, -0.7];
        let x = chol.solve_vec(&b);
        let direct = crate::dot(&b, &x);
        assert!((chol.quad_form(&b) - direct).abs() < 1e-12);
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn jitter_rescues_semidefinite() {
        // Rank-1 matrix: vvᵀ with v = (1, 1); singular but PSD.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let chol = Cholesky::new_with_jitter(&a, 1e-10, 1e-2).unwrap();
        assert!(chol.jitter() > 0.0);
        // The solve should still approximately invert a + jitter*I.
        let mut aj = a.clone();
        aj.add_diag(chol.jitter());
        let x = chol.solve_vec(&[1.0, 0.0]);
        let back = aj.matvec(&x);
        assert!((back[0] - 1.0).abs() < 1e-6 && back[1].abs() < 1e-6);
    }

    #[test]
    fn condition_estimate_reflects_scaling() {
        let well = Cholesky::new(&Matrix::identity(3)).unwrap();
        assert!((well.condition_estimate() - 1.0).abs() < 1e-12);
        let a = Matrix::from_rows(&[&[1e6, 0.0], &[0.0, 1e-6]]);
        let ill = Cholesky::new(&a).unwrap();
        assert!(ill.condition_estimate() > 1e11);
    }

    #[test]
    fn jitter_retry_emits_telemetry() {
        let sink = std::sync::Arc::new(mfbo_telemetry::sinks::CollectSink::with_level(
            mfbo_telemetry::Level::Debug,
        ));
        let _g = mfbo_telemetry::scoped_sink(sink.clone());
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let _ = Cholesky::new_with_jitter(&a, 1e-10, 1e-2).unwrap();
        let recs = sink.named("cholesky_jitter");
        assert_eq!(recs.len(), 1);
        assert!(recs[0].field("jitter").is_some());
        assert!(recs[0].field("attempts").is_some());
    }

    #[test]
    fn jitter_gives_up_at_max() {
        let a = Matrix::from_rows(&[&[-1.0, 0.0], &[0.0, -1.0]]);
        assert!(Cholesky::new_with_jitter(&a, 1e-10, 1e-4).is_err());
    }

    #[test]
    fn l_matvec_matches_dense_product() {
        let chol = Cholesky::new(&spd_example()).unwrap();
        let z = vec![0.5, -1.0, 2.0];
        let got = chol.l_matvec(&z);
        let want = chol.factor().matvec(&z);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-14);
        }
    }

    #[test]
    fn forward_back_are_inverses_of_triangular_products() {
        let chol = Cholesky::new(&spd_example()).unwrap();
        let b = vec![1.0, 2.0, 3.0];
        let z = chol.forward_solve(&b);
        let lb = chol.l_matvec(&z);
        for (x, y) in lb.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
        let x = chol.back_solve(&b);
        let ltx = chol.factor().transpose().matvec(&x);
        for (got, want) in ltx.iter().zip(&b) {
            assert!((got - want).abs() < 1e-12);
        }
    }
}

//! Cholesky factorization of symmetric positive-definite matrices.
//!
//! The Gaussian-process stack funnels every covariance operation through
//! this module: training needs `log|K|` and `K⁻¹y`, prediction needs
//! triangular solves against kernel cross-covariance vectors, and the
//! Monte-Carlo posterior propagation in the multi-fidelity model needs
//! `L z` products for sampling. Kernel matrices are only positive
//! *semi*-definite in exact arithmetic and frequently slip below zero in
//! floating point when inputs nearly coincide, so [`Cholesky::new_with_jitter`]
//! retries with a geometrically growing diagonal "jitter" — the standard GP
//! practice.

use crate::{LinalgError, Matrix};

/// Lower-triangular Cholesky factor `L` of an SPD matrix `A = L Lᵀ`.
///
/// # Examples
///
/// ```
/// use mfbo_linalg::{Matrix, Cholesky};
///
/// # fn main() -> Result<(), mfbo_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[25.0, 15.0, -5.0],
///                             &[15.0, 18.0,  0.0],
///                             &[-5.0,  0.0, 11.0]]);
/// let chol = Cholesky::new(&a)?;
/// // Known factor of this classic example.
/// assert!((chol.factor()[(0, 0)] - 5.0).abs() < 1e-12);
/// // det(A) = 2025 for this matrix, so log|A| = ln 2025.
/// assert!((chol.log_det() - 2025f64.ln()).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
    /// The same factor in packed column-major storage: column `j` occupies
    /// `cols[col_offset(j)..col_offset(j) + n - j]` and holds `L[j..n][j]`
    /// contiguously. Back substitution and the trailing updates of the
    /// blocked factorization walk columns of `L`; in the row-major [`Matrix`]
    /// those walks stride by `n` and miss cache on every element, so the
    /// packed copy is kept alongside the row-major factor (which row-oriented
    /// consumers — forward substitution, `l_matvec`, [`Cholesky::factor`] —
    /// still use).
    cols: Vec<f64>,
    /// Diagonal jitter that had to be added for the factorization to succeed.
    jitter: f64,
}

/// Panel width of the blocked factorization. Each diagonal panel is factored
/// column-by-column, then folded into the trailing columns one finished
/// column at a time, which keeps the floating-point operation order of every
/// element identical to the unblocked reference while touching each trailing
/// column once per panel instead of once per source column.
const PANEL: usize = 48;

impl Cholesky {
    /// Factorizes `a` without adding jitter.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotPositiveDefinite`] if a pivot is not
    /// strictly positive, and [`LinalgError::ShapeMismatch`] if `a` is not
    /// square.
    pub fn new(a: &Matrix) -> Result<Self, LinalgError> {
        Self::new_with_backend(a, mfbo_simd::active())
    }

    /// [`Cholesky::new`] with an explicit SIMD backend instead of the
    /// process-wide dispatch decision — the hook the differential tests and
    /// A/B benches use to pin both paths in one process. Every backend
    /// yields a bit-identical factor.
    ///
    /// # Errors
    ///
    /// As for [`Cholesky::new`].
    pub fn new_with_backend(a: &Matrix, be: mfbo_simd::Backend) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::ShapeMismatch {
                context: "cholesky",
            });
        }
        Self::factorize(a, 0.0, be)
    }

    /// Factorizes `a`, retrying with a diagonal jitter that grows
    /// geometrically from `initial` to `max` until the factorization
    /// succeeds.
    ///
    /// This is the entry point used by the GP code. The jitter actually used
    /// is available via [`Cholesky::jitter`] so callers can fold it into
    /// their noise estimate.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotPositiveDefinite`] if even the maximum
    /// jitter fails, and [`LinalgError::ShapeMismatch`] if `a` is not square.
    pub fn new_with_jitter(a: &Matrix, initial: f64, max: f64) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::ShapeMismatch {
                context: "cholesky",
            });
        }
        let be = mfbo_simd::active();
        match Self::factorize(a, 0.0, be) {
            Ok(c) => Ok(c),
            Err(_) => {
                let mut jitter = initial.max(f64::MIN_POSITIVE);
                let mut attempts = 1u64;
                loop {
                    attempts += 1;
                    match Self::factorize(a, jitter, be) {
                        Ok(c) => {
                            mfbo_telemetry::debug_event!(
                                "cholesky_jitter",
                                n = a.rows(),
                                jitter = c.jitter,
                                attempts = attempts,
                                condition = c.condition_estimate(),
                            );
                            return Ok(c);
                        }
                        Err(e) if jitter >= max => {
                            mfbo_telemetry::debug_event!(
                                "cholesky_failed",
                                n = a.rows(),
                                max_jitter = max,
                                attempts = attempts,
                            );
                            return Err(e);
                        }
                        Err(_) => jitter = (jitter * 10.0).min(max),
                    }
                }
            }
        }
    }

    /// Reference unblocked factorization: the textbook element-wise
    /// algorithm the blocked kernel must reproduce bit-for-bit. Retained for
    /// differential testing ([`Cholesky::new`] and this constructor must
    /// yield identical factors on every input).
    pub fn new_unblocked(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::ShapeMismatch {
                context: "cholesky",
            });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            // Diagonal element.
            let mut d = a[(j, j)];
            for k in 0..j {
                d -= l[(j, k)] * l[(j, k)];
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(LinalgError::NotPositiveDefinite { pivot: j });
            }
            let dj = d.sqrt();
            l[(j, j)] = dj;
            // Column below the diagonal.
            for i in (j + 1)..n {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = s / dj;
            }
        }
        let cols = Self::pack_lower(&l);
        Ok(Cholesky {
            l,
            cols,
            jitter: 0.0,
        })
    }

    /// Start index of packed column `j` within [`Cholesky::cols`].
    #[inline]
    fn col_offset(n: usize, j: usize) -> usize {
        j * (2 * n - j + 1) / 2
    }

    /// Packed column `i` of the factor: `L[i..n][i]`, contiguous.
    #[inline]
    fn col_slice(&self, i: usize) -> &[f64] {
        let n = self.dim();
        let off = Self::col_offset(n, i);
        &self.cols[off..off + n - i]
    }

    /// Packs the lower triangle of a row-major factor into contiguous
    /// column-major storage.
    fn pack_lower(l: &Matrix) -> Vec<f64> {
        let n = l.rows();
        let mut cols = vec![0.0; n * (n + 1) / 2];
        for j in 0..n {
            let off = Self::col_offset(n, j);
            for i in j..n {
                cols[off + (i - j)] = l[(i, j)];
            }
        }
        cols
    }

    fn factorize(a: &Matrix, jitter: f64, be: mfbo_simd::Backend) -> Result<Self, LinalgError> {
        let n = a.rows();
        // Pack the lower triangle of `a` (jitter folded into the diagonal)
        // into contiguous column-major storage, factor in place, then
        // materialize the row-major factor for row-oriented consumers.
        let mut cols = vec![0.0; n * (n + 1) / 2];
        for j in 0..n {
            let off = Self::col_offset(n, j);
            for i in j..n {
                cols[off + (i - j)] = a[(i, j)];
            }
            cols[off] += jitter;
        }
        Self::factorize_packed(n, &mut cols, be)?;
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            let off = Self::col_offset(n, j);
            for i in j..n {
                l[(i, j)] = cols[off + (i - j)];
            }
        }
        Ok(Cholesky { l, cols, jitter })
    }

    /// Blocked right-looking factorization over packed column storage.
    ///
    /// Bit-identity with the unblocked reference: every element `(i, j)`
    /// accumulates `a[i][j] - Σₖ L[i][k]·L[j][k]` with the subtractions
    /// applied one `k` at a time in ascending order — trailing updates walk
    /// finished panels left to right and columns within a panel left to
    /// right, and the in-panel sweep covers the remaining `k`, so the
    /// per-element operation sequence is exactly that of the reference.
    /// Blocking changes only the memory-access schedule, never the
    /// arithmetic.
    ///
    /// The per-column updates are delegated to [`mfbo_simd::fold_cols`],
    /// which applies a whole panel's worth of source columns to one
    /// destination column while it sits in registers — the SIMD backends
    /// vectorize across the column *elements* (independent scalar chains)
    /// and keep each element's `k`-order ascending, so the factor is
    /// bit-identical under every backend.
    fn factorize_packed(
        n: usize,
        c: &mut [f64],
        be: mfbo_simd::Backend,
    ) -> Result<(), LinalgError> {
        let off = |j: usize| Self::col_offset(n, j);
        // Reused `(source offset, multiplier)` list: entry `k` points at the
        // packed sub-column `L[j..n][k]` (which starts `j-k` elements into
        // column `k`) with multiplier `L[j][k]` — the first element of that
        // same sub-column.
        let mut folds: Vec<(usize, f64)> = Vec::with_capacity(PANEL);
        let mut pb = 0;
        while pb < n {
            let pe = (pb + PANEL).min(n);
            // Factor the diagonal panel. Contributions from columns < pb
            // were applied by the trailing updates of earlier panels, and
            // columns pb..j of this panel are all finished by the time
            // column j folds them in.
            for j in pb..pe {
                let (head, tail) = c.split_at_mut(off(j));
                let colj = &mut tail[..n - j];
                folds.clear();
                for k in pb..j {
                    let src = off(k) + (j - k);
                    folds.push((src, head[src]));
                }
                mfbo_simd::fold_cols(be, colj, head, &folds);
                let d = colj[0];
                if d <= 0.0 || !d.is_finite() {
                    return Err(LinalgError::NotPositiveDefinite { pivot: j });
                }
                let dj = d.sqrt();
                colj[0] = dj;
                for v in colj[1..].iter_mut() {
                    *v /= dj;
                }
            }
            // Fold the finished panel into every trailing column, the
            // finished columns applied in ascending order per element.
            for j in pe..n {
                let (head, tail) = c.split_at_mut(off(j));
                let colj = &mut tail[..n - j];
                folds.clear();
                for k in pb..pe {
                    let src = off(k) + (j - k);
                    folds.push((src, head[src]));
                }
                mfbo_simd::fold_cols(be, colj, head, &folds);
            }
            pb = pe;
        }
        Ok(())
    }

    /// The lower-triangular factor `L`.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Diagonal jitter added during factorization (`0.0` when none was
    /// needed).
    pub fn jitter(&self) -> f64 {
        self.jitter
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Cheap condition-number estimate `(max L_ii / min L_ii)²`.
    ///
    /// The squared ratio of extreme Cholesky pivots lower-bounds the
    /// 2-norm condition number of `A`; it is free to compute from the
    /// existing factor and tracks the true κ₂ closely enough to flag
    /// near-singular kernel matrices in telemetry.
    pub fn condition_estimate(&self) -> f64 {
        let n = self.dim();
        if n == 0 {
            return 1.0;
        }
        let mut lo = f64::INFINITY;
        let mut hi = 0.0f64;
        for i in 0..n {
            let d = self.l[(i, i)];
            lo = lo.min(d);
            hi = hi.max(d);
        }
        if lo <= 0.0 {
            f64::INFINITY
        } else {
            (hi / lo).powi(2)
        }
    }

    /// `log |A| = 2 Σ log L_ii`.
    pub fn log_det(&self) -> f64 {
        (0..self.l.rows()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// Solves `L z = b` by forward substitution.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    pub fn forward_solve(&self, b: &[f64]) -> Vec<f64> {
        let mut z = vec![0.0; self.dim()];
        self.forward_solve_into(b, &mut z);
        z
    }

    /// Allocation-free forward substitution writing into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` or `out.len()` differs from `self.dim()`.
    pub fn forward_solve_into(&self, b: &[f64], out: &mut [f64]) {
        let n = self.dim();
        assert_eq!(b.len(), n, "forward_solve length mismatch");
        assert_eq!(out.len(), n, "forward_solve output length mismatch");
        for i in 0..n {
            let mut s = b[i];
            let row = self.l.row(i);
            for k in 0..i {
                s -= row[k] * out[k];
            }
            out[i] = s / row[i];
        }
    }

    /// Solves `Lᵀ x = b` by back substitution.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    pub fn back_solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0; self.dim()];
        self.back_solve_into(b, &mut x);
        x
    }

    /// Allocation-free back substitution writing into `out`.
    ///
    /// Row `i` of `Lᵀ` is packed column `i` of `L`, so the inner product
    /// runs over contiguous memory rather than striding the row-major
    /// factor by `n`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` or `out.len()` differs from `self.dim()`.
    pub fn back_solve_into(&self, b: &[f64], out: &mut [f64]) {
        let n = self.dim();
        assert_eq!(b.len(), n, "back_solve length mismatch");
        assert_eq!(out.len(), n, "back_solve output length mismatch");
        for i in (0..n).rev() {
            let mut s = b[i];
            let col = self.col_slice(i);
            for (k, xk) in out.iter().enumerate().skip(i + 1) {
                s -= col[k - i] * xk;
            }
            out[i] = s / col[0];
        }
    }

    /// Interleaved multi-RHS forward substitution: solves `L z = b` for
    /// `be.lanes()` right-hand sides at once, stored lane-interleaved
    /// (`b[i*lanes + c]` is row `i` of RHS `c`). Each lane executes exactly
    /// the scalar [`Cholesky::forward_solve_into`] operation sequence, so
    /// de-interleaving the output reproduces the per-RHS solves bit for
    /// bit — while the factor streams through cache once per group instead
    /// of once per RHS.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` or `out.len()` differs from
    /// `self.dim() * be.lanes()`.
    pub fn forward_solve_interleaved_into(
        &self,
        be: mfbo_simd::Backend,
        b: &[f64],
        out: &mut [f64],
    ) {
        mfbo_simd::forward_solve_interleaved(be, self.l.as_slice(), self.dim(), b, out);
    }

    /// Interleaved multi-RHS back substitution: solves `Lᵀ x = b` for
    /// `be.lanes()` lane-interleaved right-hand sides against the packed
    /// column storage — the multi-RHS counterpart of
    /// [`Cholesky::back_solve_into`], bit-identical per lane.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` or `out.len()` differs from
    /// `self.dim() * be.lanes()`.
    pub fn back_solve_interleaved_into(&self, be: mfbo_simd::Backend, b: &[f64], out: &mut [f64]) {
        mfbo_simd::back_solve_interleaved(be, &self.cols, self.dim(), b, out);
    }

    /// Solves `A x = b` (both triangular solves).
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    pub fn solve_vec(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        let mut z = vec![0.0; n];
        let mut x = vec![0.0; n];
        self.solve_vec_into(b, &mut z, &mut x);
        x
    }

    /// Allocation-free `A x = b`: forward-substitutes into `scratch`, then
    /// back-substitutes into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()`, `scratch.len()`, or `out.len()` differs from
    /// `self.dim()`.
    pub fn solve_vec_into(&self, b: &[f64], scratch: &mut [f64], out: &mut [f64]) {
        self.forward_solve_into(b, scratch);
        self.back_solve_into(scratch, out);
    }

    /// Solves `A X = B` column by column.
    ///
    /// # Panics
    ///
    /// Panics if `b.rows() != self.dim()`.
    pub fn solve_matrix(&self, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(b.rows(), b.cols());
        self.solve_matrix_into(b, &mut out);
        out
    }

    /// Solves `A X = B` into a caller-provided matrix, reusing scratch
    /// buffers across all columns instead of allocating per column.
    ///
    /// Columns are solved in groups of [`mfbo_simd::Backend::lanes`]
    /// through the interleaved multi-RHS kernels (bit-identical per column
    /// to the scalar solves), with a scalar per-column pass for the
    /// remainder.
    ///
    /// # Panics
    ///
    /// Panics if `b.rows() != self.dim()` or `out` is not the shape of `b`.
    pub fn solve_matrix_into(&self, b: &Matrix, out: &mut Matrix) {
        self.solve_matrix_into_with_backend(b, out, mfbo_simd::active())
    }

    /// [`Cholesky::solve_matrix_into`] with an explicit SIMD backend — the
    /// differential-testing and A/B-bench hook.
    ///
    /// # Panics
    ///
    /// As for [`Cholesky::solve_matrix_into`].
    pub fn solve_matrix_into_with_backend(
        &self,
        b: &Matrix,
        out: &mut Matrix,
        be: mfbo_simd::Backend,
    ) {
        let n = self.dim();
        assert_eq!(b.rows(), n, "solve_matrix shape mismatch");
        assert_eq!(out.rows(), b.rows(), "solve_matrix output shape mismatch");
        assert_eq!(out.cols(), b.cols(), "solve_matrix output shape mismatch");
        let lanes = be.lanes();
        let mut j = 0;
        if lanes > 1 {
            let mut bi = vec![0.0; n * lanes];
            let mut zi = vec![0.0; n * lanes];
            let mut xi = vec![0.0; n * lanes];
            while j + lanes <= b.cols() {
                for i in 0..n {
                    for (c, slot) in bi[i * lanes..(i + 1) * lanes].iter_mut().enumerate() {
                        *slot = b[(i, j + c)];
                    }
                }
                self.forward_solve_interleaved_into(be, &bi, &mut zi);
                self.back_solve_interleaved_into(be, &zi, &mut xi);
                for i in 0..n {
                    for (c, &v) in xi[i * lanes..(i + 1) * lanes].iter().enumerate() {
                        out[(i, j + c)] = v;
                    }
                }
                j += lanes;
            }
        }
        let mut rhs = vec![0.0; n];
        let mut z = vec![0.0; n];
        let mut x = vec![0.0; n];
        for j in j..b.cols() {
            for (i, r) in rhs.iter_mut().enumerate() {
                *r = b[(i, j)];
            }
            self.forward_solve_into(&rhs, &mut z);
            self.back_solve_into(&z, &mut x);
            for (i, &xi) in x.iter().enumerate() {
                out[(i, j)] = xi;
            }
        }
    }

    /// The explicit inverse `A⁻¹`.
    ///
    /// Prefer the `solve_*` methods; the explicit inverse is only needed for
    /// the trace terms in NLML gradients.
    pub fn inverse(&self) -> Matrix {
        let n = self.dim();
        let mut out = Matrix::zeros(n, n);
        self.inverse_into(&mut out);
        out
    }

    /// Writes `A⁻¹` into a caller-provided matrix.
    ///
    /// Equivalent to `solve_matrix(&Matrix::identity(n))` bit for bit, but
    /// skips the structurally-zero work: when forward-substituting the
    /// `j`-th identity column, rows `< j` of the intermediate solution are
    /// exactly `+0.0` (every subtracted term is `L·(±0.0)` and `s - ±0.0`
    /// leaves `+0.0` unchanged), so the forward sweep starts at row `j`
    /// with `z[j] = 1/L[j][j]`. That halves the forward-phase flops on
    /// average and drops the identity-matrix materialization entirely.
    ///
    /// # Panics
    ///
    /// Panics if `out` is not `dim × dim`.
    pub fn inverse_into(&self, out: &mut Matrix) {
        let n = self.dim();
        assert_eq!(out.rows(), n, "inverse output shape mismatch");
        assert_eq!(out.cols(), n, "inverse output shape mismatch");
        let mut z = vec![0.0; n];
        let mut x = vec![0.0; n];
        for j in 0..n {
            for zk in z[..j].iter_mut() {
                *zk = 0.0;
            }
            z[j] = 1.0 / self.l[(j, j)];
            for i in (j + 1)..n {
                let row = self.l.row(i);
                let mut s = 0.0;
                for k in j..i {
                    s -= row[k] * z[k];
                }
                z[i] = s / row[i];
            }
            self.back_solve_into(&z, &mut x);
            for (i, &xi) in x.iter().enumerate() {
                out[(i, j)] = xi;
            }
        }
    }

    /// `A⁻¹` with only the lower triangle solved, the upper mirrored.
    ///
    /// The lower triangle (`i ≥ j`) is bit-identical to [`Cholesky::inverse`]:
    /// back substitution computes `x[i]` from `i = n−1` downward and never
    /// reads entries above the current row, so stopping column `j`'s sweep at
    /// row `j` leaves the computed entries unchanged. The upper triangle is
    /// copied from the lower (`A⁻¹` is symmetric), which in floating point
    /// may differ from the fully-solved upper entries in the last ulp — use
    /// this only when the consumer reads the lower triangle or treats the
    /// matrix as symmetric (e.g. the NLML gradient trace terms).
    ///
    /// Skipping the above-diagonal rows drops the back-substitution cost
    /// from `n³/3` to `n³/6` flops, cutting the total inverse cost by ~25 %.
    pub fn inverse_lower(&self) -> Matrix {
        let n = self.dim();
        let mut out = Matrix::zeros(n, n);
        self.inverse_lower_into(&mut out);
        out
    }

    /// Writes [`Cholesky::inverse_lower`] into a caller-provided matrix.
    ///
    /// # Panics
    ///
    /// Panics if `out` is not `dim × dim`.
    pub fn inverse_lower_into(&self, out: &mut Matrix) {
        let n = self.dim();
        assert_eq!(out.rows(), n, "inverse output shape mismatch");
        assert_eq!(out.cols(), n, "inverse output shape mismatch");
        let mut z = vec![0.0; n];
        let mut x = vec![0.0; n];
        for j in 0..n {
            // Forward phase: identical to `inverse_into` (rows < j of the
            // identity-column solution are structurally +0.0).
            for zk in z[..j].iter_mut() {
                *zk = 0.0;
            }
            z[j] = 1.0 / self.l[(j, j)];
            for i in (j + 1)..n {
                let row = self.l.row(i);
                let mut s = 0.0;
                for k in j..i {
                    s -= row[k] * z[k];
                }
                z[i] = s / row[i];
            }
            // Back substitution stopped at row j: entries i ≥ j only read
            // x[k] with k > i, all computed this column.
            for i in (j..n).rev() {
                let mut s = z[i];
                let col = self.col_slice(i);
                for (k, xk) in x.iter().enumerate().skip(i + 1) {
                    s -= col[k - i] * xk;
                }
                x[i] = s / col[0];
            }
            for (i, &xi) in x.iter().enumerate().skip(j) {
                out[(i, j)] = xi;
                out[(j, i)] = xi;
            }
        }
    }

    /// Quadratic form `bᵀ A⁻¹ b`, computed stably as `‖L⁻¹ b‖²`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    pub fn quad_form(&self, b: &[f64]) -> f64 {
        let mut z = vec![0.0; self.dim()];
        self.quad_form_with(b, &mut z)
    }

    /// [`Cholesky::quad_form`] with a caller-provided scratch buffer.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` or `scratch.len()` differs from `self.dim()`.
    pub fn quad_form_with(&self, b: &[f64], scratch: &mut [f64]) -> f64 {
        self.forward_solve_into(b, scratch);
        crate::dot(scratch, scratch)
    }

    /// Extends the factorization in place with one new trailing row/column
    /// of the underlying matrix in O(n²) instead of refactorizing in O(n³).
    ///
    /// `k_new` is the off-diagonal block `A[n][0..n]` and `diag` the new
    /// diagonal element `A[n][n]` — callers must fold any noise term *and*
    /// [`Cholesky::jitter`] into `diag` themselves, so the extended factor
    /// is bit-identical to factorizing the extended matrix from scratch at
    /// the same jitter: the new row solves the same recurrence the
    /// factorization would (`L w = k_new` by ascending forward
    /// substitution, then `d² = diag - Σ wᵢ²` subtracted one term at a
    /// time in ascending order).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotPositiveDefinite`] (pivot `n`) when the
    /// Schur complement of the new point is not strictly positive — e.g.
    /// the point duplicates an existing row. The factor is left untouched;
    /// callers should fall back to a full refactorization.
    ///
    /// # Panics
    ///
    /// Panics if `k_new.len() != self.dim()`.
    pub fn append_row(&mut self, k_new: &[f64], diag: f64) -> Result<(), LinalgError> {
        let n = self.dim();
        assert_eq!(k_new.len(), n, "append_row length mismatch");
        let mut w = vec![0.0; n];
        self.forward_solve_into(k_new, &mut w);
        let mut d = diag;
        for &wi in &w {
            d -= wi * wi;
        }
        if d <= 0.0 || !d.is_finite() {
            return Err(LinalgError::NotPositiveDefinite { pivot: n });
        }
        let dn = d.sqrt();
        let mut l = Matrix::zeros(n + 1, n + 1);
        for i in 0..n {
            l.row_mut(i)[..n].copy_from_slice(self.l.row(i));
        }
        let last = l.row_mut(n);
        last[..n].copy_from_slice(&w);
        last[n] = dn;
        self.cols = Self::pack_lower(&l);
        self.l = l;
        Ok(())
    }

    /// Removes row/column `idx` of the underlying matrix from the
    /// factorization in place — the downdate paired with
    /// [`Cholesky::append_row`] — in O((n − idx)²) instead of refactorizing
    /// in O(n³). This is what makes sliding-window and quarantine-removal
    /// refits cheap: evicting an observation costs a rank-one update of the
    /// trailing block, not a rebuild.
    ///
    /// Removing the **last** row is a pure truncation and therefore inverts
    /// [`Cholesky::append_row`] bit-for-bit:
    /// `remove_row(append_row(C)) ≡ C`. Removing an interior row applies
    /// the classic Givens-based rank-one update (LINPACK `dchud` schedule,
    /// columns left to right, rows ascending within a column) to restore
    /// the trailing factor; that path is deterministic but not bitwise
    /// identical to a from-scratch factorization of the reduced matrix —
    /// it agrees to rounding error.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.dim()`.
    pub fn remove_row(&mut self, idx: usize) {
        let n = self.dim();
        assert!(idx < n, "remove_row index {idx} out of range for dim {n}");
        let mut l = Matrix::zeros(n - 1, n - 1);
        // Rows above the removed one are untouched (their columns all
        // precede `idx`), as are the leading `idx` columns of later rows.
        for i in 0..idx {
            l.row_mut(i)[..=i].copy_from_slice(&self.l.row(i)[..=i]);
        }
        for i in (idx + 1)..n {
            l.row_mut(i - 1)[..idx].copy_from_slice(&self.l.row(i)[..idx]);
        }
        // Trailing block: with the removed row gone, the reduced matrix's
        // trailing Gram block gains back the deleted column's outer product
        // — S'S'ᵀ = SSᵀ + v vᵀ with S = L[idx+1.., idx+1..] and
        // v = L[idx+1.., idx]. Restore triangularity with Givens rotations,
        // one column at a time in ascending order.
        let m = n - 1 - idx;
        let mut v: Vec<f64> = (0..m).map(|i| self.l[(idx + 1 + i, idx)]).collect();
        for i in 0..m {
            l.row_mut(idx + i)[idx..idx + i + 1]
                .copy_from_slice(&self.l.row(idx + 1 + i)[idx + 1..idx + 2 + i]);
        }
        for k in 0..m {
            let dkk = l[(idx + k, idx + k)];
            let r = (dkk * dkk + v[k] * v[k]).sqrt();
            let c = r / dkk;
            let s = v[k] / dkk;
            l[(idx + k, idx + k)] = r;
            for i in (k + 1)..m {
                let lik = (l[(idx + i, idx + k)] + s * v[i]) / c;
                v[i] = c * v[i] - s * lik;
                l[(idx + i, idx + k)] = lik;
            }
        }
        self.cols = Self::pack_lower(&l);
        self.l = l;
    }

    /// Returns `L z` — used to draw correlated Gaussian samples from
    /// i.i.d. standard normals `z`.
    ///
    /// # Panics
    ///
    /// Panics if `z.len() != self.dim()`.
    pub fn l_matvec(&self, z: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(z.len(), n, "l_matvec length mismatch");
        let mut out = vec![0.0; n];
        for (i, o) in out.iter_mut().enumerate() {
            let row = self.l.row(i);
            let mut s = 0.0;
            for k in 0..=i {
                s += row[k] * z[k];
            }
            *o = s;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd_example() -> Matrix {
        Matrix::from_rows(&[&[25.0, 15.0, -5.0], &[15.0, 18.0, 0.0], &[-5.0, 0.0, 11.0]])
    }

    #[test]
    fn factor_matches_known_result() {
        let chol = Cholesky::new(&spd_example()).unwrap();
        let l = chol.factor();
        let expect = Matrix::from_rows(&[&[5.0, 0.0, 0.0], &[3.0, 3.0, 0.0], &[-1.0, 1.0, 3.0]]);
        assert!(l.max_abs_diff(&expect) < 1e-12);
        assert_eq!(chol.jitter(), 0.0);
    }

    #[test]
    fn reconstruction_l_lt() {
        let a = spd_example();
        let chol = Cholesky::new(&a).unwrap();
        let l = chol.factor();
        let recon = l.matmul(&l.transpose());
        assert!(recon.max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn log_det_matches_eigen_product() {
        // det = 5^2 * 3^2 * 3^2 = 2025.
        let chol = Cholesky::new(&spd_example()).unwrap();
        assert!((chol.log_det() - 2025.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn solve_recovers_rhs() {
        let a = spd_example();
        let chol = Cholesky::new(&a).unwrap();
        let b = vec![1.0, -2.0, 0.5];
        let x = chol.solve_vec(&b);
        let back = a.matvec(&x);
        for (bi, bb) in b.iter().zip(&back) {
            assert!((bi - bb).abs() < 1e-12);
        }
    }

    #[test]
    fn solve_matrix_and_inverse() {
        let a = spd_example();
        let chol = Cholesky::new(&a).unwrap();
        let inv = chol.inverse();
        let prod = a.matmul(&inv);
        assert!(prod.max_abs_diff(&Matrix::identity(3)) < 1e-12);
    }

    #[test]
    fn quad_form_matches_direct() {
        let a = spd_example();
        let chol = Cholesky::new(&a).unwrap();
        let b = vec![0.3, 1.0, -0.7];
        let x = chol.solve_vec(&b);
        let direct = crate::dot(&b, &x);
        assert!((chol.quad_form(&b) - direct).abs() < 1e-12);
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn jitter_rescues_semidefinite() {
        // Rank-1 matrix: vvᵀ with v = (1, 1); singular but PSD.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let chol = Cholesky::new_with_jitter(&a, 1e-10, 1e-2).unwrap();
        assert!(chol.jitter() > 0.0);
        // The solve should still approximately invert a + jitter*I.
        let mut aj = a.clone();
        aj.add_diag(chol.jitter());
        let x = chol.solve_vec(&[1.0, 0.0]);
        let back = aj.matvec(&x);
        assert!((back[0] - 1.0).abs() < 1e-6 && back[1].abs() < 1e-6);
    }

    #[test]
    fn condition_estimate_reflects_scaling() {
        let well = Cholesky::new(&Matrix::identity(3)).unwrap();
        assert!((well.condition_estimate() - 1.0).abs() < 1e-12);
        let a = Matrix::from_rows(&[&[1e6, 0.0], &[0.0, 1e-6]]);
        let ill = Cholesky::new(&a).unwrap();
        assert!(ill.condition_estimate() > 1e11);
    }

    #[test]
    fn jitter_retry_emits_telemetry() {
        let sink = std::sync::Arc::new(mfbo_telemetry::sinks::CollectSink::with_level(
            mfbo_telemetry::Level::Debug,
        ));
        let _g = mfbo_telemetry::scoped_sink(sink.clone());
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let _ = Cholesky::new_with_jitter(&a, 1e-10, 1e-2).unwrap();
        let recs = sink.named("cholesky_jitter");
        assert_eq!(recs.len(), 1);
        assert!(recs[0].field("jitter").is_some());
        assert!(recs[0].field("attempts").is_some());
    }

    #[test]
    fn jitter_gives_up_at_max() {
        let a = Matrix::from_rows(&[&[-1.0, 0.0], &[0.0, -1.0]]);
        assert!(Cholesky::new_with_jitter(&a, 1e-10, 1e-4).is_err());
    }

    #[test]
    fn l_matvec_matches_dense_product() {
        let chol = Cholesky::new(&spd_example()).unwrap();
        let z = vec![0.5, -1.0, 2.0];
        let got = chol.l_matvec(&z);
        let want = chol.factor().matvec(&z);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-14);
        }
    }

    /// Deterministic SPD matrix large enough to cross several panel
    /// boundaries of the blocked factorization.
    fn spd_large(n: usize) -> Matrix {
        let b = Matrix::from_fn(n, n, |i, j| ((i * 31 + j * 17) % 13) as f64 / 13.0 - 0.5);
        let mut a = b.matmul(&b.transpose());
        a.add_diag(n as f64);
        a
    }

    #[test]
    fn blocked_matches_unblocked_bitwise() {
        for n in [1usize, 7, 48, 49, 150] {
            let a = spd_large(n);
            let blocked = Cholesky::new(&a).unwrap();
            let reference = Cholesky::new_unblocked(&a).unwrap();
            for i in 0..n {
                for j in 0..n {
                    assert_eq!(
                        blocked.factor()[(i, j)].to_bits(),
                        reference.factor()[(i, j)].to_bits(),
                        "factor mismatch at ({i}, {j}) for n={n}"
                    );
                }
            }
        }
    }

    #[test]
    fn append_row_matches_full_factorization_bitwise() {
        let n = 60;
        let a = spd_large(n + 1);
        let head = Matrix::from_fn(n, n, |i, j| a[(i, j)]);
        let mut chol = Cholesky::new(&head).unwrap();
        let k_new: Vec<f64> = (0..n).map(|j| a[(n, j)]).collect();
        chol.append_row(&k_new, a[(n, n)]).unwrap();
        let full = Cholesky::new(&a).unwrap();
        for i in 0..=n {
            for j in 0..=n {
                assert_eq!(
                    chol.factor()[(i, j)].to_bits(),
                    full.factor()[(i, j)].to_bits(),
                    "appended factor mismatch at ({i}, {j})"
                );
            }
        }
    }

    #[test]
    fn append_row_rejects_duplicate_point() {
        let a = spd_large(4);
        let mut chol = Cholesky::new(&a).unwrap();
        // Appending an exact copy of the last row/column makes the extended
        // matrix singular: the Schur complement is zero.
        let k_new: Vec<f64> = (0..4).map(|j| a[(3, j)]).collect();
        let before = chol.factor().clone();
        assert!(matches!(
            chol.append_row(&k_new, a[(3, 3)]),
            Err(LinalgError::NotPositiveDefinite { pivot: 4 })
        ));
        assert!(chol.factor().max_abs_diff(&before) == 0.0);
    }

    #[test]
    fn remove_last_row_inverts_append_row_bitwise() {
        let n = 60;
        let a = spd_large(n + 1);
        let head = Matrix::from_fn(n, n, |i, j| a[(i, j)]);
        let before = Cholesky::new(&head).unwrap();
        let mut chol = before.clone();
        let k_new: Vec<f64> = (0..n).map(|j| a[(n, j)]).collect();
        chol.append_row(&k_new, a[(n, n)]).unwrap();
        chol.remove_row(n);
        assert_eq!(chol.dim(), n);
        for i in 0..n {
            for j in 0..n {
                assert_eq!(
                    chol.factor()[(i, j)].to_bits(),
                    before.factor()[(i, j)].to_bits(),
                    "downdated factor mismatch at ({i}, {j})"
                );
            }
        }
        // The packed column copy must stay in sync with the row-major factor.
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).cos()).collect();
        let x = chol.solve_vec(&b);
        let y = before.solve_vec(&b);
        for (g, w) in x.iter().zip(&y) {
            assert_eq!(g.to_bits(), w.to_bits());
        }
    }

    #[test]
    fn remove_interior_row_matches_reduced_factorization() {
        for (n, idx) in [(5usize, 0usize), (12, 4), (60, 0), (60, 31), (60, 58)] {
            let a = spd_large(n);
            let mut chol = Cholesky::new(&a).unwrap();
            chol.remove_row(idx);
            assert_eq!(chol.dim(), n - 1);
            // Reduced matrix with row/column `idx` deleted.
            let keep: Vec<usize> = (0..n).filter(|&i| i != idx).collect();
            let reduced = Matrix::from_fn(n - 1, n - 1, |i, j| a[(keep[i], keep[j])]);
            let reference = Cholesky::new(&reduced).unwrap();
            let diff = chol.factor().max_abs_diff(reference.factor());
            assert!(
                diff < 1e-10,
                "downdate drifted {diff} from reduced factorization (n={n}, idx={idx})"
            );
        }
    }

    #[test]
    fn remove_row_to_scalar_and_out_of_range_panics() {
        let a = spd_large(2);
        let mut chol = Cholesky::new(&a).unwrap();
        chol.remove_row(0);
        assert_eq!(chol.dim(), 1);
        let d = chol.factor()[(0, 0)];
        assert!(d.is_finite() && d > 0.0);
        let r = std::panic::catch_unwind(move || {
            let mut c = chol;
            c.remove_row(5);
        });
        assert!(r.is_err(), "out-of-range remove_row must panic");
    }

    #[test]
    fn inverse_matches_identity_solve_bitwise() {
        let a = spd_large(37);
        let chol = Cholesky::new(&a).unwrap();
        let fast = chol.inverse();
        let reference = chol.solve_matrix(&Matrix::identity(37));
        for i in 0..37 {
            for j in 0..37 {
                assert_eq!(
                    fast[(i, j)].to_bits(),
                    reference[(i, j)].to_bits(),
                    "inverse mismatch at ({i}, {j})"
                );
            }
        }
    }

    #[test]
    fn inverse_lower_matches_full_inverse_bitwise_on_lower_triangle() {
        let a = spd_large(37);
        let chol = Cholesky::new(&a).unwrap();
        let lower = chol.inverse_lower();
        let full = chol.inverse();
        for i in 0..37 {
            for j in 0..=i {
                assert_eq!(
                    lower[(i, j)].to_bits(),
                    full[(i, j)].to_bits(),
                    "inverse_lower mismatch at ({i}, {j})"
                );
                // Upper triangle is the exact mirror.
                assert_eq!(lower[(j, i)].to_bits(), lower[(i, j)].to_bits());
            }
        }
    }

    #[test]
    fn into_variants_match_allocating_bitwise() {
        let n = 23;
        let a = spd_large(n);
        let chol = Cholesky::new(&a).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let mut out = vec![0.0; n];
        chol.forward_solve_into(&b, &mut out);
        assert_eq!(out, chol.forward_solve(&b));
        chol.back_solve_into(&b, &mut out);
        assert_eq!(out, chol.back_solve(&b));
        let mut scratch = vec![0.0; n];
        chol.solve_vec_into(&b, &mut scratch, &mut out);
        assert_eq!(out, chol.solve_vec(&b));
        assert_eq!(chol.quad_form_with(&b, &mut scratch), chol.quad_form(&b));
        let rhs = Matrix::from_fn(n, 3, |i, j| (i + 7 * j) as f64 / 11.0 - 1.0);
        let mut m_out = Matrix::zeros(n, 3);
        chol.solve_matrix_into(&rhs, &mut m_out);
        assert!(m_out.max_abs_diff(&chol.solve_matrix(&rhs)) == 0.0);
    }

    #[test]
    fn forward_back_are_inverses_of_triangular_products() {
        let chol = Cholesky::new(&spd_example()).unwrap();
        let b = vec![1.0, 2.0, 3.0];
        let z = chol.forward_solve(&b);
        let lb = chol.l_matvec(&z);
        for (x, y) in lb.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
        let x = chol.back_solve(&b);
        let ltx = chol.factor().transpose().matvec(&x);
        for (got, want) in ltx.iter().zip(&b) {
            assert!((got - want).abs() < 1e-12);
        }
    }
}

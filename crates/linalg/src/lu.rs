//! LU factorization with partial pivoting.
//!
//! Modified-nodal-analysis (MNA) systems assembled by the circuit engine are
//! square but neither symmetric nor positive definite, so the GP-oriented
//! [`crate::Cholesky`] cannot solve them. This module provides the classic
//! Doolittle LU with row pivoting, which is what production SPICE engines use
//! (usually in sparse form; our matrices are small enough that dense is
//! simpler and fast).

use crate::{LinalgError, Matrix};

/// LU factorization `P A = L U` with partial (row) pivoting.
///
/// # Examples
///
/// ```
/// use mfbo_linalg::{Matrix, Lu};
///
/// # fn main() -> Result<(), mfbo_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[0.0, 2.0], &[1.0, 1.0]]); // needs pivoting
/// let lu = Lu::new(&a)?;
/// let x = lu.solve(&[2.0, 3.0]);
/// assert!((x[0] - 2.0).abs() < 1e-12); // x = (2, 1)
/// assert!((x[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    /// Combined storage: strictly-lower part holds `L` (unit diagonal
    /// implied), upper part holds `U`.
    lu: Matrix,
    /// Row permutation: row `i` of the factored matrix is row `perm[i]` of
    /// the input.
    perm: Vec<usize>,
    /// Sign of the permutation, needed for the determinant.
    perm_sign: f64,
}

impl Lu {
    /// Factorizes `a`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] if no usable pivot exists in some
    /// column and [`LinalgError::ShapeMismatch`] if `a` is not square.
    pub fn new(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::ShapeMismatch { context: "lu" });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;

        for k in 0..n {
            // Find pivot row: largest |value| in column k at or below row k.
            let mut p = k;
            let mut pmax = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pmax {
                    pmax = v;
                    p = i;
                }
            }
            if pmax == 0.0 || !pmax.is_finite() {
                return Err(LinalgError::Singular { pivot: k });
            }
            if p != k {
                // Swap whole rows (both the L and U parts travel together in
                // the Doolittle scheme).
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
                perm.swap(k, p);
                perm_sign = -perm_sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let m = lu[(i, k)] / pivot;
                lu[(i, k)] = m;
                if m != 0.0 {
                    for j in (k + 1)..n {
                        let v = lu[(k, j)];
                        lu[(i, j)] -= m * v;
                    }
                }
            }
        }
        Ok(Lu {
            lu,
            perm,
            perm_sign,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A x = b`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(b.len(), n, "lu solve length mismatch");
        // Apply permutation, then forward solve with unit-lower L.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[self.perm[i]];
            for (k, yk) in y.iter().enumerate().take(i) {
                s -= self.lu[(i, k)] * yk;
            }
            y[i] = s;
        }
        // Back solve with U.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for (k, xk) in x.iter().enumerate().skip(i + 1) {
                s -= self.lu[(i, k)] * xk;
            }
            x[i] = s / self.lu[(i, i)];
        }
        x
    }

    /// Determinant of the original matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.perm_sign;
        for i in 0..self.dim() {
            d *= self.lu[(i, i)];
        }
        d
    }

    /// Explicit inverse `A⁻¹` (column-by-column solve).
    pub fn inverse(&self) -> Matrix {
        let n = self.dim();
        let mut out = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let x = self.solve(&e);
            for i in 0..n {
                out[(i, j)] = x[i];
            }
            e[j] = 0.0;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_general_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]);
        let lu = Lu::new(&a).unwrap();
        let x = lu.solve(&[8.0, -11.0, -3.0]);
        // Known solution (2, 3, -1).
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
        assert!((x[2] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = Lu::new(&a).unwrap();
        let x = lu.solve(&[3.0, 7.0]);
        assert!((x[0] - 7.0).abs() < 1e-14);
        assert!((x[1] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn determinant_with_permutation_sign() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = Lu::new(&a).unwrap();
        assert!((lu.det() + 1.0).abs() < 1e-14);

        let b = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert!((Lu::new(&b).unwrap().det() - 12.0).abs() < 1e-14);
    }

    #[test]
    fn rejects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(Lu::new(&a), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Lu::new(&a),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn inverse_round_trip() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]);
        let inv = Lu::new(&a).unwrap().inverse();
        let prod = a.matmul(&inv);
        assert!(prod.max_abs_diff(&Matrix::identity(2)) < 1e-12);
    }

    #[test]
    fn random_round_trip() {
        // Deterministic pseudo-random matrix; verify A * solve(b) == b.
        let n = 12;
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let a = Matrix::from_fn(n, n, |i, j| next() + if i == j { 2.0 } else { 0.0 });
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        let x = Lu::new(&a).unwrap().solve(&b);
        let back = a.matvec(&x);
        for (u, v) in b.iter().zip(&back) {
            assert!((u - v).abs() < 1e-10);
        }
    }
}

//! Dense linear algebra and statistics kernels for the `analog-mfbo` workspace.
//!
//! This crate is deliberately small and self-contained: the Gaussian-process
//! stack (`mfbo-gp`) needs symmetric positive-definite (SPD) factorizations
//! and triangular solves, the circuit substrate (`mfbo-circuits`) needs a
//! pivoted LU for modified-nodal-analysis systems, and everything above needs
//! Gaussian distribution scalars. No external linear-algebra dependency is
//! used; every routine here is written from scratch and tested against
//! analytic identities and property-based invariants.
//!
//! # Quick tour
//!
//! ```
//! use mfbo_linalg::{Matrix, Cholesky};
//!
//! # fn main() -> Result<(), mfbo_linalg::LinalgError> {
//! // A 2x2 SPD matrix.
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
//! let chol = Cholesky::new(&a)?;
//! let x = chol.solve_vec(&[1.0, 2.0]);
//! // Verify A x = b.
//! let b = a.matvec(&x);
//! assert!((b[0] - 1.0).abs() < 1e-12 && (b[1] - 2.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

mod cholesky;
mod complex;
mod error;
mod lu;
mod matrix;
mod stats;
mod vector;

pub use cholesky::Cholesky;
pub use complex::{solve_complex, Complex};
pub use error::LinalgError;
pub use lu::Lu;
pub use matrix::Matrix;
pub use stats::{
    mean, median, norm_cdf, norm_inv_cdf, norm_log_pdf, norm_pdf, percentile, std_dev, variance,
    Standardizer,
};
pub use vector::{axpy, dot, infinity_norm, norm2, scale, sub};

//! A dense, row-major, `f64` matrix.
//!
//! [`Matrix`] is the only matrix representation in the workspace. It is kept
//! intentionally boring: contiguous storage, explicit shapes, panicking
//! bounds checks in debug builds, and a handful of dense kernels (matmul,
//! matvec, transpose) written for clarity first. Gaussian-process training
//! spends essentially all of its time in [`crate::Cholesky`]; the kernels
//! here only have to be correct and cache-friendly.

use crate::LinalgError;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f64` values.
///
/// # Examples
///
/// ```
/// use mfbo_linalg::Matrix;
///
/// let m = Matrix::from_fn(2, 3, |i, j| (i * 3 + j) as f64);
/// assert_eq!(m[(1, 2)], 5.0);
/// assert_eq!(m.transpose()[(2, 1)], 5.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix by evaluating `f(i, j)` at every position.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not all have the same length.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "all rows must have the same length");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        Matrix { rows, cols, data }
    }

    /// Creates a square matrix with `diag` on the diagonal.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows the underlying row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the underlying row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index out of bounds");
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "column index out of bounds");
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Returns the transposed matrix.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Dense matrix-matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        // ikj loop order: the innermost loop walks contiguous rows of both
        // `other` and `out`, which is the cache-friendly order for row-major
        // storage.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(orow.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Dense matrix-vector product `self * x`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != x.len()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, x.len(), "matvec shape mismatch");
        (0..self.rows).map(|i| crate::dot(self.row(i), x)).collect()
    }

    /// Dense transposed matrix-vector product `selfᵀ * x`.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != x.len()`.
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(self.rows, x.len(), "matvec_t shape mismatch");
        let mut out = vec![0.0; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            for (o, &a) in out.iter_mut().zip(self.row(i)) {
                *o += xi * a;
            }
        }
        out
    }

    /// Element-wise sum, returning a new matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Matrix) -> Result<Matrix, LinalgError> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(LinalgError::ShapeMismatch { context: "add" });
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Element-wise difference, returning a new matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix, LinalgError> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(LinalgError::ShapeMismatch { context: "sub" });
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Returns `self` scaled by `s`.
    pub fn scaled(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|a| a * s).collect(),
        }
    }

    /// Adds `v` to every diagonal element in place.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn add_diag(&mut self, v: f64) {
        assert!(self.is_square(), "add_diag requires a square matrix");
        for i in 0..self.rows {
            self[(i, i)] += v;
        }
    }

    /// Sum of the diagonal elements.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> f64 {
        assert!(self.is_square(), "trace requires a square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Frobenius norm `sqrt(sum a_ij^2)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|a| a * a).sum::<f64>().sqrt()
    }

    /// Maximum absolute element-wise difference to `other`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Returns `true` when the matrix is symmetric to within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Extracts a copy of the sub-matrix with rows `r0..r1` and columns
    /// `c0..c1` (half-open ranges).
    ///
    /// # Panics
    ///
    /// Panics if the ranges exceed the matrix shape or are reversed.
    pub fn submatrix(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> Matrix {
        assert!(r0 <= r1 && r1 <= self.rows, "row range out of bounds");
        assert!(c0 <= c1 && c1 <= self.cols, "column range out of bounds");
        Matrix::from_fn(r1 - r0, c1 - c0, |i, j| self[(r0 + i, c0 + j)])
    }

    /// Stacks `self` on top of `other`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the column counts differ.
    pub fn vstack(&self, other: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != other.cols {
            return Err(LinalgError::ShapeMismatch { context: "vstack" });
        }
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Ok(Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        })
    }

    /// Places `other` to the right of `self`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the row counts differ.
    pub fn hstack(&self, other: &Matrix) -> Result<Matrix, LinalgError> {
        if self.rows != other.rows {
            return Err(LinalgError::ShapeMismatch { context: "hstack" });
        }
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for i in 0..self.rows {
            out.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
            out.row_mut(i)[self.cols..].copy_from_slice(other.row(i));
        }
        Ok(out)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols, "matrix index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols, "matrix index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:>12.5e}", self[(i, j)])?;
                if j + 1 < self.cols.min(8) {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 8 {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));

        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i.trace(), 3.0);
    }

    #[test]
    fn from_rows_and_indexing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn from_rows_rejects_ragged() {
        let _ = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    fn matmul_against_hand_computed() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_fn(4, 4, |i, j| (i * 7 + j * 3) as f64);
        let i = Matrix::identity(4);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matvec_and_matvec_t_agree_with_matmul() {
        let a = Matrix::from_fn(3, 2, |i, j| (i + 2 * j) as f64 + 0.5);
        let x = vec![1.5, -2.0];
        let y = a.matvec(&x);
        let xm = Matrix::from_vec(2, 1, x.clone());
        let ym = a.matmul(&xm);
        for i in 0..3 {
            assert!((y[i] - ym[(i, 0)]).abs() < 1e-14);
        }
        let z = vec![1.0, 2.0, 3.0];
        let w = a.matvec_t(&z);
        let wt = a.transpose().matvec(&z);
        for j in 0..2 {
            assert!((w[j] - wt[j]).abs() < 1e-14);
        }
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 5, |i, j| (i * 5 + j) as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn add_sub_scaled() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 5.0]]);
        let s = a.add(&b).unwrap();
        assert_eq!(s.as_slice(), &[4.0, 7.0]);
        let d = b.sub(&a).unwrap();
        assert_eq!(d.as_slice(), &[2.0, 3.0]);
        assert_eq!(a.scaled(2.0).as_slice(), &[2.0, 4.0]);
    }

    #[test]
    fn add_shape_mismatch_errors() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(3, 2);
        assert!(matches!(a.add(&b), Err(LinalgError::ShapeMismatch { .. })));
    }

    #[test]
    fn diag_helpers() {
        let mut m = Matrix::from_diag(&[1.0, 2.0, 3.0]);
        assert_eq!(m.trace(), 6.0);
        m.add_diag(0.5);
        assert_eq!(m.trace(), 7.5);
        assert_eq!(m[(0, 1)], 0.0);
    }

    #[test]
    fn symmetric_detection() {
        let s = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        assert!(s.is_symmetric(0.0));
        let ns = Matrix::from_rows(&[&[2.0, 1.0], &[0.0, 2.0]]);
        assert!(!ns.is_symmetric(1e-12));
        assert!(!Matrix::zeros(2, 3).is_symmetric(1.0));
    }

    #[test]
    fn submatrix_and_stacking() {
        let a = Matrix::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        let s = a.submatrix(1, 3, 0, 2);
        assert_eq!(s.rows(), 2);
        assert_eq!(s.cols(), 2);
        assert_eq!(s[(0, 0)], 3.0);
        assert_eq!(s[(1, 1)], 7.0);

        let top = Matrix::from_rows(&[&[1.0, 2.0]]);
        let bot = Matrix::from_rows(&[&[3.0, 4.0]]);
        let v = top.vstack(&bot).unwrap();
        assert_eq!(v.rows(), 2);
        assert_eq!(v[(1, 0)], 3.0);

        let h = top.hstack(&bot).unwrap();
        assert_eq!(h.cols(), 4);
        assert_eq!(h[(0, 2)], 3.0);
    }

    #[test]
    fn frobenius_and_max_abs_diff() {
        let a = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-14);
        let b = Matrix::from_rows(&[&[3.5, 4.0]]);
        assert!((a.max_abs_diff(&b) - 0.5).abs() < 1e-14);
    }

    #[test]
    fn debug_is_nonempty() {
        let m = Matrix::zeros(1, 1);
        assert!(!format!("{m:?}").is_empty());
    }
}

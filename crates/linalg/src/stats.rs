//! Gaussian distribution scalars and descriptive statistics.
//!
//! The expected-improvement family of acquisition functions (paper eqs. 5–6)
//! is built from the standard normal PDF `ϕ` and CDF `Φ`; the experiment
//! tables report means/medians/percentiles over repeated optimization runs.
//! Everything here is implemented from scratch: `Φ` via a high-accuracy
//! `erf` rational approximation (Abramowitz & Stegun 7.1.26 refined with the
//! W. J. Cody-style polynomial), and `Φ⁻¹` via Acklam's algorithm with one
//! Halley refinement step.

/// Standard normal probability density `ϕ(x)`.
///
/// # Examples
///
/// ```
/// let p = mfbo_linalg::norm_pdf(0.0);
/// assert!((p - 0.3989422804014327).abs() < 1e-15);
/// ```
#[inline]
pub fn norm_pdf(x: f64) -> f64 {
    const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;
    INV_SQRT_2PI * (-0.5 * x * x).exp()
}

/// Natural log of the standard normal density, stable for large `|x|`.
#[inline]
pub fn norm_log_pdf(x: f64) -> f64 {
    const LOG_SQRT_2PI: f64 = 0.918_938_533_204_672_7;
    -0.5 * x * x - LOG_SQRT_2PI
}

/// Error function `erf(x)` with absolute error below `1.5e-7` on the real
/// line (A&S 7.1.26). Accurate enough for acquisition functions, which only
/// need a smooth, monotone Φ; the inverse CDF below does not rely on it.
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal cumulative distribution `Φ(x)`.
///
/// Uses a complementary-error-function formulation so the tails do not
/// suffer catastrophic cancellation around `Φ(x) ≈ 0`.
///
/// # Examples
///
/// ```
/// assert!((mfbo_linalg::norm_cdf(0.0) - 0.5).abs() < 1e-8);
/// assert!(mfbo_linalg::norm_cdf(-8.0) >= 0.0);
/// assert!(mfbo_linalg::norm_cdf(8.0) <= 1.0);
/// ```
#[inline]
pub fn norm_cdf(x: f64) -> f64 {
    (0.5 * (1.0 + erf(x * std::f64::consts::FRAC_1_SQRT_2))).clamp(0.0, 1.0)
}

/// Inverse standard normal CDF `Φ⁻¹(p)` (Acklam's rational approximation
/// plus one Halley refinement, giving ~1e-15 relative accuracy).
///
/// # Panics
///
/// Panics if `p` is outside the open interval `(0, 1)`.
pub fn norm_inv_cdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "norm_inv_cdf requires p in (0, 1)");

    // Acklam's coefficients.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley step sharpens the approximation to near machine precision.
    let e = norm_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (0.5 * x * x).exp();
    x - u / (1.0 + 0.5 * x * u)
}

/// Arithmetic mean; `NaN` for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance (denominator `n - 1`); `0.0` for fewer than two
/// samples.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation (square root of [`variance`]).
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Median via sorting a copy; `NaN` for empty input.
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

/// Linear-interpolation percentile (`q` in `[0, 100]`); `NaN` for empty
/// input.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 100]`.
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    assert!(
        (0.0..=100.0).contains(&q),
        "percentile requires q in [0, 100]"
    );
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("percentile requires non-NaN data"));
    let pos = q / 100.0 * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let w = pos - lo as f64;
        v[lo] * (1.0 - w) + v[hi] * w
    }
}

/// Affine standardization `y ↦ (y - mean) / std` fitted on a data set.
///
/// GP observations are standardized before training so that unit-scale
/// hyperparameter priors and bounds apply regardless of the objective's
/// physical units (efficiencies in percent, currents in microamps, ...).
///
/// # Examples
///
/// ```
/// use mfbo_linalg::Standardizer;
///
/// let s = Standardizer::fit(&[1.0, 2.0, 3.0]);
/// let z = s.transform(2.0);
/// assert!((z - 0.0).abs() < 1e-12);
/// assert!((s.inverse(z) - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Standardizer {
    mean: f64,
    std: f64,
}

impl Standardizer {
    /// Fits mean and standard deviation on `ys`. A degenerate (constant or
    /// near-constant) data set falls back to `std = 1` so the transform stays
    /// invertible.
    pub fn fit(ys: &[f64]) -> Self {
        let m = if ys.is_empty() { 0.0 } else { mean(ys) };
        let s = std_dev(ys);
        Standardizer {
            mean: m,
            std: if s > 1e-12 { s } else { 1.0 },
        }
    }

    /// Identity transform (mean 0, std 1).
    pub fn identity() -> Self {
        Standardizer {
            mean: 0.0,
            std: 1.0,
        }
    }

    /// The fitted mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The fitted (floored) standard deviation.
    pub fn std(&self) -> f64 {
        self.std
    }

    /// Maps raw `y` into standardized space.
    #[inline]
    pub fn transform(&self, y: f64) -> f64 {
        (y - self.mean) / self.std
    }

    /// Maps a standardized value back to raw space.
    #[inline]
    pub fn inverse(&self, z: f64) -> f64 {
        z * self.std + self.mean
    }

    /// Scales a standardized *standard deviation* back to raw units (no mean
    /// shift: deviations are translation invariant).
    #[inline]
    pub fn inverse_std(&self, sd: f64) -> f64 {
        sd * self.std
    }

    /// Transforms a whole slice.
    pub fn transform_all(&self, ys: &[f64]) -> Vec<f64> {
        ys.iter().map(|&y| self.transform(y)).collect()
    }
}

impl Default for Standardizer {
    fn default() -> Self {
        Self::identity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pdf_and_log_pdf_agree() {
        for &x in &[-3.0, -0.5, 0.0, 1.7, 4.0] {
            assert!((norm_pdf(x).ln() - norm_log_pdf(x)).abs() < 1e-12);
        }
    }

    #[test]
    fn cdf_known_values() {
        assert!((norm_cdf(0.0) - 0.5).abs() < 1e-9);
        // Φ(1.96) ≈ 0.9750021.
        assert!((norm_cdf(1.96) - 0.975_002_1).abs() < 2e-6);
        // Symmetry.
        for &x in &[0.3, 1.1, 2.7] {
            assert!((norm_cdf(x) + norm_cdf(-x) - 1.0).abs() < 1e-7);
        }
    }

    #[test]
    fn cdf_monotone_and_bounded() {
        let mut prev = 0.0;
        let mut x = -8.0;
        while x <= 8.0 {
            let c = norm_cdf(x);
            assert!((0.0..=1.0).contains(&c));
            assert!(c >= prev - 1e-12);
            prev = c;
            x += 0.05;
        }
    }

    #[test]
    fn inv_cdf_round_trip() {
        for &p in &[1e-6, 0.01, 0.2, 0.5, 0.8, 0.99, 1.0 - 1e-6] {
            let x = norm_inv_cdf(p);
            assert!((norm_cdf(x) - p).abs() < 1e-6, "p = {p}");
        }
    }

    #[test]
    fn inv_cdf_known_values() {
        assert!(norm_inv_cdf(0.5).abs() < 1e-8);
        assert!((norm_inv_cdf(0.975) - 1.959_964).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "requires p in")]
    fn inv_cdf_rejects_zero() {
        let _ = norm_inv_cdf(0.0);
    }

    #[test]
    fn descriptive_stats() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        // Population variance is 4; sample variance is 4 * 8/7.
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
        assert!((median(&xs) - 4.5).abs() < 1e-12);
        assert!((percentile(&xs, 0.0) - 2.0).abs() < 1e-12);
        assert!((percentile(&xs, 100.0) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn stats_edge_cases() {
        assert!(mean(&[]).is_nan());
        assert_eq!(variance(&[1.0]), 0.0);
        assert!(median(&[]).is_nan());
        assert_eq!(median(&[3.0]), 3.0);
    }

    #[test]
    fn standardizer_round_trip() {
        let ys = [10.0, 20.0, 30.0, 40.0];
        let s = Standardizer::fit(&ys);
        for &y in &ys {
            assert!((s.inverse(s.transform(y)) - y).abs() < 1e-12);
        }
        let z = s.transform_all(&ys);
        assert!((mean(&z)).abs() < 1e-12);
        assert!((std_dev(&z) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn standardizer_degenerate_data() {
        let s = Standardizer::fit(&[5.0, 5.0, 5.0]);
        assert_eq!(s.std(), 1.0);
        assert_eq!(s.transform(5.0), 0.0);
        let empty = Standardizer::fit(&[]);
        assert_eq!(empty.transform(1.0), 1.0);
        assert_eq!(Standardizer::default(), Standardizer::identity());
    }
}

//! Minimal complex arithmetic and a complex linear solver.
//!
//! The circuit engine's AC small-signal analysis assembles a complex-valued
//! MNA system `(G + jωC) x = b` at every frequency point. Rather than pull
//! in an external complex/num crate, this module provides the small amount
//! of complex machinery required: a `Complex` scalar, a dense complex
//! matrix, and LU solving with partial pivoting (a direct transliteration
//! of the real [`crate::Lu`]).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// A complex number with `f64` components.
///
/// # Examples
///
/// ```
/// use mfbo_linalg::Complex;
///
/// let a = Complex::new(3.0, 4.0);
/// assert_eq!(a.abs(), 5.0);
/// let b = a * Complex::i();
/// assert_eq!(b, Complex::new(-4.0, 3.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates `re + j·im`.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// The imaginary unit `j`.
    pub const fn i() -> Self {
        Complex { re: 0.0, im: 1.0 }
    }

    /// Zero.
    pub const fn zero() -> Self {
        Complex { re: 0.0, im: 0.0 }
    }

    /// One.
    pub const fn one() -> Self {
        Complex { re: 1.0, im: 0.0 }
    }

    /// Creates a purely real value.
    pub const fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²`.
    pub fn abs_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Phase in radians.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics in debug builds on division by exact zero.
    pub fn recip(self) -> Self {
        let d = self.abs_sq();
        debug_assert!(d > 0.0, "complex division by zero");
        Complex {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Returns `true` when both components are finite.
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}j", self.re, self.im)
        } else {
            write!(f, "{}{}j", self.re, self.im)
        }
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::real(re)
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, o: Complex) {
        self.re += o.re;
        self.im += o.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, s: f64) -> Complex {
        Complex::new(self.re * s, self.im * s)
    }
}

impl Div for Complex {
    type Output = Complex;
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, o: Complex) -> Complex {
        self * o.recip()
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

/// Solves the dense complex system `A x = b` by LU with partial pivoting.
///
/// `a` is a row-major `n×n` complex matrix (consumed as working storage).
///
/// # Errors
///
/// Returns [`crate::LinalgError::Singular`] if a pivot column vanishes and
/// [`crate::LinalgError::ShapeMismatch`] on inconsistent dimensions.
pub fn solve_complex(
    mut a: Vec<Complex>,
    mut b: Vec<Complex>,
) -> Result<Vec<Complex>, crate::LinalgError> {
    let n = b.len();
    if a.len() != n * n {
        return Err(crate::LinalgError::ShapeMismatch {
            context: "solve_complex",
        });
    }
    for k in 0..n {
        // Partial pivot on magnitude.
        let mut p = k;
        let mut pmax = a[k * n + k].abs();
        for i in (k + 1)..n {
            let m = a[i * n + k].abs();
            if m > pmax {
                pmax = m;
                p = i;
            }
        }
        if pmax == 0.0 || !pmax.is_finite() {
            return Err(crate::LinalgError::Singular { pivot: k });
        }
        if p != k {
            for j in 0..n {
                a.swap(k * n + j, p * n + j);
            }
            b.swap(k, p);
        }
        let pivot = a[k * n + k];
        for i in (k + 1)..n {
            let m = a[i * n + k] / pivot;
            if m.abs() != 0.0 {
                for j in (k + 1)..n {
                    let akj = a[k * n + j];
                    let v = a[i * n + j] - m * akj;
                    a[i * n + j] = v;
                }
                let bk = b[k];
                b[i] = b[i] - m * bk;
            }
            a[i * n + k] = m;
        }
    }
    // Back substitution.
    let mut x = vec![Complex::zero(); n];
    for i in (0..n).rev() {
        let mut s = b[i];
        for j in (i + 1)..n {
            s = s - a[i * n + j] * x[j];
        }
        x[i] = s / a[i * n + i];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex) -> bool {
        (a - b).abs() < 1e-10
    }

    #[test]
    fn arithmetic_identities() {
        let a = Complex::new(2.0, -3.0);
        let b = Complex::new(-1.0, 0.5);
        assert!(close(a + b - b, a));
        assert!(close(a * b / b, a));
        assert!(close(a * a.recip(), Complex::one()));
        assert!(close(-a + a, Complex::zero()));
        assert!(close(a.conj().conj(), a));
        assert_eq!(Complex::from(2.5), Complex::real(2.5));
    }

    #[test]
    fn magnitude_and_phase() {
        let a = Complex::new(0.0, 2.0);
        assert!((a.abs() - 2.0).abs() < 1e-15);
        assert!((a.arg() - std::f64::consts::FRAC_PI_2).abs() < 1e-15);
        assert_eq!(Complex::new(3.0, 4.0).abs_sq(), 25.0);
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!(close(Complex::i() * Complex::i(), Complex::real(-1.0)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2j");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2j");
    }

    #[test]
    fn solves_known_complex_system() {
        // (1+j) x = 2j  =>  x = 2j/(1+j) = 1 + j.
        let a = vec![Complex::new(1.0, 1.0)];
        let b = vec![Complex::new(0.0, 2.0)];
        let x = solve_complex(a, b).unwrap();
        assert!(close(x[0], Complex::new(1.0, 1.0)));
    }

    #[test]
    fn solves_2x2_with_pivoting() {
        // [[0, 1], [1+j, 0]] x = [3, 2]  =>  x = (2/(1+j), 3).
        let a = vec![
            Complex::zero(),
            Complex::one(),
            Complex::new(1.0, 1.0),
            Complex::zero(),
        ];
        let b = vec![Complex::real(3.0), Complex::real(2.0)];
        let x = solve_complex(a, b).unwrap();
        assert!(close(x[0], Complex::new(1.0, -1.0)));
        assert!(close(x[1], Complex::real(3.0)));
    }

    #[test]
    fn random_round_trip() {
        let n = 8;
        let mut seed = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let a: Vec<Complex> = (0..n * n)
            .map(|k| {
                let d = if k % (n + 1) == 0 { 3.0 } else { 0.0 };
                Complex::new(next() + d, next())
            })
            .collect();
        let xt: Vec<Complex> = (0..n).map(|_| Complex::new(next(), next())).collect();
        // b = A x.
        let mut b = vec![Complex::zero(); n];
        for i in 0..n {
            for j in 0..n {
                b[i] += a[i * n + j] * xt[j];
            }
        }
        let x = solve_complex(a, b).unwrap();
        for (u, v) in x.iter().zip(&xt) {
            assert!(close(*u, *v), "{u} vs {v}");
        }
    }

    #[test]
    fn rejects_singular() {
        let a = vec![
            Complex::one(),
            Complex::one(),
            Complex::one(),
            Complex::one(),
        ];
        let b = vec![Complex::one(), Complex::zero()];
        assert!(solve_complex(a, b).is_err());
    }

    #[test]
    fn rejects_shape_mismatch() {
        let e = solve_complex(vec![Complex::one(); 3], vec![Complex::one(); 2]);
        assert!(matches!(e, Err(crate::LinalgError::ShapeMismatch { .. })));
    }
}

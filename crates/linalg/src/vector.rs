//! Small dense-vector kernels used throughout the workspace.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// assert_eq!(mfbo_linalg::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm of a slice.
///
/// # Examples
///
/// ```
/// assert_eq!(mfbo_linalg::norm2(&[3.0, 4.0]), 5.0);
/// ```
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Maximum absolute entry of a slice (the `l∞` norm); `0.0` for empty input.
#[inline]
pub fn infinity_norm(a: &[f64]) -> f64 {
    a.iter().fold(0.0, |m, &v| m.max(v.abs()))
}

/// In-place `y ← y + alpha * x`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Returns `a - b` as a new vector.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Returns `alpha * a` as a new vector.
#[inline]
pub fn scale(alpha: f64, a: &[f64]) -> Vec<f64> {
    a.iter().map(|x| alpha * x).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[], &[]), 0.0);
        assert_eq!(dot(&[1.0, -2.0, 3.0], &[4.0, 5.0, 6.0]), 12.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn norms() {
        assert_eq!(norm2(&[]), 0.0);
        assert!((norm2(&[1.0, 1.0]) - std::f64::consts::SQRT_2).abs() < 1e-15);
        assert_eq!(infinity_norm(&[-3.0, 2.0]), 3.0);
        assert_eq!(infinity_norm(&[]), 0.0);
    }

    #[test]
    fn axpy_and_friends() {
        let mut y = vec![1.0, 2.0];
        axpy(2.0, &[10.0, 20.0], &mut y);
        assert_eq!(y, vec![21.0, 42.0]);
        assert_eq!(sub(&[5.0, 4.0], &[1.0, 1.0]), vec![4.0, 3.0]);
        assert_eq!(scale(0.5, &[2.0, 4.0]), vec![1.0, 2.0]);
    }
}

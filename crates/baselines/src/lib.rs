//! Baseline synthesis algorithms from the DAC'19 comparison (paper §5).
//!
//! The paper benchmarks its multi-fidelity optimizer against three
//! state-of-the-art analog sizing approaches, all of which are implemented
//! here on top of the same problem interface so the comparison tables can
//! be regenerated end-to-end:
//!
//! * [`Weibo`] — the single-fidelity GP-BO of Lyu et al. (TCAS-I 2018):
//!   weighted-EI acquisition with multiple-starting-point optimization.
//!   This is a thin, paper-parameterized wrapper over
//!   [`mfbo::SfBayesOpt`], which implements the shared machinery.
//! * [`Gaspad`] — Liu et al. (TCAD 2014): a surrogate-assisted evolutionary
//!   algorithm; differential-evolution operators propose candidates, a GP
//!   prescreens them with a lower-confidence-bound rule, and only the most
//!   promising candidate is simulated per generation.
//! * [`DifferentialEvolutionBaseline`] — a plain DE global optimizer with
//!   feasibility-rule constraint handling (the paper's "DE" column),
//!   simulating every candidate.
//!
//! All baselines evaluate exclusively at [`mfbo::problem::Fidelity::High`]
//! and report the same [`mfbo::Outcome`] as the multi-fidelity driver, so
//! cost accounting (equivalent high-fidelity simulations) is directly
//! comparable.

#![deny(missing_docs)]

mod de;
mod gaspad;
mod weibo;

pub use de::{DeBaselineConfig, DifferentialEvolutionBaseline};
pub use gaspad::{Gaspad, GaspadConfig};
pub use weibo::{Weibo, WeiboConfig};

//! The GASPAD baseline (Liu et al., TCAD 2014).
//!
//! GASPAD is a **surrogate-assisted evolutionary algorithm**: differential
//! evolution proposes a generation of candidates, a GP trained on all
//! simulated data *prescreens* them with a lower-confidence-bound (LCB)
//! rule, and only the single most promising candidate is actually
//! simulated. Constraints are folded into the prescreen with an
//! LCB-feasibility variant of Deb's rules (optimistic constraint bounds),
//! and into selection with the exact feasibility rules.

use mfbo::problem::{Fidelity, MultiFidelityProblem};
use mfbo::{EvaluationRecord, FidelityData, MfboError, Outcome, SfSurrogates};
use mfbo_gp::GpConfig;
use mfbo_opt::{sampling, Bounds};
use rand::Rng;

/// GASPAD configuration (paper Table 2 uses 120 initial points and a
/// 2500-simulation cap on the charge pump).
#[derive(Debug, Clone)]
pub struct GaspadConfig {
    /// Size of the initial Latin-hypercube design.
    pub initial_points: usize,
    /// Total number of simulations.
    pub budget: usize,
    /// Evolutionary population size.
    pub population: usize,
    /// LCB exploration weight κ (the GASPAD paper uses ω ≈ 2).
    pub kappa: f64,
    /// Differential weight of the DE mutation.
    pub scale: f64,
    /// Crossover probability of the DE mutation.
    pub crossover: f64,
    /// GP training configuration.
    pub model: GpConfig,
    /// Re-optimize hyperparameters every `refit_every` iterations.
    pub refit_every: usize,
}

impl Default for GaspadConfig {
    fn default() -> Self {
        GaspadConfig {
            initial_points: 40,
            budget: 300,
            population: 40,
            kappa: 2.0,
            scale: 0.6,
            crossover: 0.9,
            model: GpConfig::fast(),
            refit_every: 1,
        }
    }
}

/// The GASPAD optimizer.
///
/// # Examples
///
/// ```
/// use mfbo_baselines::{Gaspad, GaspadConfig};
/// use mfbo::problem::FunctionProblem;
/// use mfbo_opt::Bounds;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), mfbo::MfboError> {
/// let p = FunctionProblem::builder("quad", Bounds::unit(1))
///     .high(|x: &[f64]| (x[0] - 0.3).powi(2))
///     .build();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let config = GaspadConfig { initial_points: 8, budget: 24, ..GaspadConfig::default() };
/// let out = Gaspad::new(config).run(&p, &mut rng)?;
/// assert!(out.best_objective < 0.01);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Gaspad {
    config: GaspadConfig,
}

impl Gaspad {
    /// Creates a GASPAD driver.
    pub fn new(config: GaspadConfig) -> Self {
        Gaspad { config }
    }

    /// Runs GASPAD on `problem` (high fidelity only).
    ///
    /// # Errors
    ///
    /// Returns [`MfboError::InvalidConfig`] for inconsistent settings and
    /// propagates surrogate-training failures.
    pub fn run<P, R>(&self, problem: &P, rng: &mut R) -> Result<Outcome, MfboError>
    where
        P: MultiFidelityProblem + ?Sized,
        R: Rng + ?Sized,
    {
        let cfg = &self.config;
        if cfg.initial_points < 4 {
            return Err(MfboError::InvalidConfig {
                reason: "GASPAD needs at least 4 initial points".into(),
            });
        }
        if cfg.budget <= cfg.initial_points {
            return Err(MfboError::InvalidConfig {
                reason: "budget must exceed the initial design size".into(),
            });
        }
        let bounds = problem.bounds();
        let unit = Bounds::unit(bounds.dim());
        let nc = problem.num_constraints();
        let mut data = FidelityData::new(nc);
        let mut history = Vec::new();
        let mut cost = 0.0;

        for x in sampling::latin_hypercube(&bounds, cfg.initial_points, rng) {
            let eval = problem.evaluate(&x, Fidelity::High);
            if !eval.is_finite() {
                return Err(MfboError::NonFiniteEvaluation { x });
            }
            cost += problem.cost(Fidelity::High);
            data.push(x.clone(), &eval);
            history.push(EvaluationRecord {
                iteration: 0,
                x,
                fidelity: Fidelity::High,
                evaluation: eval,
                cost_so_far: cost,
            });
        }

        let mut thetas = None;
        let mut since_refit = 0usize;

        for iteration in 1.. {
            if data.len() >= cfg.budget {
                break;
            }
            let data_u = data.to_unit(&bounds);
            let surrogates = match &thetas {
                Some(t) if since_refit < cfg.refit_every => {
                    match SfSurrogates::fit_frozen(&data_u, t, mfbo_pool::Parallelism::Serial) {
                        Ok(s) => s,
                        Err(_) => SfSurrogates::fit(&data_u, &cfg.model, rng)?,
                    }
                }
                Some(t) => {
                    since_refit = 0;
                    SfSurrogates::fit_warm(&data_u, &cfg.model, t, rng)?
                }
                None => {
                    since_refit = 0;
                    SfSurrogates::fit(&data_u, &cfg.model, rng)?
                }
            };
            since_refit += 1;
            thetas = Some(surrogates.thetas());

            // Parent pool: the best `population` simulated designs (unit
            // space) under exact feasibility rules.
            let parents = self.select_parents(&data_u);

            // DE/rand/1/bin offspring from the parent pool.
            let mut candidates = Vec::with_capacity(parents.len());
            let np = parents.len();
            for i in 0..np {
                let pick = |rng: &mut R, excl: &[usize]| loop {
                    let v = rng.gen_range(0..np);
                    if !excl.contains(&v) {
                        break v;
                    }
                };
                let a = pick(rng, &[i]);
                let b = pick(rng, &[i, a]);
                let c = pick(rng, &[i, a, b]);
                let j_rand = rng.gen_range(0..bounds.dim());
                let mut child = parents[i].clone();
                for j in 0..bounds.dim() {
                    if j == j_rand || rng.gen::<f64>() < cfg.crossover {
                        child[j] = parents[a][j] + cfg.scale * (parents[b][j] - parents[c][j]);
                    }
                }
                unit.clamp_in_place(&mut child);
                candidates.push(child);
            }

            // LCB prescreen: optimistic objective under optimistic
            // feasibility (LCB of each constraint must be negative to count
            // as "predicted feasible").
            let mut best_idx = 0;
            let mut best_score = f64::INFINITY;
            for (k, cand) in candidates.iter().enumerate() {
                let (obj, cons) = surrogates.predict(cand);
                let lcb = obj.mean - cfg.kappa * obj.std_dev();
                let viol: f64 = cons
                    .iter()
                    .map(|c| (c.mean - cfg.kappa * c.std_dev()).max(0.0))
                    .sum();
                // Predicted-feasible candidates rank by LCB; others by
                // violation, shifted above any feasible score.
                let score = if viol <= 0.0 { lcb } else { 1e12 + viol };
                if score < best_score {
                    best_score = score;
                    best_idx = k;
                }
            }

            let xt = bounds.from_unit(&candidates[best_idx]);
            let eval = problem.evaluate(&xt, Fidelity::High);
            if !eval.is_finite() {
                return Err(MfboError::NonFiniteEvaluation { x: xt });
            }
            cost += problem.cost(Fidelity::High);
            data.push(xt.clone(), &eval);
            history.push(EvaluationRecord {
                iteration,
                x: xt,
                fidelity: Fidelity::High,
                evaluation: eval,
                cost_so_far: cost,
            });
        }

        Ok(Outcome::from_data(data, FidelityData::new(nc), history))
    }

    /// Picks the best `population` designs under exact feasibility rules.
    fn select_parents(&self, data_u: &FidelityData) -> Vec<Vec<f64>> {
        let mut idx: Vec<usize> = (0..data_u.len()).collect();
        idx.sort_by(|&a, &b| {
            let va = data_u.violation(a);
            let vb = data_u.violation(b);
            match (va <= 0.0, vb <= 0.0) {
                (true, true) => data_u.objective[a]
                    .partial_cmp(&data_u.objective[b])
                    .expect("non-NaN objective"),
                (true, false) => std::cmp::Ordering::Less,
                (false, true) => std::cmp::Ordering::Greater,
                (false, false) => va.partial_cmp(&vb).expect("non-NaN violation"),
            }
        });
        idx.truncate(self.config.population.max(4).min(data_u.len()));
        idx.into_iter().map(|i| data_u.xs[i].clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfbo::problem::FunctionProblem;
    use mfbo_circuits::testfns;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gaspad_solves_forrester() {
        let p = testfns::forrester();
        let mut rng = StdRng::seed_from_u64(21);
        let config = GaspadConfig {
            initial_points: 10,
            budget: 40,
            population: 10,
            ..GaspadConfig::default()
        };
        let out = Gaspad::new(config).run(&p, &mut rng).unwrap();
        assert!(out.best_objective < -5.0, "best = {}", out.best_objective);
        assert_eq!(out.n_high, 40);
    }

    #[test]
    fn gaspad_handles_constraints() {
        let p = FunctionProblem::builder("ctoy", Bounds::unit(2))
            .high(|x: &[f64]| x[0] + x[1])
            .high_constraints(1, |x: &[f64]| vec![1.0 - x[0] - x[1]])
            .build();
        let mut rng = StdRng::seed_from_u64(5);
        let config = GaspadConfig {
            initial_points: 12,
            budget: 50,
            population: 12,
            ..GaspadConfig::default()
        };
        let out = Gaspad::new(config).run(&p, &mut rng).unwrap();
        assert!(out.feasible);
        assert!(out.best_objective < 1.15, "best = {}", out.best_objective);
    }

    #[test]
    fn rejects_bad_configs() {
        let p = testfns::forrester();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(
            Gaspad::new(GaspadConfig {
                initial_points: 2,
                ..GaspadConfig::default()
            })
            .run(&p, &mut rng),
            Err(MfboError::InvalidConfig { .. })
        ));
        assert!(matches!(
            Gaspad::new(GaspadConfig {
                initial_points: 20,
                budget: 20,
                ..GaspadConfig::default()
            })
            .run(&p, &mut rng),
            Err(MfboError::InvalidConfig { .. })
        ));
    }
}

//! The WEIBO baseline (Lyu et al., TCAS-I 2018).
//!
//! WEIBO is single-fidelity constrained Bayesian optimization with the
//! weighted-EI acquisition — precisely the machinery the DAC'19 paper
//! extends with the fusion model. It therefore shares its implementation
//! with [`mfbo::SfBayesOpt`]; this wrapper pins the paper's parameterization
//! (40 % of MSP starts around the incumbent) and exposes the experiment
//! knobs the tables vary (initial design size, simulation budget).

use mfbo::problem::MultiFidelityProblem;
use mfbo::{MfboError, Outcome, SfBayesOpt, SfBoConfig};
use mfbo_gp::GpConfig;
use mfbo_pool::Parallelism;
use rand::Rng;

/// WEIBO configuration (paper Table 1 uses 40 initial points / 150 sims on
/// the power amplifier; Table 2 uses 120 / 800 on the charge pump).
#[derive(Debug, Clone)]
pub struct WeiboConfig {
    /// Size of the initial Latin-hypercube design.
    pub initial_points: usize,
    /// Total number of simulations (initial design included).
    pub budget: usize,
    /// Number of MSP starting points per acquisition optimization.
    pub msp_starts: usize,
    /// GP training configuration.
    pub model: GpConfig,
    /// Re-optimize hyperparameters every `refit_every` iterations.
    pub refit_every: usize,
    /// Optional target winsorization (see
    /// [`mfbo::FidelityData::winsorized`]).
    pub winsorize_sigma: Option<f64>,
    /// Thread-pool mode for the hot paths (forwarded to
    /// [`SfBoConfig::parallelism`]). Every mode produces bit-identical
    /// optimization histories.
    pub parallelism: Parallelism,
}

impl Default for WeiboConfig {
    fn default() -> Self {
        WeiboConfig {
            initial_points: 40,
            budget: 150,
            msp_starts: 24,
            model: GpConfig::fast(),
            refit_every: 1,
            winsorize_sigma: None,
            parallelism: Parallelism::Serial,
        }
    }
}

/// The WEIBO optimizer.
///
/// # Examples
///
/// ```
/// use mfbo_baselines::{Weibo, WeiboConfig};
/// use mfbo::problem::FunctionProblem;
/// use mfbo_opt::Bounds;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), mfbo::MfboError> {
/// let p = FunctionProblem::builder("quad", Bounds::unit(1))
///     .high(|x: &[f64]| (x[0] - 0.6).powi(2))
///     .build();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let config = WeiboConfig { initial_points: 6, budget: 16, ..WeiboConfig::default() };
/// let out = Weibo::new(config).run(&p, &mut rng)?;
/// assert!(out.best_objective < 0.01);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Weibo {
    config: WeiboConfig,
}

impl Weibo {
    /// Creates a WEIBO driver.
    pub fn new(config: WeiboConfig) -> Self {
        Weibo { config }
    }

    /// Runs WEIBO on `problem` (high fidelity only).
    ///
    /// # Errors
    ///
    /// Same contract as [`SfBayesOpt::run`].
    pub fn run<P, R>(&self, problem: &P, rng: &mut R) -> Result<Outcome, MfboError>
    where
        P: MultiFidelityProblem + ?Sized,
        R: Rng + ?Sized,
    {
        self.run_with(problem, rng, &mut mfbo::RunOptions::default())
    }

    /// Runs WEIBO with durability and fault-tolerance options (journaling,
    /// checkpoint/resume, caching, robust evaluation) — forwarded to
    /// [`SfBayesOpt::run_with`].
    ///
    /// # Errors
    ///
    /// Same contract as [`SfBayesOpt::run_with`].
    pub fn run_with<P, R>(
        &self,
        problem: &P,
        rng: &mut R,
        opts: &mut mfbo::RunOptions,
    ) -> Result<Outcome, MfboError>
    where
        P: MultiFidelityProblem + ?Sized,
        R: Rng + ?Sized,
    {
        let sf = SfBoConfig {
            initial_points: self.config.initial_points,
            budget: self.config.budget,
            msp_starts: self.config.msp_starts,
            // Paper §4.1: 40 % of the starting points around τ_h.
            frac_around_tau: 0.40,
            anchor_spread: 0.05,
            model: self.config.model.clone(),
            refit_every: self.config.refit_every,
            winsorize_sigma: self.config.winsorize_sigma,
            parallelism: self.config.parallelism,
        };
        SfBayesOpt::new(sf).run_with(problem, rng, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfbo_circuits::testfns;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn weibo_solves_forrester() {
        let p = testfns::forrester();
        let mut rng = StdRng::seed_from_u64(9);
        let config = WeiboConfig {
            initial_points: 6,
            budget: 24,
            ..WeiboConfig::default()
        };
        let out = Weibo::new(config).run(&p, &mut rng).unwrap();
        assert!(out.best_objective < -5.5, "best = {}", out.best_objective);
        assert_eq!(out.n_low, 0);
        assert_eq!(out.n_high, 24);
    }
}

//! The plain differential-evolution baseline (the paper's "DE" column,
//! after the evolutionary core of Liu et al. 2009).
//!
//! Every candidate is simulated at high fidelity; constraints are handled
//! with Deb's feasibility rules. This is the cheapest algorithm per
//! iteration and by far the hungriest in simulations — exactly the contrast
//! the paper's tables show (9499 average simulations on the charge pump vs
//! 158 for the multi-fidelity method).

use mfbo::problem::{Fidelity, MultiFidelityProblem};
use mfbo::{EvaluationRecord, FidelityData, MfboError, Outcome};
use mfbo_opt::de::{DifferentialEvolution, Fitness};
use rand::Rng;
use std::cell::RefCell;

/// DE baseline configuration (paper Table 2 uses population-scale settings
/// with 100 initial members and a 10100-simulation budget).
#[derive(Debug, Clone)]
pub struct DeBaselineConfig {
    /// Population size.
    pub population: usize,
    /// Total number of simulations.
    pub budget: usize,
    /// Differential weight `F`.
    pub scale: f64,
    /// Crossover probability `CR`.
    pub crossover: f64,
}

impl Default for DeBaselineConfig {
    fn default() -> Self {
        DeBaselineConfig {
            population: 50,
            budget: 5000,
            scale: 0.6,
            crossover: 0.9,
        }
    }
}

/// The DE baseline driver.
///
/// # Examples
///
/// ```
/// use mfbo_baselines::{DifferentialEvolutionBaseline, DeBaselineConfig};
/// use mfbo::problem::FunctionProblem;
/// use mfbo_opt::Bounds;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), mfbo::MfboError> {
/// let p = FunctionProblem::builder("sphere", Bounds::symmetric(2, 2.0))
///     .high(|x: &[f64]| x.iter().map(|v| v * v).sum())
///     .build();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let config = DeBaselineConfig { population: 16, budget: 800, ..DeBaselineConfig::default() };
/// let out = DifferentialEvolutionBaseline::new(config).run(&p, &mut rng)?;
/// assert!(out.best_objective < 1e-3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DifferentialEvolutionBaseline {
    config: DeBaselineConfig,
}

impl DifferentialEvolutionBaseline {
    /// Creates a DE baseline driver.
    pub fn new(config: DeBaselineConfig) -> Self {
        DifferentialEvolutionBaseline { config }
    }

    /// Runs DE on `problem`, simulating every candidate at high fidelity.
    ///
    /// # Errors
    ///
    /// Returns [`MfboError::InvalidConfig`] if the budget cannot cover the
    /// initial population.
    pub fn run<P, R>(&self, problem: &P, rng: &mut R) -> Result<Outcome, MfboError>
    where
        P: MultiFidelityProblem + ?Sized,
        R: Rng + ?Sized,
    {
        if self.config.budget < self.config.population.max(4) {
            return Err(MfboError::InvalidConfig {
                reason: "budget must cover the initial population".into(),
            });
        }
        let bounds = problem.bounds();
        let nc = problem.num_constraints();
        // Shared mutable trace, filled from inside the DE callback.
        let trace: RefCell<(FidelityData, Vec<EvaluationRecord>, f64)> =
            RefCell::new((FidelityData::new(nc), Vec::new(), 0.0));

        let fitness = |x: &[f64]| {
            let eval = problem.evaluate(x, Fidelity::High);
            let fit = Fitness {
                objective: eval.objective,
                violation: eval.total_violation(),
            };
            let mut t = trace.borrow_mut();
            t.2 += problem.cost(Fidelity::High);
            let cost = t.2;
            let iteration = t.1.len();
            t.0.push(x.to_vec(), &eval);
            t.1.push(EvaluationRecord {
                iteration,
                x: x.to_vec(),
                fidelity: Fidelity::High,
                evaluation: eval,
                cost_so_far: cost,
            });
            fit
        };

        let _ = DifferentialEvolution::new()
            .with_population(self.config.population)
            .with_scale(self.config.scale)
            .with_crossover(self.config.crossover)
            .with_max_evaluations(self.config.budget)
            .minimize(&fitness, &bounds, rng);

        let (data, history, _) = trace.into_inner();
        Ok(Outcome::from_data(data, FidelityData::new(nc), history))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfbo::problem::FunctionProblem;
    use mfbo_opt::Bounds;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn solves_constrained_toy() {
        // min x0+x1 s.t. x0+x1 >= 1.
        let p = FunctionProblem::builder("ctoy", Bounds::unit(2))
            .high(|x: &[f64]| x[0] + x[1])
            .high_constraints(1, |x: &[f64]| vec![1.0 - x[0] - x[1]])
            .build();
        let mut rng = StdRng::seed_from_u64(4);
        let config = DeBaselineConfig {
            population: 20,
            budget: 2000,
            ..DeBaselineConfig::default()
        };
        let out = DifferentialEvolutionBaseline::new(config)
            .run(&p, &mut rng)
            .unwrap();
        assert!(out.feasible);
        assert!(
            (out.best_objective - 1.0).abs() < 0.01,
            "best = {}",
            out.best_objective
        );
        assert_eq!(out.n_high, 2000);
        assert_eq!(out.history.len(), 2000);
        assert!((out.total_cost - 2000.0).abs() < 1e-9);
        assert!(out.cost_to_best <= out.total_cost);
    }

    #[test]
    fn rejects_tiny_budget() {
        let p = FunctionProblem::builder("t", Bounds::unit(1))
            .high(|x: &[f64]| x[0])
            .build();
        let mut rng = StdRng::seed_from_u64(0);
        let e = DifferentialEvolutionBaseline::new(DeBaselineConfig {
            population: 50,
            budget: 10,
            ..DeBaselineConfig::default()
        })
        .run(&p, &mut rng);
        assert!(matches!(e, Err(MfboError::InvalidConfig { .. })));
    }
}

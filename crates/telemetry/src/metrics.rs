//! Deterministic per-run metrics: counters, gauges, and fixed-bucket
//! histograms aggregated from the telemetry record stream.
//!
//! The registry is a [`Sink`]: install it (alone or inside a
//! [`MultiSink`](crate::sinks::MultiSink)) and it folds every record it sees
//! into aggregate state — counter increments sum, span ends feed duration
//! histograms, and numeric event fields feed value histograms. A
//! [`MetricsSnapshot`] taken at the end of the run serializes to
//! `metrics.json` (through the shared [`Json`] codec) and to a
//! Prometheus-style text exposition.
//!
//! Determinism contract (DESIGN.md item 13): bucket edges are a fixed,
//! platform-independent log-spaced table, merges add bucket counts in index
//! order, and quantiles are *bucket-derived* (the upper edge of the bucket
//! where the cumulative count crosses the rank), never sampled. Counts,
//! minima, maxima, and quantiles are therefore invariant under any
//! permutation of the observation order — which is exactly what worker
//! threads produce. The floating-point `sum` is the one order-sensitive
//! statistic; report pipelines that need bit-stable sums sort values before
//! folding (see `mfbo::run_report`).

use crate::json::Json;
use crate::{Kind, Level, Record, Sink, Value};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Powers of ten spanning the bucket range, written as literals so edge
/// values never depend on a platform's `pow` implementation.
const POW10: [f64; 22] = [
    1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1e0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7,
    1e8, 1e9, 1e10, 1e11, 1e12,
];

/// Quarter-decade multipliers `10^(j/4)`, also literal for determinism.
const QUARTER_DECADE: [f64; 4] = [
    1.0,
    1.7782794100389228,
    3.1622776601683795,
    5.623413251903491,
];

/// Number of finite bucket edges: four per decade over `[1e-9, 1e12)` plus
/// the closing `1e12` edge.
pub const NUM_EDGES: usize = (POW10.len() - 1) * QUARTER_DECADE.len() + 1;

/// Number of buckets: one per edge (`value <= edge`) plus the overflow
/// bucket. Bucket 0 (`value <= 1e-9`) doubles as the underflow bucket and
/// catches zero and negative observations.
pub const NUM_BUCKETS: usize = NUM_EDGES + 1;

/// The fixed log-spaced bucket edge table shared by every histogram.
///
/// Bucket `i < NUM_EDGES` covers `(edge[i-1], edge[i]]` (bucket 0 covers
/// `(-inf, edge[0]]`); the final bucket covers `(edge[NUM_EDGES-1], +inf)`.
pub fn bucket_edges() -> &'static [f64] {
    static EDGES: std::sync::OnceLock<Vec<f64>> = std::sync::OnceLock::new();
    EDGES.get_or_init(|| {
        let mut edges = Vec::with_capacity(NUM_EDGES);
        for decade in &POW10[..POW10.len() - 1] {
            for mult in &QUARTER_DECADE {
                edges.push(mult * decade);
            }
        }
        edges.push(*POW10.last().expect("non-empty table"));
        edges
    })
}

/// Index of the bucket a finite value falls into.
fn bucket_index(v: f64) -> usize {
    bucket_edges().partition_point(|&edge| edge < v)
}

/// A fixed-bucket histogram over `f64` observations.
///
/// All statistics except `sum` are permutation-invariant (see the module
/// docs). Non-finite observations are counted separately and do not
/// contribute to any other statistic.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    nonfinite: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
            nonfinite: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one observation in.
    pub fn observe(&mut self, v: f64) {
        if !v.is_finite() {
            self.nonfinite += 1;
            return;
        }
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of finite observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Merges `other` into `self`, adding bucket counts in index order.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.nonfinite += other.nonfinite;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Bucket-derived quantile: the upper edge of the bucket where the
    /// cumulative count first reaches `ceil(q * count)`, clamped to the
    /// observed `[min, max]` range. Returns NaN on an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let target = ((q * self.count as f64).ceil()).max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                let edge = if i < NUM_EDGES {
                    bucket_edges()[i]
                } else {
                    self.max
                };
                return edge.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Immutable aggregate view suitable for serialization.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            nonfinite: self.nonfinite,
            sum: self.sum,
            min: self.min,
            max: self.max,
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            buckets: self
                .counts
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| (i, c))
                .collect(),
        }
    }
}

/// Serializable aggregate view of one [`Histogram`].
///
/// `buckets` holds `(bucket index, count)` pairs in index order for buckets
/// with a nonzero count; the edge table is implied by [`bucket_edges`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Finite observation count.
    pub count: u64,
    /// Non-finite observations (excluded from every other statistic).
    pub nonfinite: u64,
    /// Sum of finite observations (observation-order sensitive; see module
    /// docs).
    pub sum: f64,
    /// Smallest finite observation (`+inf` when empty).
    pub min: f64,
    /// Largest finite observation (`-inf` when empty).
    pub max: f64,
    /// Bucket-derived median (NaN when empty).
    pub p50: f64,
    /// Bucket-derived 90th percentile (NaN when empty).
    pub p90: f64,
    /// Bucket-derived 99th percentile (NaN when empty).
    pub p99: f64,
    /// Sparse `(bucket index, count)` pairs, ascending by index.
    pub buckets: Vec<(usize, u64)>,
}

impl HistogramSnapshot {
    /// Reconstitutes the dense histogram (for merging snapshots).
    fn to_histogram(&self) -> Histogram {
        let mut h = Histogram::new();
        for &(i, c) in &self.buckets {
            h.counts[i] += c;
        }
        h.count = self.count;
        h.nonfinite = self.nonfinite;
        h.sum = self.sum;
        h.min = self.min;
        h.max = self.max;
        h
    }

    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("count".to_string(), Json::Num(self.count as f64)),
            ("nonfinite".to_string(), Json::Num(self.nonfinite as f64)),
            ("sum".to_string(), Json::Num(self.sum)),
        ];
        if self.count > 0 {
            fields.push(("min".to_string(), Json::Num(self.min)));
            fields.push(("max".to_string(), Json::Num(self.max)));
            fields.push(("p50".to_string(), Json::Num(self.p50)));
            fields.push(("p90".to_string(), Json::Num(self.p90)));
            fields.push(("p99".to_string(), Json::Num(self.p99)));
        }
        fields.push((
            "buckets".to_string(),
            Json::Arr(
                self.buckets
                    .iter()
                    .map(|&(i, c)| Json::Arr(vec![Json::Num(i as f64), Json::Num(c as f64)]))
                    .collect(),
            ),
        ));
        Json::Obj(fields)
    }

    fn from_json(v: &Json) -> Result<HistogramSnapshot, String> {
        let num = |key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("histogram snapshot missing numeric {key:?}"))
        };
        let opt = |key: &str, default: f64| v.get(key).and_then(Json::as_f64).unwrap_or(default);
        let count = num("count")? as u64;
        let mut buckets = Vec::new();
        for pair in v
            .get("buckets")
            .and_then(Json::as_arr)
            .ok_or("histogram snapshot missing \"buckets\"")?
        {
            let pair = pair.as_arr().ok_or("bucket entry is not an array")?;
            if pair.len() != 2 {
                return Err("bucket entry is not an [index, count] pair".into());
            }
            let idx = pair[0].as_f64().ok_or("bucket index is not a number")? as usize;
            if idx >= NUM_BUCKETS {
                return Err(format!("bucket index {idx} out of range"));
            }
            buckets.push((
                idx,
                pair[1].as_f64().ok_or("bucket count not numeric")? as u64,
            ));
        }
        Ok(HistogramSnapshot {
            count,
            nonfinite: opt("nonfinite", 0.0) as u64,
            sum: num("sum")?,
            min: opt("min", f64::INFINITY),
            max: opt("max", f64::NEG_INFINITY),
            p50: opt("p50", f64::NAN),
            p90: opt("p90", f64::NAN),
            p99: opt("p99", f64::NAN),
            buckets,
        })
    }
}

/// Aggregated metrics at a point in time: the exportable product of a
/// [`MetricsRegistry`]. Attached to
/// [`RunTelemetry`](crate::summary::RunTelemetry) at the end of a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotonic counters (counter records and event/boolean tallies).
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins instantaneous values set via
    /// [`MetricsRegistry::set_gauge`].
    pub gauges: BTreeMap<String, f64>,
    /// Fixed-bucket histograms over span durations and numeric event fields.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Serializes through the shared telemetry JSON codec (the `metrics.json`
    /// format). Key order is the `BTreeMap` order, so output is
    /// deterministic.
    pub fn to_json(&self) -> Json {
        let obj = |pairs: Vec<(String, Json)>| Json::Obj(pairs);
        Json::Obj(vec![
            (
                "counters".to_string(),
                obj(self
                    .counters
                    .iter()
                    .map(|(k, &v)| (k.clone(), Json::Num(v as f64)))
                    .collect()),
            ),
            (
                "gauges".to_string(),
                obj(self
                    .gauges
                    .iter()
                    .map(|(k, &v)| (k.clone(), Json::Num(v)))
                    .collect()),
            ),
            (
                "histograms".to_string(),
                obj(self
                    .histograms
                    .iter()
                    .map(|(k, h)| (k.clone(), h.to_json()))
                    .collect()),
            ),
        ])
    }

    /// Parses a value produced by [`MetricsSnapshot::to_json`].
    pub fn from_json(v: &Json) -> Result<MetricsSnapshot, String> {
        let section = |key: &str| -> Result<&Vec<(String, Json)>, String> {
            match v.get(key) {
                Some(Json::Obj(pairs)) => Ok(pairs),
                _ => Err(format!("metrics snapshot missing object {key:?}")),
            }
        };
        let mut snap = MetricsSnapshot::default();
        for (k, val) in section("counters")? {
            let n = val
                .as_f64()
                .ok_or_else(|| format!("counter {k:?} is not numeric"))?;
            snap.counters.insert(k.clone(), n as u64);
        }
        for (k, val) in section("gauges")? {
            let n = val
                .as_f64()
                .ok_or_else(|| format!("gauge {k:?} is not numeric"))?;
            snap.gauges.insert(k.clone(), n);
        }
        for (k, val) in section("histograms")? {
            snap.histograms
                .insert(k.clone(), HistogramSnapshot::from_json(val)?);
        }
        Ok(snap)
    }

    /// Merges `other` into `self`: counters add, gauges last-write-wins,
    /// histogram buckets add in index order.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, &v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, &v) in &other.gauges {
            self.gauges.insert(k.clone(), v);
        }
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(mine) => {
                    let mut merged = mine.to_histogram();
                    merged.merge(&h.to_histogram());
                    *mine = merged.snapshot();
                }
                None => {
                    self.histograms.insert(k.clone(), h.clone());
                }
            }
        }
    }

    /// Renders the Prometheus text exposition format (the future service
    /// `/metrics` endpoint). Metric names get an `mfbo_` prefix and dots
    /// become underscores; histogram buckets are cumulative `le`-labelled
    /// counts per the Prometheus histogram convention.
    pub fn to_prometheus(&self) -> String {
        fn sanitize(name: &str) -> String {
            let mut s = String::with_capacity(name.len() + 5);
            s.push_str("mfbo_");
            for ch in name.chars() {
                if ch.is_ascii_alphanumeric() {
                    s.push(ch);
                } else {
                    s.push('_');
                }
            }
            s
        }
        let mut out = String::new();
        for (name, &v) in &self.counters {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
        }
        for (name, &v) in &self.gauges {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {}\n", Json::Num(v)));
        }
        for (name, h) in &self.histograms {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} histogram\n"));
            let mut cum = 0u64;
            for &(i, c) in &h.buckets {
                cum += c;
                let le = if i < NUM_EDGES {
                    Json::Num(bucket_edges()[i]).to_string()
                } else {
                    "+Inf".to_string()
                };
                out.push_str(&format!("{n}_bucket{{le=\"{le}\"}} {cum}\n"));
            }
            out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("{n}_sum {}\n", Json::Num(h.sum)));
            out.push_str(&format!("{n}_count {}\n", h.count));
        }
        out
    }
}

/// A [`Sink`] that folds the record stream into counters and histograms.
///
/// Mapping: counter records add to `counters[name]`; span ends feed
/// `histograms["span.{name}.dur_us"]`; each event increments
/// `counters["event.{name}"]`, its numeric fields feed
/// `histograms["{name}.{field}"]`, and its boolean fields count `true`
/// occurrences in `counters["{name}.{field}"]`. String fields are ignored.
pub struct MetricsRegistry {
    level: Level,
    inner: Mutex<MetricsInner>,
}

#[derive(Default)]
struct MetricsInner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// Registry accepting records up to [`Level::Debug`] (the tier the
    /// solver-health diagnostics are emitted at).
    pub fn new() -> Self {
        Self::with_level(Level::Debug)
    }

    /// Registry accepting records up to `level`.
    pub fn with_level(level: Level) -> Self {
        MetricsRegistry {
            level,
            inner: Mutex::new(MetricsInner::default()),
        }
    }

    /// Sets an instantaneous gauge value (last write wins).
    pub fn set_gauge(&self, name: &str, value: f64) {
        let mut inner = self.inner.lock().expect("metrics registry lock");
        inner.gauges.insert(name.to_string(), value);
    }

    /// Takes an immutable snapshot of everything aggregated so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("metrics registry lock");
        MetricsSnapshot {
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// Numeric view of a field value, if it has one.
fn numeric(v: &Value) -> Option<f64> {
    match v {
        Value::I64(i) => Some(*i as f64),
        Value::U64(u) => Some(*u as f64),
        Value::F64(f) => Some(*f),
        Value::Bool(_) | Value::Str(_) => None,
    }
}

impl Sink for MetricsRegistry {
    fn max_level(&self) -> Level {
        self.level
    }

    fn record(&self, rec: &Record) {
        let mut inner = self.inner.lock().expect("metrics registry lock");
        match rec.kind {
            Kind::Counter => {
                let add = match rec.field("value") {
                    Some(Value::U64(u)) => *u,
                    Some(Value::I64(i)) => (*i).max(0) as u64,
                    Some(Value::F64(f)) => *f as u64,
                    _ => 1,
                };
                *inner.counters.entry(rec.name.to_string()).or_insert(0) += add;
            }
            Kind::SpanEnd => {
                if let Some(Value::U64(dur)) = rec.field("dur_us") {
                    inner
                        .histograms
                        .entry(format!("span.{}.dur_us", rec.name))
                        .or_default()
                        .observe(*dur as f64);
                }
            }
            Kind::Event => {
                *inner
                    .counters
                    .entry(format!("event.{}", rec.name))
                    .or_insert(0) += 1;
                for (key, value) in &rec.fields {
                    if let Some(n) = numeric(value) {
                        inner
                            .histograms
                            .entry(format!("{}.{}", rec.name, key))
                            .or_default()
                            .observe(n);
                    } else if let Value::Bool(b) = value {
                        *inner
                            .counters
                            .entry(format!("{}.{}", rec.name, key))
                            .or_insert(0) += *b as u64;
                    }
                }
            }
            Kind::SpanStart => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{counter, debug_event, debug_span, scoped_sink};
    use std::sync::Arc;

    #[test]
    fn bucket_edges_are_sorted_and_span_the_range() {
        let edges = bucket_edges();
        assert_eq!(edges.len(), NUM_EDGES);
        assert!(edges.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(edges[0], 1e-9);
        assert_eq!(*edges.last().unwrap(), 1e12);
        // Bucket boundaries are half-open on the left: an exact edge value
        // lands in the bucket it closes.
        assert_eq!(bucket_index(1e-9), 0);
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-5.0), 0);
        assert_eq!(bucket_index(1e12), NUM_EDGES - 1);
        assert_eq!(bucket_index(2e12), NUM_EDGES);
    }

    #[test]
    fn quantiles_are_bucket_upper_edges_clamped_to_observed_range() {
        let mut h = Histogram::new();
        for v in [1.0, 2.0, 3.0, 100.0] {
            h.observe(v);
        }
        // p50 rank = 2 → the bucket holding 2.0, i.e. (1.778…, 3.162…];
        // the quantile is that bucket's upper edge.
        assert_eq!(h.quantile(0.5), 3.1622776601683795);
        // p99 rank = 4 → bucket of 100.0, edge 100.0 exactly.
        assert_eq!(h.quantile(0.99), 100.0);
        // Clamping: a single observation pins every quantile to it.
        let mut one = Histogram::new();
        one.observe(42.0);
        assert_eq!(one.quantile(0.5), 42.0);
        assert_eq!(one.quantile(0.99), 42.0);
    }

    #[test]
    fn nonfinite_observations_are_isolated() {
        let mut h = Histogram::new();
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        h.observe(1.0);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.nonfinite, 2);
        assert_eq!(s.sum, 1.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 1.0);
    }

    #[test]
    fn merge_adds_bucket_counts_in_index_order() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [1.0, 10.0] {
            a.observe(v);
        }
        for v in [10.0, 1000.0] {
            b.observe(v);
        }
        let mut m = a.clone();
        m.merge(&b);
        let mut direct = Histogram::new();
        for v in [1.0, 10.0, 10.0, 1000.0] {
            direct.observe(v);
        }
        assert_eq!(m.snapshot(), direct.snapshot());
    }

    #[test]
    fn registry_folds_counters_spans_and_events() {
        let reg = Arc::new(MetricsRegistry::new());
        {
            let _g = scoped_sink(reg.clone());
            counter!("nlml_evals", 12u64);
            counter!("nlml_evals", 3u64);
            {
                let _s = debug_span!("surrogate_fit", iteration = 1usize);
            }
            debug_event!("gp_fit", condition = 1.5e6f64, jitter = 0.0f64);
            debug_event!("fidelity_decision", chose_high = true, forced = false);
        }
        reg.set_gauge("best_objective", -6.02);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["nlml_evals"], 15);
        assert_eq!(snap.counters["event.gp_fit"], 1);
        assert_eq!(snap.counters["fidelity_decision.chose_high"], 1);
        assert_eq!(snap.counters["fidelity_decision.forced"], 0);
        assert_eq!(snap.gauges["best_objective"], -6.02);
        assert_eq!(snap.histograms["gp_fit.condition"].count, 1);
        assert_eq!(snap.histograms["gp_fit.condition"].sum, 1.5e6);
        assert_eq!(snap.histograms["span.surrogate_fit.dur_us"].count, 1);
        assert_eq!(snap.histograms["gp_fit.jitter"].count, 1);
    }

    #[test]
    fn snapshot_round_trips_through_json_codec() {
        let reg = MetricsRegistry::new();
        {
            let r = |kind, name: &'static str, fields| Record {
                t_us: 0,
                level: Level::Debug,
                kind,
                name,
                depth: 0,
                fields,
            };
            reg.record(&r(
                Kind::Counter,
                "eval_cache_hit",
                vec![("value", Value::U64(7))],
            ));
            reg.record(&r(
                Kind::SpanEnd,
                "acq_opt",
                vec![("dur_us", Value::U64(1234))],
            ));
            reg.record(&r(
                Kind::Event,
                "gp_fit",
                vec![("nlml", Value::F64(-3.25)), ("jitter", Value::F64(1e-8))],
            ));
        }
        reg.set_gauge("total_cost", 42.5);
        let snap = reg.snapshot();
        let encoded = snap.to_json().to_string();
        let parsed = crate::json::parse(&encoded).expect("metrics.json parses");
        assert_eq!(MetricsSnapshot::from_json(&parsed).unwrap(), snap);
    }

    #[test]
    fn prometheus_exposition_has_cumulative_buckets() {
        let mut h = Histogram::new();
        for v in [1.0, 2.0, 5.0] {
            h.observe(v);
        }
        let snap = MetricsSnapshot {
            counters: [("event.gp_fit".to_string(), 3u64)].into_iter().collect(),
            gauges: [("best_objective".to_string(), -1.5)].into_iter().collect(),
            histograms: [("gp_fit.nlml".to_string(), h.snapshot())]
                .into_iter()
                .collect(),
        };
        let text = snap.to_prometheus();
        assert!(text.contains("# TYPE mfbo_event_gp_fit counter"));
        assert!(text.contains("mfbo_event_gp_fit 3"));
        assert!(text.contains("mfbo_best_objective -1.5"));
        assert!(text.contains("# TYPE mfbo_gp_fit_nlml histogram"));
        assert!(text.contains("mfbo_gp_fit_nlml_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("mfbo_gp_fit_nlml_count 3"));
        // Cumulative counts never decrease.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket{")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last);
            last = v;
        }
    }

    #[test]
    fn snapshot_merge_matches_single_registry() {
        let mut a = MetricsSnapshot::default();
        let mut b = MetricsSnapshot::default();
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        for v in [1.0, 50.0] {
            ha.observe(v);
        }
        for v in [50.0, 2e13] {
            hb.observe(v);
        }
        a.counters.insert("c".into(), 2);
        b.counters.insert("c".into(), 3);
        a.histograms.insert("h".into(), ha.snapshot());
        b.histograms.insert("h".into(), hb.snapshot());
        a.merge(&b);
        assert_eq!(a.counters["c"], 5);
        let mut all = Histogram::new();
        for v in [1.0, 50.0, 50.0, 2e13] {
            all.observe(v);
        }
        assert_eq!(a.histograms["h"], all.snapshot());
    }
}

#[cfg(test)]
mod permutation_props {
    //! The DESIGN item 13 invariant, as properties: histogram statistics
    //! (except the documented `sum`) are invariant under observation-order
    //! permutations, and `metrics.json` round-trips bit-exactly through the
    //! shared codec.

    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::Rng;

    fn arbitrary_values(rng: &mut StdRng) -> Vec<f64> {
        let n = rng.gen_range(1usize..40);
        (0..n)
            .map(|_| {
                let mantissa: f64 = rng.gen_range(-1.0f64..1.0);
                let exp = rng.gen_range(-12i32..15);
                mantissa * 10f64.powi(exp)
            })
            .filter(|v| v.is_finite())
            .collect()
    }

    /// A value list plus a shuffled copy of itself.
    struct Shuffled;

    impl proptest::strategy::Strategy for Shuffled {
        type Value = (Vec<f64>, Vec<f64>);

        fn generate(&self, rng: &mut StdRng) -> (Vec<f64>, Vec<f64>) {
            let base = arbitrary_values(rng);
            let mut shuffled = base.clone();
            // Fisher–Yates with the harness RNG.
            for i in (1..shuffled.len()).rev() {
                let j = rng.gen_range(0usize..=i);
                shuffled.swap(i, j);
            }
            (base, shuffled)
        }
    }

    /// A snapshot built from random observations, counters, and gauges.
    struct ArbitrarySnapshot;

    impl proptest::strategy::Strategy for ArbitrarySnapshot {
        type Value = MetricsSnapshot;

        fn generate(&self, rng: &mut StdRng) -> MetricsSnapshot {
            let mut snap = MetricsSnapshot::default();
            for i in 0..rng.gen_range(0usize..4) {
                snap.counters
                    .insert(format!("c{i}"), rng.gen_range(0u64..1u64 << 50));
            }
            for i in 0..rng.gen_range(0usize..4) {
                snap.gauges
                    .insert(format!("g{i}"), rng.gen_range(-1.0f64..1.0) * 1e6);
            }
            for i in 0..rng.gen_range(0usize..3) {
                let mut h = Histogram::new();
                for v in arbitrary_values(rng) {
                    h.observe(v);
                }
                snap.histograms.insert(format!("h{i}"), h.snapshot());
            }
            snap
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn bucket_counts_are_permutation_invariant(pair in Shuffled) {
            let (base, shuffled) = pair;
            let mut a = Histogram::new();
            let mut b = Histogram::new();
            for v in &base { a.observe(*v); }
            for v in &shuffled { b.observe(*v); }
            let (sa, sb) = (a.snapshot(), b.snapshot());
            prop_assert_eq!(&sa.buckets, &sb.buckets);
            prop_assert_eq!(sa.count, sb.count);
            prop_assert_eq!(sa.min.to_bits(), sb.min.to_bits());
            prop_assert_eq!(sa.max.to_bits(), sb.max.to_bits());
            prop_assert_eq!(sa.p50.to_bits(), sb.p50.to_bits());
            prop_assert_eq!(sa.p90.to_bits(), sb.p90.to_bits());
            prop_assert_eq!(sa.p99.to_bits(), sb.p99.to_bits());
        }

        #[test]
        fn metrics_json_round_trips(snap in ArbitrarySnapshot) {
            let encoded = snap.to_json().to_string();
            let parsed = crate::json::parse(&encoded);
            prop_assert!(parsed.is_ok(), "unparseable: {}", encoded);
            let back = MetricsSnapshot::from_json(&parsed.unwrap());
            prop_assert!(back.is_ok(), "decode failed: {:?}", back);
            prop_assert_eq!(back.unwrap(), snap);
        }
    }
}

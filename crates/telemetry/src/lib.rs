//! Structured tracing, metrics, and profiling hooks for the MFBO loop.
//!
//! The optimizer crates emit *records* — typed events, RAII span timings, and
//! counters — through a process-global (or thread-scoped) [`Sink`]. Sinks
//! decide presentation: [`sinks::PrettySink`] renders an indented human
//! trace, [`sinks::JsonlSink`] writes one JSON object per line for machine
//! consumption, [`sinks::CollectSink`] buffers records for tests, and
//! [`sinks::NullSink`] discards everything.
//!
//! Overhead discipline: when no sink is installed, the emit macros reduce to
//! one relaxed atomic load plus one thread-local flag read — no field values
//! are constructed, no allocation happens. Instrumented hot paths are
//! therefore safe to leave enabled in release builds (see
//! `crates/bench/benches/micro.rs` for the overhead benchmark).
//!
//! ```
//! use mfbo_telemetry::{self as telemetry, event, span, sinks::CollectSink};
//! use std::sync::Arc;
//!
//! let sink = Arc::new(CollectSink::new());
//! let _guard = telemetry::scoped_sink(sink.clone());
//! {
//!     let _span = span!("surrogate_fit", n_low = 40usize);
//!     event!("fidelity_decision", iteration = 3usize, chose_high = false);
//! }
//! assert_eq!(sink.records().len(), 3); // span start + event + span end
//! ```

#![deny(missing_docs)]

pub mod json;
pub mod metrics;
pub mod sinks;
pub mod summary;

pub use summary::{FidelityDecision, RunTelemetry, StageStats};

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

/// Severity / verbosity tier of a record. Lower is more important.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Per-iteration decisions and run milestones — the default tier.
    Info = 0,
    /// Solver internals: GP fits, acquisition optimizer stats, jitter retries.
    Debug = 1,
    /// High-volume detail (per-start optimizer traces).
    Trace = 2,
}

impl Level {
    /// Short lowercase name (`"info"`, `"debug"`, `"trace"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parses the names produced by [`Level::as_str`]; used by CLI flags.
    pub fn parse(s: &str) -> Option<Level> {
        match s {
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }
}

/// What a record represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// A point-in-time typed event.
    Event,
    /// Entry into a timed region.
    SpanStart,
    /// Exit from a timed region (carries `dur_us`).
    SpanEnd,
    /// A monotonic counter increment.
    Counter,
}

impl Kind {
    /// Short lowercase name used in serialized output.
    pub fn as_str(self) -> &'static str {
        match self {
            Kind::Event => "event",
            Kind::SpanStart => "span_start",
            Kind::SpanEnd => "span_end",
            Kind::Counter => "counter",
        }
    }
}

/// A typed field value attached to a record.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point.
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Text.
    Str(String),
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::I64(v as i64)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// One emitted telemetry record.
#[derive(Debug, Clone)]
pub struct Record {
    /// Microseconds since the process telemetry epoch.
    pub t_us: u64,
    /// Verbosity tier.
    pub level: Level,
    /// Record kind.
    pub kind: Kind,
    /// Event / span / counter name (static, dot-free snake_case).
    pub name: &'static str,
    /// Span nesting depth at emission time (0 = top level).
    pub depth: usize,
    /// Typed key–value payload.
    pub fields: Vec<(&'static str, Value)>,
}

impl Record {
    /// Returns the value of field `key`, if present.
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

/// Receives emitted records. Implementations must be cheap and non-blocking;
/// they run inline on the optimizer thread.
pub trait Sink: Send + Sync {
    /// Most verbose level this sink wants. Records above it are filtered
    /// before field construction.
    fn max_level(&self) -> Level {
        Level::Info
    }

    /// Consumes one record.
    fn record(&self, rec: &Record);

    /// Flushes buffered output (called by guards on teardown).
    fn flush(&self) {}
}

static GLOBAL_ON: AtomicBool = AtomicBool::new(false);
static GLOBAL_MAX_LEVEL: AtomicU8 = AtomicU8::new(0);
static GLOBAL_SINK: RwLock<Option<Arc<dyn Sink>>> = RwLock::new(None);

thread_local! {
    static SCOPED_ON: Cell<bool> = const { Cell::new(false) };
    static SCOPED_MAX_LEVEL: Cell<u8> = const { Cell::new(0) };
    static SCOPED_SINKS: std::cell::RefCell<Vec<Arc<dyn Sink>>> =
        const { std::cell::RefCell::new(Vec::new()) };
    static SPAN_DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// The process telemetry epoch: a monotonic instant paired with the
/// wall-clock time (UNIX-epoch microseconds) read once at the same moment.
///
/// Every timestamp and duration in the record stream is derived from the
/// monotonic half, so span timings survive NTP step adjustments; the
/// wall-clock half exists only to *annotate* serialized records (the
/// `wall_us` key added by [`json::record_to_json`]) for correlation with
/// external logs.
fn epoch() -> &'static (Instant, u64) {
    static EPOCH: OnceLock<(Instant, u64)> = OnceLock::new();
    EPOCH.get_or_init(|| {
        let wall = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        (Instant::now(), wall)
    })
}

/// Microseconds since the first telemetry call in this process (monotonic).
pub fn now_us() -> u64 {
    epoch().0.elapsed().as_micros() as u64
}

/// Wall-clock time of the telemetry epoch, in UNIX-epoch microseconds.
///
/// `wall_epoch_us() + record.t_us` approximates the wall-clock time of a
/// record; it is an annotation only and never feeds duration arithmetic.
pub fn wall_epoch_us() -> u64 {
    epoch().1
}

/// Fast check: is any sink interested in records at `level`? The emit macros
/// call this before constructing fields, so the disabled path costs one
/// atomic load and one TLS read.
#[inline]
pub fn enabled(level: Level) -> bool {
    (GLOBAL_ON.load(Ordering::Relaxed) && level as u8 <= GLOBAL_MAX_LEVEL.load(Ordering::Relaxed))
        || (SCOPED_ON.with(|c| c.get()) && level as u8 <= SCOPED_MAX_LEVEL.with(|c| c.get()))
}

/// Installs `sink` as the process-global sink (replacing any previous one).
pub fn set_global_sink(sink: Arc<dyn Sink>) {
    let level = sink.max_level();
    *GLOBAL_SINK.write().expect("telemetry sink lock") = Some(sink);
    GLOBAL_MAX_LEVEL.store(level as u8, Ordering::Relaxed);
    GLOBAL_ON.store(true, Ordering::Relaxed);
}

/// Removes the process-global sink, flushing it first.
pub fn clear_global_sink() {
    GLOBAL_ON.store(false, Ordering::Relaxed);
    let prev = GLOBAL_SINK.write().expect("telemetry sink lock").take();
    if let Some(s) = prev {
        s.flush();
    }
}

/// Guard returned by [`scoped_sink`]; uninstalls the sink on drop.
pub struct ScopedSinkGuard {
    _not_send: std::marker::PhantomData<*const ()>,
}

/// Installs `sink` for the current thread until the returned guard drops.
/// Scoped sinks stack; records go to the innermost one. Used by tests and by
/// bench harnesses that want isolated traces per run.
pub fn scoped_sink(sink: Arc<dyn Sink>) -> ScopedSinkGuard {
    let level = sink.max_level();
    SCOPED_SINKS.with(|s| s.borrow_mut().push(sink));
    SCOPED_MAX_LEVEL.with(|c| c.set(level as u8));
    SCOPED_ON.with(|c| c.set(true));
    ScopedSinkGuard {
        _not_send: std::marker::PhantomData,
    }
}

impl Drop for ScopedSinkGuard {
    fn drop(&mut self) {
        let remaining = SCOPED_SINKS.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(top) = stack.pop() {
                top.flush();
            }
            stack.last().map(|s| s.max_level())
        });
        match remaining {
            Some(level) => SCOPED_MAX_LEVEL.with(|c| c.set(level as u8)),
            None => SCOPED_ON.with(|c| c.set(false)),
        }
    }
}

/// Emits one record to whichever sinks are interested. Callers should gate on
/// [`enabled`] first (the macros do); this function re-checks per sink.
pub fn emit(level: Level, kind: Kind, name: &'static str, fields: Vec<(&'static str, Value)>) {
    let rec = Record {
        t_us: now_us(),
        level,
        kind,
        name,
        depth: SPAN_DEPTH.with(|d| d.get()),
        fields,
    };
    if SCOPED_ON.with(|c| c.get()) {
        SCOPED_SINKS.with(|s| {
            if let Some(sink) = s.borrow().last() {
                if level <= sink.max_level() {
                    sink.record(&rec);
                }
            }
        });
    }
    if GLOBAL_ON.load(Ordering::Relaxed) && level as u8 <= GLOBAL_MAX_LEVEL.load(Ordering::Relaxed)
    {
        if let Some(sink) = GLOBAL_SINK.read().expect("telemetry sink lock").as_ref() {
            sink.record(&rec);
        }
    }
}

/// RAII timed region. Construct through the [`span!`] / [`debug_span!`]
/// macros; emits `SpanStart` on entry and `SpanEnd` (with `dur_us`) on drop.
pub struct Span {
    name: &'static str,
    level: Level,
    start: Instant,
    active: bool,
}

impl Span {
    /// Enters a span. `fields` is only invoked when a sink is listening.
    pub fn enter<F>(level: Level, name: &'static str, fields: F) -> Span
    where
        F: FnOnce() -> Vec<(&'static str, Value)>,
    {
        let active = enabled(level);
        if active {
            emit(level, Kind::SpanStart, name, fields());
            SPAN_DEPTH.with(|d| d.set(d.get() + 1));
        }
        Span {
            name,
            level,
            start: Instant::now(),
            active,
        }
    }

    /// Wall-clock time since the span was entered.
    pub fn elapsed(&self) -> std::time::Duration {
        self.start.elapsed()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.active {
            SPAN_DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
            let dur = self.start.elapsed().as_micros() as u64;
            emit(
                self.level,
                Kind::SpanEnd,
                self.name,
                vec![("dur_us", Value::U64(dur))],
            );
        }
    }
}

/// Emits an [`Level::Info`] event: `event!("name", key = value, ...)`.
#[macro_export]
macro_rules! event {
    ($name:expr $(, $k:ident = $v:expr)* $(,)?) => {
        if $crate::enabled($crate::Level::Info) {
            $crate::emit($crate::Level::Info, $crate::Kind::Event, $name,
                vec![$((stringify!($k), $crate::Value::from($v))),*]);
        }
    };
}

/// Emits a [`Level::Debug`] event.
#[macro_export]
macro_rules! debug_event {
    ($name:expr $(, $k:ident = $v:expr)* $(,)?) => {
        if $crate::enabled($crate::Level::Debug) {
            $crate::emit($crate::Level::Debug, $crate::Kind::Event, $name,
                vec![$((stringify!($k), $crate::Value::from($v))),*]);
        }
    };
}

/// Emits a [`Level::Trace`] event.
#[macro_export]
macro_rules! trace_event {
    ($name:expr $(, $k:ident = $v:expr)* $(,)?) => {
        if $crate::enabled($crate::Level::Trace) {
            $crate::emit($crate::Level::Trace, $crate::Kind::Event, $name,
                vec![$((stringify!($k), $crate::Value::from($v))),*]);
        }
    };
}

/// Opens an [`Level::Info`] RAII span; bind it: `let _span = span!("fit");`.
#[macro_export]
macro_rules! span {
    ($name:expr $(, $k:ident = $v:expr)* $(,)?) => {
        $crate::Span::enter($crate::Level::Info, $name,
            || vec![$((stringify!($k), $crate::Value::from($v))),*])
    };
}

/// Opens a [`Level::Debug`] RAII span.
#[macro_export]
macro_rules! debug_span {
    ($name:expr $(, $k:ident = $v:expr)* $(,)?) => {
        $crate::Span::enter($crate::Level::Debug, $name,
            || vec![$((stringify!($k), $crate::Value::from($v))),*])
    };
}

/// Emits a counter increment: `counter!("nlml_evals", 12)`.
#[macro_export]
macro_rules! counter {
    ($name:expr, $v:expr) => {
        if $crate::enabled($crate::Level::Debug) {
            $crate::emit(
                $crate::Level::Debug,
                $crate::Kind::Counter,
                $name,
                vec![("value", $crate::Value::from($v))],
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sinks::CollectSink;

    #[test]
    fn disabled_by_default_on_fresh_thread() {
        std::thread::spawn(|| {
            assert!(!SCOPED_ON.with(|c| c.get()));
        })
        .join()
        .expect("thread");
    }

    #[test]
    fn scoped_sink_receives_events_in_order() {
        let sink = Arc::new(CollectSink::new());
        {
            let _g = scoped_sink(sink.clone());
            event!("alpha", i = 1usize);
            event!("beta", x = 2.5f64, ok = true);
        }
        let recs = sink.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].name, "alpha");
        assert_eq!(recs[1].name, "beta");
        assert!(recs[0].t_us <= recs[1].t_us);
        assert_eq!(recs[1].field("x"), Some(&Value::F64(2.5)));
        assert_eq!(recs[1].field("ok"), Some(&Value::Bool(true)));
        // Guard dropped: nothing further is recorded.
        event!("gamma");
        assert_eq!(sink.records().len(), 2);
    }

    #[test]
    fn span_nesting_tracks_depth_and_duration() {
        let sink = Arc::new(CollectSink::with_level(Level::Debug));
        {
            let _g = scoped_sink(sink.clone());
            let _outer = span!("outer");
            {
                let _inner = debug_span!("inner", n = 3usize);
                event!("mid");
            }
        }
        let recs = sink.records();
        let names: Vec<_> = recs.iter().map(|r| (r.kind, r.name, r.depth)).collect();
        assert_eq!(
            names,
            vec![
                (Kind::SpanStart, "outer", 0),
                (Kind::SpanStart, "inner", 1),
                (Kind::Event, "mid", 2),
                (Kind::SpanEnd, "inner", 1),
                (Kind::SpanEnd, "outer", 0),
            ]
        );
        for r in &recs {
            if r.kind == Kind::SpanEnd {
                assert!(matches!(r.field("dur_us"), Some(Value::U64(_))));
            }
        }
    }

    #[test]
    fn level_filtering_respects_sink_max_level() {
        let sink = Arc::new(CollectSink::new()); // Info only
        {
            let _g = scoped_sink(sink.clone());
            event!("keep");
            debug_event!("drop_debug");
            trace_event!("drop_trace");
            counter!("drop_counter", 1u64);
        }
        let names: Vec<_> = sink.records().iter().map(|r| r.name).collect();
        assert_eq!(names, vec!["keep"]);
    }

    #[test]
    fn scoped_sinks_stack() {
        let outer = Arc::new(CollectSink::new());
        let inner = Arc::new(CollectSink::new());
        let _g1 = scoped_sink(outer.clone());
        event!("to_outer");
        {
            let _g2 = scoped_sink(inner.clone());
            event!("to_inner");
        }
        event!("to_outer_again");
        let outer_names: Vec<_> = outer.records().iter().map(|r| r.name).collect();
        assert_eq!(outer_names, vec!["to_outer", "to_outer_again"]);
        let inner_names: Vec<_> = inner.records().iter().map(|r| r.name).collect();
        assert_eq!(inner_names, vec!["to_inner"]);
    }
}

//! Hand-rolled JSON codec: writer, [`Json`] tree serializer, and parser.
//!
//! The workspace has no serde; records are serialized with a small escaping
//! writer, and the parser here exists so tests (and downstream tooling) can
//! round-trip JSONL traces without external crates. The parser handles the
//! subset the writer produces — objects, arrays, strings, numbers, booleans,
//! and null — which is also enough for general well-formed JSON without
//! unicode escapes beyond `\uXXXX`.
//!
//! [`Json`] also serializes (via [`std::fmt::Display`]), so other crates —
//! the run store's journal and cache files in particular — share one codec
//! with the telemetry traces. The encode side is round-trip exact for
//! finite numbers: `f64` values are written with Rust's shortest-round-trip
//! formatting, so `parse(v.to_string()) == v` holds for every tree without
//! NaN/infinity (non-finite numbers are encoded as `null`, as in the record
//! writer).

use crate::{Record, Value};
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, preserving key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric accessor.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean accessor.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array accessor.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience constructor for an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(fields: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Convenience constructor for an array of numbers.
    pub fn nums(values: impl IntoIterator<Item = f64>) -> Json {
        Json::Arr(values.into_iter().map(Json::Num).collect())
    }
}

impl std::fmt::Display for Json {
    /// Serializes the tree as compact JSON (no whitespace). Non-finite
    /// numbers become `null` — JSON has no NaN/inf — so serialization is
    /// lossy exactly there and round-trip exact everywhere else.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(v) if v.is_finite() => write!(f, "{v}"),
            Json::Num(_) => f.write_str("null"),
            Json::Str(s) => escape_to(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    escape_to(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Writes `s` to `out` with JSON string escaping (quotes included).
pub fn escape_to<W: std::fmt::Write>(out: &mut W, s: &str) -> std::fmt::Result {
    out.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => out.write_char(c)?,
        }
    }
    out.write_char('"')
}

/// Appends `s` to `out` with JSON string escaping.
pub fn escape_into(out: &mut String, s: &str) {
    let _ = escape_to(out, s);
}

fn value_into(out: &mut String, v: &Value) {
    match v {
        Value::I64(i) => {
            let _ = write!(out, "{i}");
        }
        Value::U64(u) => {
            let _ = write!(out, "{u}");
        }
        Value::F64(f) => {
            // JSON has no NaN/Inf; encode them as null so every line stays
            // machine-parseable.
            if f.is_finite() {
                let _ = write!(out, "{f}");
            } else {
                out.push_str("null");
            }
        }
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Str(s) => escape_into(out, s),
    }
}

/// Serializes one record as a single JSON object (no trailing newline).
///
/// Schema: `{"t_us":…,"wall_us":…,"level":"info","kind":"event","name":…,
/// "depth":…,"fields":{…}}`. `t_us` is monotonic (durations are computed
/// from it); `wall_us` is a derived wall-clock annotation
/// ([`crate::wall_epoch_us`]` + t_us`) that readers may ignore — existing
/// consumers written against the version-1 schema keep working because the
/// JSONL contract is "ignore keys you do not know".
pub fn record_to_json(rec: &Record) -> String {
    let mut out = String::with_capacity(112);
    let _ = write!(
        out,
        "{{\"t_us\":{},\"wall_us\":{},\"level\":\"{}\",\"kind\":\"{}\",\"name\":",
        rec.t_us,
        crate::wall_epoch_us().saturating_add(rec.t_us),
        rec.level.as_str(),
        rec.kind.as_str()
    );
    escape_into(&mut out, rec.name);
    let _ = write!(out, ",\"depth\":{},\"fields\":{{", rec.depth);
    for (i, (k, v)) in rec.fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        escape_into(&mut out, k);
        out.push(':');
        value_into(&mut out, v);
    }
    out.push_str("}}");
    out
}

/// Parses one JSON document. Trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other, self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (may be multi-byte).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8 in string")?;
                    let c = rest.chars().next().expect("non-empty rest");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Kind, Level};

    fn sample_record() -> Record {
        Record {
            t_us: 1234,
            level: Level::Info,
            kind: Kind::Event,
            name: "fidelity_decision",
            depth: 1,
            fields: vec![
                ("iteration", Value::U64(7)),
                ("max_low_variance", Value::F64(0.0125)),
                ("chose_high", Value::Bool(false)),
                ("note", Value::Str("a \"quoted\"\nline".to_string())),
            ],
        }
    }

    #[test]
    fn record_round_trips_through_parser() {
        let line = record_to_json(&sample_record());
        let json = parse(&line).expect("valid json");
        assert_eq!(json.get("t_us").and_then(Json::as_f64), Some(1234.0));
        assert_eq!(json.get("level").and_then(Json::as_str), Some("info"));
        assert_eq!(json.get("kind").and_then(Json::as_str), Some("event"));
        assert_eq!(
            json.get("name").and_then(Json::as_str),
            Some("fidelity_decision")
        );
        let fields = json.get("fields").expect("fields object");
        assert_eq!(fields.get("iteration").and_then(Json::as_f64), Some(7.0));
        assert_eq!(
            fields.get("max_low_variance").and_then(Json::as_f64),
            Some(0.0125)
        );
        assert_eq!(
            fields.get("chose_high").and_then(Json::as_bool),
            Some(false)
        );
        assert_eq!(
            fields.get("note").and_then(Json::as_str),
            Some("a \"quoted\"\nline")
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        let rec = Record {
            fields: vec![("bad", Value::F64(f64::NAN))],
            ..sample_record()
        };
        let line = record_to_json(&rec);
        let json = parse(&line).expect("valid json");
        assert_eq!(json.get("fields").unwrap().get("bad"), Some(&Json::Null));
    }

    #[test]
    fn parser_handles_arrays_nesting_and_ws() {
        let json = parse(" { \"a\" : [ 1 , -2.5e1 , true , null ] , \"b\" : { } } ").unwrap();
        let arr = match json.get("a") {
            Some(Json::Arr(items)) => items,
            other => panic!("expected array, got {other:?}"),
        };
        assert_eq!(arr[0], Json::Num(1.0));
        assert_eq!(arr[1], Json::Num(-25.0));
        assert_eq!(arr[2], Json::Bool(true));
        assert_eq!(arr[3], Json::Null);
        assert_eq!(json.get("b"), Some(&Json::Obj(vec![])));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("true false").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn json_display_serializes_nested_trees() {
        let v = Json::obj([
            ("s", Json::Str("a \"b\"\n\t\u{1}é".into())),
            ("n", Json::Num(-2.5e-3)),
            ("arr", Json::nums([1.0, 2.0])),
            ("nested", Json::obj([("ok", Json::Bool(true))])),
            ("nothing", Json::Null),
        ]);
        let s = v.to_string();
        assert_eq!(
            s,
            "{\"s\":\"a \\\"b\\\"\\n\\t\\u0001é\",\"n\":-0.0025,\
             \"arr\":[1,2],\"nested\":{\"ok\":true},\"nothing\":null}"
        );
        assert_eq!(parse(&s).unwrap(), v);
    }

    #[test]
    fn json_display_encodes_non_finite_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::nums([f64::INFINITY]).to_string(), "[null]");
    }
}

#[cfg(test)]
mod roundtrip_props {
    //! Property coverage for the shared codec: any tree of finite numbers,
    //! strings (including escapes and control characters), booleans, nulls,
    //! arrays, and objects must survive `parse(encode(v)) == v` bit-exactly.

    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::Rng;

    fn arbitrary_string(rng: &mut StdRng) -> String {
        let alphabet: &[char] = &[
            'a', 'Z', '0', ' ', '"', '\\', '\n', '\r', '\t', '\u{1}', '\u{7f}', 'é', '≤', '🦀',
            '{', '}', '[', ']', ':', ',',
        ];
        let len = rng.gen_range(0usize..12);
        (0..len)
            .map(|_| alphabet[rng.gen_range(0usize..alphabet.len())])
            .collect()
    }

    fn arbitrary_number(rng: &mut StdRng) -> f64 {
        // Mix magnitudes: integers, subnormal-ish tiny values, and huge ones
        // all stress the shortest-round-trip formatter differently.
        let mantissa: f64 = rng.gen_range(-1.0f64..1.0);
        let exp = rng.gen_range(-300i32..300);
        let v = mantissa * 10f64.powi(exp);
        if v.is_finite() {
            v
        } else {
            0.0
        }
    }

    fn arbitrary_json(rng: &mut StdRng, depth: usize) -> Json {
        let pick = if depth >= 3 {
            rng.gen_range(0usize..4) // leaves only once deep
        } else {
            rng.gen_range(0usize..6)
        };
        match pick {
            0 => Json::Null,
            1 => Json::Bool(rng.gen()),
            2 => Json::Num(arbitrary_number(rng)),
            3 => Json::Str(arbitrary_string(rng)),
            4 => {
                let n = rng.gen_range(0usize..4);
                Json::Arr((0..n).map(|_| arbitrary_json(rng, depth + 1)).collect())
            }
            _ => {
                let n = rng.gen_range(0usize..4);
                Json::Obj(
                    (0..n)
                        .map(|_| (arbitrary_string(rng), arbitrary_json(rng, depth + 1)))
                        .collect(),
                )
            }
        }
    }

    /// Strategy producing arbitrary (finite-number) JSON trees.
    struct JsonTree;

    impl proptest::strategy::Strategy for JsonTree {
        type Value = Json;

        fn generate(&self, rng: &mut StdRng) -> Json {
            arbitrary_json(rng, 0)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]
        #[test]
        fn encode_parse_round_trip(v in JsonTree) {
            let encoded = v.to_string();
            let parsed = parse(&encoded);
            prop_assert!(parsed.is_ok(), "unparseable: {encoded}");
            prop_assert_eq!(parsed.unwrap(), v);
        }

        #[test]
        fn numbers_round_trip_bit_exactly(m in -1.0f64..1.0, e in -300i32..300) {
            let v = m * 10f64.powi(e);
            prop_assume!(v.is_finite());
            let s = Json::Num(v).to_string();
            let back = parse(&s).unwrap().as_f64().unwrap();
            prop_assert_eq!(back.to_bits(), v.to_bits());
        }
    }
}

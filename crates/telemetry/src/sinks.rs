//! Bundled [`Sink`] implementations.

use crate::json::record_to_json;
use crate::{Kind, Level, Record, Sink, Value};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// Discards every record. Useful for measuring dispatch overhead with a sink
/// installed, or as a placeholder where a sink is required.
#[derive(Debug)]
pub struct NullSink {
    level: Level,
}

impl Default for NullSink {
    fn default() -> Self {
        NullSink { level: Level::Info }
    }
}

impl NullSink {
    /// Null sink accepting records up to `level`.
    pub fn with_level(level: Level) -> Self {
        NullSink { level }
    }
}

impl Sink for NullSink {
    fn max_level(&self) -> Level {
        self.level
    }

    fn record(&self, _rec: &Record) {}
}

/// Buffers records in memory; the test sink.
pub struct CollectSink {
    level: Level,
    records: Mutex<Vec<Record>>,
}

impl CollectSink {
    /// Collector accepting [`Level::Info`] records.
    pub fn new() -> Self {
        Self::with_level(Level::Info)
    }

    /// Collector accepting records up to `level`.
    pub fn with_level(level: Level) -> Self {
        CollectSink {
            level,
            records: Mutex::new(Vec::new()),
        }
    }

    /// Snapshot of everything recorded so far.
    pub fn records(&self) -> Vec<Record> {
        self.records.lock().expect("collect sink lock").clone()
    }

    /// Records with the given name, in emission order.
    pub fn named(&self, name: &str) -> Vec<Record> {
        self.records()
            .into_iter()
            .filter(|r| r.name == name)
            .collect()
    }
}

impl Default for CollectSink {
    fn default() -> Self {
        Self::new()
    }
}

impl Sink for CollectSink {
    fn max_level(&self) -> Level {
        self.level
    }

    fn record(&self, rec: &Record) {
        self.records
            .lock()
            .expect("collect sink lock")
            .push(rec.clone());
    }
}

/// Writes one JSON object per record, newline-delimited (JSONL).
pub struct JsonlSink<W: Write + Send> {
    level: Level,
    out: Mutex<BufWriter<W>>,
}

impl JsonlSink<File> {
    /// JSONL sink writing to a freshly created (truncated) file.
    pub fn create(path: impl AsRef<Path>, level: Level) -> std::io::Result<Self> {
        Ok(Self::new(File::create(path)?, level))
    }
}

impl<W: Write + Send> JsonlSink<W> {
    /// JSONL sink over an arbitrary writer.
    pub fn new(writer: W, level: Level) -> Self {
        JsonlSink {
            level,
            out: Mutex::new(BufWriter::new(writer)),
        }
    }
}

impl<W: Write + Send> Sink for JsonlSink<W> {
    fn max_level(&self) -> Level {
        self.level
    }

    fn record(&self, rec: &Record) {
        let mut out = self.out.lock().expect("jsonl sink lock");
        let _ = out.write_all(record_to_json(rec).as_bytes());
        let _ = out.write_all(b"\n");
    }

    fn flush(&self) {
        let _ = self.out.lock().expect("jsonl sink lock").flush();
    }
}

impl<W: Write + Send> Drop for JsonlSink<W> {
    fn drop(&mut self) {
        Sink::flush(self);
    }
}

/// Renders records as indented human-readable lines on a writer
/// (conventionally stderr, so traces don't mix with result tables on stdout).
pub struct PrettySink<W: Write + Send> {
    level: Level,
    out: Mutex<W>,
}

impl PrettySink<std::io::Stderr> {
    /// Pretty sink on stderr.
    pub fn stderr(level: Level) -> Self {
        Self::new(std::io::stderr(), level)
    }
}

impl<W: Write + Send> PrettySink<W> {
    /// Pretty sink over an arbitrary writer.
    pub fn new(writer: W, level: Level) -> Self {
        PrettySink {
            level,
            out: Mutex::new(writer),
        }
    }
}

fn fmt_value(v: &Value) -> String {
    match v {
        Value::I64(i) => i.to_string(),
        Value::U64(u) => u.to_string(),
        Value::F64(f) => {
            if f.abs() != 0.0 && (f.abs() < 1e-3 || f.abs() >= 1e6) {
                format!("{f:.3e}")
            } else {
                format!("{f:.6}")
            }
        }
        Value::Bool(b) => b.to_string(),
        Value::Str(s) => s.clone(),
    }
}

impl<W: Write + Send> Sink for PrettySink<W> {
    fn max_level(&self) -> Level {
        self.level
    }

    fn record(&self, rec: &Record) {
        let indent = "  ".repeat(rec.depth);
        let marker = match rec.kind {
            Kind::Event => "*",
            Kind::SpanStart => ">",
            Kind::SpanEnd => "<",
            Kind::Counter => "+",
        };
        let mut line = format!(
            "[{:>10.3}ms] {}{} {}",
            rec.t_us as f64 / 1000.0,
            indent,
            marker,
            rec.name
        );
        for (k, v) in &rec.fields {
            line.push_str(&format!(" {k}={}", fmt_value(v)));
        }
        let mut out = self.out.lock().expect("pretty sink lock");
        let _ = writeln!(out, "{line}");
    }

    fn flush(&self) {
        let _ = self.out.lock().expect("pretty sink lock").flush();
    }
}

/// Fans every record out to multiple sinks (e.g. pretty on stderr + JSONL to
/// a trace file).
pub struct MultiSink {
    sinks: Vec<std::sync::Arc<dyn Sink>>,
}

impl MultiSink {
    /// Combines `sinks`; the most verbose member decides the level filter.
    pub fn new(sinks: Vec<std::sync::Arc<dyn Sink>>) -> Self {
        MultiSink { sinks }
    }
}

impl Sink for MultiSink {
    fn max_level(&self) -> Level {
        self.sinks
            .iter()
            .map(|s| s.max_level())
            .max()
            .unwrap_or(Level::Info)
    }

    fn record(&self, rec: &Record) {
        for sink in &self.sinks {
            if rec.level <= sink.max_level() {
                sink.record(rec);
            }
        }
    }

    fn flush(&self) {
        for sink in &self.sinks {
            sink.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Json};
    use std::sync::Arc;

    fn rec(name: &'static str, kind: Kind, depth: usize) -> Record {
        Record {
            t_us: 10,
            level: Level::Info,
            kind,
            name,
            depth,
            fields: vec![("k", Value::U64(1))],
        }
    }

    /// Shared-buffer writer so tests can inspect sink output.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    impl SharedBuf {
        fn contents(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    #[test]
    fn jsonl_sink_emits_one_valid_json_object_per_line() {
        let buf = SharedBuf::default();
        let sink = JsonlSink::new(buf.clone(), Level::Info);
        sink.record(&rec("a", Kind::Event, 0));
        sink.record(&rec("b", Kind::SpanStart, 1));
        Sink::flush(&sink);
        let text = buf.contents();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            let json = parse(line).expect("each line parses as JSON");
            assert!(matches!(json, Json::Obj(_)));
        }
        assert_eq!(
            parse(lines[1]).unwrap().get("kind").and_then(Json::as_str),
            Some("span_start")
        );
    }

    #[test]
    fn pretty_sink_indents_by_depth() {
        let buf = SharedBuf::default();
        let sink = PrettySink::new(buf.clone(), Level::Info);
        sink.record(&rec("outer", Kind::SpanStart, 0));
        sink.record(&rec("inner", Kind::Event, 1));
        Sink::flush(&sink);
        let text = buf.contents();
        assert!(text.contains("> outer"), "got: {text}");
        assert!(text.contains("  * inner"), "got: {text}");
    }

    #[test]
    fn multi_sink_fans_out_with_per_sink_level() {
        let info = Arc::new(CollectSink::with_level(Level::Info));
        let debug = Arc::new(CollectSink::with_level(Level::Debug));
        let multi = MultiSink::new(vec![info.clone(), debug.clone()]);
        assert_eq!(multi.max_level(), Level::Debug);
        let mut debug_rec = rec("internals", Kind::Event, 0);
        debug_rec.level = Level::Debug;
        multi.record(&rec("visible", Kind::Event, 0));
        multi.record(&debug_rec);
        assert_eq!(info.records().len(), 1);
        assert_eq!(debug.records().len(), 2);
    }

    #[test]
    fn null_sink_accepts_and_drops() {
        let sink = NullSink::with_level(Level::Trace);
        assert_eq!(sink.max_level(), Level::Trace);
        sink.record(&rec("anything", Kind::Counter, 0));
    }
}

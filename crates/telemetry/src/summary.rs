//! Per-run aggregate telemetry attached to an optimization `Outcome`.
//!
//! Unlike the streaming [`crate::Sink`] path, [`RunTelemetry`] is populated
//! unconditionally by the BO loops with direct `Instant` timing — it is
//! always available on the outcome, whether or not a sink was installed.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

/// Wall-clock statistics for one named pipeline stage.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageStats {
    /// Number of times the stage ran.
    pub calls: u64,
    /// Total wall-clock microseconds across all calls.
    pub total_us: u64,
    /// Fastest single call, microseconds.
    pub min_us: u64,
    /// Slowest single call, microseconds.
    pub max_us: u64,
}

impl StageStats {
    /// Mean microseconds per call (0 when the stage never ran).
    pub fn mean_us(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.total_us as f64 / self.calls as f64
        }
    }

    fn absorb(&mut self, dur_us: u64) {
        if self.calls == 0 {
            self.min_us = dur_us;
            self.max_us = dur_us;
        } else {
            self.min_us = self.min_us.min(dur_us);
            self.max_us = self.max_us.max(dur_us);
        }
        self.calls += 1;
        self.total_us += dur_us;
    }
}

/// One fidelity-selection decision from the MFBO loop (paper eqs. 11–12:
/// evaluate high iff `max σ²_l < (1 + Nc)·γ`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FidelityDecision {
    /// BO iteration index, matching the run history (1-based; the initial
    /// design is iteration 0 and records no decision).
    pub iteration: usize,
    /// Maximum posterior variance of the low-fidelity surrogates at the
    /// candidate point, `max σ²_l`.
    pub max_low_variance: f64,
    /// The switching threshold `(1 + Nc)·γ`.
    pub threshold: f64,
    /// Whether the high-fidelity model was evaluated.
    pub chose_high: bool,
    /// True when the choice was forced (low-fidelity streak cap or
    /// feasibility drive), overriding the variance rule.
    pub forced: bool,
    /// Cumulative evaluation cost after acting on this decision.
    pub cost_after: f64,
}

/// Aggregate telemetry for one optimization run: per-stage wall-clock stats
/// and the fidelity-decision table.
#[derive(Debug, Clone, Default)]
pub struct RunTelemetry {
    /// Per-stage timing, keyed by stage name (`surrogate_fit`, `acq_opt`,
    /// `simulate_low`, `simulate_high`, ...). Sorted by key for stable
    /// display.
    pub stages: BTreeMap<&'static str, StageStats>,
    /// One entry per BO iteration of the multi-fidelity loop (empty for
    /// single-fidelity runs).
    pub decisions: Vec<FidelityDecision>,
    /// Total run wall-clock, microseconds.
    pub wall_us: u64,
    /// Aggregated metrics snapshot, when a
    /// [`MetricsRegistry`](crate::metrics::MetricsRegistry) was installed for
    /// the run (the CLI attaches one for `--metrics`).
    pub metrics: Option<crate::metrics::MetricsSnapshot>,
}

impl RunTelemetry {
    /// Folds one timed stage execution into the stats.
    pub fn record_stage(&mut self, name: &'static str, dur: Duration) {
        self.stages
            .entry(name)
            .or_default()
            .absorb(dur.as_micros() as u64);
    }

    /// Appends one fidelity decision.
    pub fn record_decision(&mut self, decision: FidelityDecision) {
        self.decisions.push(decision);
    }

    /// Number of decisions that chose the high-fidelity model.
    pub fn high_count(&self) -> usize {
        self.decisions.iter().filter(|d| d.chose_high).count()
    }

    /// Renders the per-stage timing table (fixed-width text).
    pub fn stage_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<16} {:>7} {:>12} {:>12} {:>12} {:>12}",
            "stage", "calls", "total_ms", "mean_ms", "min_ms", "max_ms"
        );
        for (name, s) in &self.stages {
            let _ = writeln!(
                out,
                "{:<16} {:>7} {:>12.3} {:>12.3} {:>12.3} {:>12.3}",
                name,
                s.calls,
                s.total_us as f64 / 1e3,
                s.mean_us() / 1e3,
                s.min_us as f64 / 1e3,
                s.max_us as f64 / 1e3,
            );
        }
        if self.wall_us > 0 {
            let _ = writeln!(out, "run wall-clock: {:.3} ms", self.wall_us as f64 / 1e3);
        }
        out
    }

    /// Renders the fidelity-decision table (fixed-width text). Empty string
    /// when no decisions were recorded.
    pub fn decision_table(&self) -> String {
        if self.decisions.is_empty() {
            return String::new();
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>5} {:>14} {:>14} {:>6} {:>7} {:>10}",
            "iter", "max_var_low", "threshold", "high", "forced", "cost"
        );
        for d in &self.decisions {
            let _ = writeln!(
                out,
                "{:>5} {:>14.6e} {:>14.6e} {:>6} {:>7} {:>10.2}",
                d.iteration,
                d.max_low_variance,
                d.threshold,
                if d.chose_high { "H" } else { "L" },
                if d.forced { "yes" } else { "" },
                d.cost_after,
            );
        }
        let _ = writeln!(
            out,
            "high-fidelity picks: {}/{}",
            self.high_count(),
            self.decisions.len()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_stats_accumulate_min_mean_max() {
        let mut t = RunTelemetry::default();
        t.record_stage("surrogate_fit", Duration::from_micros(100));
        t.record_stage("surrogate_fit", Duration::from_micros(300));
        t.record_stage("acq_opt", Duration::from_micros(50));
        let s = t.stages["surrogate_fit"];
        assert_eq!(s.calls, 2);
        assert_eq!(s.total_us, 400);
        assert_eq!(s.min_us, 100);
        assert_eq!(s.max_us, 300);
        assert!((s.mean_us() - 200.0).abs() < 1e-9);
        assert_eq!(t.stages["acq_opt"].calls, 1);
    }

    #[test]
    fn decision_table_counts_high_picks() {
        let mut t = RunTelemetry::default();
        for (i, high) in [false, true, false, true, true].iter().enumerate() {
            t.record_decision(FidelityDecision {
                iteration: i,
                max_low_variance: 0.01 * (i + 1) as f64,
                threshold: 0.02,
                chose_high: *high,
                forced: i == 3,
                cost_after: i as f64 + 1.0,
            });
        }
        assert_eq!(t.high_count(), 3);
        let table = t.decision_table();
        assert!(table.contains("high-fidelity picks: 3/5"), "{table}");
        assert!(table.lines().count() >= 7);
    }

    #[test]
    fn tables_render_without_panicking_when_empty() {
        let t = RunTelemetry::default();
        assert!(t.decision_table().is_empty());
        assert!(t.stage_table().contains("stage"));
    }
}

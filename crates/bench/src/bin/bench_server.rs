//! Generates the `BENCH_server.json` measurements: sustained start→wait
//! throughput of the evaluation service at 100/256/1000 concurrent runs,
//! an interleaved A/B of the sharded + group-commit scheduler against the
//! per-run-actor replica it replaced, a shard-count scaling curve, and a
//! replay audit proving the two arms write byte-identical journals that
//! resume cleanly without a single fresh simulation.
//!
//! Usage: `cargo run --release -p mfbo-bench --bin bench_server > BENCH_server.json`
//!
//! Harness: interleaved A/B sampling (samples of the two compared arms
//! alternate A, B, A, B, ... so container load drift affects both medians
//! equally), median statistic — the same methodology as `BENCH_obs.json` /
//! `BENCH_simd.json`. Arm A boots a server with the sharded scheduler and
//! a 1 ms group-commit linger; arm B boots the per-run-actor scheduler
//! with flush-per-append journaling (the pre-sharding service, kept in
//! tree exactly for this comparison). Both arms run the identical
//! seed-distinct journaled workload over the framed JSON socket.

use mfbo::problem::MultiFidelityProblem;
use mfbo::{MfBayesOpt, MfBoConfig, Outcome, RunOptions};
use mfbo_bench::{median, percentile};
use mfbo_circuits::testfns;
use mfbo_runstore::RunStore;
use mfbo_server::{Client, Scheduler, Server, ServerConfig};
use mfbo_telemetry::json::Json;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;
use std::time::{Duration, Instant};

/// Concurrent runs for the headline A/B comparison (the acceptance gate:
/// arm A must sustain ≥2x arm B's start→wait throughput at this level).
const AB_RUNS: usize = 256;
/// Interleaved samples per arm for the headline comparison.
const AB_SAMPLES: usize = 5;
/// Concurrency levels for the throughput/latency sweep (arm A).
const SWEEP: &[usize] = &[100, 256, 1000];
/// Shard counts for the scaling curve (arm A at `AB_RUNS` concurrency).
const SHARD_CURVE: &[usize] = &[1, 2, 4, 8];
/// Shard threads in arm A's headline configuration.
const HEADLINE_SHARDS: usize = 4;
/// Group-commit linger window in arm A's headline configuration (µs).
const LINGER_US: u64 = 1000;
/// Evaluation-pool workers in both arms.
const WORKERS: usize = 2;
/// Run budget: just under the 60x0.1 + 2x1.0 initial-design cost, so every
/// run finishes mid-design after 62 journaled evaluations and never fits a
/// GP — the workload measures the *service* (scheduling, journaling,
/// framing), not the surrogate math, which is identical in both arms.
const BUDGET: f64 = 7.9;
const SEED_BASE: u64 = 1000;

fn config() -> MfBoConfig {
    MfBoConfig {
        initial_low: 60,
        initial_high: 2,
        budget: BUDGET,
        ..MfBoConfig::default()
    }
}

fn arm_a(shards: usize) -> ServerConfig {
    ServerConfig {
        workers: WORKERS,
        queue_depth: 64,
        shards,
        journal_linger: Duration::from_micros(LINGER_US),
        scheduler: Scheduler::Sharded,
    }
}

fn arm_b() -> ServerConfig {
    ServerConfig {
        workers: WORKERS,
        queue_depth: 64,
        shards: HEADLINE_SHARDS, // ignored by the actor scheduler
        journal_linger: Duration::ZERO,
        scheduler: Scheduler::ActorPerRun,
    }
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// One load sample against a freshly booted server.
struct Sample {
    /// Wall-clock seconds from the first start request to the last wait reply.
    secs: f64,
    /// Client-observed latency of each start request (microseconds).
    start_us: Vec<f64>,
    /// Client-observed latency of each wait request (microseconds).
    wait_us: Vec<f64>,
}

fn start_req(tag: &str, i: usize, journal_root: &Path) -> Json {
    let dir = journal_root.join(format!("{tag}-r{i}"));
    obj(vec![
        ("op", Json::Str("start".into())),
        ("run", Json::Str(format!("{tag}-r{i}"))),
        ("problem", Json::Str("forrester".into())),
        ("seed", Json::Num((SEED_BASE + i as u64) as f64)),
        ("budget", Json::Num(BUDGET)),
        ("init_low", Json::Num(60.0)),
        ("init_high", Json::Num(2.0)),
        ("journal", Json::Str(dir.to_string_lossy().into_owned())),
    ])
}

fn wait_req(tag: &str, i: usize) -> Json {
    obj(vec![
        ("op", Json::Str("wait".into())),
        ("run", Json::Str(format!("{tag}-r{i}"))),
    ])
}

/// Boots a server with `config` and runs the pipelined load: all `runs`
/// start requests written back to back, then all replies read, then the
/// same for waits. One connection, no per-request round-trip stalls —
/// this measures the server's sustained processing rate, which is what
/// the two schedulers differ in. Returns wall seconds and the
/// `(best_objective, total_cost)` outcomes from the wait replies.
fn pipelined_sample(
    config: ServerConfig,
    tag: &str,
    runs: usize,
    journal_root: &Path,
) -> (f64, Vec<(f64, f64)>) {
    use std::io::{BufRead, BufReader, BufWriter, Write};
    let server = Server::bind("127.0.0.1:0", config).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    std::thread::spawn(move || server.run().unwrap());
    let stream = std::net::TcpStream::connect(&addr).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut w = BufWriter::new(stream.try_clone().unwrap());
    let mut r = BufReader::new(stream);

    let mut line = String::new();
    let read_reply = |r: &mut BufReader<std::net::TcpStream>, line: &mut String| -> Json {
        line.clear();
        r.read_line(line).unwrap();
        assert!(!line.is_empty(), "server closed the connection");
        let reply = mfbo_telemetry::json::parse(line).unwrap();
        assert_eq!(
            reply.get("ok").and_then(Json::as_bool),
            Some(true),
            "request failed: {reply}"
        );
        reply
    };

    let t = Instant::now();
    for i in 0..runs {
        writeln!(w, "{}", start_req(tag, i, journal_root)).unwrap();
    }
    w.flush().unwrap();
    for _ in 0..runs {
        read_reply(&mut r, &mut line);
    }
    for i in 0..runs {
        writeln!(w, "{}", wait_req(tag, i)).unwrap();
    }
    w.flush().unwrap();
    let mut outcomes = Vec::with_capacity(runs);
    for i in 0..runs {
        let reply = read_reply(&mut r, &mut line);
        let state = reply.get("state").and_then(Json::as_str).unwrap_or("?");
        assert_eq!(state, "done", "{tag}-r{i} did not finish: {reply}");
        outcomes.push((
            reply
                .get("best_objective")
                .and_then(Json::as_f64)
                .expect("done reply carries best_objective"),
            reply
                .get("total_cost")
                .and_then(Json::as_f64)
                .expect("done reply carries total_cost"),
        ));
    }
    let secs = t.elapsed().as_secs_f64();
    writeln!(w, "{}", obj(vec![("op", Json::Str("shutdown".into()))])).unwrap();
    w.flush().unwrap();
    read_reply(&mut r, &mut line);
    (secs, outcomes)
}

/// Boots a server with `config`, starts `runs` journaled runs back to
/// back in strict request/reply (measuring each request's client-observed
/// latency), waits for all of them in start order, then shuts the server
/// down.
fn load_sample(config: ServerConfig, tag: &str, runs: usize, journal_root: &Path) -> Sample {
    let server = Server::bind("127.0.0.1:0", config).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    std::thread::spawn(move || server.run().unwrap());
    let mut client = Client::connect(&addr).unwrap();

    let mut start_us = Vec::with_capacity(runs);
    let mut wait_us = Vec::with_capacity(runs);
    let t = Instant::now();
    for i in 0..runs {
        let t0 = Instant::now();
        client.expect_ok(&start_req(tag, i, journal_root)).unwrap();
        start_us.push(t0.elapsed().as_secs_f64() * 1e6);
    }
    for i in 0..runs {
        let t0 = Instant::now();
        let reply = client.expect_ok(&wait_req(tag, i)).unwrap();
        wait_us.push(t0.elapsed().as_secs_f64() * 1e6);
        let state = reply.get("state").and_then(Json::as_str).unwrap_or("?");
        assert_eq!(state, "done", "{tag}-r{i} did not finish: {reply}");
    }
    let secs = t.elapsed().as_secs_f64();
    client
        .expect_ok(&obj(vec![("op", Json::Str("shutdown".into()))]))
        .unwrap();
    Sample {
        secs,
        start_us,
        wait_us,
    }
}

fn journal_bytes(journal_root: &Path, tag: &str, i: usize) -> Vec<u8> {
    let path = journal_root
        .join(format!("{tag}-r{i}"))
        .join("journal.jsonl");
    std::fs::read(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn in_process_run(problem: &dyn MultiFidelityProblem, seed: u64, opts: &mut RunOptions) -> Outcome {
    let mut rng = StdRng::seed_from_u64(seed);
    MfBayesOpt::new(config())
        .run_with(problem, &mut rng, opts)
        .unwrap()
}

/// Replays every journal arm A's first sample wrote: a resumed run must
/// complete without a single fresh simulation and land bit-identically on
/// the outcome the server reported over the wire for the same run.
fn audit_replays(problem: &dyn MultiFidelityProblem, journal_root: &Path, want: &[(f64, f64)]) {
    for (i, &(want_obj, want_cost)) in want.iter().enumerate() {
        let dir = journal_root.join(format!("a0-r{i}"));
        let store = RunStore::open(&dir).unwrap();
        let mut opts = RunOptions::resuming(store);
        let got = in_process_run(problem, SEED_BASE + i as u64, &mut opts);
        assert_eq!(
            got.eval_stats.fresh, 0,
            "journal a0-r{i} required fresh evaluations on replay"
        );
        assert!(
            got.eval_stats.replayed > 0,
            "journal a0-r{i} replayed nothing"
        );
        assert_eq!(
            got.best_objective.to_bits(),
            want_obj.to_bits(),
            "journal a0-r{i} replay diverged from the served outcome"
        );
        assert_eq!(
            got.total_cost.to_bits(),
            want_cost.to_bits(),
            "journal a0-r{i} replay cost diverged"
        );
    }
}

fn secs_arr(secs: &[f64]) -> Json {
    Json::Arr(
        secs.iter()
            .map(|&s| Json::Num((s * 1e3).round() / 1e3))
            .collect(),
    )
}

/// `(start_p50_us, start_p99_us, wait_p50_ms, wait_p99_ms)` for one sample.
fn lat_fields(s: &Sample) -> (f64, f64, f64, f64) {
    (
        percentile(s.start_us.clone(), 0.50),
        percentile(s.start_us.clone(), 0.99),
        percentile(s.wait_us.clone(), 0.50) / 1e3,
        percentile(s.wait_us.clone(), 0.99) / 1e3,
    )
}

fn main() {
    let journal_root = std::env::temp_dir().join(format!("bench-server-{}", std::process::id()));
    std::fs::create_dir_all(&journal_root).unwrap();
    let problem = testfns::forrester();

    // Headline interleaved A/B at AB_RUNS concurrent runs: arm A (sharded
    // scheduler + 1 ms group commit) alternating with arm B (one actor
    // thread per run + flush-per-append), so drift in the shared container
    // hits both medians equally. Pipelined I/O: the sample time is the
    // server's sustained processing rate, not 2xAB_RUNS client round trips.
    let mut a_secs: Vec<f64> = Vec::with_capacity(AB_SAMPLES);
    let mut b_secs: Vec<f64> = Vec::with_capacity(AB_SAMPLES);
    let mut a_outcomes: Vec<(f64, f64)> = Vec::new();
    let mut b_outcomes: Vec<(f64, f64)> = Vec::new();
    // One discarded warm-up pair: the first server boot pays one-off costs
    // (binary page-in, directory creation, allocator growth) that would
    // otherwise land entirely on whichever arm runs first.
    eprintln!("ab warm-up pair (discarded)");
    pipelined_sample(arm_a(HEADLINE_SHARDS), "wa", AB_RUNS, &journal_root);
    pipelined_sample(arm_b(), "wb", AB_RUNS, &journal_root);
    for s in 0..AB_SAMPLES {
        eprintln!("ab sample {s}: arm A (sharded + group commit)");
        let (secs, outcomes) = pipelined_sample(
            arm_a(HEADLINE_SHARDS),
            &format!("a{s}"),
            AB_RUNS,
            &journal_root,
        );
        a_secs.push(secs);
        if s == 0 {
            a_outcomes = outcomes;
        }
        eprintln!("ab sample {s}: arm B (actor per run)");
        let (secs, outcomes) = pipelined_sample(arm_b(), &format!("b{s}"), AB_RUNS, &journal_root);
        b_secs.push(secs);
        if s == 0 {
            b_outcomes = outcomes;
        }
    }

    // The two schedulers must be observationally identical: same outcomes
    // over the wire, byte-identical write-ahead journals on disk.
    let mut identical_journals = 0usize;
    for i in 0..AB_RUNS {
        assert_eq!(
            a_outcomes[i].0.to_bits(),
            b_outcomes[i].0.to_bits(),
            "run {i}: arms reported different best_objective"
        );
        assert_eq!(
            journal_bytes(&journal_root, "a0", i),
            journal_bytes(&journal_root, "b0", i),
            "run {i}: sharded+group-commit journal differs from actor journal"
        );
        identical_journals += 1;
    }

    audit_replays(&problem, &journal_root, &a_outcomes);

    // Concurrency sweep on arm A: runs/sec and client-side request latency
    // quantiles at each level (one sample each; the curve's shape, not its
    // absolute height, is the point).
    let sweep: Vec<(usize, Sample)> = SWEEP
        .iter()
        .map(|&n| {
            eprintln!("sweep: {n} concurrent runs (arm A)");
            (
                n,
                load_sample(arm_a(HEADLINE_SHARDS), &format!("c{n}"), n, &journal_root),
            )
        })
        .collect();

    // Shard-count scaling at AB_RUNS concurrency.
    let curve: Vec<(usize, Sample)> = SHARD_CURVE
        .iter()
        .map(|&k| {
            eprintln!("shard curve: {k} shard(s)");
            (
                k,
                load_sample(arm_a(k), &format!("s{k}"), AB_RUNS, &journal_root),
            )
        })
        .collect();

    let _ = std::fs::remove_dir_all(&journal_root);

    let a_med = median(a_secs.clone());
    let b_med = median(b_secs.clone());
    let a_rps = AB_RUNS as f64 / a_med;
    let b_rps = AB_RUNS as f64 / b_med;

    let sweep_rows: Vec<String> = sweep
        .iter()
        .map(|(n, s)| {
            let (s50, s99, w50, w99) = lat_fields(s);
            format!(
                "{{\"concurrent_runs\": {n}, \"wall_s\": {:.3}, \"runs_per_s\": {:.2}, \"start_p50_us\": {s50:.1}, \"start_p99_us\": {s99:.1}, \"wait_p50_ms\": {w50:.2}, \"wait_p99_ms\": {w99:.2}}}",
                s.secs,
                *n as f64 / s.secs,
            )
        })
        .collect();
    let curve_rows: Vec<String> = curve
        .iter()
        .map(|(k, s)| {
            format!(
                "{{\"shards\": {k}, \"wall_s\": {:.3}, \"runs_per_s\": {:.2}}}",
                s.secs,
                AB_RUNS as f64 / s.secs,
            )
        })
        .collect();

    println!(
        r#"{{
  "description": "Evaluation-service throughput: {AB_RUNS} concurrent named runs (Forrester, seed-distinct, budget {BUDGET} so each run performs exactly its 62 journaled initial-design evaluations and never fits a GP — a pure service workload) started and awaited over the framed JSON socket. Arm A is the sharded scheduler ({HEADLINE_SHARDS} shard threads multiplexing all runs) with leader-based group-commit journaling ({LINGER_US} µs linger for fire-and-forget appends); arm B is the per-run-actor scheduler (one thread per run) with flush-per-append journaling — the pre-sharding service, kept in tree as the A/B baseline. The arms must be observationally identical: sample-0 wait replies bit-equal, all {AB_RUNS} write-ahead journals byte-identical across arms, and every arm-A journal replays (resume: true) with zero fresh simulations, landing bit-identically on the served outcome.",
  "methodology": {{
    "harness": "interleaved A/B sampling: samples of the two compared arms alternate (A, B, A, B, ...) so container load drift affects both medians equally; one discarded warm-up pair precedes the measured samples; each sample boots a fresh server and drives it over one pipelined connection (start x{AB_RUNS} written back to back, then all replies read, then the same for waits), so the sample time is the server's sustained processing rate rather than 2x{AB_RUNS} client round trips",
    "samples_per_arm": {AB_SAMPLES},
    "statistic": "median wall-clock seconds first start -> last wait; latency quantiles are nearest-rank over one sample's client-observed per-request times",
    "workload": "{AB_RUNS} runs per sample, each journaling 62 initial-design evaluations (init_low 60, init_high 2) and finishing on budget before any GP fit; both arms: {WORKERS} pool workers, queue depth 64, every run journaled with the write-ahead barrier on",
    "build": "cargo --release, default codegen settings",
    "date": "2026-08-08",
    "caveats": [
      "Measured in a shared 1-CPU container; absolute times carry +/-40% run-to-run drift. The interleaved harness keeps the A/B ratio stable; on multi-core hosts both arms also scale with the worker count.",
      "The arm-A speedup on one CPU comes from scheduling and durability overheads, not parallelism: {AB_RUNS} actor threads contend for one core and each journal append pays its own flush, while arm A drives all runs from {HEADLINE_SHARDS} shard threads and coalesces every append queued across shards into one vectored write per barrier, committed by the syncing shard itself (leader-based group commit) — a write-ahead barrier costs one writev, never a timer wait or a flusher-thread round trip.",
      "wait_p50/p99 measure completion spread, not service overhead: wait blocks until the run finishes, so the first wait absorbs most of the workload's wall time and later waits return near-instantly.",
      "TCP_NODELAY on both ends of the connection is load-bearing: with Nagle left on, delayed ACKs add ~40 ms to every request/reply round trip on a persistent connection, and an earlier version of this workload measured 17x slower end to end.",
      "Reproduce with: cargo run --release -p mfbo-bench --bin bench_server > BENCH_server.json"
    ]
  }},
  "acceptance": {{
    "concurrent_runs": {AB_RUNS},
    "speedup_required_min": 2.0,
    "speedup_measured": {speedup:.2},
    "journals_byte_identical_across_arms": {identical_journals},
    "journals_replayed_cleanly": {AB_RUNS},
    "replay_divergences": 0
  }},
  "results": {{
    "ab_throughput": {{
      "what": "median wall-clock seconds to start and finish all {AB_RUNS} runs over one pipelined connection, and derived runs/second",
      "rows": [
        {{"case": "sharded_group_commit", "median_s": {a_med:.3}, "runs_per_s": {a_rps:.2}, "samples_s": {a_arr}}},
        {{"case": "actor_per_run", "median_s": {b_med:.3}, "runs_per_s": {b_rps:.2}, "samples_s": {b_arr}}}
      ],
      "sharded_over_actor_speedup": {speedup:.4}
    }},
    "concurrency_sweep": {{
      "what": "arm A at increasing concurrent-run counts (one sample each)",
      "rows": [
        {sweep_rows}
      ]
    }},
    "shard_scaling": {{
      "what": "arm A at {AB_RUNS} concurrent runs with increasing shard-thread counts (one sample each)",
      "rows": [
        {curve_rows}
      ]
    }}
  }}
}}"#,
        speedup = b_med / a_med,
        a_arr = secs_arr(&a_secs),
        b_arr = secs_arr(&b_secs),
        sweep_rows = sweep_rows.join(",\n        "),
        curve_rows = curve_rows.join(",\n        "),
    );
}

//! Generates the `BENCH_server.json` measurements: wall-clock throughput of
//! the evaluation service under a ≥100-concurrent-run load versus the same
//! workload run sequentially in process, plus a replay audit proving every
//! journal the load test wrote resumes cleanly and bit-identically.
//!
//! Usage: `cargo run --release -p mfbo-bench --bin bench_server > BENCH_server.json`
//!
//! Harness: interleaved A/B sampling (samples of the two compared rows
//! alternate A, B, A, B, ... so container load drift affects both medians
//! equally), median statistic — the same methodology as `BENCH_obs.json` /
//! `BENCH_simd.json`. Row A starts all runs over the wire against one
//! server process and waits for every one; row B runs the identical
//! seed/config workload one run at a time via the in-process `run_with`
//! loop (no sockets, no threads).

use mfbo::problem::MultiFidelityProblem;
use mfbo::{MfBayesOpt, MfBoConfig, Outcome, RunOptions};
use mfbo_circuits::testfns;
use mfbo_runstore::RunStore;
use mfbo_server::{Client, Server, ServerConfig};
use mfbo_telemetry::json::Json;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;
use std::time::Instant;

const RUNS: usize = 100;
const SAMPLES: usize = 5;
const WORKERS: usize = 4;
const BUDGET: f64 = 3.0;
const SEED_BASE: u64 = 1000;

use mfbo_bench::median;

fn config() -> MfBoConfig {
    MfBoConfig {
        initial_low: 4,
        initial_high: 2,
        budget: BUDGET,
        ..MfBoConfig::default()
    }
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// One server-side load sample: start `RUNS` journaled runs back to back,
/// then wait for all of them. Returns elapsed seconds.
fn server_sample(client: &mut Client, tag: &str, journal_root: &Path) -> f64 {
    let t = Instant::now();
    for i in 0..RUNS {
        let dir = journal_root.join(format!("{tag}-r{i}"));
        client
            .expect_ok(&obj(vec![
                ("op", Json::Str("start".into())),
                ("run", Json::Str(format!("{tag}-r{i}"))),
                ("problem", Json::Str("forrester".into())),
                ("seed", Json::Num((SEED_BASE + i as u64) as f64)),
                ("budget", Json::Num(BUDGET)),
                ("init_low", Json::Num(4.0)),
                ("init_high", Json::Num(2.0)),
                ("journal", Json::Str(dir.to_string_lossy().into_owned())),
            ]))
            .unwrap();
    }
    for i in 0..RUNS {
        let reply = client
            .expect_ok(&obj(vec![
                ("op", Json::Str("wait".into())),
                ("run", Json::Str(format!("{tag}-r{i}"))),
            ]))
            .unwrap();
        let state = reply.get("state").and_then(Json::as_str).unwrap_or("?");
        assert_eq!(state, "done", "{tag}-r{i} did not finish: {reply}");
    }
    t.elapsed().as_secs_f64()
}

fn in_process_run(problem: &dyn MultiFidelityProblem, seed: u64, opts: &mut RunOptions) -> Outcome {
    let mut rng = StdRng::seed_from_u64(seed);
    MfBayesOpt::new(config())
        .run_with(problem, &mut rng, opts)
        .unwrap()
}

/// One sequential baseline sample: the identical workload, one run at a
/// time in process. Returns (elapsed seconds, outcomes by run index).
fn sequential_sample(problem: &dyn MultiFidelityProblem) -> (f64, Vec<Outcome>) {
    let t = Instant::now();
    let outcomes: Vec<Outcome> = (0..RUNS)
        .map(|i| in_process_run(problem, SEED_BASE + i as u64, &mut RunOptions::default()))
        .collect();
    (t.elapsed().as_secs_f64(), outcomes)
}

/// Replays every journal the first load sample wrote: a resumed run must
/// complete without a single fresh simulation and land bit-identically on
/// the sequential baseline's outcome for the same seed.
fn audit_replays(problem: &dyn MultiFidelityProblem, journal_root: &Path, want: &[Outcome]) {
    for (i, want) in want.iter().enumerate() {
        let dir = journal_root.join(format!("a0-r{i}"));
        let store = RunStore::open(&dir).unwrap();
        let mut opts = RunOptions::resuming(store);
        let got = in_process_run(problem, SEED_BASE + i as u64, &mut opts);
        assert_eq!(
            got.eval_stats.fresh, 0,
            "journal a0-r{i} required fresh evaluations on replay"
        );
        assert!(
            got.eval_stats.replayed > 0,
            "journal a0-r{i} replayed nothing"
        );
        assert_eq!(
            got.best_objective.to_bits(),
            want.best_objective.to_bits(),
            "journal a0-r{i} replay diverged from the sequential reference"
        );
        assert_eq!(
            got.total_cost.to_bits(),
            want.total_cost.to_bits(),
            "journal a0-r{i} replay cost diverged"
        );
    }
}

fn main() {
    let journal_root = std::env::temp_dir().join(format!("bench-server-{}", std::process::id()));
    std::fs::create_dir_all(&journal_root).unwrap();

    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers: WORKERS,
            queue_depth: 64,
        },
    )
    .unwrap();
    let addr = server.local_addr().unwrap().to_string();
    std::thread::spawn(move || server.run().unwrap());
    let mut client = Client::connect(&addr).unwrap();
    let problem = testfns::forrester();

    // Interleaved A/B: server load sample, then the sequential baseline,
    // alternating so drift in the shared container hits both medians.
    let mut server_secs = Vec::with_capacity(SAMPLES);
    let mut seq_secs = Vec::with_capacity(SAMPLES);
    let mut reference: Vec<Outcome> = Vec::new();
    for s in 0..SAMPLES {
        server_secs.push(server_sample(&mut client, &format!("a{s}"), &journal_root));
        let (secs, outcomes) = sequential_sample(&problem);
        seq_secs.push(secs);
        if s == 0 {
            reference = outcomes;
        }
    }

    audit_replays(&problem, &journal_root, &reference);

    client
        .expect_ok(&obj(vec![("op", Json::Str("shutdown".into()))]))
        .unwrap();
    let _ = std::fs::remove_dir_all(&journal_root);

    let server_med = median(server_secs.clone());
    let seq_med = median(seq_secs.clone());
    let server_rps = RUNS as f64 / server_med;
    let seq_rps = RUNS as f64 / seq_med;

    println!(
        r#"{{
  "description": "Evaluation-service load test: {RUNS} concurrent named runs (Forrester, seed-distinct, budget {BUDGET}, journaled) started and awaited over the framed JSON socket against one server process, versus the identical workload executed one run at a time through the in-process run_with loop. After the load samples, every journal from the first server sample is replayed (resume: true) and must complete with zero fresh simulations and bit-identical best_objective/total_cost to the sequential reference.",
  "methodology": {{
    "harness": "interleaved A/B sampling: samples of the two compared rows alternate (A, B, A, B, ...) so container load drift affects both medians equally",
    "samples_per_row": {SAMPLES},
    "statistic": "median",
    "workload": "{RUNS} runs per sample; row A = one server process ({WORKERS} pool workers, queue depth 64, one TCP client issuing start x{RUNS} then wait x{RUNS}), row B = sequential in-process run_with",
    "build": "cargo --release, default codegen settings",
    "date": "2026-08-08",
    "caveats": [
      "Measured in a shared 1-CPU container; absolute times carry +/-40% run-to-run drift and the service cannot show a parallel speedup without real cores. The interleaved harness keeps the ratio stable; on multi-core hosts row A scales with the worker count while row B cannot.",
      "Row A includes everything the service adds: TCP framing, JSON parsing, one actor thread per run, worker-pool dispatch, and write-ahead journaling of every evaluation. Row B journals nothing.",
      "TCP_NODELAY on both ends of the connection is load-bearing: with Nagle left on, delayed ACKs add ~40 ms to every request/reply round trip on a persistent connection, and this same workload measured 17x slower than the sequential baseline instead of ~1.25x.",
      "Reproduce with: cargo run --release -p mfbo-bench --bin bench_server > BENCH_server.json"
    ]
  }},
  "acceptance": {{
    "concurrent_runs_required_min": 100,
    "concurrent_runs_measured": {RUNS},
    "journals_replayed_cleanly": {RUNS},
    "replay_divergences": 0
  }},
  "results": {{
    "throughput": {{
      "what": "median wall-clock seconds to complete all {RUNS} runs, and derived runs/second",
      "rows": [
        {{"case": "server_concurrent", "median_s": {server_med:.3}, "runs_per_s": {server_rps:.2}, "samples_s": {server_samples}}},
        {{"case": "sequential_in_process", "median_s": {seq_med:.3}, "runs_per_s": {seq_rps:.2}, "samples_s": {seq_samples}}}
      ],
      "server_over_sequential_ratio": {ratio:.4}
    }}
  }}
}}"#,
        server_samples = Json::Arr(
            server_secs
                .iter()
                .map(|&s| Json::Num((s * 1e3).round() / 1e3))
                .collect()
        ),
        seq_samples = Json::Arr(
            seq_secs
                .iter()
                .map(|&s| Json::Num((s * 1e3).round() / 1e3))
                .collect()
        ),
        ratio = server_med / seq_med,
    );
}

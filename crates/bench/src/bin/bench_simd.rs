//! Generates the `BENCH_simd.json` measurements: scalar-vs-dispatched A/B
//! medians for the SIMD micro-kernel layer, plus parity rows pinning the
//! restructured scalar fallback against a replica of the pre-SIMD inner
//! loops.
//!
//! Usage: `cargo run --release -p mfbo-bench --bin bench_simd > BENCH_simd.json`
//!
//! Harness: interleaved A/B sampling (samples of the two compared rows
//! alternate A, B, A, B, ... so container load drift affects both medians
//! equally), 21 samples per row, median statistic, iteration counts
//! calibrated to a ~40 ms sample target — the same methodology as
//! `BENCH_linalg.json`.

use mfbo_bench::{ab_median_ns, AB_SAMPLES as SAMPLES, AB_TARGET_SAMPLE_MS as TARGET_SAMPLE_MS};
use mfbo_gp::kernel::{Kernel, SquaredExponential};
use mfbo_gp::{DiffBatch, Gp, GpConfig};
use mfbo_linalg::{Cholesky, Matrix};
use mfbo_simd::Backend;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

/// Training inputs in [0,1]^dim — the `BENCH_linalg.json` data shape
/// (dim = 12, middle of the paper's 10–36 design-variable range).
fn bench_data(n: usize, dim: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..dim)
                .map(|d| ((i * 31 + d * 17) % 97) as f64 / 96.0)
                .collect()
        })
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| (7.0 * x[0]).sin() + x.iter().sum::<f64>())
        .collect();
    (xs, ys)
}

fn spd(n: usize) -> Matrix {
    let b = Matrix::from_fn(n, n, |i, j| ((i * 31 + j * 17) % 13) as f64 / 13.0 - 0.5);
    let mut a = b.matmul(&b.transpose());
    a.add_diag(n as f64);
    a
}

/// Replica of the pre-SIMD blocked factorization (per-column axpy against
/// each finished column, no multi-column fold), including the pack /
/// row-major-materialize steps the real constructor performs around the
/// inner loops: the baseline for the scalar-fallback parity row.
fn legacy_factorize_packed(a: &Matrix) -> (Matrix, Vec<f64>) {
    let n = a.rows();
    let off = |j: usize| j * (2 * n - j + 1) / 2;
    let mut c = vec![0.0; n * (n + 1) / 2];
    for j in 0..n {
        for i in j..n {
            c[off(j) + (i - j)] = a[(i, j)];
        }
    }
    const PANEL: usize = 48;
    let mut pb = 0;
    while pb < n {
        let pe = (pb + PANEL).min(n);
        for j in pb..pe {
            let (head, tail) = c.split_at_mut(off(j));
            let colj = &mut tail[..n - j];
            for k in pb..j {
                let src = off(k) + (j - k);
                let m = head[src];
                for (d, s) in colj.iter_mut().zip(&head[src..src + (n - j)]) {
                    *d -= s * m;
                }
            }
            let dj = colj[0].sqrt();
            colj[0] = dj;
            for v in colj[1..].iter_mut() {
                *v /= dj;
            }
        }
        for j in pe..n {
            let (head, tail) = c.split_at_mut(off(j));
            let colj = &mut tail[..n - j];
            for k in pb..pe {
                let src = off(k) + (j - k);
                let m = head[src];
                for (d, s) in colj.iter_mut().zip(&head[src..src + (n - j)]) {
                    *d -= s * m;
                }
            }
        }
        pb = pe;
    }
    let mut l = Matrix::zeros(n, n);
    for j in 0..n {
        for i in j..n {
            l[(i, j)] = c[off(j) + (i - j)];
        }
    }
    (l, c)
}

/// Replica of the pre-SIMD `predict_batch_standardized` (untiled, one cross
/// workspace for all queries, per-query scalar forward solve) against an
/// externally rebuilt factor and weight vector of the same shapes as the
/// model's internals: the baseline for the scalar-fallback parity row.
fn legacy_predict_batch(
    gp: &Gp<SquaredExponential>,
    chol: &Cholesky,
    alpha: &[f64],
    points: &[Vec<f64>],
) -> Vec<(f64, f64)> {
    let n = gp.xs().len();
    let batch = DiffBatch::cross_with_backend(points, gp.xs(), Backend::Scalar);
    let mut kv = vec![0.0; batch.len()];
    gp.kernel().eval_from_diffs(gp.params(), &batch, &mut kv);
    let diag = DiffBatch::diagonal_with_backend(points, Backend::Scalar);
    let mut kss = vec![0.0; points.len()];
    gp.kernel().eval_from_diffs(gp.params(), &diag, &mut kss);
    let mut v = vec![0.0; n];
    let mut out = Vec::with_capacity(points.len());
    for (kstar, &kss_q) in kv.chunks_exact(n.max(1)).zip(kss.iter()) {
        let mean = mfbo_linalg::dot(kstar, alpha);
        chol.forward_solve_into(kstar, &mut v);
        let var = (kss_q - mfbo_linalg::dot(&v, &v)).max(0.0);
        out.push((mean, var));
    }
    out
}

struct Row {
    n: usize,
    a_ns: f64,
    b_ns: f64,
}

fn rows_json(rows: &[Row], a_name: &str, b_name: &str) -> String {
    rows.iter()
        .map(|r| {
            format!(
                "        {{ \"n\": {}, \"{}\": {}, \"{}\": {}, \"speedup\": {:.2} }}",
                r.n,
                a_name,
                r.a_ns.round() as u64,
                b_name,
                r.b_ns.round() as u64,
                r.a_ns / r.b_ns
            )
        })
        .collect::<Vec<_>>()
        .join(",\n")
}

fn main() {
    let dim = 12;
    let detected = mfbo_simd::detect();
    let sizes = [32usize, 128, 512];
    eprintln!(
        "detected backend: {} ({} lanes)",
        detected.name(),
        detected.lanes()
    );

    // Kernel-matrix build: SE eval_from_diffs over the lower-triangle
    // workspace (the L-BFGS hot loop), scalar vs dispatched.
    let mut kernel_rows = Vec::new();
    for &n in &sizes {
        let (xs, _) = bench_data(n, dim);
        let kernel = SquaredExponential::new(dim);
        let theta = kernel.default_params();
        let scalar_batch = DiffBatch::lower_triangle_with_backend(&xs, Backend::Scalar);
        let simd_batch = DiffBatch::lower_triangle_with_backend(&xs, detected);
        let mut kv_a = vec![0.0; scalar_batch.len()];
        let mut kv_b = vec![0.0; simd_batch.len()];
        let (a, b) = ab_median_ns(
            || kernel.eval_from_diffs(black_box(&theta), black_box(&scalar_batch), &mut kv_a),
            || kernel.eval_from_diffs(black_box(&theta), black_box(&simd_batch), &mut kv_b),
        );
        eprintln!(
            "kernel_matrix_build n={n}: scalar {a:.0} ns, simd {b:.0} ns ({:.2}x)",
            a / b
        );
        kernel_rows.push(Row {
            n,
            a_ns: a,
            b_ns: b,
        });
    }

    // Blocked Cholesky factorization (trailing-update dominated at n=512):
    // scalar fold vs dispatched fold.
    let mut chol_rows = Vec::new();
    for &n in &sizes {
        let a_mat = spd(n);
        let (a, b) = ab_median_ns(
            || {
                black_box(Cholesky::new_with_backend(
                    black_box(&a_mat),
                    Backend::Scalar,
                ))
                .expect("spd");
            },
            || {
                black_box(Cholesky::new_with_backend(black_box(&a_mat), detected)).expect("spd");
            },
        );
        eprintln!(
            "trailing_update n={n}: scalar {a:.0} ns, simd {b:.0} ns ({:.2}x)",
            a / b
        );
        chol_rows.push(Row {
            n,
            a_ns: a,
            b_ns: b,
        });
    }

    // Batched posterior sweep (256 queries): scalar vs dispatched
    // (cache-tiled + interleaved multi-RHS solves in both modes).
    let mut predict_rows = Vec::new();
    let (queries, _) = bench_data(256, dim);
    let mut gps = Vec::new();
    for &n in &sizes {
        let (xs, ys) = bench_data(n, dim);
        let mut rng = StdRng::seed_from_u64(0);
        let gp = Gp::fit(
            SquaredExponential::new(dim),
            xs,
            ys,
            &GpConfig::fast(),
            &mut rng,
        )
        .expect("fit");
        let (a, b) =
            ab_median_ns(
                || {
                    black_box(gp.predict_batch_standardized_with_backend(
                        black_box(&queries),
                        Backend::Scalar,
                    ));
                },
                || {
                    black_box(
                        gp.predict_batch_standardized_with_backend(black_box(&queries), detected),
                    );
                },
            );
        eprintln!(
            "batched_predict n={n}: scalar {a:.0} ns, simd {b:.0} ns ({:.2}x)",
            a / b
        );
        predict_rows.push(Row {
            n,
            a_ns: a,
            b_ns: b,
        });
        gps.push(gp);
    }

    // Parity rows: the restructured scalar fallback against replicas of the
    // pre-SIMD inner loops (acceptance: within 5%).
    let mut parity_rows = Vec::new();
    {
        let n = 512;
        let a_mat = spd(n);
        let (a, b) = ab_median_ns(
            || {
                black_box(legacy_factorize_packed(black_box(&a_mat)));
            },
            || {
                black_box(Cholesky::new_with_backend(
                    black_box(&a_mat),
                    Backend::Scalar,
                ))
                .expect("spd");
            },
        );
        eprintln!(
            "parity cholesky n={n}: legacy {a:.0} ns, scalar-fallback {b:.0} ns ({:.2}x)",
            a / b
        );
        parity_rows.push((format!("cholesky_factorize_n{n}"), a, b));
    }
    {
        let n = 512;
        let gp = &gps[2];
        // Rebuild a factor and weight vector of the model's exact shapes
        // (values are irrelevant to timing; structure is identical to the
        // internals the new path uses).
        let chol = Cholesky::new(&spd(n)).expect("spd");
        let alpha = chol.solve_vec(gp.ys_standardized());
        let (a, b) =
            ab_median_ns(
                || {
                    black_box(legacy_predict_batch(
                        black_box(gp),
                        &chol,
                        &alpha,
                        black_box(&queries),
                    ));
                },
                || {
                    black_box(gp.predict_batch_standardized_with_backend(
                        black_box(&queries),
                        Backend::Scalar,
                    ));
                },
            );
        eprintln!(
            "parity predict n={n}: legacy {a:.0} ns, scalar-fallback {b:.0} ns ({:.2}x)",
            a / b
        );
        parity_rows.push((format!("predict_batch256_n{n}"), a, b));
    }

    let parity_json = parity_rows
        .iter()
        .map(|(name, a, b)| {
            format!(
                "        {{ \"workload\": \"{}\", \"legacy_ns\": {}, \"scalar_fallback_ns\": {}, \"ratio\": {:.3} }}",
                name,
                a.round() as u64,
                b.round() as u64,
                b / a
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");

    let kernel_128 = kernel_rows.iter().find(|r| r.n == 128).unwrap();
    let chol_512 = chol_rows.iter().find(|r| r.n == 512).unwrap();
    println!(
        r#"{{
  "description": "SIMD micro-kernel dispatch A/B: the same workloads under the forced scalar backend (MFBO_SIMD=scalar) and the runtime-detected instruction set (MFBO_SIMD=auto). Every row pair returns bit-identical results (enforced by to_bits differential proptests in crates/simd/tests/properties.rs, crates/linalg/tests/properties.rs, and crates/gp/tests/properties.rs); the rows measure pure dispatch speedup.",
  "methodology": {{
    "harness": "interleaved A/B sampling: samples of the two compared rows alternate (A, B, A, B, ...) so container load drift affects both medians equally",
    "samples_per_row": {SAMPLES},
    "statistic": "median",
    "iterations": "calibrated per row to a ~{TARGET_SAMPLE_MS:.0} ms sample target",
    "build": "cargo --release, default codegen settings",
    "detected_backend": "{backend}",
    "lanes": {lanes},
    "dim": {dim},
    "queries_per_predict_call": 256,
    "date": "2026-08-07",
    "caveats": [
      "Measured in a shared 1-CPU container; absolute times carry +/-40% run-to-run drift. The interleaved harness makes the *ratios* stable to a few percent, but absolute nanoseconds should not be compared across machines or runs.",
      "The scalar rows run the restructured post-PR scalar fallback; the scalar_fallback_parity section pins that fallback against replicas of the pre-PR inner loops (acceptance: within 5%). The SE eval scalar branch is the pre-PR loop verbatim, so it needs no parity row.",
      "Reproduce with: cargo run --release -p mfbo-bench --bin bench_simd > BENCH_simd.json (criterion group simd_kernels in crates/bench/benches/micro.rs covers the same shapes)."
    ]
  }},
  "acceptance": {{
    "kernel_matrix_build_n128_required_speedup": 1.5,
    "kernel_matrix_build_n128_measured_speedup": {k128:.2},
    "trailing_update_n512_required_speedup": 1.5,
    "trailing_update_n512_measured_speedup": {c512:.2},
    "scalar_fallback_parity_required": "within 5% of pre-PR baseline"
  }},
  "results": {{
    "kernel_matrix_build": {{
      "what": "one SE eval_from_diffs sweep over the n(n+1)/2-pair lower-triangle DiffBatch (the L-BFGS inner loop's kernel-matrix assembly). scalar = portable fallback; simd = sq_norm micro-kernel across pairs on the dim-major difference rows, scalar exp finish",
      "rows": [
{kernel_rows}
      ]
    }},
    "trailing_update": {{
      "what": "blocked Cholesky factorization of an SPD n x n matrix, dominated by the panel trailing update at large n. scalar = per-element multi-column fold; simd = fold_cols micro-kernel (destination block held in registers across the panel's columns)",
      "rows": [
{chol_rows}
      ]
    }},
    "batched_predict": {{
      "what": "256-point standardized posterior sweep through predict_batch_standardized_with_backend (cache-tiled in both modes). scalar = per-query forward solve; simd = lane-interleaved multi-RHS forward solves + sq_norm kernel rows",
      "rows": [
{predict_rows}
      ]
    }},
    "scalar_fallback_parity": {{
      "what": "the restructured scalar fallback vs a replica of the pre-SIMD inner loops (per-column axpy factorization; untiled per-query predict). ratio = scalar_fallback/legacy; acceptance <= 1.05",
      "rows": [
{parity_json}
      ]
    }}
  }}
}}"#,
        backend = detected.name(),
        lanes = detected.lanes(),
        k128 = kernel_128.a_ns / kernel_128.b_ns,
        c512 = chol_512.a_ns / chol_512.b_ns,
        kernel_rows = rows_json(&kernel_rows, "scalar_ns", "simd_ns"),
        chol_rows = rows_json(&chol_rows, "scalar_ns", "simd_ns"),
        predict_rows = rows_json(&predict_rows, "scalar_ns", "simd_ns"),
    );
}

//! Generates the `BENCH_obs.json` measurements: the hot-loop cost of the
//! deterministic metrics registry versus a `NullSink`, on the instrumented
//! path that matters (a GP fit, which emits a `gp_fit` debug event plus a
//! counter per NLML evaluation) and on a raw record-emission microloop.
//!
//! Usage: `cargo run --release -p mfbo-bench --bin bench_obs > BENCH_obs.json`
//!
//! Harness: interleaved A/B sampling (samples of the two compared rows
//! alternate A, B, A, B, ... so container load drift affects both medians
//! equally), 21 samples per row, median statistic, iteration counts
//! calibrated to a ~40 ms sample target — the same methodology as
//! `BENCH_simd.json` / `BENCH_linalg.json`.

use mfbo_gp::kernel::SquaredExponential;
use mfbo_gp::{Gp, GpConfig};
use mfbo_telemetry::metrics::MetricsRegistry;
use mfbo_telemetry::sinks::NullSink;
use mfbo_telemetry::{scoped_sink, Level};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::sync::Arc;

use mfbo_bench::{ab_median_ns, AB_SAMPLES as SAMPLES, AB_TARGET_SAMPLE_MS as TARGET_SAMPLE_MS};

/// Training data matching the `telemetry_overhead` criterion group.
fn gp_training_data(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect();
    let ys: Vec<f64> = xs.iter().map(|x| (6.0 * x[0]).sin() + x[0]).collect();
    (xs, ys)
}

fn fit(xs: &[Vec<f64>], ys: &[f64]) {
    let mut rng = StdRng::seed_from_u64(0);
    black_box(
        Gp::fit(
            SquaredExponential::new(1),
            xs.to_vec(),
            ys.to_vec(),
            &GpConfig::fast(),
            &mut rng,
        )
        .expect("fit"),
    );
}

fn main() {
    let (xs, ys) = gp_training_data(50);

    // The macro row: a full instrumented GP fit (per-NLML-eval counters, a
    // gp_fit debug event, possible cholesky_jitter events) with the registry
    // folding every record vs the NullSink discarding them at the same level.
    let (null_fit_ns, reg_fit_ns) = ab_median_ns(
        || {
            let _g = scoped_sink(Arc::new(NullSink::with_level(Level::Debug)));
            fit(&xs, &ys);
        },
        || {
            let _g = scoped_sink(Arc::new(MetricsRegistry::new()));
            fit(&xs, &ys);
        },
    );

    // The micro row: raw per-record cost (one counter + one debug event with
    // mixed field types per iteration), isolating the registry's fold from
    // any real work around it.
    let (null_emit_ns, reg_emit_ns) = ab_median_ns(
        || {
            let _g = scoped_sink(Arc::new(NullSink::with_level(Level::Debug)));
            for i in 0..64u64 {
                mfbo_telemetry::counter!("bench_counter", 1);
                mfbo_telemetry::debug_event!(
                    "bench_event",
                    value = black_box(i as f64) * 1.5,
                    flag = i % 2 == 0
                );
            }
        },
        || {
            let _g = scoped_sink(Arc::new(MetricsRegistry::new()));
            for i in 0..64u64 {
                mfbo_telemetry::counter!("bench_counter", 1);
                mfbo_telemetry::debug_event!(
                    "bench_event",
                    value = black_box(i as f64) * 1.5,
                    flag = i % 2 == 0
                );
            }
        },
    );

    let fit_ratio = reg_fit_ns / null_fit_ns;
    let emit_per_record_ns = (reg_emit_ns - null_emit_ns) / 128.0;

    println!(
        r#"{{
  "description": "Metrics-registry overhead on instrumented hot paths: a scoped MetricsRegistry (folding every counter/event/span into histograms and counters under a mutex) vs a NullSink at the same Debug level (discarding records after the level gate). The acceptance bar for the observability layer is the registry within 2% of the NullSink on the GP-fit row.",
  "methodology": {{
    "harness": "interleaved A/B sampling: samples of the two compared rows alternate (A, B, A, B, ...) so container load drift affects both medians equally",
    "samples_per_row": {SAMPLES},
    "statistic": "median",
    "iterations": "calibrated per row to a ~{TARGET_SAMPLE_MS:.0} ms sample target",
    "build": "cargo --release, default codegen settings",
    "date": "2026-08-08",
    "caveats": [
      "Measured in a shared 1-CPU container; absolute times carry +/-40% run-to-run drift. The interleaved harness makes the *ratios* stable to a few percent, but absolute nanoseconds should not be compared across machines or runs.",
      "The GP-fit row (n=50, GpConfig::fast) emits ~300 counter records and one gp_fit event per fit — the realistic record rate of the BO hot loop. The emission microloop row isolates the per-record fold cost.",
      "Reproduce with: cargo run --release -p mfbo-bench --bin bench_obs > BENCH_obs.json"
    ]
  }},
  "acceptance": {{
    "metrics_overhead_required_max_ratio": 1.02,
    "metrics_overhead_measured_ratio": {fit_ratio:.4}
  }},
  "results": {{
    "metrics_overhead": {{
      "what": "one instrumented GP fit (SE kernel, n=50, multi-start NLML optimization) under a scoped sink. null_sink = NullSink at Debug; metrics_registry = MetricsRegistry folding every record",
      "rows": [
        {{"case": "gp_fit_n50", "null_sink_ns": {null_fit_ns:.0}, "metrics_registry_ns": {reg_fit_ns:.0}, "ratio": {fit_ratio:.4}}}
      ]
    }},
    "record_fold_cost": {{
      "what": "64 counter! + 64 debug_event! emissions per iteration; the difference divided by 128 approximates the registry's per-record fold cost over the NullSink floor",
      "rows": [
        {{"case": "emit_128_records", "null_sink_ns": {null_emit_ns:.0}, "metrics_registry_ns": {reg_emit_ns:.0}, "per_record_fold_ns": {emit_per_record_ns:.1}}}
      ]
    }}
  }}
}}"#
    );
}

//! Generates the `BENCH_infer.json` measurements: frozen-hyperparameter
//! fit + 256-query predict under the three GP inference engines (exact
//! Cholesky, iterative CG, subset-of-data) across training-set sizes up to
//! 5120 observations.
//!
//! Usage: `cargo run --release -p mfbo-bench --bin bench_infer > BENCH_infer.json`
//! (`MFBO_BENCH_SCALE=quick` restricts to the small sizes for smoke runs.)
//!
//! Harness: interleaved A/B/C sampling — one sample of each engine in
//! round-robin so container load drift affects all medians equally, median
//! statistic, one fit+predict per sample (a 4096-point exact factorization
//! is its own multi-second sample; calibrated inner loops would be noise).
//! Hyperparameters are frozen (`with_params_inference`) so the rows compare
//! pure inference cost, not the L-BFGS restart schedule.

use mfbo_bench::median;
use mfbo_gp::kernel::SquaredExponential;
use mfbo_gp::{Gp, InferenceMode};
use mfbo_pool::Parallelism;
use std::hint::black_box;
use std::time::Instant;

const DIM: usize = 12;
const QUERIES: usize = 256;

/// Training inputs in [0,1]^DIM — the `BENCH_simd.json` data shape
/// (dim = 12, middle of the paper's 10–36 design-variable range).
fn bench_data(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..DIM)
                .map(|d| ((i * 31 + d * 17) % 97) as f64 / 96.0)
                .collect()
        })
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| (7.0 * x[0]).sin() + x.iter().sum::<f64>())
        .collect();
    (xs, ys)
}

fn queries() -> Vec<Vec<f64>> {
    (0..QUERIES)
        .map(|i| {
            (0..DIM)
                .map(|d| ((i * 13 + d * 29 + 5) % 89) as f64 / 88.0)
                .collect()
        })
        .collect()
}

/// One timed fit + 256-query predict under `mode`; returns nanoseconds.
fn fit_predict_ns(xs: &[Vec<f64>], ys: &[f64], qs: &[Vec<f64>], mode: InferenceMode) -> f64 {
    let mut params = vec![0.0];
    params.extend(std::iter::repeat_n(-0.5, DIM));
    let t = Instant::now();
    let gp = Gp::with_params_inference(
        SquaredExponential::new(DIM),
        xs.to_vec(),
        ys.to_vec(),
        params,
        -3.0,
        true,
        mode,
        Parallelism::Serial,
    )
    .unwrap();
    black_box(gp.predict_batch(qs));
    t.elapsed().as_nanos() as f64
}

struct Row {
    n: usize,
    exact_ns: Option<f64>,
    iterative_ns: f64,
    subset_ns: f64,
}

fn main() {
    let scale = std::env::var("MFBO_BENCH_SCALE").unwrap_or_default();
    // Exact is the O(n^3) baseline; it is skipped above 4096 where the
    // acceptance only asks for the approximate engines ("5k fit+predict").
    // "quick" keeps everything below the subset cap (a smoke of the
    // harness itself); "large-smoke" is the CI time-budget check: one
    // n=2048 fit+predict under each approximate engine, no exact baseline.
    let sizes: &[(usize, bool, usize)] = match scale.as_str() {
        "quick" => &[(256, true, 5), (512, true, 5)],
        "large-smoke" => &[(2048, false, 1)],
        _ => &[
            (512, true, 9),
            (1024, true, 7),
            (2048, true, 5),
            (4096, true, 3),
            (5120, false, 3),
        ],
    };
    let qs = queries();
    let mut rows = Vec::new();
    for &(n, with_exact, samples) in sizes {
        let (xs, ys) = bench_data(n);
        let mut se = Vec::new();
        let mut si = Vec::new();
        let mut ss = Vec::new();
        for _ in 0..samples {
            if with_exact {
                se.push(fit_predict_ns(&xs, &ys, &qs, InferenceMode::Exact));
            }
            si.push(fit_predict_ns(&xs, &ys, &qs, InferenceMode::iterative()));
            ss.push(fit_predict_ns(
                &xs,
                &ys,
                &qs,
                InferenceMode::subset_of_data(),
            ));
        }
        rows.push(Row {
            n,
            exact_ns: with_exact.then(|| median(se.clone())),
            iterative_ns: median(si),
            subset_ns: median(ss),
        });
        eprintln!("n={n} done");
    }

    let speedup = |exact: Option<f64>, approx: f64| -> String {
        match exact {
            Some(e) => format!("{:.2}", e / approx),
            None => "null".into(),
        }
    };
    let at_4096 = rows.iter().find(|r| r.n == 4096);
    let best_speedup_4096 = at_4096
        .and_then(|r| r.exact_ns.map(|e| e / r.iterative_ns.min(r.subset_ns)))
        .unwrap_or(f64::NAN);

    println!("{{");
    println!("  \"description\": \"GP inference engine A/B/C: frozen-hyperparameter fit plus a 256-query predict_batch under the exact Cholesky path, the iterative CG engine (subset 1024, rank-capped preconditioned solve over the full data), and subset-of-data (farthest-point cap 1024). The exact rows are the differential oracle the approximate engines are property-tested against (crates/gp/tests/properties.rs); these rows measure the cost they save.\",");
    println!("  \"methodology\": {{");
    println!("    \"harness\": \"interleaved A/B/C sampling: one sample of each engine in round-robin so container load drift affects all medians equally\",");
    println!("    \"statistic\": \"median\",");
    println!("    \"samples_per_row\": \"9 at n=512 down to 3 at n>=4096 (one fit is its own multi-second sample at the top sizes)\",");
    println!("    \"build\": \"cargo --release, default codegen settings\",");
    println!("    \"dim\": {DIM},");
    println!("    \"queries_per_predict_call\": {QUERIES},");
    println!("    \"hyperparameters\": \"frozen via with_params_inference (log-amplitude 0, log-lengthscales -0.5, log-noise -3); no L-BFGS so rows compare pure inference cost\",");
    println!("    \"date\": \"2026-08-08\",");
    println!("    \"caveats\": [");
    println!("      \"Measured in a shared 1-CPU container; absolute times carry +/-40% run-to-run drift. The interleaved harness makes the *ratios* stable to a few percent, but absolute nanoseconds should not be compared across machines or runs.\",");
    println!("      \"The iterative engine's cost is dominated by the matrix-free CG matvecs (O(iters * n^2) kernel evaluations); on problems where CG converges in few iterations it lands well under exact, and it always preserves the full-data posterior mean to the CG tolerance. Subset-of-data trades accuracy for a hard O(cap^3) ceiling and dominates the speedup column.\",");
    println!("      \"Reproduce with: cargo run --release -p mfbo-bench --bin bench_infer > BENCH_infer.json (MFBO_BENCH_SCALE=quick for a small smoke run).\"");
    println!("    ]");
    println!("  }},");
    println!("  \"acceptance\": {{");
    println!("    \"required\": \">=5x speedup over exact at n=4096 for at least one approximate engine, and 5k-observation fit+predict completing under both\",");
    println!(
        "    \"best_approximate_speedup_at_n4096\": {:.2}",
        best_speedup_4096
    );
    println!("  }},");
    println!("  \"results\": {{");
    println!("    \"fit_predict\": {{");
    println!("      \"what\": \"one frozen-theta fit + one 256-query predict_batch; exact_ns is null where the O(n^3) baseline is skipped\",");
    println!("      \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let exact = r
            .exact_ns
            .map(|e| format!("{:.0}", e))
            .unwrap_or_else(|| "null".into());
        println!(
            "        {{ \"n\": {}, \"exact_ns\": {exact}, \"iterative_ns\": {:.0}, \"subset_ns\": {:.0}, \"iterative_speedup\": {}, \"subset_speedup\": {} }}{comma}",
            r.n,
            r.iterative_ns,
            r.subset_ns,
            speedup(r.exact_ns, r.iterative_ns),
            speedup(r.exact_ns, r.subset_ns),
        );
    }
    println!("      ]");
    println!("    }}");
    println!("  }}");
    println!("}}");
}

//! Generates the `BENCH_fitcache.json` measurements: end-to-end cost of one
//! constrained-bundle surrogate refresh (objective + m constraint GPs over
//! the same X) along the amortized refit path, before and after the
//! fit-cache subsystem.
//!
//! Arm A replicates the pre-fit-cache refresh exactly (the `bench_simd`
//! legacy-replica idiom): every model of the bundle builds its own
//! O(n²·d) pairwise-difference batch from scratch, assembles the kernel
//! matrix and factorizes it for the posterior, then rebuilds the identical
//! matrix and refactorizes it a second time for the NLML — the operation
//! sequence of the old `NlmlWorkspace::new` + `Gp::with_params` +
//! `nlml_cached` per model. Arm B is the shipped default-on path:
//! `SfSurrogates::fit_frozen_infer_with_cache`, where one persistent
//! [`FitCache`] grows by an O(n·d) append per iteration, its batch serves
//! all 1+m models, and the NLML falls out of the factorization already in
//! hand. Both arms produce bit-identical posteriors (pinned by the golden
//! trajectories and the surrogate bit-identity tests).
//!
//! Usage: `cargo run --release -p mfbo-bench --bin bench_fitcache > BENCH_fitcache.json`
//! (`MFBO_BENCH_SCALE=quick` restricts to small sizes for smoke runs.)
//!
//! Harness: the shared `mfbo-bench` interleaved A/B sampler (samples of the
//! two compared rows alternate A, B, A, B, ... so container load drift
//! affects both medians equally), 21 samples per row, median statistic,
//! iteration counts calibrated to a ~40 ms sample target — the same
//! methodology as `BENCH_simd.json` / `BENCH_obs.json`.

use mfbo::{FidelityData, SfBundleThetas, SfSurrogates};
use mfbo_bench::{ab_median_ns, AB_SAMPLES as SAMPLES, AB_TARGET_SAMPLE_MS as TARGET_SAMPLE_MS};
use mfbo_gp::kernel::{Kernel, SquaredExponential};
use mfbo_gp::{DiffBatch, FitCache, InferenceMode};
use mfbo_linalg::{Cholesky, Matrix, Standardizer};
use mfbo_pool::Parallelism;
use mfbo_telemetry::metrics::MetricsRegistry;
use std::hint::black_box;
use std::sync::Arc;

const DIM: usize = 12;
const LOG_2PI: f64 = 1.837_877_066_409_345_5;

/// Synthetic constrained training set in [0,1]^DIM — the `BENCH_infer.json`
/// data shape (dim = 12, middle of the paper's 10–36 design-variable range).
fn bench_data(n: usize, m: usize) -> FidelityData {
    let mut fd = FidelityData::new(m);
    for i in 0..n {
        let x: Vec<f64> = (0..DIM)
            .map(|d| ((i * 31 + d * 17) % 97) as f64 / 96.0)
            .collect();
        let objective = (7.0 * x[0]).sin() + x.iter().sum::<f64>();
        let constraints: Vec<f64> = (0..m)
            .map(|k| (5.0 * x[k % DIM]).cos() + x[(k + 1) % DIM] - 0.8)
            .collect();
        fd.push(
            x,
            &mfbo::problem::Evaluation {
                objective,
                constraints,
            },
        );
    }
    fd
}

/// Per-model frozen hyperparameters — slightly different per output, as a
/// real bundle's independently trained models would be.
fn bundle_thetas(m: usize) -> SfBundleThetas {
    let theta = |k: usize| -> Vec<f64> {
        let mut t = vec![0.1 * k as f64];
        t.extend((0..DIM).map(|d| -0.5 + 0.02 * ((k + d) % 5) as f64));
        t.push(-3.0);
        t
    };
    SfBundleThetas {
        objective: theta(0),
        constraints: (1..=m).map(theta).collect(),
    }
}

/// Replica of the pre-fit-cache frozen refresh for ONE model: fresh
/// lower-triangle difference batch, kernel-matrix assembly + Cholesky for
/// the posterior weights, then a second identical assembly + Cholesky for
/// the NLML (what `nlml_cached` performed on the same workspace).
fn legacy_model_refresh(kernel: &SquaredExponential, xs: &[Vec<f64>], ys: &[f64], theta: &[f64]) {
    let n = xs.len();
    let (params, log_noise) = theta.split_at(theta.len() - 1);
    let sn2 = (2.0 * log_noise[0]).exp();
    let stz = Standardizer::fit(ys);
    let ys_std = stz.transform_all(ys);
    let batch = DiffBatch::lower_triangle(xs);
    let assemble = |kv: &[f64]| -> Matrix {
        let mut k = Matrix::zeros(n, n);
        let mut q = 0;
        for i in 0..n {
            for j in 0..=i {
                let v = kv[q];
                q += 1;
                k[(i, j)] = v;
                k[(j, i)] = v;
            }
            k[(i, i)] += sn2;
        }
        k
    };
    let mut kv = vec![0.0; batch.len()];
    kernel.eval_from_diffs(params, &batch, &mut kv);
    let km = assemble(&kv);
    let chol = Cholesky::new_with_jitter(&km, 1e-10, 1e-4).expect("spd");
    black_box(chol.solve_vec(&ys_std));
    // The old path re-derived the NLML from scratch on the same workspace.
    let mut kv2 = vec![0.0; batch.len()];
    kernel.eval_from_diffs(params, &batch, &mut kv2);
    let km2 = assemble(&kv2);
    let chol2 = Cholesky::new_with_jitter(&km2, 1e-10, 1e-4).expect("spd");
    black_box(0.5 * (chol2.quad_form(&ys_std) + chol2.log_det() + n as f64 * LOG_2PI));
}

/// One pre-fit-cache bundle refresh: every model rebuilds everything.
fn legacy_bundle_refresh(data: &FidelityData, thetas: &SfBundleThetas) {
    let kernel = SquaredExponential::new(DIM);
    legacy_model_refresh(&kernel, &data.xs, &data.objective, &thetas.objective);
    for (ys, t) in data.constraints.iter().zip(&thetas.constraints) {
        legacy_model_refresh(&kernel, &data.xs, ys, t);
    }
}

/// One shipped bundle refresh: rewind the persistent cache by the last
/// point, then let `fit_frozen_infer_with_cache` re-append it — so every
/// timed iteration pays the real per-iteration O(n·d) append plus the
/// shared-batch bundle rebuild, exactly as the BO loop does.
fn cached_bundle_refresh(data: &FidelityData, thetas: &SfBundleThetas, cache: &mut FitCache) {
    cache.sync(&data.xs[..data.xs.len() - 1]);
    black_box(
        SfSurrogates::fit_frozen_infer_with_cache(
            data,
            thetas,
            Parallelism::Serial,
            InferenceMode::Exact,
            cache,
        )
        .expect("bundle refresh"),
    );
}

struct Row {
    n: usize,
    m: usize,
    legacy_ns: f64,
    cached_ns: f64,
}

fn measure(n: usize, m: usize) -> Row {
    let data = bench_data(n, m);
    let thetas = bundle_thetas(m);
    let mut cache = FitCache::default();
    cache.sync(&data.xs);
    let (legacy_ns, cached_ns) = ab_median_ns(
        || legacy_bundle_refresh(&data, &thetas),
        || cached_bundle_refresh(&data, &thetas, &mut cache),
    );
    eprintln!(
        "bundle_refresh n={n} m={m}: legacy {:.2} ms, cached {:.2} ms ({:.2}x)",
        legacy_ns / 1e6,
        cached_ns / 1e6,
        legacy_ns / cached_ns
    );
    Row {
        n,
        m,
        legacy_ns,
        cached_ns,
    }
}

/// Counter evidence: over `iters` refreshes of an (1+m)-model bundle at
/// fixed n, the cached path must do ZERO from-scratch difference builds
/// (appends only) while serving every model from the shared batch, and the
/// uncached default path must do exactly ONE build per refresh for the
/// whole bundle. `kernel_matrix_builds` (theta-dependent assemblies) must
/// be 1+m per refresh in both — one per model, proving the models share
/// the single distance build instead of each paying for their own.
fn counter_evidence(n: usize, m: usize, iters: u64) -> Vec<(String, u64)> {
    let data = bench_data(n, m);
    let thetas = bundle_thetas(m);

    let mut cache = FitCache::default();
    cache.sync(&data.xs);
    let reg = Arc::new(MetricsRegistry::new());
    {
        let _g = mfbo_telemetry::scoped_sink(reg.clone());
        for _ in 0..iters {
            cached_bundle_refresh(&data, &thetas, &mut cache);
        }
    }
    let cached = reg.snapshot().counters;

    let reg = Arc::new(MetricsRegistry::new());
    {
        let _g = mfbo_telemetry::scoped_sink(reg.clone());
        for _ in 0..iters {
            black_box(
                SfSurrogates::fit_frozen_infer(
                    &data,
                    &thetas,
                    Parallelism::Serial,
                    InferenceMode::Exact,
                )
                .expect("bundle refresh"),
            );
        }
    }
    let fresh = reg.snapshot().counters;

    let get = |c: &std::collections::BTreeMap<String, u64>, k: &str| c.get(k).copied().unwrap_or(0);
    let models = 1 + m as u64;
    assert_eq!(
        get(&cached, "diffbatch_builds"),
        0,
        "cached path must never rebuild the difference batch from scratch"
    );
    assert_eq!(
        get(&cached, "diffbatch_appends"),
        iters,
        "cached path must grow by exactly one append per refresh"
    );
    assert_eq!(
        get(&cached, "diffbatch_shared_hits"),
        iters * models,
        "every model of the bundle must be served by the shared batch"
    );
    assert_eq!(
        get(&fresh, "diffbatch_builds"),
        iters,
        "uncached bundle must build exactly one shared batch per refresh"
    );
    assert_eq!(
        get(&fresh, "kernel_matrix_builds"),
        iters * models,
        "one theta-dependent assembly per model per refresh"
    );
    assert_eq!(
        get(&cached, "kernel_matrix_builds"),
        get(&fresh, "kernel_matrix_builds"),
        "the shared batch is layout-invisible to kernel-matrix assembly"
    );
    vec![
        ("iterations".into(), iters),
        ("models_per_bundle".into(), models),
        (
            "cached_diffbatch_builds".into(),
            get(&cached, "diffbatch_builds"),
        ),
        (
            "cached_diffbatch_appends".into(),
            get(&cached, "diffbatch_appends"),
        ),
        (
            "cached_diffbatch_shared_hits".into(),
            get(&cached, "diffbatch_shared_hits"),
        ),
        (
            "cached_kernel_matrix_builds".into(),
            get(&cached, "kernel_matrix_builds"),
        ),
        (
            "fresh_diffbatch_builds".into(),
            get(&fresh, "diffbatch_builds"),
        ),
        (
            "fresh_kernel_matrix_builds".into(),
            get(&fresh, "kernel_matrix_builds"),
        ),
    ]
}

fn rows_json(rows: &[Row]) -> String {
    rows.iter()
        .map(|r| {
            format!(
                "        {{ \"n\": {}, \"m\": {}, \"legacy_ns\": {}, \"cached_ns\": {}, \"speedup\": {:.2} }}",
                r.n,
                r.m,
                r.legacy_ns.round() as u64,
                r.cached_ns.round() as u64,
                r.legacy_ns / r.cached_ns
            )
        })
        .collect::<Vec<_>>()
        .join(",\n")
}

fn main() {
    let scale = std::env::var("MFBO_BENCH_SCALE").unwrap_or_default();
    let (sizes, m_sweep, counter_n): (&[usize], &[usize], usize) = match scale.as_str() {
        "quick" => (&[64, 128], &[2], 128),
        _ => (&[128, 256, 512], &[1, 2, 4], 512),
    };

    let mut refit_rows = Vec::new();
    for &n in sizes {
        refit_rows.push(measure(n, 2));
    }
    let mut m_rows = Vec::new();
    for &m in m_sweep {
        m_rows.push(measure(*sizes.last().unwrap(), m));
    }

    let counters = counter_evidence(counter_n, 2, 4);
    let headline = refit_rows.last().unwrap();
    let measured_speedup = headline.legacy_ns / headline.cached_ns;

    let counters_json = counters
        .iter()
        .map(|(k, v)| format!("      \"{k}\": {v}"))
        .collect::<Vec<_>>()
        .join(",\n");

    println!(
        r#"{{
  "description": "End-to-end cost of one constrained-bundle surrogate refresh (objective + m constraint GPs over the same X) on the amortized refit path, before and after the fit-cache subsystem. legacy = replica of the pre-fit-cache path: per model, a fresh O(n^2 d) pairwise-difference build, kernel-matrix assembly + Cholesky for the posterior, then an identical second assembly + Cholesky for the NLML. cached = the shipped default-on path (SfSurrogates::fit_frozen_infer_with_cache): a persistent FitCache grows by an O(n d) append per iteration, one shared batch serves all 1+m models, and the NLML reuses the factorization already in hand. Both paths are bit-identical (pinned by the golden trajectories and the surrogate/workspace bit-identity tests).",
  "methodology": {{
    "harness": "shared mfbo-bench interleaved A/B sampler: samples of the two compared rows alternate (A, B, A, B, ...) so container load drift affects both medians equally",
    "samples_per_row": {SAMPLES},
    "statistic": "median",
    "iterations": "calibrated per row to a ~{TARGET_SAMPLE_MS:.0} ms sample target",
    "build": "cargo --release, default codegen settings",
    "date": "2026-08-08",
    "caveats": [
      "Measured in a shared 1-CPU container; absolute times carry +/-40% run-to-run drift. The interleaved harness makes the *ratios* stable to a few percent, but absolute nanoseconds should not be compared across machines or runs.",
      "Every cached-arm iteration includes the real per-iteration cache work: the cache is rewound by one point and re-appends it inside the timed region, so the O(n d) incremental growth is part of the measurement, not amortized away.",
      "dim = 12 (middle of the paper's 10-36 design-variable range); per-model hyperparameters differ slightly, as independently trained bundle models would.",
      "Reproduce with: cargo run --release -p mfbo-bench --bin bench_fitcache > BENCH_fitcache.json"
    ]
  }},
  "acceptance": {{
    "refit_path_required_min_speedup_n512_m2": 2.0,
    "refit_path_measured_speedup_n512_m2": {measured_speedup:.2},
    "counter_assertions": "pass (asserted at runtime; see results.counters)"
  }},
  "results": {{
    "refit_path": {{
      "what": "one full bundle refresh (1+m models, m=2 constraints) at growing training-set sizes; legacy vs cached as described above",
      "rows": [
{refit_rows}
      ]
    }},
    "constraint_scaling": {{
      "what": "one full bundle refresh at n={n_top} while the constraint count m grows; the shared batch amortizes the distance build across 1+m models, so the win grows with m",
      "rows": [
{m_rows}
      ]
    }},
    "counters": {{
      "what": "telemetry counters over {iters} refreshes at n={counter_n}, m=2 (asserted, not just reported): the cached path does zero from-scratch difference builds and one append per refresh with every model served from the shared batch; the uncached default builds exactly one shared batch per refresh; kernel_matrix_builds (theta-dependent assemblies) is one per model per refresh in both, proving the bundle shares one distance build per refresh and the cache is layout-invisible",
{counters_json}
    }}
  }}
}}"#,
        refit_rows = rows_json(&refit_rows),
        m_rows = rows_json(&m_rows),
        n_top = sizes.last().unwrap(),
        counter_n = counter_n,
        iters = 4,
    );
}

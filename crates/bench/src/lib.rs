//! Shared harness utilities for the table/figure reproduction benches.
//!
//! Every `[[bench]]` target in this crate is a plain binary
//! (`harness = false`) that regenerates one table or figure of the DAC'19
//! paper and prints it in the paper's row layout. Three scales are
//! supported via the `MFBO_BENCH_SCALE` environment variable:
//!
//! * `ci` (default) — reduced budgets and repetition counts so the whole
//!   suite finishes in minutes on a laptop;
//! * `mid` — intermediate budgets (tens of minutes) at which the algorithm
//!   rankings on the circuit problems stabilize;
//! * `paper` — the paper's exact budgets and repetition counts (12 runs on
//!   the power amplifier, 10 on the charge pump; expect hours).

#![deny(missing_docs)]

use mfbo::Outcome;
use mfbo_pool::Parallelism;
use mfbo_telemetry::sinks::{JsonlSink, MultiSink, PrettySink};
use mfbo_telemetry::{Level, Sink};
use std::sync::Arc;

/// Benchmark scale selected by `MFBO_BENCH_SCALE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced budgets/repetitions (minutes).
    Ci,
    /// Intermediate budgets (tens of minutes) — enough for the algorithm
    /// rankings to stabilize on the circuit problems.
    Mid,
    /// The paper's full settings (hours).
    Paper,
}

impl Scale {
    /// Reads the scale from the environment (default [`Scale::Ci`]).
    pub fn from_env() -> Scale {
        match std::env::var("MFBO_BENCH_SCALE").as_deref() {
            Ok("paper") => Scale::Paper,
            Ok("mid") => Scale::Mid,
            _ => Scale::Ci,
        }
    }

    /// Picks `ci` or `paper` depending on the scale (`mid` takes the
    /// `paper` value; benches that distinguish all three use
    /// [`Scale::pick3`]).
    pub fn pick<T>(self, ci: T, paper: T) -> T {
        match self {
            Scale::Ci => ci,
            Scale::Mid | Scale::Paper => paper,
        }
    }

    /// Picks between three explicit settings.
    pub fn pick3<T>(self, ci: T, mid: T, paper: T) -> T {
        match self {
            Scale::Ci => ci,
            Scale::Mid => mid,
            Scale::Paper => paper,
        }
    }
}

/// Samples per row taken by [`ab_median_ns`] for each of the two closures.
pub const AB_SAMPLES: usize = 21;

/// Per-sample wall-clock target (milliseconds) that [`ab_median_ns`] uses
/// when calibrating its inner iteration count.
pub const AB_TARGET_SAMPLE_MS: f64 = 40.0;

/// Median of a sample vector (total order on `f64`, upper median).
pub fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

/// Percentile of a sample vector by nearest-rank on the sorted data
/// (`p` in `[0, 1]`; `p = 0.5` agrees with [`median`] on odd lengths).
pub fn percentile(mut v: Vec<f64>, p: f64) -> f64 {
    assert!(!v.is_empty(), "percentile of an empty sample");
    v.sort_by(f64::total_cmp);
    let idx = ((v.len() as f64 - 1.0) * p.clamp(0.0, 1.0)).round() as usize;
    v[idx]
}

/// Interleaved A/B measurement: calibrates an iteration count on `a` so one
/// sample takes roughly [`AB_TARGET_SAMPLE_MS`] milliseconds, then
/// alternates [`AB_SAMPLES`] samples of each closure (A,B,A,B,…) so
/// container load drift affects both medians equally, and returns the
/// median per-iteration nanoseconds `(a, b)`.
pub fn ab_median_ns(mut a: impl FnMut(), mut b: impl FnMut()) -> (f64, f64) {
    use std::time::Instant;
    let mut iters = 1usize;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            a();
        }
        let ms = t.elapsed().as_secs_f64() * 1e3;
        if ms >= AB_TARGET_SAMPLE_MS || iters >= 1 << 24 {
            break;
        }
        let scale = (AB_TARGET_SAMPLE_MS / ms.max(1e-3)).ceil() as usize;
        iters = (iters * scale.clamp(2, 1024)).min(1 << 24);
    }
    let mut sa = Vec::with_capacity(AB_SAMPLES);
    let mut sb = Vec::with_capacity(AB_SAMPLES);
    for _ in 0..AB_SAMPLES {
        let t = Instant::now();
        for _ in 0..iters {
            a();
        }
        sa.push(t.elapsed().as_nanos() as f64 / iters as f64);
        let t = Instant::now();
        for _ in 0..iters {
            b();
        }
        sb.push(t.elapsed().as_nanos() as f64 / iters as f64);
    }
    (median(sa), median(sb))
}

/// Thread-pool mode for the benchmark harnesses.
///
/// Defaults to [`Parallelism::Auto`], so benches use every core (or honour
/// an `MFBO_THREADS=<n>` override) without changing results: the pool is
/// bit-deterministic, so this is a pure wall-clock knob.
pub fn parallelism() -> Parallelism {
    Parallelism::Auto
}

/// Installs the telemetry sink used by the table/figure harnesses.
///
/// Per-run progress goes to stderr through a [`PrettySink`] at the level
/// named by `MFBO_BENCH_VERBOSITY` (`info` by default, `debug`/`trace` to
/// watch solver internals). Setting `MFBO_BENCH_TRACE=<path>` additionally
/// streams the full debug-level record stream to a JSONL file. The final
/// tables keep going to stdout unchanged.
pub fn init_telemetry() {
    let level = std::env::var("MFBO_BENCH_VERBOSITY")
        .ok()
        .and_then(|v| Level::parse(&v))
        .unwrap_or(Level::Info);
    let pretty: Arc<dyn Sink> = Arc::new(PrettySink::stderr(level));
    let sink: Arc<dyn Sink> = match std::env::var("MFBO_BENCH_TRACE") {
        Ok(path) => match JsonlSink::create(&path, level.max(Level::Debug)) {
            Ok(file) => Arc::new(MultiSink::new(vec![pretty, Arc::new(file)])),
            Err(e) => {
                eprintln!("MFBO_BENCH_TRACE: cannot create {path}: {e}");
                pretty
            }
        },
        Err(_) => pretty,
    };
    mfbo_telemetry::set_global_sink(sink);
}

/// Summary statistics of one algorithm over repeated optimization runs —
/// the row block of the paper's Tables 1 and 2.
#[derive(Debug, Clone)]
pub struct AlgoSummary {
    /// Algorithm label.
    pub name: String,
    /// Objective values (one per run, in the table's reporting convention).
    pub objectives: Vec<f64>,
    /// Mean cost (equivalent high-fidelity simulations) to reach each run's
    /// best design.
    pub avg_sims: f64,
    /// Number of runs that produced a feasible design.
    pub successes: usize,
    /// Total runs.
    pub runs: usize,
    /// The best run's outcome (by the table's objective convention:
    /// the minimum stored objective).
    pub best_outcome: Outcome,
}

impl AlgoSummary {
    /// Builds a summary from per-run outcomes. `report` maps an outcome to
    /// the scalar the table reports (e.g. `-best_objective` when the paper
    /// reports efficiency as a maximization).
    pub fn from_outcomes<F: Fn(&Outcome) -> f64>(
        name: &str,
        outcomes: Vec<Outcome>,
        report: F,
    ) -> AlgoSummary {
        assert!(!outcomes.is_empty(), "need at least one run");
        let objectives: Vec<f64> = outcomes.iter().map(&report).collect();
        let avg_sims = outcomes.iter().map(|o| o.cost_to_best).sum::<f64>() / outcomes.len() as f64;
        let successes = outcomes.iter().filter(|o| o.feasible).count();
        let runs = outcomes.len();
        // Best outcome = the run whose *stored* objective is minimal among
        // feasible runs (all-infeasible falls back to overall minimum).
        let best_idx = outcomes
            .iter()
            .enumerate()
            .filter(|(_, o)| o.feasible)
            .min_by(|a, b| {
                a.1.best_objective
                    .partial_cmp(&b.1.best_objective)
                    .expect("non-NaN objective")
            })
            .map(|(i, _)| i)
            .unwrap_or_else(|| {
                outcomes
                    .iter()
                    .enumerate()
                    .min_by(|a, b| {
                        a.1.best_objective
                            .partial_cmp(&b.1.best_objective)
                            .expect("non-NaN objective")
                    })
                    .map(|(i, _)| i)
                    .expect("non-empty outcomes")
            });
        AlgoSummary {
            name: name.to_string(),
            objectives,
            avg_sims,
            successes,
            runs,
            best_outcome: outcomes.into_iter().nth(best_idx).expect("index valid"),
        }
    }

    /// Mean of the reported objective.
    pub fn mean(&self) -> f64 {
        mfbo_linalg::mean(&self.objectives)
    }

    /// Median of the reported objective.
    pub fn median(&self) -> f64 {
        mfbo_linalg::median(&self.objectives)
    }

    /// Best (maximum) reported objective — the paper reports "best" in the
    /// direction of improvement, which for both tables is handled by the
    /// caller's `report` mapping (larger = better).
    pub fn best(&self) -> f64 {
        self.objectives
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Worst (minimum) reported objective.
    pub fn worst(&self) -> f64 {
        self.objectives
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min)
    }
}

/// Prints a Markdown-ish table: header row then aligned value rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n### {title}\n");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        let mut line = String::from("|");
        for (w, cell) in widths.iter().zip(cells) {
            line.push_str(&format!(" {cell:>w$} |"));
        }
        line
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&header_cells));
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("{}", fmt_row(&sep));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfbo::problem::{Evaluation, Fidelity};
    use mfbo::EvaluationRecord;

    fn outcome(obj: f64, feasible: bool, cost: f64) -> Outcome {
        let cons = if feasible { vec![-1.0] } else { vec![1.0] };
        let mut high = mfbo::FidelityData::new(1);
        high.push(
            vec![0.0],
            &Evaluation {
                objective: obj,
                constraints: cons.clone(),
            },
        );
        Outcome::from_data(
            high,
            mfbo::FidelityData::new(1),
            vec![EvaluationRecord {
                iteration: 0,
                x: vec![0.0],
                fidelity: Fidelity::High,
                evaluation: Evaluation {
                    objective: obj,
                    constraints: cons,
                },
                cost_so_far: cost,
            }],
        )
    }

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Ci.pick(1, 2), 1);
        assert_eq!(Scale::Paper.pick(1, 2), 2);
        assert_eq!(Scale::Mid.pick(1, 2), 2);
        assert_eq!(Scale::Ci.pick3(1, 2, 3), 1);
        assert_eq!(Scale::Mid.pick3(1, 2, 3), 2);
        assert_eq!(Scale::Paper.pick3(1, 2, 3), 3);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(v.clone(), 0.0), 1.0);
        assert_eq!(percentile(v.clone(), 0.5), 51.0);
        assert_eq!(percentile(v.clone(), 0.99), 99.0);
        assert_eq!(percentile(v, 1.0), 100.0);
        assert_eq!(percentile(vec![3.0], 0.99), 3.0);
        assert_eq!(
            percentile(vec![2.0, 1.0, 3.0], 0.5),
            median(vec![1.0, 2.0, 3.0])
        );
    }

    #[test]
    fn summary_statistics() {
        let outcomes = vec![
            outcome(-60.0, true, 50.0),
            outcome(-50.0, true, 70.0),
            outcome(-40.0, false, 90.0),
        ];
        let s = AlgoSummary::from_outcomes("test", outcomes, |o| -o.best_objective);
        assert_eq!(s.runs, 3);
        assert_eq!(s.successes, 2);
        assert!((s.mean() - 50.0).abs() < 1e-12);
        assert!((s.median() - 50.0).abs() < 1e-12);
        assert_eq!(s.best(), 60.0);
        assert_eq!(s.worst(), 40.0);
        assert!((s.avg_sims - 70.0).abs() < 1e-12);
        // Best outcome is the feasible -60 run.
        assert_eq!(s.best_outcome.best_objective, -60.0);
    }

    #[test]
    fn summary_all_infeasible_falls_back() {
        let outcomes = vec![outcome(-10.0, false, 5.0), outcome(-20.0, false, 6.0)];
        let s = AlgoSummary::from_outcomes("t", outcomes, |o| -o.best_objective);
        assert_eq!(s.successes, 0);
        assert_eq!(s.best_outcome.best_objective, -20.0);
    }

    #[test]
    fn print_table_does_not_panic() {
        print_table(
            "demo",
            &["a", "b"],
            &[
                vec!["1".into(), "2".into()],
                vec!["10".into(), "200".into()],
            ],
        );
    }
}

//! Table 1 reproduction: power-amplifier optimization, four algorithms.
//!
//! Columns: the proposed multi-fidelity BO ("Ours"), WEIBO, GASPAD, DE.
//! Rows: THD and Pout of the best design, efficiency statistics over the
//! repeated runs, average number of (equivalent high-fidelity) simulations
//! to reach each run's best design, and the success count.
//!
//! `MFBO_BENCH_SCALE=paper` runs the paper's exact budgets (12 repetitions,
//! 150-simulation budgets, 300 for GASPAD/DE — expect hours);
//! `mid` uses intermediate budgets; the default `ci` scale uses reduced
//! budgets and 3 repetitions.

use mfbo::problem::{Fidelity, MultiFidelityProblem};
use mfbo::{MfBayesOpt, MfBoConfig, Outcome};
use mfbo_baselines::{
    DeBaselineConfig, DifferentialEvolutionBaseline, Gaspad, GaspadConfig, Weibo, WeiboConfig,
};
use mfbo_bench::{print_table, AlgoSummary, Scale};
use mfbo_circuits::pa::PowerAmplifier;
use mfbo_telemetry::event;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    mfbo_bench::init_telemetry();
    let scale = Scale::from_env();
    let pa = PowerAmplifier::new();
    let runs = scale.pick3(3, 5, 12);

    let eff = |o: &Outcome| -o.best_objective; // objective is −Eff

    println!("Table 1 — power amplifier ({runs} runs per algorithm, scale = {scale:?})");

    // --- Ours: multi-fidelity BO. ---
    let mut ours_outcomes = Vec::new();
    for r in 0..runs {
        let mut rng = StdRng::seed_from_u64(1000 + r as u64);
        let config = MfBoConfig {
            initial_low: 10,
            initial_high: 5,
            budget: scale.pick3(30.0, 60.0, 150.0),
            refit_every: scale.pick3(3, 2, 1),
            parallelism: mfbo_bench::parallelism(),
            ..MfBoConfig::default()
        };
        let out = MfBayesOpt::new(config)
            .run(&pa, &mut rng)
            .expect("mf-bo run succeeds");
        event!(
            "bench_run",
            bench = "table1",
            algo = "ours",
            run = r,
            eff_percent = eff(&out),
            feasible = out.feasible,
            cost = out.total_cost,
        );
        ours_outcomes.push(out);
    }
    let ours = AlgoSummary::from_outcomes("Ours", ours_outcomes, eff);

    // --- WEIBO. ---
    let mut weibo_outcomes = Vec::new();
    for r in 0..runs {
        let mut rng = StdRng::seed_from_u64(2000 + r as u64);
        let config = WeiboConfig {
            initial_points: scale.pick3(10, 20, 40),
            budget: scale.pick3(30, 60, 150),
            refit_every: scale.pick3(3, 2, 1),
            parallelism: mfbo_bench::parallelism(),
            ..WeiboConfig::default()
        };
        let out = Weibo::new(config)
            .run(&pa, &mut rng)
            .expect("weibo run succeeds");
        event!(
            "bench_run",
            bench = "table1",
            algo = "weibo",
            run = r,
            eff_percent = eff(&out),
            feasible = out.feasible,
            cost = out.total_cost,
        );
        weibo_outcomes.push(out);
    }
    let weibo = AlgoSummary::from_outcomes("WEIBO", weibo_outcomes, eff);

    // --- GASPAD. ---
    let mut gaspad_outcomes = Vec::new();
    for r in 0..runs {
        let mut rng = StdRng::seed_from_u64(3000 + r as u64);
        let config = GaspadConfig {
            initial_points: scale.pick3(15, 25, 40),
            budget: scale.pick3(60, 120, 300),
            population: scale.pick3(15, 25, 40),
            refit_every: scale.pick3(3, 2, 1),
            ..GaspadConfig::default()
        };
        let out = Gaspad::new(config)
            .run(&pa, &mut rng)
            .expect("gaspad run succeeds");
        event!(
            "bench_run",
            bench = "table1",
            algo = "gaspad",
            run = r,
            eff_percent = eff(&out),
            feasible = out.feasible,
            cost = out.total_cost,
        );
        gaspad_outcomes.push(out);
    }
    let gaspad = AlgoSummary::from_outcomes("GASPAD", gaspad_outcomes, eff);

    // --- DE. ---
    let mut de_outcomes = Vec::new();
    for r in 0..runs {
        let mut rng = StdRng::seed_from_u64(4000 + r as u64);
        let config = DeBaselineConfig {
            population: scale.pick3(15, 25, 50),
            budget: scale.pick3(90, 200, 300),
            ..DeBaselineConfig::default()
        };
        let out = DifferentialEvolutionBaseline::new(config)
            .run(&pa, &mut rng)
            .expect("de run succeeds");
        event!(
            "bench_run",
            bench = "table1",
            algo = "de",
            run = r,
            eff_percent = eff(&out),
            feasible = out.feasible,
            cost = out.total_cost,
        );
        de_outcomes.push(out);
    }
    let de = AlgoSummary::from_outcomes("DE", de_outcomes, eff);

    // --- Assemble the paper's row layout. ---
    let algos = [&ours, &weibo, &gaspad, &de];
    // THD and Pout of each algorithm's best design, re-derived from the
    // constraint values (c1 = spec_pout − pout, c2 = thd − spec_thd).
    let spec_pout = pa.pout_spec_dbm();
    let spec_thd = pa.thd_spec_db();
    let header = ["row", "Ours", "WEIBO", "GASPAD", "DE"];
    let row = |label: &str, f: &dyn Fn(&AlgoSummary) -> String| {
        let mut cells = vec![label.to_string()];
        cells.extend(algos.iter().map(|a| f(a)));
        cells
    };
    let rows = vec![
        row("thd/dB", &|a| {
            format!(
                "{:.2}",
                a.best_outcome.best_evaluation.constraints[1] + spec_thd
            )
        }),
        row("Pout/dBm", &|a| {
            format!(
                "{:.2}",
                spec_pout - a.best_outcome.best_evaluation.constraints[0]
            )
        }),
        row("Eff(mean)/%", &|a| format!("{:.2}", a.mean())),
        row("Eff(median)/%", &|a| format!("{:.2}", a.median())),
        row("Eff(best)/%", &|a| format!("{:.2}", a.best())),
        row("Eff(worst)/%", &|a| format!("{:.2}", a.worst())),
        row("Avg. # Sim", &|a| format!("{:.0}", a.avg_sims)),
        row("# Success", &|a| format!("{}/{}", a.successes, a.runs)),
    ];
    print_table(
        "Table 1 — optimization results of the power amplifier",
        &header,
        &rows,
    );

    // Simulation-mix detail for the multi-fidelity column (the paper quotes
    // "252 coarse + 46 fine ≈ 59 equivalent").
    println!(
        "\nOurs, best run: {} low + {} high simulations, equivalent cost {:.1} \
         (low-fidelity cost {}).",
        ours.best_outcome.n_low,
        ours.best_outcome.n_high,
        ours.best_outcome.total_cost,
        pa.cost(Fidelity::Low),
    );
    println!(
        "paper shape check: Ours ≥ WEIBO on efficiency at materially fewer\n\
         equivalent simulations; GASPAD/DE need several times more simulations."
    );
}

//! Figure 1 reproduction: posterior of the multi-fidelity fusion model vs
//! a single-fidelity GP on the pedagogical example of Perdikaris et al.
//!
//! The paper's figure shows that with 50 low-fidelity and 14 high-fidelity
//! training points, the fusion posterior tracks the exact high-fidelity
//! function with a tight 3σ band, while a GP trained on the 14 high-fidelity
//! points alone misses the structure entirely. This bench prints both
//! posteriors over a grid plus the aggregate RMSE/coverage numbers.

use mfbo::{MfGp, MfGpConfig};
use mfbo_bench::print_table;
use mfbo_circuits::testfns;
use mfbo_gp::kernel::SquaredExponential;
use mfbo_gp::{Gp, GpConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    mfbo_bench::init_telemetry();
    let n_low = 50;
    let n_high = 14;
    let xl: Vec<Vec<f64>> = (0..n_low)
        .map(|i| vec![i as f64 / (n_low - 1) as f64])
        .collect();
    let yl: Vec<f64> = xl.iter().map(|x| testfns::pedagogical_low(x[0])).collect();
    let xh: Vec<Vec<f64>> = (0..n_high)
        .map(|i| vec![i as f64 / (n_high - 1) as f64])
        .collect();
    let yh: Vec<f64> = xh.iter().map(|x| testfns::pedagogical_high(x[0])).collect();

    let mut rng = StdRng::seed_from_u64(1);
    let mf = MfGp::fit(
        xl,
        yl,
        xh.clone(),
        yh.clone(),
        &MfGpConfig::default(),
        &mut rng,
    )
    .expect("fusion model trains");
    let sf = Gp::fit(
        SquaredExponential::new(1),
        xh,
        yh,
        &GpConfig::default(),
        &mut rng,
    )
    .expect("single-fidelity GP trains");

    let mut rows = Vec::new();
    let mut mf_se = 0.0;
    let mut sf_se = 0.0;
    let mut mf_cover = 0usize;
    let mut sf_cover = 0usize;
    let mut mf_band = 0.0;
    let mut sf_band = 0.0;
    let n = 201;
    for i in 0..n {
        let x = i as f64 / (n - 1) as f64;
        let truth = testfns::pedagogical_high(x);
        let pm = mf.predict(&[x]);
        let ps = sf.predict(&[x]);
        mf_se += (pm.mean - truth).powi(2);
        sf_se += (ps.mean - truth).powi(2);
        if (pm.mean - truth).abs() <= 3.0 * pm.std_dev() + 1e-9 {
            mf_cover += 1;
        }
        if (ps.mean - truth).abs() <= 3.0 * ps.std_dev() + 1e-9 {
            sf_cover += 1;
        }
        mf_band += pm.std_dev();
        sf_band += ps.std_dev();
        if i % 20 == 0 {
            rows.push(vec![
                format!("{x:.2}"),
                format!("{truth:.4}"),
                format!("{:.4}", pm.mean),
                format!("{:.4}", 3.0 * pm.std_dev()),
                format!("{:.4}", ps.mean),
                format!("{:.4}", 3.0 * ps.std_dev()),
            ]);
        }
    }
    print_table(
        "Figure 1 — posterior of the multi-fidelity vs single-fidelity model",
        &["x", "f_h(x)", "MF mean", "MF 3σ", "SF mean", "SF 3σ"],
        &rows,
    );
    let nn = n as f64;
    mfbo_telemetry::event!(
        "fig1_summary",
        mf_rmse = (mf_se / nn).sqrt(),
        sf_rmse = (sf_se / nn).sqrt(),
        mf_coverage_percent = 100.0 * mf_cover as f64 / nn,
        sf_coverage_percent = 100.0 * sf_cover as f64 / nn,
        mf_mean_sigma = mf_band / nn,
        sf_mean_sigma = sf_band / nn,
    );
    println!(
        "\nRMSE          : MF = {:.4}   SF = {:.4}",
        (mf_se / nn).sqrt(),
        (sf_se / nn).sqrt()
    );
    println!(
        "3σ coverage   : MF = {:>5.1} %  SF = {:>5.1} %",
        100.0 * mf_cover as f64 / nn,
        100.0 * sf_cover as f64 / nn
    );
    println!(
        "mean σ        : MF = {:.4}   SF = {:.4}",
        mf_band / nn,
        sf_band / nn
    );
    println!("\npaper shape check: MF RMSE and mean σ should be far below SF.");
}

//! Table 2 reproduction: charge-pump optimization, four algorithms.
//!
//! Columns: Ours (multi-fidelity BO), WEIBO, GASPAD, DE. Rows: the
//! max_diff1..4 and deviation metrics of each algorithm's best design,
//! FOM statistics over repeated runs, average simulations, success count.
//!
//! `MFBO_BENCH_SCALE=paper` uses the paper's settings (10 runs; Ours with
//! a 300-high-fidelity budget initialized with 30 low + 10 high points;
//! WEIBO 120/800; GASPAD 120/2500; DE 100/10100 — expect many hours).
//! `mid` uses intermediate budgets at which the cost-normalized rankings
//! stabilize; the default `ci` scale exercises the identical pipeline at a
//! fraction of the budgets.

use mfbo::{MfBayesOpt, MfBoConfig, Outcome};
use mfbo_baselines::{
    DeBaselineConfig, DifferentialEvolutionBaseline, Gaspad, GaspadConfig, Weibo, WeiboConfig,
};
use mfbo_bench::{print_table, AlgoSummary, Scale};
use mfbo_circuits::charge_pump::ChargePump;
use mfbo_circuits::pvt::PvtCorner;
use mfbo_telemetry::event;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    mfbo_bench::init_telemetry();
    let scale = Scale::from_env();
    let cp = ChargePump::new();
    let runs = scale.pick3(2, 2, 10);

    let fom = |o: &Outcome| -o.best_objective; // report as "larger = better"

    println!("Table 2 — charge pump ({runs} runs per algorithm, scale = {scale:?})");

    let mut ours_outcomes = Vec::new();
    for r in 0..runs {
        let mut rng = StdRng::seed_from_u64(1100 + r as u64);
        let config = MfBoConfig {
            initial_low: scale.pick3(20, 30, 30),
            initial_high: scale.pick3(5, 8, 10),
            budget: scale.pick3(14.0, 25.0, 300.0),
            // The CI scale additionally caps the number of adaptive
            // iterations: at a 1/27 low-fidelity cost a cost budget alone
            // allows hundreds of cheap iterations.
            max_iterations: scale.pick3(40, 120, 10_000),
            refit_every: scale.pick3(5, 4, 2),
            msp_starts: scale.pick3(8, 12, 24),
            // In 36 dimensions the low-fidelity posterior variance decays
            // slowly; within the tiny CI iteration cap the paper's γ = 0.01
            // would never trigger a high-fidelity sample, so CI uses a
            // looser threshold. Paper scale uses the paper's value.
            gamma: scale.pick3(0.08, 0.05, 0.01),
            // Heavy-tailed FOM/constraint outliers are winsorized before
            // surrogate fitting (see FidelityData::winsorized).
            winsorize_sigma: Some(2.5),
            // Verification safeguard cadence (see MfBoConfig docs): force a
            // high-fidelity sample after this many consecutive low picks.
            max_low_streak: scale.pick3(4, 6, 8),
            parallelism: mfbo_bench::parallelism(),
            ..MfBoConfig::default()
        };
        let out = MfBayesOpt::new(config)
            .run(&cp, &mut rng)
            .expect("mf-bo run succeeds");
        event!(
            "bench_run",
            bench = "table2",
            algo = "ours",
            run = r,
            fom = out.best_objective,
            feasible = out.feasible,
            cost = out.total_cost,
        );
        ours_outcomes.push(out);
    }
    let ours = AlgoSummary::from_outcomes("Ours", ours_outcomes, fom);

    let mut weibo_outcomes = Vec::new();
    for r in 0..runs {
        let mut rng = StdRng::seed_from_u64(2100 + r as u64);
        let config = WeiboConfig {
            initial_points: scale.pick3(15, 40, 120),
            budget: scale.pick3(35, 80, 800),
            refit_every: scale.pick3(4, 4, 2),
            winsorize_sigma: Some(2.5),
            parallelism: mfbo_bench::parallelism(),
            ..WeiboConfig::default()
        };
        let out = Weibo::new(config)
            .run(&cp, &mut rng)
            .expect("weibo run succeeds");
        event!(
            "bench_run",
            bench = "table2",
            algo = "weibo",
            run = r,
            fom = out.best_objective,
            feasible = out.feasible,
            cost = out.total_cost,
        );
        weibo_outcomes.push(out);
    }
    let weibo = AlgoSummary::from_outcomes("WEIBO", weibo_outcomes, fom);

    let mut gaspad_outcomes = Vec::new();
    for r in 0..runs {
        let mut rng = StdRng::seed_from_u64(3100 + r as u64);
        let config = GaspadConfig {
            initial_points: scale.pick3(15, 40, 120),
            budget: scale.pick3(50, 120, 2500),
            population: scale.pick3(15, 30, 40),
            refit_every: scale.pick3(4, 4, 2),
            ..GaspadConfig::default()
        };
        let out = Gaspad::new(config)
            .run(&cp, &mut rng)
            .expect("gaspad run succeeds");
        event!(
            "bench_run",
            bench = "table2",
            algo = "gaspad",
            run = r,
            fom = out.best_objective,
            feasible = out.feasible,
            cost = out.total_cost,
        );
        gaspad_outcomes.push(out);
    }
    let gaspad = AlgoSummary::from_outcomes("GASPAD", gaspad_outcomes, fom);

    let mut de_outcomes = Vec::new();
    for r in 0..runs {
        let mut rng = StdRng::seed_from_u64(4100 + r as u64);
        let config = DeBaselineConfig {
            population: scale.pick3(20, 40, 100),
            budget: scale.pick3(150, 500, 10_100),
            ..DeBaselineConfig::default()
        };
        let out = DifferentialEvolutionBaseline::new(config)
            .run(&cp, &mut rng)
            .expect("de run succeeds");
        event!(
            "bench_run",
            bench = "table2",
            algo = "de",
            run = r,
            fom = out.best_objective,
            feasible = out.feasible,
            cost = out.total_cost,
        );
        de_outcomes.push(out);
    }
    let de = AlgoSummary::from_outcomes("DE", de_outcomes, fom);

    // Re-measure each algorithm's best design over the full corner grid to
    // recover the metric breakdown the table reports.
    let algos = [&ours, &weibo, &gaspad, &de];
    let metrics: Vec<_> = algos
        .iter()
        .map(|a| {
            cp.measure(&a.best_outcome.best_x, &PvtCorner::grid_27())
                .expect("best design measures cleanly")
        })
        .collect();

    let header = ["row", "Ours", "WEIBO", "GASPAD", "DE"];
    let mrow = |label: &str, f: &dyn Fn(usize) -> f64| {
        let mut cells = vec![label.to_string()];
        cells.extend((0..algos.len()).map(|i| format!("{:.2}", f(i))));
        cells
    };
    let rows = vec![
        mrow("max_diff1", &|i| metrics[i].max_diff1),
        mrow("max_diff2", &|i| metrics[i].max_diff2),
        mrow("max_diff3", &|i| metrics[i].max_diff3),
        mrow("max_diff4", &|i| metrics[i].max_diff4),
        mrow("deviation", &|i| metrics[i].deviation),
        // FOM statistics across runs (stored negated: undo).
        mrow("mean", &|i| -algos[i].mean()),
        mrow("median", &|i| -algos[i].median()),
        mrow("best", &|i| -algos[i].best()),
        mrow("worst", &|i| -algos[i].worst()),
        {
            let mut cells = vec!["Avg. # Sim".to_string()];
            cells.extend(algos.iter().map(|a| format!("{:.0}", a.avg_sims)));
            cells
        },
        {
            let mut cells = vec!["# Success".to_string()];
            cells.extend(algos.iter().map(|a| format!("{}/{}", a.successes, a.runs)));
            cells
        },
    ];
    print_table(
        "Table 2 — optimization results of the charge pump",
        &header,
        &rows,
    );

    println!(
        "\nOurs, best run: {} low + {} high simulations, equivalent cost {:.1} \
         (low-fidelity cost = 1/27 corner ratio).",
        ours.best_outcome.n_low, ours.best_outcome.n_high, ours.best_outcome.total_cost
    );
    println!(
        "paper shape check: Ours reaches the lowest FOM at the fewest\n\
         equivalent simulations; DE needs orders of magnitude more."
    );
}

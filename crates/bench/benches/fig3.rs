//! Figure 3 reproduction: nonlinear correlation between the low- and
//! high-fidelity power-amplifier simulations.
//!
//! The paper fixes four of the five PA design variables and sweeps the gate
//! bias `Vb`, plotting efficiency from the cheap (short/coarse transient)
//! and the expensive (long/fine transient) simulation. The two curves are
//! clearly related but *not* by any linear map — the property that breaks
//! linear co-kriging and motivates the NARGP fusion model.

use mfbo_bench::print_table;
use mfbo_circuits::pa::{PaFidelity, PowerAmplifier};

fn main() {
    mfbo_bench::init_telemetry();
    let pa = PowerAmplifier::new();
    // Fixed (Cs, Cp, W, Vdd) — a mid-range matched design; Vb sweeps.
    let (cs, cp, w, vdd) = (1.2, 0.44, 5000.0, 1.9);

    let n = 21;
    let mut rows = Vec::new();
    let mut lows = Vec::new();
    let mut highs = Vec::new();
    for i in 0..n {
        let vb = 0.3 + 0.7 * i as f64 / (n - 1) as f64;
        let x = [cs, cp, w, vb, vdd];
        let lo = pa
            .simulate(&x, &PaFidelity::low())
            .map(|m| m.eff_percent)
            .unwrap_or(f64::NAN);
        let hi = pa
            .simulate(&x, &PaFidelity::high())
            .map(|m| m.eff_percent)
            .unwrap_or(f64::NAN);
        lows.push(lo);
        highs.push(hi);
        rows.push(vec![
            format!("{vb:.3}"),
            format!("{lo:.2}"),
            format!("{hi:.2}"),
        ]);
    }
    print_table(
        "Figure 3 — PA efficiency vs gate bias at both fidelities",
        &["Vb (V)", "Eff low-fid (%)", "Eff high-fid (%)"],
        &rows,
    );

    // Quantify the nonlinearity: residual of the best *linear* map
    // low → high vs total variance explained.
    let ml = mfbo_linalg::mean(&lows);
    let mh = mfbo_linalg::mean(&highs);
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (l, h) in lows.iter().zip(&highs) {
        sxx += (l - ml) * (l - ml);
        sxy += (l - ml) * (h - mh);
        syy += (h - mh) * (h - mh);
    }
    let slope = sxy / sxx;
    let mut resid = 0.0;
    for (l, h) in lows.iter().zip(&highs) {
        let pred = mh + slope * (l - ml);
        resid += (h - pred) * (h - pred);
    }
    let r2 = 1.0 - resid / syy;
    mfbo_telemetry::event!(
        "fig3_summary",
        sweep_points = n,
        linear_r2 = r2,
        nonlinear_percent = 100.0 * (1.0 - r2),
    );
    println!("\ncorrelation: best linear map explains R² = {r2:.3} of the high-fidelity\nvariance; the remaining {:.1} % is the nonlinear component the NARGP\nkernel k1(f_l, f_l')·k2(x, x') captures (paper eq. 9).", 100.0 * (1.0 - r2));
}

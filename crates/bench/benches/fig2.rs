//! Figure 2 reproduction: multi-fidelity posterior together with the EI
//! acquisition profile, demonstrating the near-zero EI gradient around the
//! incumbent that motivates the paper's biased MSP start distribution
//! (§4.1).
//!
//! The printed table is the data behind the paper's two stacked panels:
//! the fusion posterior over the pedagogical function and EI(x) below it.
//! The final section quantifies the "flat EI at the incumbent" effect.

use mfbo::acquisition::expected_improvement;
use mfbo::{MfGp, MfGpConfig};
use mfbo_bench::print_table;
use mfbo_circuits::testfns;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    mfbo_bench::init_telemetry();
    // Same training setup as Figure 1 but with fewer high-fidelity points
    // so the EI surface retains structure.
    let n_low = 50;
    let n_high = 8;
    let xl: Vec<Vec<f64>> = (0..n_low)
        .map(|i| vec![i as f64 / (n_low - 1) as f64])
        .collect();
    let yl: Vec<f64> = xl.iter().map(|x| testfns::pedagogical_low(x[0])).collect();
    let xh: Vec<Vec<f64>> = (0..n_high)
        .map(|i| vec![i as f64 / (n_high - 1) as f64])
        .collect();
    let yh: Vec<f64> = xh.iter().map(|x| testfns::pedagogical_high(x[0])).collect();

    let tau = yh.iter().cloned().fold(f64::INFINITY, f64::min);
    let tau_x = xh[yh
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("non-NaN"))
        .map(|(i, _)| i)
        .expect("non-empty")][0];

    let mut rng = StdRng::seed_from_u64(2);
    let mf =
        MfGp::fit(xl, yl, xh, yh, &MfGpConfig::default(), &mut rng).expect("fusion model trains");

    let n = 201;
    let mut rows = Vec::new();
    let mut ei_max = 0.0f64;
    let ei_at = |x: f64| {
        let p = mf.predict(&[x]);
        expected_improvement(p.mean, p.std_dev(), tau)
    };
    for i in 0..n {
        let x = i as f64 / (n - 1) as f64;
        let p = mf.predict(&[x]);
        let ei = ei_at(x);
        ei_max = ei_max.max(ei);
        if i % 10 == 0 {
            rows.push(vec![
                format!("{x:.2}"),
                format!("{:.4}", testfns::pedagogical_high(x)),
                format!("{:.4}", p.mean),
                format!("{:.4}", 3.0 * p.std_dev()),
                format!("{ei:.5}"),
            ]);
        }
    }
    print_table(
        "Figure 2 — multi-fidelity posterior and the EI profile",
        &["x", "f_h(x)", "MF mean", "MF 3σ", "EI"],
        &rows,
    );

    // The paper's §4.1 argument: EI and its gradient vanish at the
    // incumbent, so uniformly scattered starts cannot exploit the incumbent
    // basin; a fraction of starts must be planted there.
    println!("\nincumbent: τ = {tau:.4} at x = {tau_x:.3}");
    let h = 1e-4;
    let g = (ei_at(tau_x + h) - ei_at(tau_x - h)) / (2.0 * h);
    mfbo_telemetry::event!(
        "fig2_summary",
        tau = tau,
        tau_x = tau_x,
        ei_at_incumbent = ei_at(tau_x),
        ei_gradient_at_incumbent = g.abs(),
        ei_max = ei_max,
    );
    println!("EI at incumbent          = {:.3e}", ei_at(tau_x));
    println!("|dEI/dx| at incumbent    = {:.3e}", g.abs());
    println!("max EI over the domain   = {ei_max:.3e}");
    println!("\npaper shape check: EI at the incumbent is orders of magnitude\nbelow the domain maximum — uniform restarts rarely land in that basin.");
}

//! Criterion microbenchmarks of the computational kernels: Cholesky
//! factorization, GP training and prediction, fusion-model prediction, and
//! one transient PA simulation / one charge-pump corner solve.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mfbo::{MfGp, MfGpConfig};
use mfbo_circuits::charge_pump::ChargePump;
use mfbo_circuits::pa::{PaFidelity, PowerAmplifier};
use mfbo_circuits::pvt::PvtCorner;
use mfbo_circuits::testfns;
use mfbo_gp::kernel::{Kernel, SquaredExponential};
use mfbo_gp::{nlml_with_grad, nlml_with_grad_cached, Gp, GpConfig, NlmlWorkspace};
use mfbo_linalg::{Cholesky, Matrix};
use mfbo_opt::msp::MultiStart;
use mfbo_opt::Bounds;
use mfbo_pool::Parallelism;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_cholesky(c: &mut Criterion) {
    let mut group = c.benchmark_group("cholesky");
    group.sample_size(10);
    for &n in &[32usize, 128, 256, 512] {
        // SPD matrix: B Bᵀ + n I.
        let b = Matrix::from_fn(n, n, |i, j| ((i * 31 + j * 17) % 13) as f64 / 13.0 - 0.5);
        let mut a = b.matmul(&b.transpose());
        a.add_diag(n as f64);
        group.bench_with_input(BenchmarkId::new("blocked", n), &a, |bch, a| {
            bch.iter(|| Cholesky::new(black_box(a)).expect("spd"))
        });
        group.bench_with_input(BenchmarkId::new("unblocked", n), &a, |bch, a| {
            bch.iter(|| Cholesky::new_unblocked(black_box(a)).expect("spd"))
        });
    }
    group.finish();
}

/// Training inputs in [0,1]^dim with deterministic pseudo-random spread —
/// the data shape of the BENCH_linalg.json measurements (dim = 12, the
/// middle of the 10–36 design-variable range of the paper's circuits).
fn linalg_bench_data(n: usize, dim: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..dim)
                .map(|d| ((i * 31 + d * 17) % 97) as f64 / 96.0)
                .collect()
        })
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| (7.0 * x[0]).sin() + x.iter().sum::<f64>())
        .collect();
    (xs, ys)
}

/// One NLML + gradient evaluation — the inner loop of hyperparameter
/// training (L-BFGS calls this hundreds of times per fit over fixed data).
/// `naive` rebuilds pairwise differences per call; `cached` replays them
/// from a [`NlmlWorkspace`] (built once per fit, outside the timed loop, as
/// `Gp::fit` does). The two rows return bit-identical values.
fn bench_nlml_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("nlml_eval");
    group.sample_size(10);
    let dim = 12;
    for &n in &[32usize, 128, 512] {
        let (xs, ys) = linalg_bench_data(n, dim);
        let kernel = SquaredExponential::new(dim);
        let mut theta = kernel.default_params();
        theta.push((1e-3f64).ln());
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |bch, _| {
            bch.iter(|| nlml_with_grad(black_box(&kernel), black_box(&theta), &xs, &ys))
        });
        let ws = NlmlWorkspace::new(&xs);
        group.bench_with_input(BenchmarkId::new("cached", n), &n, |bch, _| {
            bch.iter(|| nlml_with_grad_cached(black_box(&kernel), black_box(&theta), &ws, &ys))
        });
    }
    group.finish();
}

/// 256-point posterior sweep — the shape of the MSP restart scoring and MC
/// propagation workloads. `pointwise` loops [`Gp::predict_standardized`];
/// `batched` issues one [`Gp::predict_batch_standardized`] call. Bit-identical
/// results.
fn bench_predict_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("predict_batch");
    group.sample_size(10);
    let dim = 12;
    let (queries, _) = linalg_bench_data(256, dim);
    for &n in &[32usize, 128, 512] {
        let (xs, ys) = linalg_bench_data(n, dim);
        let mut rng = StdRng::seed_from_u64(0);
        let gp = Gp::fit(
            SquaredExponential::new(dim),
            xs,
            ys,
            &GpConfig::fast(),
            &mut rng,
        )
        .expect("fit");
        group.bench_with_input(BenchmarkId::new("pointwise256", n), &gp, |bch, gp| {
            bch.iter(|| {
                for q in &queries {
                    black_box(gp.predict_standardized(black_box(q)));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("batched256", n), &gp, |bch, gp| {
            bch.iter(|| gp.predict_batch_standardized(black_box(&queries)))
        });
    }
    group.finish();
}

/// SIMD micro-kernel dispatch A/B: the same workload under the forced
/// scalar backend and the runtime-detected one (identical rows on hardware
/// without AVX2/NEON). Results are bit-identical in both modes — the rows
/// measure pure dispatch speedup on the kernel-matrix build, the blocked
/// Cholesky factorization (trailing-update dominated at large n), and the
/// batched posterior sweep. BENCH_simd.json holds the recorded medians.
fn bench_simd_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("simd_kernels");
    group.sample_size(10);
    let dim = 12;
    let backends = [
        ("scalar", mfbo_simd::Backend::Scalar),
        ("detected", mfbo_simd::detect()),
    ];
    for &n in &[32usize, 128, 512] {
        let (xs, _) = linalg_bench_data(n, dim);
        let kernel = SquaredExponential::new(dim);
        let theta = kernel.default_params();
        for (name, be) in backends {
            let batch = mfbo_gp::DiffBatch::lower_triangle_with_backend(&xs, be);
            let mut kv = vec![0.0; batch.len()];
            group.bench_with_input(
                BenchmarkId::new(format!("kernel_matrix_build_{name}"), n),
                &n,
                |bch, _| {
                    bch.iter(|| {
                        kernel.eval_from_diffs(black_box(&theta), black_box(&batch), &mut kv)
                    })
                },
            );
        }
        let b = Matrix::from_fn(n, n, |i, j| ((i * 31 + j * 17) % 13) as f64 / 13.0 - 0.5);
        let mut a = b.matmul(&b.transpose());
        a.add_diag(n as f64);
        for (name, be) in backends {
            group.bench_with_input(
                BenchmarkId::new(format!("cholesky_{name}"), n),
                &a,
                |bch, a| bch.iter(|| Cholesky::new_with_backend(black_box(a), be).expect("spd")),
            );
        }
        let (xs, ys) = linalg_bench_data(n, dim);
        let (queries, _) = linalg_bench_data(256, dim);
        let mut rng = StdRng::seed_from_u64(0);
        let gp = Gp::fit(
            SquaredExponential::new(dim),
            xs,
            ys,
            &GpConfig::fast(),
            &mut rng,
        )
        .expect("fit");
        for (name, be) in backends {
            group.bench_with_input(
                BenchmarkId::new(format!("predict_batch256_{name}"), n),
                &gp,
                |bch, gp| {
                    bch.iter(|| gp.predict_batch_standardized_with_backend(black_box(&queries), be))
                },
            );
        }
    }
    group.finish();
}

fn gp_training_data(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect();
    let ys: Vec<f64> = xs.iter().map(|x| (7.0 * x[0]).sin()).collect();
    (xs, ys)
}

fn bench_gp(c: &mut Criterion) {
    let mut group = c.benchmark_group("gp");
    group.sample_size(10);
    for &n in &[25usize, 100] {
        let (xs, ys) = gp_training_data(n);
        group.bench_with_input(BenchmarkId::new("fit", n), &n, |bch, _| {
            bch.iter(|| {
                let mut rng = StdRng::seed_from_u64(0);
                Gp::fit(
                    SquaredExponential::new(1),
                    xs.clone(),
                    ys.clone(),
                    &GpConfig::fast(),
                    &mut rng,
                )
                .expect("fit")
            })
        });
        let mut rng = StdRng::seed_from_u64(0);
        let gp = Gp::fit(
            SquaredExponential::new(1),
            xs.clone(),
            ys.clone(),
            &GpConfig::fast(),
            &mut rng,
        )
        .expect("fit");
        group.bench_with_input(BenchmarkId::new("predict", n), &gp, |bch, gp| {
            bch.iter(|| gp.predict(black_box(&[0.37])))
        });
    }
    group.finish();
}

fn bench_mfgp_predict(c: &mut Criterion) {
    let (xl, yl) = gp_training_data(40);
    let xh: Vec<Vec<f64>> = (0..12).map(|i| vec![i as f64 / 11.0]).collect();
    let yh: Vec<f64> = xh.iter().map(|x| testfns::pedagogical_high(x[0])).collect();
    let mut rng = StdRng::seed_from_u64(0);
    let model = MfGp::fit(xl, yl, xh, yh, &MfGpConfig::default(), &mut rng).expect("fit");
    c.bench_function("mfgp_predict_mc20", |b| {
        b.iter(|| model.predict(black_box(&[0.61])))
    });
}

fn bench_circuits(c: &mut Criterion) {
    let mut group = c.benchmark_group("circuits");
    group.sample_size(10);
    let pa = PowerAmplifier::new();
    let design = [1.2, 0.44, 5000.0, 0.9, 1.9];
    group.bench_function("pa_low_fidelity", |b| {
        b.iter(|| {
            pa.simulate(black_box(&design), &PaFidelity::low())
                .expect("sim")
        })
    });
    group.bench_function("pa_high_fidelity", |b| {
        b.iter(|| {
            pa.simulate(black_box(&design), &PaFidelity::high())
                .expect("sim")
        })
    });
    let cp = ChargePump::new();
    let x = ChargePump::reference_design();
    group.bench_function("charge_pump_typical_corner", |b| {
        b.iter(|| {
            cp.measure(black_box(&x), &[PvtCorner::typical()])
                .expect("solve")
        })
    });
    group.finish();
}

/// Telemetry overhead on an instrumented hot path (a GP fit, which emits a
/// `gp_fit` debug event and nested `cholesky` diagnostics). The three rows
/// compare telemetry off entirely, a [`NullSink`](mfbo_telemetry::sinks::NullSink)
/// installed at Info (debug emissions gated out at the `enabled` check), and
/// a NullSink accepting every record. The acceptance bar for the subsystem
/// is `null_sink_info` within 2 % of `disabled`.
fn bench_telemetry_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_overhead");
    group.sample_size(10);
    let (xs, ys) = gp_training_data(50);
    let fit = |xs: &[Vec<f64>], ys: &[f64]| {
        let mut rng = StdRng::seed_from_u64(0);
        Gp::fit(
            SquaredExponential::new(1),
            xs.to_vec(),
            ys.to_vec(),
            &GpConfig::fast(),
            &mut rng,
        )
        .expect("fit")
    };
    group.bench_function("disabled", |b| b.iter(|| fit(black_box(&xs), &ys)));
    {
        let _g = mfbo_telemetry::scoped_sink(std::sync::Arc::new(
            mfbo_telemetry::sinks::NullSink::default(),
        ));
        group.bench_function("null_sink_info", |b| b.iter(|| fit(black_box(&xs), &ys)));
    }
    {
        let _g = mfbo_telemetry::scoped_sink(std::sync::Arc::new(
            mfbo_telemetry::sinks::NullSink::with_level(mfbo_telemetry::Level::Trace),
        ));
        group.bench_function("null_sink_trace", |b| b.iter(|| fit(black_box(&xs), &ys)));
    }
    group.finish();
}

/// Speedup of the deterministic pool on the two hottest fan-out sites:
/// multi-start acquisition optimization (MSP restarts) and multi-restart
/// NLML fitting. The pool is bit-deterministic, so `threads4` computes the
/// exact same result as `serial` — only wall clock differs. On a 1-core
/// host the two rows coincide (pool overhead is the delta).
fn bench_pool_speedup(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool_speedup");
    group.sample_size(10);

    // MSP: 24 Nelder–Mead restarts on a rippled 5-D surface — the shape of
    // an acquisition landscape with many local optima.
    let bounds = Bounds::unit(5);
    let surface = |x: &[f64]| -> f64 {
        x.iter()
            .map(|&v| (23.0 * v).sin() * (9.0 * v).cos() + (v - 0.3).powi(2))
            .sum()
    };
    for (name, par) in [
        ("msp_serial", Parallelism::Serial),
        ("msp_threads4", Parallelism::Threads(4)),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(0);
                MultiStart::new(24).with_parallelism(par).minimize(
                    black_box(&surface),
                    &bounds,
                    &mut rng,
                )
            })
        });
    }

    // Multi-restart NLML fit: 8 L-BFGS restarts on a 60-point GP.
    let (xs, ys) = gp_training_data(60);
    for (name, par) in [
        ("nlml_fit_serial", Parallelism::Serial),
        ("nlml_fit_threads4", Parallelism::Threads(4)),
    ] {
        let config = GpConfig {
            restarts: 8,
            parallelism: par,
            ..GpConfig::default()
        };
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(0);
                Gp::fit(
                    SquaredExponential::new(1),
                    xs.clone(),
                    ys.clone(),
                    &config,
                    &mut rng,
                )
                .expect("fit")
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_cholesky,
    bench_nlml_eval,
    bench_predict_batch,
    bench_simd_kernels,
    bench_gp,
    bench_mfgp_predict,
    bench_circuits,
    bench_telemetry_overhead,
    bench_pool_speedup
);
criterion_main!(benches);

//! Ablation studies of the paper's design choices (beyond the paper's own
//! evaluation; DESIGN.md motivates each).
//!
//! 1. **MSP start biasing** (§4.1): 10 %/40 % anchored starts vs pure
//!    space-filling restarts, on the multimodal pedagogical problem whose
//!    eight narrow basins punish optimizers that cannot refine incumbents.
//! 2. **Fidelity-selection threshold γ** (§3.4): sweep γ and watch the
//!    low/high simulation mix and final quality.
//! 3. **Monte-Carlo propagation samples** (§3.2): accuracy and calibration
//!    of the fusion posterior vs the per-prediction sample count, in the
//!    regime where the low-fidelity model is genuinely uncertain.
//! 4. **Model class** (paper §3.1 motivation): single-fidelity GP vs linear
//!    AR(1) co-kriging (eq. 7) vs the nonlinear NARGP fusion (eq. 8–9), on
//!    a linearly- and a nonlinearly-correlated pair.

use mfbo::{Ar1Config, Ar1Gp, MfBayesOpt, MfBoConfig, MfGp, MfGpConfig};
use mfbo_bench::{print_table, Scale};
use mfbo_circuits::testfns;
use mfbo_gp::kernel::SquaredExponential;
use mfbo_gp::{Gp, GpConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    let runs = scale.pick(3, 10);

    ablate_msp_bias(runs);
    ablate_gamma(runs);
    ablate_mc_samples();
    ablate_model_class();
}

/// MSP biased anchors on/off, on the multimodal pedagogical problem
/// (8 narrow basins of slightly different depth; global minimum
/// f(1/16) ≈ −1.352).
fn ablate_msp_bias(runs: usize) {
    let problem = testfns::pedagogical();
    let mut rows = Vec::new();
    for (label, frac_l, frac_h) in [
        ("paper (10% / 40%)", 0.10, 0.40),
        ("uniform starts", 0.0, 0.0),
    ] {
        let mut bests = Vec::new();
        for r in 0..runs {
            let mut rng = StdRng::seed_from_u64(500 + r as u64);
            let config = MfBoConfig {
                initial_low: 12,
                initial_high: 5,
                budget: 14.0,
                frac_around_tau_l: frac_l,
                frac_around_tau_h: frac_h,
                parallelism: mfbo_bench::parallelism(),
                ..MfBoConfig::default()
            };
            let out = MfBayesOpt::new(config)
                .run(&problem, &mut rng)
                .expect("run succeeds");
            bests.push(out.best_objective);
        }
        rows.push(vec![
            label.to_string(),
            format!("{:.4}", mfbo_linalg::mean(&bests)),
            format!("{:.4}", bests.iter().cloned().fold(f64::INFINITY, f64::min)),
            format!(
                "{:.4}",
                bests.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            ),
        ]);
    }
    print_table(
        "Ablation 1 — MSP start biasing (pedagogical problem; truth ≈ −1.3519)",
        &["variant", "mean", "best", "worst"],
        &rows,
    );
}

/// Fidelity-selection threshold γ sweep.
fn ablate_gamma(runs: usize) {
    let problem = testfns::forrester();
    let mut rows = Vec::new();
    for gamma in [0.001, 0.01, 0.1] {
        let mut bests = Vec::new();
        let mut lows = Vec::new();
        let mut highs = Vec::new();
        for r in 0..runs {
            let mut rng = StdRng::seed_from_u64(700 + r as u64);
            let config = MfBoConfig {
                initial_low: 8,
                initial_high: 4,
                budget: 12.0,
                gamma,
                parallelism: mfbo_bench::parallelism(),
                ..MfBoConfig::default()
            };
            let out = MfBayesOpt::new(config)
                .run(&problem, &mut rng)
                .expect("run succeeds");
            bests.push(out.best_objective);
            lows.push(out.n_low as f64);
            highs.push(out.n_high as f64);
        }
        rows.push(vec![
            format!("{gamma}"),
            format!("{:.4}", mfbo_linalg::mean(&bests)),
            format!("{:.1}", mfbo_linalg::mean(&lows)),
            format!("{:.1}", mfbo_linalg::mean(&highs)),
        ]);
    }
    print_table(
        "Ablation 2 — fidelity-selection threshold γ (Forrester)",
        &["gamma", "mean best", "avg # low", "avg # high"],
        &rows,
    );
    println!("small γ hoards cheap samples; large γ rushes to expensive ones.");
}

/// Monte-Carlo sample count of the fusion posterior (paper eq. 10), in a
/// regime where the low-fidelity model carries real uncertainty (sparse
/// low-fidelity data).
fn ablate_mc_samples() {
    let n_low = 15;
    let n_high = 14;
    let xl: Vec<Vec<f64>> = (0..n_low)
        .map(|i| vec![i as f64 / (n_low - 1) as f64])
        .collect();
    let yl: Vec<f64> = xl.iter().map(|x| testfns::pedagogical_low(x[0])).collect();
    let xh: Vec<Vec<f64>> = (0..n_high)
        .map(|i| vec![i as f64 / (n_high - 1) as f64])
        .collect();
    let yh: Vec<f64> = xh.iter().map(|x| testfns::pedagogical_high(x[0])).collect();

    let mut rows = Vec::new();
    for mc in [1usize, 5, 20, 100] {
        let mut rng = StdRng::seed_from_u64(3);
        let config = MfGpConfig {
            mc_samples: mc,
            ..MfGpConfig::default()
        };
        let model = MfGp::fit(
            xl.clone(),
            yl.clone(),
            xh.clone(),
            yh.clone(),
            &config,
            &mut rng,
        )
        .expect("fusion model trains");
        let mut se = 0.0;
        let mut var_sum = 0.0;
        let mut covered = 0usize;
        let n = 201;
        let t0 = std::time::Instant::now();
        for i in 0..n {
            let x = i as f64 / (n - 1) as f64;
            let p = model.predict(&[x]);
            let truth = testfns::pedagogical_high(x);
            se += (p.mean - truth).powi(2);
            var_sum += p.var;
            if (p.mean - truth).abs() <= 3.0 * p.std_dev() + 1e-12 {
                covered += 1;
            }
        }
        let dt = t0.elapsed();
        rows.push(vec![
            format!("{mc}"),
            format!("{:.4}", (se / n as f64).sqrt()),
            format!("{:.5}", var_sum / n as f64),
            format!("{:.1}", 100.0 * covered as f64 / n as f64),
            format!("{:.1}", dt.as_secs_f64() * 1e3),
        ]);
    }
    print_table(
        "Ablation 3 — MC propagation samples (sparse low-fidelity data)",
        &[
            "samples",
            "RMSE",
            "mean post. var",
            "3σ coverage %",
            "predict time (ms)",
        ],
        &rows,
    );
    println!("one sample = plug-in: no low-fidelity uncertainty reaches the output.");
}

/// Scalar high-fidelity objective used in the model-class ablation.
type HighFn = fn(f64) -> f64;

/// Model-class comparison: SF GP vs linear AR(1) vs nonlinear NARGP.
fn ablate_model_class() {
    let pairs: [(&str, HighFn); 2] = [
        ("linear pair", |x| {
            1.5 * testfns::pedagogical_low(x) + 0.3 * x
        }),
        ("nonlinear pair", testfns::pedagogical_high),
    ];
    let n_low = 50;
    let n_high = 14;
    let mut rows = Vec::new();
    for (label, fh) in pairs {
        let xl: Vec<Vec<f64>> = (0..n_low)
            .map(|i| vec![i as f64 / (n_low - 1) as f64])
            .collect();
        let yl: Vec<f64> = xl.iter().map(|x| testfns::pedagogical_low(x[0])).collect();
        let xh: Vec<Vec<f64>> = (0..n_high)
            .map(|i| vec![i as f64 / (n_high - 1) as f64])
            .collect();
        let yh: Vec<f64> = xh.iter().map(|x| fh(x[0])).collect();

        let mut rng = StdRng::seed_from_u64(11);
        let sf = Gp::fit(
            SquaredExponential::new(1),
            xh.clone(),
            yh.clone(),
            &GpConfig::default(),
            &mut rng,
        )
        .expect("sf fit");
        let ar1 = Ar1Gp::fit(
            xl.clone(),
            yl.clone(),
            xh.clone(),
            yh.clone(),
            &Ar1Config::default(),
            &mut rng,
        )
        .expect("ar1 fit");
        let nargp = MfGp::fit(xl, yl, xh, yh, &MfGpConfig::default(), &mut rng).expect("nargp fit");

        let n = 201;
        let rmse = |pred: &dyn Fn(f64) -> f64| {
            ((0..n)
                .map(|i| {
                    let x = i as f64 / (n - 1) as f64;
                    (pred(x) - fh(x)).powi(2)
                })
                .sum::<f64>()
                / n as f64)
                .sqrt()
        };
        rows.push(vec![
            label.to_string(),
            format!("{:.4}", rmse(&|x| sf.predict(&[x]).mean)),
            format!("{:.4}", rmse(&|x| ar1.predict(&[x]).mean)),
            format!("{:.4}", rmse(&|x| nargp.predict(&[x]).mean)),
            format!("{:.2}", ar1.rho()),
        ]);
    }
    print_table(
        "Ablation 4 — model class (RMSE; paper eq. 7 linear vs eq. 8 nonlinear)",
        &["fidelity pair", "SF GP", "AR(1)", "NARGP", "ρ̂"],
        &rows,
    );
    println!("AR(1) suffices for the linear pair; only NARGP handles the nonlinear one.");
}

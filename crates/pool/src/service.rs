//! Long-lived worker pool for the evaluation service.
//!
//! The scoped maps in the crate root ([`crate::par_map`] and friends) spin
//! workers up and down around each call — right for the optimizer's
//! compute bursts, wrong for a server that evaluates candidates from many
//! concurrent runs for hours. [`WorkerPool`] keeps a fixed set of named OS
//! threads alive behind a **bounded** job queue:
//!
//! * [`WorkerPool::submit`] blocks once `queue_depth` jobs are waiting —
//!   natural backpressure that stops a flood of runs from buffering
//!   unbounded work instead of slowing down.
//! * A job that panics is caught on the worker (counted by the
//!   `pool_job_panics` counter) and never takes the thread down; the
//!   submitting side observes the failure through whatever channel the job
//!   closure carries, not through pool state.
//! * Worker threads are marked as pool workers, so any parallel map a job
//!   issues (e.g. surrogate training inside an evaluation) runs inline
//!   instead of nesting threads.
//!
//! The pool makes **no** determinism promises — jobs complete in scheduling
//! order. Determinism lives a layer up: the ask/tell core folds results
//! into the optimizer in generation order no matter when workers deliver
//! them.

use crate::IN_POOL_WORKER;
use mfbo_telemetry::counter;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of long-lived worker threads with a bounded queue.
/// Dropping the pool drains the queue: already-submitted jobs finish, new
/// submissions are impossible, and the drop blocks until every worker has
/// exited.
pub struct WorkerPool {
    tx: Option<SyncSender<Job>>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
}

impl WorkerPool {
    /// Spawns `workers` threads (at least one) behind a queue holding at
    /// most `queue_depth` waiting jobs (at least one).
    pub fn new(workers: usize, queue_depth: usize) -> WorkerPool {
        let workers = workers.max(1);
        let (tx, rx) = std::sync::mpsc::sync_channel::<Job>(queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("mfbo-worker-{i}"))
                    .spawn(move || worker_loop(&rx))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            handles,
            workers,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Enqueues a job, **blocking** while the queue is full. Results travel
    /// through whatever channel the closure captures.
    pub fn submit<F: FnOnce() + Send + 'static>(&self, job: F) {
        counter!("pool_jobs_submitted", 1u64);
        self.tx
            .as_ref()
            .expect("pool already shut down")
            .send(Box::new(job))
            .expect("all pool workers exited");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel ends each worker's recv loop once the queue
        // is drained.
        self.tx.take();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(rx: &Mutex<Receiver<Job>>) {
    IN_POOL_WORKER.with(|c| c.set(true));
    loop {
        // The lock guards only the dequeue; idle workers queue up on the
        // mutex while one blocks in recv.
        let job = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => break,
        };
        match job {
            Ok(job) => {
                if catch_unwind(AssertUnwindSafe(job)).is_err() {
                    counter!("pool_job_panics", 1u64);
                }
            }
            Err(_) => break, // channel closed: pool dropped
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc::channel;

    #[test]
    fn runs_jobs_concurrently_and_returns_results() {
        let pool = WorkerPool::new(4, 16);
        let (tx, rx) = channel();
        for i in 0..32u64 {
            let tx = tx.clone();
            pool.submit(move || tx.send(i * i).unwrap());
        }
        drop(tx);
        let mut got: Vec<u64> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..32).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn a_panicking_job_does_not_kill_its_worker() {
        let pool = WorkerPool::new(1, 4);
        pool.submit(|| panic!("boom"));
        let (tx, rx) = channel();
        pool.submit(move || tx.send(42u8).unwrap());
        assert_eq!(rx.recv().unwrap(), 42);
    }

    #[test]
    fn drop_drains_submitted_jobs() {
        let done = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(2, 64);
            for _ in 0..50 {
                let done = Arc::clone(&done);
                pool.submit(move || {
                    done.fetch_add(1, Ordering::SeqCst);
                });
            }
        }
        assert_eq!(done.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn jobs_on_workers_run_nested_maps_inline() {
        let pool = WorkerPool::new(1, 4);
        let (tx, rx) = channel();
        pool.submit(move || {
            // in_worker() gates the nested-parallelism fallback.
            tx.send(crate::in_worker()).unwrap();
        });
        assert!(rx.recv().unwrap(), "pool thread must be marked as a worker");
    }
}

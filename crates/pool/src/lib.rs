//! Deterministic scoped-thread work pool for the MFBO hot paths.
//!
//! The optimization loop of the paper spends nearly all of its wall-clock
//! time in three embarrassingly parallel stages: MSP acquisition restarts
//! (§4.1), multi-restart NLML hyperparameter training (§2.3), and the
//! Monte-Carlo integration of the NARGP posterior (§3.2, eq. 10). This crate
//! provides the one primitive those stages share: an order-preserving
//! parallel map over independent work items, built on [`std::thread::scope`]
//! so it needs no external dependencies and no long-lived worker state.
//!
//! # Determinism contract
//!
//! For any fixed inputs, [`par_map`] / [`par_map_indexed`] /
//! [`par_map_seeded`] return **bit-identical** results under
//! [`Parallelism::Serial`] and [`Parallelism::Threads`]`(n)` for every `n`:
//!
//! * Work items are pure functions of their index (and, for
//!   [`par_map_seeded`], of a per-index RNG stream); they never share
//!   mutable state.
//! * Results are collected **by item index**, not by completion order, so
//!   any reduction the caller performs over the returned `Vec` visits items
//!   in the same order a serial loop would.
//! * [`par_map_seeded`] derives one RNG stream per item by drawing a 64-bit
//!   seed per index from the caller's master RNG *serially, in index order*,
//!   before any worker starts. The stream an item sees therefore depends
//!   only on (master RNG state, item index) — never on thread count or
//!   scheduling.
//!
//! Nested calls run serially: a `par_map` issued from inside a pool worker
//! falls back to an inline loop (same results, no thread explosion), so
//! callers can parallelize at every layer and let the outermost call win.
//!
//! # Telemetry
//!
//! Each parallel dispatch emits a `Debug`-level `pool` span with the worker
//! count, a `pool` event with queue statistics (items, workers, and the
//! most/least items any worker pulled from the shared queue), and a
//! `pool_items` counter — all from the *calling* thread after the join, so
//! thread-scoped sinks (e.g. `CollectSink` in tests) observe them.

#![deny(missing_docs)]

pub mod service;
pub use service::WorkerPool;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// How a parallel map distributes its work items.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Run every item inline on the calling thread (the default).
    #[default]
    Serial,
    /// Use up to `n` worker threads (clamped to at least 1 and to the item
    /// count). `Threads(1)` is equivalent to `Serial`.
    Threads(usize),
    /// Use the `MFBO_THREADS` environment variable if set to a positive
    /// integer, otherwise [`std::thread::available_parallelism`].
    Auto,
}

impl Parallelism {
    /// Resolves the worker count this configuration implies.
    pub fn workers(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => n.max(1),
            Parallelism::Auto => std::env::var("MFBO_THREADS")
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|&n| n > 0)
                .unwrap_or_else(|| {
                    std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1)
                }),
        }
    }

    /// Parses a CLI-style thread spec: `"auto"` or `"0"` →
    /// [`Parallelism::Auto`], `"1"` → [`Parallelism::Serial`], `N` →
    /// [`Parallelism::Threads`]`(N)`.
    pub fn parse(s: &str) -> Option<Parallelism> {
        match s.trim() {
            "auto" | "0" => Some(Parallelism::Auto),
            other => match other.parse::<usize>() {
                Ok(1) => Some(Parallelism::Serial),
                Ok(n) if n > 1 => Some(Parallelism::Threads(n)),
                _ => None,
            },
        }
    }
}

thread_local! {
    static IN_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Whether the current thread is a pool worker. Parallel maps issued from a
/// worker run serially to avoid nested thread explosions.
pub fn in_worker() -> bool {
    IN_POOL_WORKER.with(|c| c.get())
}

/// Maps `f` over `0..n`, returning results in index order.
///
/// This is the core primitive: it distributes indices to `workers` scoped
/// threads through a shared atomic queue, then reassembles results by index
/// so the output is independent of scheduling. Falls back to an inline
/// serial loop when the resolved worker count is 1, when `n <= 1`, or when
/// called from inside a pool worker.
///
/// # Panics
///
/// If `f` panics for some index, the panic is propagated to the caller
/// after all workers have stopped (remaining queue items are abandoned).
pub fn par_map_indexed<T, F>(par: Parallelism, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = par.workers().min(n.max(1));
    if workers <= 1 || n <= 1 || in_worker() {
        return (0..n).map(f).collect();
    }

    let _span = mfbo_telemetry::debug_span!("pool", items = n, workers = workers);
    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let mut per_worker: Vec<u64> = Vec::with_capacity(workers);
    let mut panic_payload: Option<Box<dyn std::any::Any + Send>> = None;

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let f = &f;
                let next = &next;
                let abort = &abort;
                scope.spawn(move || {
                    IN_POOL_WORKER.with(|c| c.set(true));
                    let mut local: Vec<(usize, T)> = Vec::new();
                    let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
                    loop {
                        if abort.load(Ordering::Relaxed) {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        match catch_unwind(AssertUnwindSafe(|| f(i))) {
                            Ok(v) => local.push((i, v)),
                            Err(p) => {
                                abort.store(true, Ordering::Relaxed);
                                panic = Some(p);
                                break;
                            }
                        }
                    }
                    (local, panic)
                })
            })
            .collect();
        for handle in handles {
            // Scoped threads only return Err on panic, and worker panics are
            // caught above; treat a join failure like a worker panic anyway.
            match handle.join() {
                Ok((local, panic)) => {
                    per_worker.push(local.len() as u64);
                    for (i, v) in local {
                        slots[i] = Some(v);
                    }
                    if panic_payload.is_none() {
                        panic_payload = panic;
                    }
                }
                Err(p) => {
                    if panic_payload.is_none() {
                        panic_payload = Some(p);
                    }
                }
            }
        }
    });

    if let Some(p) = panic_payload {
        resume_unwind(p);
    }

    mfbo_telemetry::debug_event!(
        "pool",
        items = n,
        workers = workers,
        max_per_worker = per_worker.iter().copied().max().unwrap_or(0),
        min_per_worker = per_worker.iter().copied().min().unwrap_or(0),
    );
    mfbo_telemetry::counter!("pool_items", n as u64);

    slots
        .into_iter()
        .map(|s| s.expect("pool worker completed every claimed item"))
        .collect()
}

/// Maps `f` over `items`, returning results in item order.
///
/// See [`par_map_indexed`] for the determinism and panic contract.
pub fn par_map<I, T, F>(par: Parallelism, items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    par_map_indexed(par, items.len(), |i| f(&items[i]))
}

/// Maps `f` over `items`, giving each item its own deterministic RNG stream.
///
/// One 64-bit seed per item is drawn from `rng` serially in index order
/// before any work is dispatched, and item `i` receives
/// `StdRng::seed_from_u64(seed_i)`. The stream an item observes therefore
/// depends only on the master RNG state and the item index — never on the
/// thread count — so `Serial` and `Threads(n)` produce bit-identical
/// results, and the master RNG is left in the same state under both.
pub fn par_map_seeded<I, T, F, R>(par: Parallelism, rng: &mut R, items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I, &mut StdRng) -> T + Sync,
    R: Rng + ?Sized,
{
    let seeds: Vec<u64> = items.iter().map(|_| rng.gen::<u64>()).collect();
    par_map_indexed(par, items.len(), |i| {
        let mut item_rng = StdRng::seed_from_u64(seeds[i]);
        f(&items[i], &mut item_rng)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfbo_telemetry::sinks::CollectSink;
    use std::sync::Arc;

    #[test]
    fn preserves_index_order() {
        for par in [
            Parallelism::Serial,
            Parallelism::Threads(2),
            Parallelism::Threads(5),
        ] {
            let out = par_map_indexed(par, 100, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_input_returns_empty() {
        let out: Vec<usize> = par_map_indexed(Parallelism::Threads(4), 0, |i| i);
        assert!(out.is_empty());
        let items: [u8; 0] = [];
        let out: Vec<u8> = par_map(Parallelism::Threads(4), &items, |&b| b);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item_runs_inline() {
        let out = par_map_indexed(Parallelism::Threads(8), 1, |i| {
            assert!(!in_worker());
            i + 41
        });
        assert_eq!(out, vec![41]);
    }

    #[test]
    fn threads_one_is_serial() {
        let main_thread = std::thread::current().id();
        let out = par_map_indexed(Parallelism::Threads(1), 10, |i| {
            assert_eq!(std::thread::current().id(), main_thread);
            i
        });
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn nested_calls_fall_back_to_serial() {
        let out = par_map_indexed(Parallelism::Threads(3), 6, |i| {
            assert!(in_worker());
            let inner = par_map_indexed(Parallelism::Threads(3), 4, |j| {
                assert!(in_worker());
                i * 10 + j
            });
            inner.iter().sum::<usize>()
        });
        let expect: Vec<usize> = (0..6).map(|i| (0..4).map(|j| i * 10 + j).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn worker_panic_propagates() {
        let r = std::panic::catch_unwind(|| {
            par_map_indexed(Parallelism::Threads(3), 16, |i| {
                if i == 7 {
                    panic!("boom at {i}");
                }
                i
            })
        });
        let payload = r.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("boom"), "payload = {msg:?}");
    }

    #[test]
    fn auto_honors_mfbo_threads_env() {
        // This is the only test in this binary that touches the variable.
        std::env::set_var("MFBO_THREADS", "3");
        assert_eq!(Parallelism::Auto.workers(), 3);
        std::env::set_var("MFBO_THREADS", "not-a-number");
        let fallback = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(Parallelism::Auto.workers(), fallback);
        std::env::remove_var("MFBO_THREADS");
        assert_eq!(Parallelism::Auto.workers(), fallback);
    }

    #[test]
    fn parse_accepts_cli_specs() {
        assert_eq!(Parallelism::parse("auto"), Some(Parallelism::Auto));
        assert_eq!(Parallelism::parse("0"), Some(Parallelism::Auto));
        assert_eq!(Parallelism::parse("1"), Some(Parallelism::Serial));
        assert_eq!(Parallelism::parse("4"), Some(Parallelism::Threads(4)));
        assert_eq!(Parallelism::parse("nope"), None);
        assert_eq!(Parallelism::parse("-2"), None);
    }

    #[test]
    fn workers_clamps_to_at_least_one() {
        assert_eq!(Parallelism::Serial.workers(), 1);
        assert_eq!(Parallelism::Threads(0).workers(), 1);
        assert_eq!(Parallelism::Threads(6).workers(), 6);
    }

    #[test]
    fn seeded_map_is_thread_count_invariant() {
        let items: Vec<u32> = (0..12).collect();
        let draw = |&item: &u32, rng: &mut StdRng| {
            let a: f64 = rng.gen();
            let b = rng.gen_range(0usize..100);
            (item, a, b)
        };
        let mut rng_a = StdRng::seed_from_u64(99);
        let serial = par_map_seeded(Parallelism::Serial, &mut rng_a, &items, draw);
        let mut rng_b = StdRng::seed_from_u64(99);
        let threaded = par_map_seeded(Parallelism::Threads(4), &mut rng_b, &items, draw);
        assert_eq!(serial, threaded);
        // Master RNG left in the same state under both modes.
        assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
    }

    #[test]
    fn emits_pool_telemetry_through_collect_sink() {
        let sink = Arc::new(CollectSink::with_level(mfbo_telemetry::Level::Debug));
        let guard = mfbo_telemetry::scoped_sink(sink.clone());
        let out = par_map_indexed(Parallelism::Threads(2), 9, |i| i);
        drop(guard);
        assert_eq!(out.len(), 9);

        let events: Vec<_> = sink
            .named("pool")
            .into_iter()
            .filter(|r| r.kind == mfbo_telemetry::Kind::Event)
            .collect();
        assert_eq!(events.len(), 1);
        assert_eq!(
            events[0].field("items"),
            Some(&mfbo_telemetry::Value::U64(9))
        );
        assert_eq!(
            events[0].field("workers"),
            Some(&mfbo_telemetry::Value::U64(2))
        );

        let counters: Vec<_> = sink
            .records()
            .into_iter()
            .filter(|r| r.kind == mfbo_telemetry::Kind::Counter && r.name == "pool_items")
            .collect();
        assert_eq!(counters.len(), 1);
        assert_eq!(
            counters[0].field("value"),
            Some(&mfbo_telemetry::Value::U64(9))
        );

        // Serial dispatches stay silent: no span, no event, no counter.
        let sink2 = Arc::new(CollectSink::with_level(mfbo_telemetry::Level::Debug));
        let guard = mfbo_telemetry::scoped_sink(sink2.clone());
        let _ = par_map_indexed(Parallelism::Serial, 9, |i| i);
        drop(guard);
        assert!(sink2.named("pool").is_empty());
    }
}

//! Property tests for the deterministic pool: for arbitrary item counts and
//! thread counts, parallel maps must preserve index order and per-index RNG
//! streams must be independent of scheduling.

use mfbo_pool::{par_map, par_map_indexed, par_map_seeded, Parallelism};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

proptest! {
    #[test]
    fn par_map_preserves_ordering(n in 0usize..200, threads in 1usize..12) {
        let expect: Vec<usize> = (0..n).map(|i| i.wrapping_mul(2654435761)).collect();
        let got = par_map_indexed(Parallelism::Threads(threads), n, |i| {
            i.wrapping_mul(2654435761)
        });
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn par_map_matches_serial_iterator(items in prop::collection::vec(-1.0e6f64..1.0e6, 40), threads in 2usize..9) {
        let f = |x: &f64| (x.sin() * 1e3).to_bits();
        let serial: Vec<u64> = items.iter().map(f).collect();
        let parallel = par_map(Parallelism::Threads(threads), &items, f);
        prop_assert_eq!(serial, parallel);
    }

    #[test]
    fn seeded_streams_depend_only_on_index(seed in 0u64..1_000_000, n in 1usize..60, threads in 2usize..9) {
        let items: Vec<usize> = (0..n).collect();
        let draw = |&i: &usize, rng: &mut StdRng| {
            // Consume a per-item-dependent number of draws so any stream
            // sharing between items would corrupt neighbours.
            let mut acc = i as u64;
            for _ in 0..(i % 5 + 1) {
                acc = acc.wrapping_add(rng.gen::<u64>());
            }
            (acc, rng.gen_range(0usize..7))
        };

        let mut rng_serial = StdRng::seed_from_u64(seed);
        let serial = par_map_seeded(Parallelism::Serial, &mut rng_serial, &items, draw);
        let mut rng_par = StdRng::seed_from_u64(seed);
        let parallel = par_map_seeded(Parallelism::Threads(threads), &mut rng_par, &items, draw);
        prop_assert_eq!(&serial, &parallel);

        // The master RNG is left in the same state under both modes.
        prop_assert_eq!(rng_serial.gen::<u64>(), rng_par.gen::<u64>());

        // Dropping the last item must not change the streams of the others:
        // stream i depends only on (master state, index i).
        let mut rng_prefix = StdRng::seed_from_u64(seed);
        let prefix = par_map_seeded(
            Parallelism::Threads(threads),
            &mut rng_prefix,
            &items[..n - 1],
            draw,
        );
        prop_assert_eq!(&serial[..n - 1], &prefix[..]);
    }

    #[test]
    fn thread_count_never_changes_results(n in 2usize..80) {
        let baseline = par_map_indexed(Parallelism::Serial, n, |i| (i as f64).sqrt().to_bits());
        for threads in [2, 3, 8, 64] {
            let got = par_map_indexed(Parallelism::Threads(threads), n, |i| {
                (i as f64).sqrt().to_bits()
            });
            prop_assert_eq!(&baseline, &got, "threads = {}", threads);
        }
    }
}

//! Property and protocol tests for the [`AskTellMfbo`] state machine: a
//! misbehaving or adversarial client must never corrupt the optimizer.
//!
//! The contract under test:
//!
//! - `tell` with an unknown, duplicate, or never-issued id — or a malformed
//!   result — returns [`MfboError::Protocol`] and leaves the run state
//!   unchanged (the correct result can still be told afterwards).
//! - `ask` never issues more than `max_pending` candidates in flight, and
//!   returns an empty batch exactly when the run is finished.
//! - The outcome is a function of the *generation* order only: any
//!   permutation of tell arrivals within a batch yields a bit-identical run,
//!   with protocol-violating calls interleaved anywhere.
//! - `finish` on a run with candidates still in flight is a protocol error.

use mfbo::problem::{Evaluation, Fidelity, FunctionProblem, MultiFidelityProblem};
use mfbo::{AskTellMfbo, Candidate, MfBoConfig, MfboError, Outcome, RunOptions, Told};
use mfbo_opt::Bounds;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn forrester() -> FunctionProblem {
    FunctionProblem::builder("forrester", Bounds::unit(1))
        .high(|x: &[f64]| (6.0 * x[0] - 2.0).powi(2) * (12.0 * x[0] - 4.0).sin())
        .low(|x: &[f64]| {
            0.5 * (6.0 * x[0] - 2.0).powi(2) * (12.0 * x[0] - 4.0).sin() + 10.0 * (x[0] - 0.5) - 5.0
        })
        .low_cost(0.1)
        .build()
}

fn config(max_pending: usize) -> MfBoConfig {
    MfBoConfig {
        initial_low: 6,
        initial_high: 3,
        budget: 6.0,
        max_pending,
        ..MfBoConfig::default()
    }
}

fn evaluate(problem: &FunctionProblem, c: &Candidate) -> Told {
    Told::Evaluated {
        evaluation: problem.evaluate(&c.x, c.fidelity),
        attempts: 1,
    }
}

/// Drives a run to completion, telling each batch in the order given by
/// `permute` (identity = issue order).
fn run_with_order(
    problem: &FunctionProblem,
    max_pending: usize,
    permute: impl Fn(usize, &mut Vec<Candidate>),
) -> Outcome {
    let mut rng = StdRng::seed_from_u64(7);
    let mut opts = RunOptions::default();
    let mut driver = AskTellMfbo::new(config(max_pending), problem, &mut rng, &mut opts).unwrap();
    let mut round = 0;
    while !driver.is_finished() {
        let mut batch = driver.ask(max_pending).unwrap();
        assert!(!batch.is_empty(), "empty ask on an unfinished run");
        assert!(
            batch.len() + (driver.pending_count() - batch.len()) <= max_pending,
            "more than max_pending candidates in flight"
        );
        permute(round, &mut batch);
        for c in &batch {
            driver.tell(c.id, evaluate(problem, c)).unwrap();
        }
        round += 1;
    }
    driver.finish().unwrap()
}

fn assert_same_run(a: &Outcome, b: &Outcome) {
    assert_eq!(a.history.len(), b.history.len(), "history length");
    for (i, (ra, rb)) in a.history.iter().zip(&b.history).enumerate() {
        assert_eq!(ra, rb, "history record {i}");
    }
    assert_eq!(a.best_x, b.best_x, "best_x");
    assert!(
        a.total_cost.to_bits() == b.total_cost.to_bits(),
        "total_cost"
    );
}

#[test]
fn unknown_duplicate_and_unissued_tells_are_rejected_without_damage() {
    let problem = forrester();
    let mut rng = StdRng::seed_from_u64(3);
    let mut opts = RunOptions::default();
    let mut driver = AskTellMfbo::new(config(2), &problem, &mut rng, &mut opts).unwrap();

    // Ask one of the two available slots; the second stays unissued.
    let batch = driver.ask(1).unwrap();
    assert_eq!(batch.len(), 1);
    let c = &batch[0];

    // Unknown id.
    let err = driver.tell(u64::MAX, evaluate(&problem, c)).unwrap_err();
    assert!(
        matches!(err, MfboError::Protocol { .. }),
        "unknown id: {err}"
    );

    // Unissued id: the pump keeps the queue topped up to max_pending, so a
    // second slot exists but ask() has not handed it out.
    assert_eq!(driver.pending_count(), 2);
    let unissued = c.id + 1;
    let err = driver.tell(unissued, evaluate(&problem, c)).unwrap_err();
    assert!(matches!(err, MfboError::Protocol { .. }), "unissued: {err}");

    // Wrong constraint arity.
    let err = driver
        .tell(
            c.id,
            Told::Evaluated {
                evaluation: Evaluation {
                    objective: 0.0,
                    constraints: vec![0.0, 0.0],
                },
                attempts: 1,
            },
        )
        .unwrap_err();
    assert!(matches!(err, MfboError::Protocol { .. }), "arity: {err}");

    // Non-finite values must go through Told::Failed.
    let err = driver
        .tell(
            c.id,
            Told::Evaluated {
                evaluation: Evaluation {
                    objective: f64::NAN,
                    constraints: vec![],
                },
                attempts: 1,
            },
        )
        .unwrap_err();
    assert!(
        matches!(err, MfboError::Protocol { .. }),
        "non-finite: {err}"
    );

    // The correct tell still lands, then a duplicate is rejected.
    driver.tell(c.id, evaluate(&problem, c)).unwrap();
    let committed = c.id;
    let err = driver.tell(committed, evaluate(&problem, c)).unwrap_err();
    assert!(
        matches!(err, MfboError::Protocol { .. }),
        "duplicate: {err}"
    );

    // None of the violations poisoned the run: drive it to completion.
    while !driver.is_finished() {
        let batch = driver.ask(2).unwrap();
        for c in &batch {
            driver.tell(c.id, evaluate(&problem, c)).unwrap();
        }
    }
    let out = driver.finish().unwrap();
    assert!(out.total_cost >= 6.0, "run must exhaust its budget");
}

#[test]
fn finish_with_candidates_in_flight_is_a_protocol_error() {
    let problem = forrester();
    let mut rng = StdRng::seed_from_u64(3);
    let mut opts = RunOptions::default();
    let mut driver = AskTellMfbo::new(config(2), &problem, &mut rng, &mut opts).unwrap();
    let batch = driver.ask(2).unwrap();
    assert!(!batch.is_empty());
    let err = driver.finish().unwrap_err();
    assert!(matches!(err, MfboError::Protocol { .. }), "{err}");
}

#[test]
fn ask_past_the_budget_returns_empty_batches() {
    let problem = forrester();
    let mut rng = StdRng::seed_from_u64(3);
    let mut opts = RunOptions::default();
    let mut driver = AskTellMfbo::new(config(1), &problem, &mut rng, &mut opts).unwrap();
    while !driver.is_finished() {
        // Over-asking never over-issues: at most one slot exists.
        let batch = driver.ask(64).unwrap();
        assert_eq!(batch.len(), 1, "q=1 must issue exactly one candidate");
        driver
            .tell(batch[0].id, evaluate(&problem, &batch[0]))
            .unwrap();
    }
    for _ in 0..3 {
        assert!(driver.ask(64).unwrap().is_empty(), "ask past budget");
    }
    assert_eq!(driver.pending_count(), 0);
    driver.finish().unwrap();
}

#[test]
fn batches_interleave_both_fidelities() {
    // The fidelity-selection rule keeps working inside a batch: across the
    // run, asked batches must contain low- and high-fidelity candidates.
    let problem = forrester();
    let mut rng = StdRng::seed_from_u64(7);
    let mut opts = RunOptions::default();
    let mut driver = AskTellMfbo::new(config(4), &problem, &mut rng, &mut opts).unwrap();
    let (mut low, mut high) = (0usize, 0usize);
    while !driver.is_finished() {
        let batch = driver.ask(4).unwrap();
        for c in &batch {
            match c.fidelity {
                Fidelity::Low => low += 1,
                Fidelity::High => high += 1,
            }
            driver.tell(c.id, evaluate(&problem, c)).unwrap();
        }
    }
    driver.finish().unwrap();
    assert!(
        low > 0 && high > 0,
        "saw {low} low / {high} high candidates"
    );
}

/// Fisher–Yates driven by a splitmix64 stream — deterministic per seed, no
/// dependence on the driver's RNG.
fn shuffle(seed: u64, round: usize, batch: &mut [Candidate]) {
    let mut s = seed ^ (round as u64).wrapping_mul(0x9e3779b97f4a7c15);
    let mut next = move || {
        s = s.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = s;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    };
    for i in (1..batch.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        batch.swap(i, j);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any arrival order of tells — with protocol-violating calls thrown in
    /// between — produces the same run as in-order delivery.
    #[test]
    fn tell_order_and_protocol_noise_never_change_the_outcome(
        q in 2usize..5,
        seed in 0u64..u64::MAX,
        noise in 0u32..2,
    ) {
        let inject_noise = noise == 1;
        let problem = forrester();
        let reference = run_with_order(&problem, q, |_, _| {});

        let mut rng = StdRng::seed_from_u64(7);
        let mut opts = RunOptions::default();
        let mut driver =
            AskTellMfbo::new(config(q), &problem, &mut rng, &mut opts).unwrap();
        let mut round = 0usize;
        while !driver.is_finished() {
            let mut batch = driver.ask(q).unwrap();
            prop_assert!(!batch.is_empty());
            shuffle(seed, round, &mut batch);
            for c in &batch {
                if inject_noise {
                    // Unknown id, then a duplicate after the real tell —
                    // both must bounce off without touching state.
                    prop_assert!(driver
                        .tell(u64::MAX, evaluate(&problem, c))
                        .is_err());
                }
                driver.tell(c.id, evaluate(&problem, c)).unwrap();
                if inject_noise {
                    prop_assert!(driver.tell(c.id, evaluate(&problem, c)).is_err());
                }
            }
            round += 1;
        }
        let shuffled = driver.finish().unwrap();
        assert_same_run(&reference, &shuffled);
    }
}

//! Property-based tests of the acquisition formulas, fidelity selection,
//! and data bookkeeping.

use mfbo::acquisition::{
    expected_improvement, feasibility_drive, lower_confidence_bound, probability_of_feasibility,
    upper_confidence_bound, weighted_ei,
};
use mfbo::problem::{Evaluation, Fidelity};
use mfbo::{FidelityData, FidelitySelector};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ei_nonnegative_and_bounded(
        mean in -10.0f64..10.0,
        std in 0.0f64..5.0,
        tau in -10.0f64..10.0,
    ) {
        let ei = expected_improvement(mean, std, tau);
        prop_assert!(ei >= 0.0);
        // EI <= E|τ - y| <= |τ - μ| + σ·sqrt(2/π) <= |τ-μ| + σ.
        prop_assert!(ei <= (tau - mean).abs() + std + 1e-9);
    }

    #[test]
    fn ei_monotone_in_incumbent(
        mean in -5.0f64..5.0,
        std in 0.01f64..3.0,
        tau in -5.0f64..5.0,
        delta in 0.0f64..3.0,
    ) {
        // Raising the incumbent (easier to improve) never decreases EI.
        let lo = expected_improvement(mean, std, tau);
        let hi = expected_improvement(mean, std, tau + delta);
        prop_assert!(hi >= lo - 1e-12);
    }

    #[test]
    fn ei_exceeds_deterministic_improvement(
        mean in -5.0f64..5.0,
        std in 0.0f64..3.0,
        tau in -5.0f64..5.0,
    ) {
        // Jensen: EI >= max(0, τ − μ).
        let ei = expected_improvement(mean, std, tau);
        prop_assert!(ei >= (tau - mean).max(0.0) - 1e-9);
    }

    #[test]
    fn pf_is_probability(mean in -10.0f64..10.0, std in 0.0f64..5.0) {
        let p = probability_of_feasibility(mean, std);
        prop_assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn pf_monotone_decreasing_in_mean(
        m1 in -5.0f64..5.0,
        delta in 0.0f64..5.0,
        std in 0.01f64..3.0,
    ) {
        // Larger constraint mean = more likely violated = lower PF.
        let p1 = probability_of_feasibility(m1, std);
        let p2 = probability_of_feasibility(m1 + delta, std);
        prop_assert!(p2 <= p1 + 1e-12);
    }

    #[test]
    fn wei_never_exceeds_ei(
        mean in -5.0f64..5.0,
        std in 0.0f64..3.0,
        tau in -5.0f64..5.0,
        cons in prop::collection::vec((-3.0f64..3.0, 0.0f64..2.0), 0..4),
    ) {
        let ei = expected_improvement(mean, std, tau);
        let wei = weighted_ei(mean, std, tau, &cons);
        prop_assert!(wei >= 0.0);
        prop_assert!(wei <= ei + 1e-12);
    }

    #[test]
    fn confidence_bounds_bracket_mean(
        mean in -5.0f64..5.0,
        std in 0.0f64..3.0,
        kappa in 0.0f64..5.0,
    ) {
        prop_assert!(lower_confidence_bound(mean, std, kappa) <= mean + 1e-12);
        prop_assert!(upper_confidence_bound(mean, std, kappa) >= mean - 1e-12);
    }

    #[test]
    fn feasibility_drive_zero_iff_all_nonpositive(means in prop::collection::vec(-3.0f64..3.0, 1..6)) {
        let d = feasibility_drive(&means);
        prop_assert!(d >= 0.0);
        let all_ok = means.iter().all(|&m| m <= 0.0);
        prop_assert_eq!(d == 0.0, all_ok);
    }

    #[test]
    fn fidelity_selector_is_monotone(
        gamma in 0.001f64..0.5,
        v1 in 0.0f64..2.0,
        dv in 0.0f64..2.0,
        nc in 0usize..6,
    ) {
        // If a *more certain* low model already selects Low, a less certain
        // one must too.
        let sel = FidelitySelector::new(gamma);
        if sel.select(v1, nc) == Fidelity::Low {
            prop_assert_eq!(sel.select(v1 + dv, nc), Fidelity::Low);
        }
        // And the constrained threshold is never tighter than the
        // unconstrained one.
        if sel.select(v1, nc) == Fidelity::High {
            prop_assert_eq!(sel.select(v1, nc + 1), Fidelity::High);
        }
    }

    #[test]
    fn fidelity_data_invariants(
        objs in prop::collection::vec(-5.0f64..5.0, 1..20),
        con_vals in prop::collection::vec(-2.0f64..2.0, 1..20),
    ) {
        let n = objs.len().min(con_vals.len());
        let mut data = FidelityData::new(1);
        for k in 0..n {
            data.push(vec![k as f64], &Evaluation {
                objective: objs[k],
                constraints: vec![con_vals[k]],
            });
        }
        prop_assert_eq!(data.len(), n);
        // best_feasible only returns feasible points and is the minimum
        // among them.
        if let Some((k, v)) = data.best_feasible() {
            prop_assert!(data.is_feasible(k));
            prop_assert_eq!(v, data.objective[k]);
            for i in 0..n {
                if data.is_feasible(i) {
                    prop_assert!(v <= data.objective[i]);
                }
            }
        } else {
            for i in 0..n {
                prop_assert!(!data.is_feasible(i));
            }
        }
        // best_any always exists for non-empty data.
        prop_assert!(data.best_any().is_some());
        // Violations are nonnegative and zero exactly for feasible points
        // (strict c < 0 feasibility means c == 0 counts as a violation of
        // measure zero; tolerate it).
        for i in 0..n {
            prop_assert!(data.violation(i) >= 0.0);
            if data.is_feasible(i) {
                prop_assert_eq!(data.violation(i), 0.0);
            }
        }
    }

    #[test]
    fn unit_mapping_preserves_outputs(
        xs in prop::collection::vec((0.0f64..4.0, -3.0f64..3.0), 1..10),
    ) {
        let bounds = mfbo_opt::Bounds::new(vec![0.0, -3.0], vec![4.0, 3.0]);
        let mut data = FidelityData::new(0);
        for (a, b) in &xs {
            data.push(vec![*a, *b], &Evaluation::unconstrained(a + b));
        }
        let unit = data.to_unit(&bounds);
        prop_assert_eq!(unit.len(), data.len());
        for k in 0..unit.len() {
            prop_assert!(unit.xs[k].iter().all(|&v| (0.0..=1.0).contains(&v)));
            prop_assert_eq!(unit.objective[k], data.objective[k]);
        }
    }
}

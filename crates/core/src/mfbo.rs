//! The multi-fidelity Bayesian optimization driver — paper Algorithm 1.
//!
//! Per iteration:
//!
//! 1. build/refresh the fusion surrogates (§3.1–3.2);
//! 2. maximize the **low-fidelity** wEI with the MSP strategy → `x*_l`
//!    (Algorithm 1, line 5);
//! 3. maximize the **high-fidelity** wEI, seeding the MSP starts with
//!    `x*_l` and the biased anchors of §4.1 → `x_t` (line 6);
//! 4. choose the evaluation fidelity by the variance criterion of §3.4;
//! 5. simulate and extend the training set (line 8).
//!
//! When the high-fidelity data contain no feasible point yet, step 2–3 are
//! replaced by the first-feasible-point search of §4.2 (minimize
//! `Σ max(0, μ_h,i(x))`, eq. 13).

use crate::asktell::{AskTellMfbo, Told};
use crate::evaluator::{robust_evaluate, RunOptions, SimOutcome};
use crate::history::Outcome;
use crate::nargp::MfGpConfig;
use crate::problem::{Fidelity, MultiFidelityProblem};
use crate::MfboError;
use mfbo_gp::InferenceMode;
use mfbo_pool::Parallelism;
use mfbo_telemetry::span;
use rand::Rng;
use std::time::Instant;

/// Configuration of [`MfBayesOpt`].
///
/// The defaults mirror the paper's reported settings where it states them:
/// γ = 0.01, 10 % of MSP starts around the low-fidelity incumbent, 40 %
/// around the high-fidelity incumbent.
#[derive(Debug, Clone)]
pub struct MfBoConfig {
    /// Size of the initial low-fidelity Latin-hypercube design.
    pub initial_low: usize,
    /// Size of the initial high-fidelity Latin-hypercube design.
    pub initial_high: usize,
    /// Total simulation budget in *equivalent high-fidelity simulations*
    /// (initial design included).
    pub budget: f64,
    /// Hard cap on BO iterations (safety net; the budget normally stops the
    /// loop first).
    pub max_iterations: usize,
    /// Number of MSP starting points per acquisition optimization.
    pub msp_starts: usize,
    /// Fraction of starts scattered around the low-fidelity incumbent
    /// (paper: 0.10).
    pub frac_around_tau_l: f64,
    /// Fraction of starts scattered around the high-fidelity incumbent
    /// (paper: 0.40).
    pub frac_around_tau_h: f64,
    /// Relative width of the anchor clouds (fraction of each bound width).
    pub anchor_spread: f64,
    /// Fidelity-selection threshold γ of eqs. (11)–(12).
    pub gamma: f64,
    /// Surrogate training configuration.
    pub model: MfGpConfig,
    /// Re-optimize hyperparameters every `refit_every` iterations; in
    /// between, refresh the models with frozen hyperparameters. `1` = refit
    /// every iteration (most faithful, most expensive).
    pub refit_every: usize,
    /// Replace frozen-refit iterations with O(n²) rank-one Cholesky appends
    /// (see [`crate::surrogate::MfSurrogates::append_observation`]): instead
    /// of refactorizing every kernel matrix from scratch, the previous
    /// iteration's surrogates are extended in place with the new
    /// observation. This is an *approximation* — output standardizers stay
    /// frozen between full refits and low-fidelity appends leave the high
    /// GP's augmented coordinates stale — so trajectories differ slightly
    /// from the default; full refits every `refit_every` iterations
    /// resynchronize the model. Off by default (bit-exact paper-faithful
    /// trajectories); incompatible with `winsorize_sigma`, whose retroactive
    /// target clipping invalidates incremental extension.
    pub rank1_appends: bool,
    /// Optional winsorization of surrogate training targets at
    /// `mean ± k·std` (see [`crate::FidelityData::winsorized`]). `None`
    /// (paper-faithful) fits the raw observations; heavy-tailed problems
    /// like the charge pump benefit from `Some(2.5)`.
    pub winsorize_sigma: Option<f64>,
    /// Verification safeguard: after this many *consecutive* low-fidelity
    /// selections, the next sample is forced to high fidelity regardless of
    /// eq. (11). In high-dimensional spaces the low-fidelity posterior
    /// variance at fresh acquisition points never falls below any fixed γ
    /// (the curse of dimensionality keeps every new point far from the
    /// data), which would otherwise starve the fusion model of
    /// high-fidelity evidence forever. The paper does not state such a
    /// safeguard, but its reported charge-pump run (146 fine samples out of
    /// 471) is unreachable without one.
    pub max_low_streak: usize,
    /// Thread-pool mode for the hot paths (surrogate training, MSP restart
    /// optimization, Monte-Carlo posterior propagation). Every mode produces
    /// bit-identical optimization histories — see `mfbo_pool`.
    pub parallelism: Parallelism,
    /// Maximum candidates in flight at once through the ask/tell interface
    /// (q-batch acquisition). `1` — the default and the paper's sequential
    /// rule — reproduces the legacy loop bit for bit. With `q > 1`,
    /// [`crate::AskTellMfbo`] speculates ahead using constant-liar
    /// fantasizing over the pending points (see DESIGN.md item 14), which
    /// changes the trajectory: batched runs have their own goldens. The
    /// sequential drivers ([`MfBayesOpt::run`]/[`MfBayesOpt::run_with`])
    /// still evaluate one candidate at a time regardless of this knob;
    /// values > 1 only pay off with a concurrent evaluator such as the
    /// `mfbo-server` evaluation service. Incompatible with `rank1_appends`.
    pub max_pending: usize,
    /// GP inference engine for every surrogate fit (full and frozen
    /// refits), applied to both fusion stages. [`InferenceMode::Exact`] —
    /// the default — reproduces every historical trajectory byte for byte;
    /// the approximate modes (`iterative`, `subset-of-data`) cap the cubic
    /// fit cost once a run accumulates more observations than their subset
    /// size (see DESIGN.md item 15). Approximate runs are still
    /// deterministic and journal-replayable: subset selection keys off
    /// committed history order and the CG solves use fixed-order
    /// reductions. Incompatible with `rank1_appends`.
    pub gp_inference: InferenceMode,
    /// Extends warm-started hyperparameter seeding to the cold fits that
    /// back frozen-refresh recovery: when a frozen refit fails and the
    /// driver falls back to a full re-optimization, the previous thetas
    /// seed one deterministic extra restart (full refits already warm-start
    /// by default). Off by default — enabling it changes RNG consumption,
    /// so warm-start runs carry their own golden trajectories.
    pub warm_start_thetas: bool,
    /// Adaptive restart shrinking: after the warm-started seed wins this
    /// many *consecutive* full refits across every model in the bundle
    /// (tracked via the `theta_warm_wins` telemetry counter), later refits
    /// halve their cold-restart count (never below one cold start). `0`
    /// (default) disables the adaptation; any nonzero value changes RNG
    /// consumption once triggered, so adaptive runs carry their own
    /// goldens. Requires `refit_every` full refits to ever trigger.
    pub adaptive_restarts: usize,
    /// Warm-starts the acquisition search: seeds the high-fidelity MSP
    /// stage with the previous iteration's accepted acquisition optimum
    /// (unit-space) in addition to the standard anchor clouds. Off by
    /// default; seeded runs carry their own goldens because the extra
    /// deterministic start changes which local optimum each restart finds.
    pub acq_warm_start: bool,
}

impl Default for MfBoConfig {
    fn default() -> Self {
        MfBoConfig {
            initial_low: 10,
            initial_high: 5,
            budget: 50.0,
            max_iterations: 10_000,
            msp_starts: 24,
            frac_around_tau_l: 0.10,
            frac_around_tau_h: 0.40,
            anchor_spread: 0.05,
            gamma: 0.01,
            model: MfGpConfig::fast(),
            refit_every: 1,
            rank1_appends: false,
            winsorize_sigma: None,
            max_low_streak: 25,
            parallelism: Parallelism::Serial,
            max_pending: 1,
            gp_inference: InferenceMode::Exact,
            warm_start_thetas: false,
            adaptive_restarts: 0,
            acq_warm_start: false,
        }
    }
}

impl MfBoConfig {
    /// Checks the configuration for internal consistency, returning
    /// [`MfboError::InvalidConfig`] with a typed reason for the first
    /// violation. Every driver entry point ([`crate::AskTellMfbo::new`],
    /// hence [`MfBayesOpt::run`], the CLI, and the server) calls this, so
    /// inconsistent settings fail loudly at config-build time instead of
    /// being silently ignored mid-run.
    ///
    /// # Errors
    ///
    /// [`MfboError::InvalidConfig`] when the settings are inconsistent.
    pub fn validate(&self) -> Result<(), MfboError> {
        if self.initial_low == 0 || self.initial_high == 0 {
            return Err(MfboError::InvalidConfig {
                reason: "initial designs must be non-empty".into(),
            });
        }
        if !(self.budget > 0.0 && self.budget.is_finite()) {
            return Err(MfboError::InvalidConfig {
                reason: "budget must be positive and finite".into(),
            });
        }
        if self.rank1_appends && self.winsorize_sigma.is_some() {
            return Err(MfboError::InvalidConfig {
                reason: "rank1_appends is incompatible with winsorize_sigma: \
                         winsorization re-clips historical targets every \
                         iteration, which incremental Cholesky extension \
                         cannot represent"
                    .into(),
            });
        }
        if self.max_pending == 0 {
            return Err(MfboError::InvalidConfig {
                reason: "max_pending must be at least 1".into(),
            });
        }
        if self.refit_every == 0 {
            return Err(MfboError::InvalidConfig {
                reason: "refit_every must be at least 1 (1 = re-optimize \
                         hyperparameters every iteration)"
                    .into(),
            });
        }
        if self.adaptive_restarts > 0 && self.model.low.restarts < 2 {
            return Err(MfboError::InvalidConfig {
                reason: "adaptive_restarts needs at least 2 restarts in the \
                         low-stage GP config: with a single restart there is \
                         no cold-start budget left to shrink"
                    .into(),
            });
        }
        if self.max_pending > 1 && self.rank1_appends {
            return Err(MfboError::InvalidConfig {
                reason: "rank1_appends requires sequential evaluation \
                         (max_pending = 1): the incremental bundle extends \
                         one observation at a time in commit order"
                    .into(),
            });
        }
        if self.rank1_appends && !self.gp_inference.is_exact() {
            return Err(MfboError::InvalidConfig {
                reason: "rank1_appends requires exact GP inference: the \
                         approximate modes (iterative, subset-of-data) do \
                         not maintain the full-data Cholesky factor that \
                         incremental extension updates"
                    .into(),
            });
        }
        Ok(())
    }
}

/// The multi-fidelity Bayesian optimizer (paper Algorithm 1).
///
/// See the crate-level example for usage.
#[derive(Debug, Clone)]
pub struct MfBayesOpt {
    config: MfBoConfig,
}

impl MfBayesOpt {
    /// Creates a driver with the given configuration.
    pub fn new(config: MfBoConfig) -> Self {
        MfBayesOpt { config }
    }

    /// Runs the optimization on `problem`.
    ///
    /// # Errors
    ///
    /// Returns [`MfboError::InvalidConfig`] for inconsistent settings,
    /// [`MfboError::NonFiniteEvaluation`] if the simulator produces NaN/inf,
    /// and [`MfboError::Surrogate`] if model training fails irrecoverably.
    pub fn run<P, R>(&self, problem: &P, rng: &mut R) -> Result<Outcome, MfboError>
    where
        P: MultiFidelityProblem + ?Sized,
        R: Rng + ?Sized,
    {
        self.run_with(problem, rng, &mut RunOptions::default())
    }

    /// Runs the optimization with durability and fault-tolerance options:
    /// write-ahead journaling, checkpoint/resume, cross-run evaluation
    /// caching, warm-starting, and robust evaluation — see
    /// [`RunOptions`]. `run` is equivalent to `run_with` with default
    /// options.
    ///
    /// On resume, the loop recomputes its deterministic decisions from
    /// scratch while journaled evaluations are substituted for simulator
    /// calls, so an interrupted-and-resumed run reproduces the
    /// uninterrupted trajectory bit for bit (replayed cost is billed
    /// normally and reported in [`Outcome::eval_stats`]).
    ///
    /// # Errors
    ///
    /// In addition to the [`MfBayesOpt::run`] contract:
    /// [`MfboError::Store`] for store failures, [`MfboError::ResumeMismatch`]
    /// when the journal disagrees with the recomputed trajectory, and
    /// [`MfboError::EvalBudgetExhausted`] when the fresh-simulation cap is
    /// hit.
    pub fn run_with<P, R>(
        &self,
        problem: &P,
        rng: &mut R,
        opts: &mut RunOptions,
    ) -> Result<Outcome, MfboError>
    where
        P: MultiFidelityProblem + ?Sized,
        R: Rng + ?Sized,
    {
        // The synchronous loop is a thin ask(1)/tell client of the ask/tell
        // core: every golden trajectory recorded against the historical
        // inline loop pins the core's sequential behavior bit for bit.
        let mut driver = AskTellMfbo::new(self.config.clone(), problem, rng, opts)?;
        while !driver.is_finished() {
            let Some(c) = driver.ask(1)?.pop() else {
                // Unreachable in a single-threaded drive: the pump always
                // leaves either a finished run or an unissued candidate.
                return Err(MfboError::Protocol {
                    reason: "sequential driver starved: ask(1) returned no candidate on an \
                             unfinished run"
                        .into(),
                });
            };
            // Replayed and cache-served candidates never surface here — the
            // core commits them internally — so this span, like the
            // historical one, wraps real simulator work only. The initial
            // design is not spanned (it has its own `initial_design` span).
            let sim_span = (c.iteration > 0).then(|| {
                span!(
                    "simulate",
                    iteration = c.iteration,
                    high = c.fidelity == Fidelity::High
                )
            });
            let sim_start = Instant::now();
            let sim = robust_evaluate(problem, &c.x, c.fidelity, driver.policy());
            drop(sim_span);
            let elapsed = sim_start.elapsed();
            match sim {
                SimOutcome::Ok {
                    evaluation,
                    attempts,
                } => driver.tell_timed(
                    c.id,
                    Told::Evaluated {
                        evaluation,
                        attempts,
                    },
                    elapsed,
                )?,
                SimOutcome::Exhausted { attempts, panic } => {
                    let told = driver.tell_timed(c.id, Told::Failed { attempts }, elapsed);
                    if told.is_err() {
                        // Historical Abort-policy behavior: a final panic is
                        // re-raised in preference to the NonFiniteEvaluation
                        // error.
                        if let Some(payload) = panic {
                            std::panic::resume_unwind(payload);
                        }
                    }
                    told?;
                }
            }
        }
        driver.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::FunctionProblem;
    use mfbo_opt::Bounds;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Forrester function pair — the canonical multi-fidelity benchmark.
    fn forrester() -> FunctionProblem {
        FunctionProblem::builder("forrester", Bounds::unit(1))
            .high(|x: &[f64]| (6.0 * x[0] - 2.0).powi(2) * (12.0 * x[0] - 4.0).sin())
            .low(|x: &[f64]| {
                let f = (6.0 * x[0] - 2.0).powi(2) * (12.0 * x[0] - 4.0).sin();
                0.5 * f + 10.0 * (x[0] - 0.5) - 5.0
            })
            .low_cost(0.1)
            .build()
    }

    #[test]
    fn solves_forrester_within_budget() {
        // Global minimum ≈ -6.0207 at x ≈ 0.7572.
        let mut rng = StdRng::seed_from_u64(2024);
        let config = MfBoConfig {
            initial_low: 8,
            initial_high: 4,
            budget: 14.0,
            ..MfBoConfig::default()
        };
        let out = MfBayesOpt::new(config).run(&forrester(), &mut rng).unwrap();
        assert!(out.best_objective < -5.5, "best = {}", out.best_objective);
        assert!(
            (out.best_x[0] - 0.7572).abs() < 0.05,
            "x = {:?}",
            out.best_x
        );
        assert!(out.total_cost <= 14.0 + 1.0); // one evaluation of overshoot allowed
        assert!(out.n_low >= 8 && out.n_high >= 4);
    }

    #[test]
    fn uses_cheap_fidelity_substantially() {
        let mut rng = StdRng::seed_from_u64(7);
        let config = MfBoConfig {
            initial_low: 8,
            initial_high: 4,
            budget: 12.0,
            ..MfBoConfig::default()
        };
        let out = MfBayesOpt::new(config).run(&forrester(), &mut rng).unwrap();
        // The fidelity criterion should route a meaningful share of queries
        // to the cheap simulator.
        assert!(out.n_low > 8, "n_low = {}", out.n_low);
    }

    fn constrained_toy_problem() -> FunctionProblem {
        // min (x0-0.2)² + (x1-0.2)² s.t. x0 + x1 > 1 (c = 1 - x0 - x1 < 0).
        // Optimum on the boundary at (0.5, 0.5), objective 0.18.
        FunctionProblem::builder("c-toy", Bounds::unit(2))
            .high(|x: &[f64]| (x[0] - 0.2).powi(2) + (x[1] - 0.2).powi(2))
            .low(|x: &[f64]| (x[0] - 0.23).powi(2) + (x[1] - 0.17).powi(2) + 0.02)
            .high_constraints(1, |x: &[f64]| vec![1.0 - x[0] - x[1]])
            .low_constraints(|x: &[f64]| vec![1.02 - x[0] - x[1]])
            .low_cost(0.1)
            .build()
    }

    #[test]
    #[ignore = "slow (~9 s in debug): full budget-20 constrained run; run with --ignored"]
    fn constrained_problem_finds_feasible_optimum() {
        let p = constrained_toy_problem();
        let mut rng = StdRng::seed_from_u64(11);
        let config = MfBoConfig {
            initial_low: 10,
            initial_high: 5,
            budget: 20.0,
            ..MfBoConfig::default()
        };
        let out = MfBayesOpt::new(config).run(&p, &mut rng).unwrap();
        assert!(out.feasible);
        assert!(out.best_objective < 0.25, "best = {}", out.best_objective);
        assert!(
            out.best_x[0] + out.best_x[1] >= 0.99,
            "x = {:?}",
            out.best_x
        );
    }

    #[test]
    fn constrained_problem_finds_feasible_point_smoke() {
        // Fast default-suite variant of the test above: a third of the budget
        // is enough to reach feasibility near the active constraint, keeping
        // the per-constraint surrogate path covered on every `cargo test`.
        let p = constrained_toy_problem();
        let mut rng = StdRng::seed_from_u64(11);
        let config = MfBoConfig {
            initial_low: 8,
            initial_high: 4,
            budget: 7.0,
            ..MfBoConfig::default()
        };
        let out = MfBayesOpt::new(config).run(&p, &mut rng).unwrap();
        assert!(out.feasible);
        assert!(out.best_objective < 0.6, "best = {}", out.best_objective);
    }

    #[test]
    fn rejects_bad_configs() {
        let p = forrester();
        let mut rng = StdRng::seed_from_u64(0);
        let e = MfBayesOpt::new(MfBoConfig {
            initial_low: 0,
            ..MfBoConfig::default()
        })
        .run(&p, &mut rng);
        assert!(matches!(e, Err(MfboError::InvalidConfig { .. })));

        let e = MfBayesOpt::new(MfBoConfig {
            budget: 0.0,
            ..MfBoConfig::default()
        })
        .run(&p, &mut rng);
        assert!(matches!(e, Err(MfboError::InvalidConfig { .. })));

        // A NaN budget would otherwise slip past `budget <= 0.0` and run the
        // loop to max_iterations.
        let e = MfBayesOpt::new(MfBoConfig {
            budget: f64::NAN,
            ..MfBoConfig::default()
        })
        .run(&p, &mut rng);
        assert!(matches!(e, Err(MfboError::InvalidConfig { .. })));
    }

    #[test]
    fn validate_is_typed_and_catches_mode_conflicts() {
        assert!(MfBoConfig::default().validate().is_ok());
        let reason = |cfg: MfBoConfig| match cfg.validate() {
            Err(MfboError::InvalidConfig { reason }) => reason,
            other => panic!("expected InvalidConfig, got {other:?}"),
        };
        let r = reason(MfBoConfig {
            rank1_appends: true,
            winsorize_sigma: Some(2.5),
            ..MfBoConfig::default()
        });
        assert!(r.contains("winsorize_sigma"), "{r}");
        let r = reason(MfBoConfig {
            rank1_appends: true,
            max_pending: 4,
            ..MfBoConfig::default()
        });
        assert!(r.contains("max_pending = 1"), "{r}");
        let r = reason(MfBoConfig {
            rank1_appends: true,
            gp_inference: InferenceMode::iterative(),
            ..MfBoConfig::default()
        });
        assert!(r.contains("exact GP inference"), "{r}");
        let r = reason(MfBoConfig {
            rank1_appends: true,
            gp_inference: InferenceMode::subset_of_data(),
            ..MfBoConfig::default()
        });
        assert!(r.contains("exact GP inference"), "{r}");
        // Approximate inference without rank-one appends is fine.
        assert!(MfBoConfig {
            gp_inference: InferenceMode::iterative(),
            ..MfBoConfig::default()
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn approximate_inference_solves_forrester() {
        // Subset caps far below the observation counts force the
        // approximate code paths through the whole loop.
        for mode in [
            InferenceMode::Iterative {
                subset: 8,
                max_iters: 64,
            },
            InferenceMode::SubsetOfData { max_points: 8 },
        ] {
            let mut rng = StdRng::seed_from_u64(7);
            let config = MfBoConfig {
                initial_low: 10,
                initial_high: 4,
                budget: 10.0,
                gp_inference: mode,
                ..MfBoConfig::default()
            };
            let out = MfBayesOpt::new(config).run(&forrester(), &mut rng).unwrap();
            // A subset cap of 8 points is a deliberately crude surrogate, so
            // expect progress (true minimum ≈ −6.02), not the optimum.
            assert!(
                out.best_objective < -4.0,
                "{mode:?}: best {}",
                out.best_objective
            );
        }
    }

    #[test]
    fn non_finite_problem_is_reported() {
        let p = FunctionProblem::builder("nan", Bounds::unit(1))
            .high(|_: &[f64]| f64::NAN)
            .build();
        let mut rng = StdRng::seed_from_u64(0);
        let e = MfBayesOpt::new(MfBoConfig::default()).run(&p, &mut rng);
        assert!(matches!(e, Err(MfboError::NonFiniteEvaluation { .. })));
    }

    #[test]
    fn history_is_complete_and_cost_monotone() {
        let mut rng = StdRng::seed_from_u64(3);
        let config = MfBoConfig {
            initial_low: 6,
            initial_high: 3,
            budget: 8.0,
            ..MfBoConfig::default()
        };
        let out = MfBayesOpt::new(config).run(&forrester(), &mut rng).unwrap();
        assert_eq!(out.history.len(), out.n_low + out.n_high);
        let mut prev = 0.0;
        for r in &out.history {
            assert!(r.cost_so_far > prev);
            prev = r.cost_so_far;
        }
        assert!(out.cost_to_best <= out.total_cost);
    }

    #[test]
    fn telemetry_records_one_decision_per_bo_iteration() {
        let sink = std::sync::Arc::new(mfbo_telemetry::sinks::CollectSink::new());
        let guard = mfbo_telemetry::scoped_sink(sink.clone());
        let mut rng = StdRng::seed_from_u64(2024);
        let config = MfBoConfig {
            initial_low: 6,
            initial_high: 3,
            budget: 8.0,
            ..MfBoConfig::default()
        };
        let out = MfBayesOpt::new(config).run(&forrester(), &mut rng).unwrap();
        drop(guard);

        // One aggregate decision per BO iteration (history minus the 9
        // initial-design records), mirrored 1:1 by streamed events.
        let bo_iters = out.history.iter().filter(|r| r.iteration > 0).count();
        assert!(bo_iters > 0);
        assert_eq!(out.telemetry.decisions.len(), bo_iters);
        assert_eq!(sink.named("fidelity_decision").len(), bo_iters);
        for (d, r) in out
            .telemetry
            .decisions
            .iter()
            .zip(out.history.iter().filter(|r| r.iteration > 0))
        {
            assert_eq!(d.iteration, r.iteration);
            assert_eq!(d.chose_high, r.fidelity == Fidelity::High);
            assert!((d.cost_after - r.cost_so_far).abs() < 1e-12);
            assert!(d.max_low_variance.is_finite());
            assert!((d.threshold - 0.01).abs() < 1e-12); // (1+0)·γ, Nc = 0
        }

        // Stage timing covers the whole hot path, and the wall clock bounds
        // the per-stage totals.
        for stage in ["surrogate_fit", "acq_opt", "simulate_low", "simulate_high"] {
            assert!(out.telemetry.stages.contains_key(stage), "missing {stage}");
        }
        assert_eq!(
            out.telemetry.stages["surrogate_fit"].calls as usize,
            bo_iters
        );
        assert_eq!(out.telemetry.stages["acq_opt"].calls as usize, bo_iters);
        assert!(out.telemetry.wall_us >= out.telemetry.stages["surrogate_fit"].total_us);

        assert_eq!(sink.named("run_start").len(), 1);
        assert_eq!(sink.named("run_end").len(), 1);
    }

    #[test]
    fn rank1_appends_solve_forrester() {
        // The O(n²) append path replaces frozen refactorizations between
        // full refits; trajectories are approximate but the optimizer must
        // still reach the Forrester optimum. The debug-level counter proves
        // the rank-one path actually ran.
        let sink = std::sync::Arc::new(mfbo_telemetry::sinks::CollectSink::with_level(
            mfbo_telemetry::Level::Debug,
        ));
        let guard = mfbo_telemetry::scoped_sink(sink.clone());
        let mut rng = StdRng::seed_from_u64(2024);
        let config = MfBoConfig {
            initial_low: 8,
            initial_high: 4,
            budget: 14.0,
            refit_every: 4,
            rank1_appends: true,
            ..MfBoConfig::default()
        };
        let out = MfBayesOpt::new(config).run(&forrester(), &mut rng).unwrap();
        drop(guard);
        assert!(out.best_objective < -5.5, "best = {}", out.best_objective);
        assert!(
            !sink.named("chol_rank1_appends").is_empty(),
            "rank-one append path never ran"
        );
    }

    #[test]
    fn rank1_appends_reject_winsorization() {
        let mut rng = StdRng::seed_from_u64(0);
        let e = MfBayesOpt::new(MfBoConfig {
            rank1_appends: true,
            winsorize_sigma: Some(2.5),
            ..MfBoConfig::default()
        })
        .run(&forrester(), &mut rng);
        assert!(matches!(e, Err(MfboError::InvalidConfig { .. })));
    }

    #[test]
    fn frozen_refits_dont_break_the_loop() {
        let mut rng = StdRng::seed_from_u64(7);
        let config = MfBoConfig {
            initial_low: 8,
            initial_high: 4,
            budget: 12.0,
            refit_every: 5,
            ..MfBoConfig::default()
        };
        let out = MfBayesOpt::new(config).run(&forrester(), &mut rng).unwrap();
        assert!(out.best_objective < -5.0, "best = {}", out.best_objective);
    }
}

//! The multi-fidelity Bayesian optimization driver — paper Algorithm 1.
//!
//! Per iteration:
//!
//! 1. build/refresh the fusion surrogates (§3.1–3.2);
//! 2. maximize the **low-fidelity** wEI with the MSP strategy → `x*_l`
//!    (Algorithm 1, line 5);
//! 3. maximize the **high-fidelity** wEI, seeding the MSP starts with
//!    `x*_l` and the biased anchors of §4.1 → `x_t` (line 6);
//! 4. choose the evaluation fidelity by the variance criterion of §3.4;
//! 5. simulate and extend the training set (line 8).
//!
//! When the high-fidelity data contain no feasible point yet, step 2–3 are
//! replaced by the first-feasible-point search of §4.2 (minimize
//! `Σ max(0, μ_h,i(x))`, eq. 13).

use crate::evaluator::{EvalSession, RunOptions};
use crate::fidelity::FidelitySelector;
use crate::history::{EvaluationRecord, FidelityData, Outcome};
use crate::nargp::MfGpConfig;
use crate::problem::{Fidelity, MultiFidelityProblem};
use crate::surrogate::{MfBundleThetas, MfSurrogates};
use crate::MfboError;
use mfbo_opt::{msp::MultiStart, neldermead::NelderMead, sampling};
use mfbo_pool::Parallelism;
use mfbo_telemetry::{event, span, FidelityDecision, RunTelemetry};
use rand::Rng;
use std::time::Instant;

/// Configuration of [`MfBayesOpt`].
///
/// The defaults mirror the paper's reported settings where it states them:
/// γ = 0.01, 10 % of MSP starts around the low-fidelity incumbent, 40 %
/// around the high-fidelity incumbent.
#[derive(Debug, Clone)]
pub struct MfBoConfig {
    /// Size of the initial low-fidelity Latin-hypercube design.
    pub initial_low: usize,
    /// Size of the initial high-fidelity Latin-hypercube design.
    pub initial_high: usize,
    /// Total simulation budget in *equivalent high-fidelity simulations*
    /// (initial design included).
    pub budget: f64,
    /// Hard cap on BO iterations (safety net; the budget normally stops the
    /// loop first).
    pub max_iterations: usize,
    /// Number of MSP starting points per acquisition optimization.
    pub msp_starts: usize,
    /// Fraction of starts scattered around the low-fidelity incumbent
    /// (paper: 0.10).
    pub frac_around_tau_l: f64,
    /// Fraction of starts scattered around the high-fidelity incumbent
    /// (paper: 0.40).
    pub frac_around_tau_h: f64,
    /// Relative width of the anchor clouds (fraction of each bound width).
    pub anchor_spread: f64,
    /// Fidelity-selection threshold γ of eqs. (11)–(12).
    pub gamma: f64,
    /// Surrogate training configuration.
    pub model: MfGpConfig,
    /// Re-optimize hyperparameters every `refit_every` iterations; in
    /// between, refresh the models with frozen hyperparameters. `1` = refit
    /// every iteration (most faithful, most expensive).
    pub refit_every: usize,
    /// Replace frozen-refit iterations with O(n²) rank-one Cholesky appends
    /// (see [`crate::surrogate::MfSurrogates::append_observation`]): instead
    /// of refactorizing every kernel matrix from scratch, the previous
    /// iteration's surrogates are extended in place with the new
    /// observation. This is an *approximation* — output standardizers stay
    /// frozen between full refits and low-fidelity appends leave the high
    /// GP's augmented coordinates stale — so trajectories differ slightly
    /// from the default; full refits every `refit_every` iterations
    /// resynchronize the model. Off by default (bit-exact paper-faithful
    /// trajectories); incompatible with `winsorize_sigma`, whose retroactive
    /// target clipping invalidates incremental extension.
    pub rank1_appends: bool,
    /// Optional winsorization of surrogate training targets at
    /// `mean ± k·std` (see [`crate::FidelityData::winsorized`]). `None`
    /// (paper-faithful) fits the raw observations; heavy-tailed problems
    /// like the charge pump benefit from `Some(2.5)`.
    pub winsorize_sigma: Option<f64>,
    /// Verification safeguard: after this many *consecutive* low-fidelity
    /// selections, the next sample is forced to high fidelity regardless of
    /// eq. (11). In high-dimensional spaces the low-fidelity posterior
    /// variance at fresh acquisition points never falls below any fixed γ
    /// (the curse of dimensionality keeps every new point far from the
    /// data), which would otherwise starve the fusion model of
    /// high-fidelity evidence forever. The paper does not state such a
    /// safeguard, but its reported charge-pump run (146 fine samples out of
    /// 471) is unreachable without one.
    pub max_low_streak: usize,
    /// Thread-pool mode for the hot paths (surrogate training, MSP restart
    /// optimization, Monte-Carlo posterior propagation). Every mode produces
    /// bit-identical optimization histories — see `mfbo_pool`.
    pub parallelism: Parallelism,
}

impl Default for MfBoConfig {
    fn default() -> Self {
        MfBoConfig {
            initial_low: 10,
            initial_high: 5,
            budget: 50.0,
            max_iterations: 10_000,
            msp_starts: 24,
            frac_around_tau_l: 0.10,
            frac_around_tau_h: 0.40,
            anchor_spread: 0.05,
            gamma: 0.01,
            model: MfGpConfig::fast(),
            refit_every: 1,
            rank1_appends: false,
            winsorize_sigma: None,
            max_low_streak: 25,
            parallelism: Parallelism::Serial,
        }
    }
}

/// The multi-fidelity Bayesian optimizer (paper Algorithm 1).
///
/// See the crate-level example for usage.
#[derive(Debug, Clone)]
pub struct MfBayesOpt {
    config: MfBoConfig,
}

impl MfBayesOpt {
    /// Creates a driver with the given configuration.
    pub fn new(config: MfBoConfig) -> Self {
        MfBayesOpt { config }
    }

    /// Runs the optimization on `problem`.
    ///
    /// # Errors
    ///
    /// Returns [`MfboError::InvalidConfig`] for inconsistent settings,
    /// [`MfboError::NonFiniteEvaluation`] if the simulator produces NaN/inf,
    /// and [`MfboError::Surrogate`] if model training fails irrecoverably.
    pub fn run<P, R>(&self, problem: &P, rng: &mut R) -> Result<Outcome, MfboError>
    where
        P: MultiFidelityProblem + ?Sized,
        R: Rng + ?Sized,
    {
        self.run_with(problem, rng, &mut RunOptions::default())
    }

    /// Runs the optimization with durability and fault-tolerance options:
    /// write-ahead journaling, checkpoint/resume, cross-run evaluation
    /// caching, warm-starting, and robust evaluation — see
    /// [`RunOptions`]. `run` is equivalent to `run_with` with default
    /// options.
    ///
    /// On resume, the loop recomputes its deterministic decisions from
    /// scratch while journaled evaluations are substituted for simulator
    /// calls, so an interrupted-and-resumed run reproduces the
    /// uninterrupted trajectory bit for bit (replayed cost is billed
    /// normally and reported in [`Outcome::eval_stats`]).
    ///
    /// # Errors
    ///
    /// In addition to the [`MfBayesOpt::run`] contract:
    /// [`MfboError::Store`] for store failures, [`MfboError::ResumeMismatch`]
    /// when the journal disagrees with the recomputed trajectory, and
    /// [`MfboError::EvalBudgetExhausted`] when the fresh-simulation cap is
    /// hit.
    pub fn run_with<P, R>(
        &self,
        problem: &P,
        rng: &mut R,
        opts: &mut RunOptions,
    ) -> Result<Outcome, MfboError>
    where
        P: MultiFidelityProblem + ?Sized,
        R: Rng + ?Sized,
    {
        let cfg = &self.config;
        if cfg.initial_low == 0 || cfg.initial_high == 0 {
            return Err(MfboError::InvalidConfig {
                reason: "initial designs must be non-empty".into(),
            });
        }
        if !(cfg.budget > 0.0 && cfg.budget.is_finite()) {
            return Err(MfboError::InvalidConfig {
                reason: "budget must be positive and finite".into(),
            });
        }
        if cfg.rank1_appends && cfg.winsorize_sigma.is_some() {
            return Err(MfboError::InvalidConfig {
                reason: "rank1_appends is incompatible with winsorize_sigma: \
                         winsorization re-clips historical targets every \
                         iteration, which incremental Cholesky extension \
                         cannot represent"
                    .into(),
            });
        }
        let mut session = EvalSession::new(opts, "mfbo", problem, rng.state_snapshot())?;
        let bounds = problem.bounds();
        let nc = problem.num_constraints();
        let mut low = FidelityData::new(nc);
        let mut high = FidelityData::new(nc);
        let mut history: Vec<EvaluationRecord> = Vec::new();
        let mut cost = 0.0;
        let run_start = Instant::now();
        let mut telemetry = RunTelemetry::default();
        event!(
            "run_start",
            algo = "mfbo",
            dim = bounds.dim(),
            num_constraints = nc,
            budget = cfg.budget,
            gamma = cfg.gamma,
            initial_low = cfg.initial_low,
            initial_high = cfg.initial_high,
        );

        // --- Initial design (Algorithm 1, line 1). ---
        let init_span = span!(
            "initial_design",
            n_low = cfg.initial_low,
            n_high = cfg.initial_high
        );
        for x in sampling::latin_hypercube(&bounds, cfg.initial_low, rng) {
            let sim_start = Instant::now();
            let snap = rng.state_snapshot();
            let eval = session.evaluate(problem, &x, Fidelity::Low, 0, &mut cost, snap)?;
            telemetry.record_stage("simulate_low", sim_start.elapsed());
            low.push(x.clone(), &eval);
            history.push(EvaluationRecord {
                iteration: 0,
                x,
                fidelity: Fidelity::Low,
                evaluation: eval,
                cost_so_far: cost,
            });
        }
        for x in sampling::latin_hypercube(&bounds, cfg.initial_high, rng) {
            let sim_start = Instant::now();
            let snap = rng.state_snapshot();
            let eval = session.evaluate(problem, &x, Fidelity::High, 0, &mut cost, snap)?;
            telemetry.record_stage("simulate_high", sim_start.elapsed());
            high.push(x.clone(), &eval);
            history.push(EvaluationRecord {
                iteration: 0,
                x,
                fidelity: Fidelity::High,
                evaluation: eval,
                cost_so_far: cost,
            });
        }
        // Cross-run warm start: seed the low-fidelity surrogate with cached
        // observations from earlier runs (free — they were already paid
        // for). They enter the training data but not this run's history.
        for (x, eval) in session.warm_start_points(&low.xs, cost)? {
            low.push(x, &eval);
        }
        drop(init_span);

        let selector = FidelitySelector::new(cfg.gamma);
        // One knob drives every hot path: model training, frozen refreshes,
        // MC propagation, and the MSP restarts below.
        let model_cfg = cfg.model.clone().with_parallelism(cfg.parallelism);
        let mut low_streak = 0usize;
        let mut thetas: Option<MfBundleThetas> = None;
        let mut iterations_since_refit = 0usize;
        // With `rank1_appends`, the previous iteration's surrogates — already
        // extended with the newest observation — stand in for the frozen
        // refit. `None` whenever an append failed or a full refit is due.
        let mut prev_surrogates: Option<MfSurrogates> = None;
        // Surrogates and acquisition optimization operate in the unit cube;
        // the problem is evaluated (and history recorded) in raw units.
        let unit = mfbo_opt::Bounds::unit(bounds.dim());

        // --- Main loop (Algorithm 1, lines 2–9). ---
        for iteration in 1..=cfg.max_iterations {
            if cost >= cfg.budget {
                break;
            }
            let mut low_u = low.to_unit(&bounds);
            let mut high_u = high.to_unit(&bounds);
            if let Some(k) = cfg.winsorize_sigma {
                low_u = low_u.winsorized(k);
                high_u = high_u.winsorized(k);
            }

            // Line 3: build the multi-fidelity model. Full hyperparameter
            // optimization every `refit_every` iterations, frozen refresh in
            // between; a frozen-refresh failure falls back to a full refit.
            let fit_span = span!(
                "surrogate_fit",
                iteration = iteration,
                n_low = low.len(),
                n_high = high.len()
            );
            let surrogates = match &thetas {
                Some(t) if iterations_since_refit < cfg.refit_every => {
                    // Cheapest first: an already-extended bundle from the
                    // rank-one append path (O(n²)), else a frozen
                    // refactorization (O(n³)), else a full refit.
                    match prev_surrogates.take() {
                        Some(s) => s,
                        None => match MfSurrogates::fit_frozen(
                            &low_u,
                            &high_u,
                            t,
                            model_cfg.mc_samples,
                            cfg.parallelism,
                        ) {
                            Ok(s) => s,
                            Err(_) => MfSurrogates::fit(&low_u, &high_u, &model_cfg, rng)?,
                        },
                    }
                }
                Some(t) => {
                    iterations_since_refit = 0;
                    MfSurrogates::fit_warm(&low_u, &high_u, &model_cfg, t, rng)?
                }
                None => {
                    iterations_since_refit = 0;
                    MfSurrogates::fit(&low_u, &high_u, &model_cfg, rng)?
                }
            };
            iterations_since_refit += 1;
            thetas = Some(surrogates.thetas());
            telemetry.record_stage("surrogate_fit", fit_span.elapsed());
            drop(fit_span);
            // Hyperparameter trajectory, emitted on the main thread in
            // iteration order (worker-thread `gp_fit` events interleave
            // nondeterministically; this one is safe to diff run-to-run).
            if let Some(t) = &thetas {
                mfbo_telemetry::debug_event!(
                    "hyperparams",
                    iteration = iteration,
                    objective_low = crate::surrogate::fmt_thetas(&t.objective.low),
                    objective_high = crate::surrogate::fmt_thetas(&t.objective.high),
                    constraints = t
                        .constraints
                        .iter()
                        .map(|c| {
                            format!(
                                "{}|{}",
                                crate::surrogate::fmt_thetas(&c.low),
                                crate::surrogate::fmt_thetas(&c.high)
                            )
                        })
                        .collect::<Vec<_>>()
                        .join(";"),
                );
            }

            // Incumbents (values and locations) at each fidelity.
            let best_low = low.best_feasible().or_else(|| low.best_any());
            let best_high = high.best_feasible().or_else(|| high.best_any());
            let has_feasible_high = high.best_feasible().is_some();

            let local = NelderMead::new().with_max_iters(90);
            let tau_l_val = best_low.map(|(_, v)| v);
            let tau_h_val = best_high.map(|(_, v)| v);
            let acq_span = span!("acq_opt", iteration = iteration);
            let drove_feasibility = nc > 0 && !has_feasible_high;
            let (xt_unit, acq_value, landscape) = if drove_feasibility {
                // §4.2: no feasible point known — minimize Σ max(0, μ_h,i).
                // A tiny objective-mean tie-break steers the search toward
                // good designs once the drive term flattens at zero.
                let drive = |x: &[f64]| {
                    let d = surrogates.feasibility_drive(x);
                    let obj = surrogates.objective().predict(x).mean;
                    d + 1e-4 * obj
                };
                let ms = MultiStart::new(cfg.msp_starts)
                    .with_local_search(local.clone())
                    .with_parallelism(cfg.parallelism);
                let (r, stats) = ms.minimize_with_stats(&drive, &unit, rng);
                (r.x, r.value, stats)
            } else {
                // Line 5: optimize the low-fidelity wEI → x*_l.
                let tau_l = best_low.map(|(_, v)| v).unwrap_or(0.0);
                let tau_h = best_high.map(|(_, v)| v).unwrap_or(0.0);
                let mut ms_low = MultiStart::new(cfg.msp_starts)
                    .with_local_search(local.clone())
                    .with_parallelism(cfg.parallelism);
                if let Some((k, _)) = best_low {
                    ms_low = ms_low.with_anchor(
                        low_u.xs[k].clone(),
                        cfg.frac_around_tau_l + cfg.frac_around_tau_h,
                        cfg.anchor_spread,
                    );
                }
                let wei_l = |x: &[f64]| surrogates.wei_low(x, tau_l);
                let xl_star = ms_low.maximize(&wei_l, &unit, rng).x;

                // Line 6: optimize the high-fidelity wEI seeded with x*_l
                // and the biased anchors of §4.1.
                let mut ms_high = MultiStart::new(cfg.msp_starts)
                    .with_local_search(local)
                    .with_parallelism(cfg.parallelism)
                    .with_anchor(xl_star, 0.15, cfg.anchor_spread);
                if let Some((k, _)) = best_high {
                    ms_high = ms_high.with_anchor(
                        high_u.xs[k].clone(),
                        cfg.frac_around_tau_h,
                        cfg.anchor_spread,
                    );
                }
                if let Some((k, _)) = best_low {
                    ms_high = ms_high.with_anchor(
                        low_u.xs[k].clone(),
                        cfg.frac_around_tau_l,
                        cfg.anchor_spread,
                    );
                }
                let wei_h = |x: &[f64]| surrogates.wei_high(x, tau_h);
                let (r, stats) = ms_high.maximize_with_stats(&wei_h, &unit, rng);
                (r.x, r.value, stats)
            };
            telemetry.record_stage("acq_opt", acq_span.elapsed());
            drop(acq_span);
            // Acquisition-landscape health: in wEI mode a large frac_zero
            // means most restarts sat where the model offers no expected
            // improvement; a near-zero spread means the landscape has
            // collapsed to a single basin.
            mfbo_telemetry::debug_event!(
                "acq_landscape",
                iteration = iteration,
                feasibility_drive = drove_feasibility,
                best_value = landscape.best_value,
                worst_value = landscape.worst_value,
                spread = landscape.spread,
                frac_zero = landscape.frac_zero,
                starts = landscape.starts,
                best_start = landscape.best_start,
            );

            // Line 7: fidelity selection (§3.4), with the verification
            // safeguard (see MfBoConfig::max_low_streak).
            let max_low_var = surrogates.max_low_variance(&xt_unit);
            let threshold = selector.threshold(nc);
            let mut fidelity = selector.select(max_low_var, nc);
            let mut forced = false;
            if fidelity == Fidelity::Low && low_streak >= cfg.max_low_streak {
                fidelity = Fidelity::High;
                forced = true;
            }
            match fidelity {
                Fidelity::Low => low_streak += 1,
                Fidelity::High => low_streak = 0,
            }
            event!(
                "fidelity_decision",
                iteration = iteration,
                max_low_variance = max_low_var,
                threshold = threshold,
                chose_high = fidelity == Fidelity::High,
                forced = forced,
                feasibility_drive = drove_feasibility,
                acq_value = acq_value,
                tau_l = tau_l_val.unwrap_or(f64::NAN),
                tau_h = tau_h_val.unwrap_or(f64::NAN),
                cost = cost,
            );

            // Line 8: simulate and extend the training set.
            let xt = bounds.from_unit(&xt_unit);
            let sim_span = span!(
                "simulate",
                iteration = iteration,
                high = fidelity == Fidelity::High
            );
            let snap = rng.state_snapshot();
            let eval = session.evaluate(problem, &xt, fidelity, iteration, &mut cost, snap)?;
            let sim_stage = match fidelity {
                Fidelity::Low => "simulate_low",
                Fidelity::High => "simulate_high",
            };
            telemetry.record_stage(sim_stage, sim_span.elapsed());
            drop(sim_span);
            telemetry.record_decision(FidelityDecision {
                iteration,
                max_low_variance: max_low_var,
                threshold,
                chose_high: fidelity == Fidelity::High,
                forced,
                cost_after: cost,
            });
            match fidelity {
                Fidelity::Low => low.push(xt.clone(), &eval),
                Fidelity::High => high.push(xt.clone(), &eval),
            }
            // Rank-one path: extend this iteration's bundle with the new
            // observation (in the unit cube the surrogates train in) so the
            // next frozen refresh is an O(n²) no-op. A failed append — e.g.
            // a near-duplicate acquisition point — simply drops the bundle
            // and the next iteration refactorizes from data.
            prev_surrogates = if cfg.rank1_appends {
                let mut s = surrogates;
                s.append_observation(fidelity, &xt_unit, &eval)
                    .is_ok()
                    .then_some(s)
            } else {
                None
            };
            history.push(EvaluationRecord {
                iteration,
                x: xt,
                fidelity,
                evaluation: eval,
                cost_so_far: cost,
            });
        }

        telemetry.wall_us = run_start.elapsed().as_micros() as u64;
        event!(
            "run_end",
            algo = "mfbo",
            iterations = history.last().map(|r| r.iteration).unwrap_or(0),
            cost = cost,
            high_picks = telemetry.high_count(),
            decisions = telemetry.decisions.len(),
        );
        let mut outcome = Outcome::from_data(high, low, history);
        outcome.telemetry = telemetry;
        outcome.eval_stats = session.finish();
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::FunctionProblem;
    use mfbo_opt::Bounds;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Forrester function pair — the canonical multi-fidelity benchmark.
    fn forrester() -> FunctionProblem {
        FunctionProblem::builder("forrester", Bounds::unit(1))
            .high(|x: &[f64]| (6.0 * x[0] - 2.0).powi(2) * (12.0 * x[0] - 4.0).sin())
            .low(|x: &[f64]| {
                let f = (6.0 * x[0] - 2.0).powi(2) * (12.0 * x[0] - 4.0).sin();
                0.5 * f + 10.0 * (x[0] - 0.5) - 5.0
            })
            .low_cost(0.1)
            .build()
    }

    #[test]
    fn solves_forrester_within_budget() {
        // Global minimum ≈ -6.0207 at x ≈ 0.7572.
        let mut rng = StdRng::seed_from_u64(2024);
        let config = MfBoConfig {
            initial_low: 8,
            initial_high: 4,
            budget: 14.0,
            ..MfBoConfig::default()
        };
        let out = MfBayesOpt::new(config).run(&forrester(), &mut rng).unwrap();
        assert!(out.best_objective < -5.5, "best = {}", out.best_objective);
        assert!(
            (out.best_x[0] - 0.7572).abs() < 0.05,
            "x = {:?}",
            out.best_x
        );
        assert!(out.total_cost <= 14.0 + 1.0); // one evaluation of overshoot allowed
        assert!(out.n_low >= 8 && out.n_high >= 4);
    }

    #[test]
    fn uses_cheap_fidelity_substantially() {
        let mut rng = StdRng::seed_from_u64(7);
        let config = MfBoConfig {
            initial_low: 8,
            initial_high: 4,
            budget: 12.0,
            ..MfBoConfig::default()
        };
        let out = MfBayesOpt::new(config).run(&forrester(), &mut rng).unwrap();
        // The fidelity criterion should route a meaningful share of queries
        // to the cheap simulator.
        assert!(out.n_low > 8, "n_low = {}", out.n_low);
    }

    fn constrained_toy_problem() -> FunctionProblem {
        // min (x0-0.2)² + (x1-0.2)² s.t. x0 + x1 > 1 (c = 1 - x0 - x1 < 0).
        // Optimum on the boundary at (0.5, 0.5), objective 0.18.
        FunctionProblem::builder("c-toy", Bounds::unit(2))
            .high(|x: &[f64]| (x[0] - 0.2).powi(2) + (x[1] - 0.2).powi(2))
            .low(|x: &[f64]| (x[0] - 0.23).powi(2) + (x[1] - 0.17).powi(2) + 0.02)
            .high_constraints(1, |x: &[f64]| vec![1.0 - x[0] - x[1]])
            .low_constraints(|x: &[f64]| vec![1.02 - x[0] - x[1]])
            .low_cost(0.1)
            .build()
    }

    #[test]
    #[ignore = "slow (~9 s in debug): full budget-20 constrained run; run with --ignored"]
    fn constrained_problem_finds_feasible_optimum() {
        let p = constrained_toy_problem();
        let mut rng = StdRng::seed_from_u64(11);
        let config = MfBoConfig {
            initial_low: 10,
            initial_high: 5,
            budget: 20.0,
            ..MfBoConfig::default()
        };
        let out = MfBayesOpt::new(config).run(&p, &mut rng).unwrap();
        assert!(out.feasible);
        assert!(out.best_objective < 0.25, "best = {}", out.best_objective);
        assert!(
            out.best_x[0] + out.best_x[1] >= 0.99,
            "x = {:?}",
            out.best_x
        );
    }

    #[test]
    fn constrained_problem_finds_feasible_point_smoke() {
        // Fast default-suite variant of the test above: a third of the budget
        // is enough to reach feasibility near the active constraint, keeping
        // the per-constraint surrogate path covered on every `cargo test`.
        let p = constrained_toy_problem();
        let mut rng = StdRng::seed_from_u64(11);
        let config = MfBoConfig {
            initial_low: 8,
            initial_high: 4,
            budget: 7.0,
            ..MfBoConfig::default()
        };
        let out = MfBayesOpt::new(config).run(&p, &mut rng).unwrap();
        assert!(out.feasible);
        assert!(out.best_objective < 0.6, "best = {}", out.best_objective);
    }

    #[test]
    fn rejects_bad_configs() {
        let p = forrester();
        let mut rng = StdRng::seed_from_u64(0);
        let e = MfBayesOpt::new(MfBoConfig {
            initial_low: 0,
            ..MfBoConfig::default()
        })
        .run(&p, &mut rng);
        assert!(matches!(e, Err(MfboError::InvalidConfig { .. })));

        let e = MfBayesOpt::new(MfBoConfig {
            budget: 0.0,
            ..MfBoConfig::default()
        })
        .run(&p, &mut rng);
        assert!(matches!(e, Err(MfboError::InvalidConfig { .. })));

        // A NaN budget would otherwise slip past `budget <= 0.0` and run the
        // loop to max_iterations.
        let e = MfBayesOpt::new(MfBoConfig {
            budget: f64::NAN,
            ..MfBoConfig::default()
        })
        .run(&p, &mut rng);
        assert!(matches!(e, Err(MfboError::InvalidConfig { .. })));
    }

    #[test]
    fn non_finite_problem_is_reported() {
        let p = FunctionProblem::builder("nan", Bounds::unit(1))
            .high(|_: &[f64]| f64::NAN)
            .build();
        let mut rng = StdRng::seed_from_u64(0);
        let e = MfBayesOpt::new(MfBoConfig::default()).run(&p, &mut rng);
        assert!(matches!(e, Err(MfboError::NonFiniteEvaluation { .. })));
    }

    #[test]
    fn history_is_complete_and_cost_monotone() {
        let mut rng = StdRng::seed_from_u64(3);
        let config = MfBoConfig {
            initial_low: 6,
            initial_high: 3,
            budget: 8.0,
            ..MfBoConfig::default()
        };
        let out = MfBayesOpt::new(config).run(&forrester(), &mut rng).unwrap();
        assert_eq!(out.history.len(), out.n_low + out.n_high);
        let mut prev = 0.0;
        for r in &out.history {
            assert!(r.cost_so_far > prev);
            prev = r.cost_so_far;
        }
        assert!(out.cost_to_best <= out.total_cost);
    }

    #[test]
    fn telemetry_records_one_decision_per_bo_iteration() {
        let sink = std::sync::Arc::new(mfbo_telemetry::sinks::CollectSink::new());
        let guard = mfbo_telemetry::scoped_sink(sink.clone());
        let mut rng = StdRng::seed_from_u64(2024);
        let config = MfBoConfig {
            initial_low: 6,
            initial_high: 3,
            budget: 8.0,
            ..MfBoConfig::default()
        };
        let out = MfBayesOpt::new(config).run(&forrester(), &mut rng).unwrap();
        drop(guard);

        // One aggregate decision per BO iteration (history minus the 9
        // initial-design records), mirrored 1:1 by streamed events.
        let bo_iters = out.history.iter().filter(|r| r.iteration > 0).count();
        assert!(bo_iters > 0);
        assert_eq!(out.telemetry.decisions.len(), bo_iters);
        assert_eq!(sink.named("fidelity_decision").len(), bo_iters);
        for (d, r) in out
            .telemetry
            .decisions
            .iter()
            .zip(out.history.iter().filter(|r| r.iteration > 0))
        {
            assert_eq!(d.iteration, r.iteration);
            assert_eq!(d.chose_high, r.fidelity == Fidelity::High);
            assert!((d.cost_after - r.cost_so_far).abs() < 1e-12);
            assert!(d.max_low_variance.is_finite());
            assert!((d.threshold - 0.01).abs() < 1e-12); // (1+0)·γ, Nc = 0
        }

        // Stage timing covers the whole hot path, and the wall clock bounds
        // the per-stage totals.
        for stage in ["surrogate_fit", "acq_opt", "simulate_low", "simulate_high"] {
            assert!(out.telemetry.stages.contains_key(stage), "missing {stage}");
        }
        assert_eq!(
            out.telemetry.stages["surrogate_fit"].calls as usize,
            bo_iters
        );
        assert_eq!(out.telemetry.stages["acq_opt"].calls as usize, bo_iters);
        assert!(out.telemetry.wall_us >= out.telemetry.stages["surrogate_fit"].total_us);

        assert_eq!(sink.named("run_start").len(), 1);
        assert_eq!(sink.named("run_end").len(), 1);
    }

    #[test]
    fn rank1_appends_solve_forrester() {
        // The O(n²) append path replaces frozen refactorizations between
        // full refits; trajectories are approximate but the optimizer must
        // still reach the Forrester optimum. The debug-level counter proves
        // the rank-one path actually ran.
        let sink = std::sync::Arc::new(mfbo_telemetry::sinks::CollectSink::with_level(
            mfbo_telemetry::Level::Debug,
        ));
        let guard = mfbo_telemetry::scoped_sink(sink.clone());
        let mut rng = StdRng::seed_from_u64(2024);
        let config = MfBoConfig {
            initial_low: 8,
            initial_high: 4,
            budget: 14.0,
            refit_every: 4,
            rank1_appends: true,
            ..MfBoConfig::default()
        };
        let out = MfBayesOpt::new(config).run(&forrester(), &mut rng).unwrap();
        drop(guard);
        assert!(out.best_objective < -5.5, "best = {}", out.best_objective);
        assert!(
            !sink.named("chol_rank1_appends").is_empty(),
            "rank-one append path never ran"
        );
    }

    #[test]
    fn rank1_appends_reject_winsorization() {
        let mut rng = StdRng::seed_from_u64(0);
        let e = MfBayesOpt::new(MfBoConfig {
            rank1_appends: true,
            winsorize_sigma: Some(2.5),
            ..MfBoConfig::default()
        })
        .run(&forrester(), &mut rng);
        assert!(matches!(e, Err(MfboError::InvalidConfig { .. })));
    }

    #[test]
    fn frozen_refits_dont_break_the_loop() {
        let mut rng = StdRng::seed_from_u64(7);
        let config = MfBoConfig {
            initial_low: 8,
            initial_high: 4,
            budget: 12.0,
            refit_every: 5,
            ..MfBoConfig::default()
        };
        let out = MfBayesOpt::new(config).run(&forrester(), &mut rng).unwrap();
        assert!(out.best_objective < -5.0, "best = {}", out.best_objective);
    }
}

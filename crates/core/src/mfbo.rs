//! The multi-fidelity Bayesian optimization driver — paper Algorithm 1.
//!
//! Per iteration:
//!
//! 1. build/refresh the fusion surrogates (§3.1–3.2);
//! 2. maximize the **low-fidelity** wEI with the MSP strategy → `x*_l`
//!    (Algorithm 1, line 5);
//! 3. maximize the **high-fidelity** wEI, seeding the MSP starts with
//!    `x*_l` and the biased anchors of §4.1 → `x_t` (line 6);
//! 4. choose the evaluation fidelity by the variance criterion of §3.4;
//! 5. simulate and extend the training set (line 8).
//!
//! When the high-fidelity data contain no feasible point yet, step 2–3 are
//! replaced by the first-feasible-point search of §4.2 (minimize
//! `Σ max(0, μ_h,i(x))`, eq. 13).

use crate::fidelity::FidelitySelector;
use crate::history::{EvaluationRecord, FidelityData, Outcome};
use crate::nargp::MfGpConfig;
use crate::problem::{Fidelity, MultiFidelityProblem};
use crate::surrogate::{MfBundleThetas, MfSurrogates};
use crate::MfboError;
use mfbo_opt::{msp::MultiStart, neldermead::NelderMead, sampling};
use rand::Rng;

/// Configuration of [`MfBayesOpt`].
///
/// The defaults mirror the paper's reported settings where it states them:
/// γ = 0.01, 10 % of MSP starts around the low-fidelity incumbent, 40 %
/// around the high-fidelity incumbent.
#[derive(Debug, Clone)]
pub struct MfBoConfig {
    /// Size of the initial low-fidelity Latin-hypercube design.
    pub initial_low: usize,
    /// Size of the initial high-fidelity Latin-hypercube design.
    pub initial_high: usize,
    /// Total simulation budget in *equivalent high-fidelity simulations*
    /// (initial design included).
    pub budget: f64,
    /// Hard cap on BO iterations (safety net; the budget normally stops the
    /// loop first).
    pub max_iterations: usize,
    /// Number of MSP starting points per acquisition optimization.
    pub msp_starts: usize,
    /// Fraction of starts scattered around the low-fidelity incumbent
    /// (paper: 0.10).
    pub frac_around_tau_l: f64,
    /// Fraction of starts scattered around the high-fidelity incumbent
    /// (paper: 0.40).
    pub frac_around_tau_h: f64,
    /// Relative width of the anchor clouds (fraction of each bound width).
    pub anchor_spread: f64,
    /// Fidelity-selection threshold γ of eqs. (11)–(12).
    pub gamma: f64,
    /// Surrogate training configuration.
    pub model: MfGpConfig,
    /// Re-optimize hyperparameters every `refit_every` iterations; in
    /// between, refresh the models with frozen hyperparameters. `1` = refit
    /// every iteration (most faithful, most expensive).
    pub refit_every: usize,
    /// Optional winsorization of surrogate training targets at
    /// `mean ± k·std` (see [`crate::FidelityData::winsorized`]). `None`
    /// (paper-faithful) fits the raw observations; heavy-tailed problems
    /// like the charge pump benefit from `Some(2.5)`.
    pub winsorize_sigma: Option<f64>,
    /// Verification safeguard: after this many *consecutive* low-fidelity
    /// selections, the next sample is forced to high fidelity regardless of
    /// eq. (11). In high-dimensional spaces the low-fidelity posterior
    /// variance at fresh acquisition points never falls below any fixed γ
    /// (the curse of dimensionality keeps every new point far from the
    /// data), which would otherwise starve the fusion model of
    /// high-fidelity evidence forever. The paper does not state such a
    /// safeguard, but its reported charge-pump run (146 fine samples out of
    /// 471) is unreachable without one.
    pub max_low_streak: usize,
}

impl Default for MfBoConfig {
    fn default() -> Self {
        MfBoConfig {
            initial_low: 10,
            initial_high: 5,
            budget: 50.0,
            max_iterations: 10_000,
            msp_starts: 24,
            frac_around_tau_l: 0.10,
            frac_around_tau_h: 0.40,
            anchor_spread: 0.05,
            gamma: 0.01,
            model: MfGpConfig::fast(),
            refit_every: 1,
            winsorize_sigma: None,
            max_low_streak: 25,
        }
    }
}

/// The multi-fidelity Bayesian optimizer (paper Algorithm 1).
///
/// See the crate-level example for usage.
#[derive(Debug, Clone)]
pub struct MfBayesOpt {
    config: MfBoConfig,
}

impl MfBayesOpt {
    /// Creates a driver with the given configuration.
    pub fn new(config: MfBoConfig) -> Self {
        MfBayesOpt { config }
    }

    /// Runs the optimization on `problem`.
    ///
    /// # Errors
    ///
    /// Returns [`MfboError::InvalidConfig`] for inconsistent settings,
    /// [`MfboError::NonFiniteEvaluation`] if the simulator produces NaN/inf,
    /// and [`MfboError::Surrogate`] if model training fails irrecoverably.
    pub fn run<P, R>(&self, problem: &P, rng: &mut R) -> Result<Outcome, MfboError>
    where
        P: MultiFidelityProblem + ?Sized,
        R: Rng + ?Sized,
    {
        let cfg = &self.config;
        if cfg.initial_low == 0 || cfg.initial_high == 0 {
            return Err(MfboError::InvalidConfig {
                reason: "initial designs must be non-empty".into(),
            });
        }
        if cfg.budget <= 0.0 {
            return Err(MfboError::InvalidConfig {
                reason: "budget must be positive".into(),
            });
        }
        let bounds = problem.bounds();
        let nc = problem.num_constraints();
        let mut low = FidelityData::new(nc);
        let mut high = FidelityData::new(nc);
        let mut history: Vec<EvaluationRecord> = Vec::new();
        let mut cost = 0.0;

        // --- Initial design (Algorithm 1, line 1). ---
        for x in sampling::latin_hypercube(&bounds, cfg.initial_low, rng) {
            let eval = problem.evaluate(&x, Fidelity::Low);
            if !eval.is_finite() {
                return Err(MfboError::NonFiniteEvaluation { x });
            }
            cost += problem.cost(Fidelity::Low);
            low.push(x.clone(), &eval);
            history.push(EvaluationRecord {
                iteration: 0,
                x,
                fidelity: Fidelity::Low,
                evaluation: eval,
                cost_so_far: cost,
            });
        }
        for x in sampling::latin_hypercube(&bounds, cfg.initial_high, rng) {
            let eval = problem.evaluate(&x, Fidelity::High);
            if !eval.is_finite() {
                return Err(MfboError::NonFiniteEvaluation { x });
            }
            cost += problem.cost(Fidelity::High);
            high.push(x.clone(), &eval);
            history.push(EvaluationRecord {
                iteration: 0,
                x,
                fidelity: Fidelity::High,
                evaluation: eval,
                cost_so_far: cost,
            });
        }

        let selector = FidelitySelector::new(cfg.gamma);
        let mut low_streak = 0usize;
        let mut thetas: Option<MfBundleThetas> = None;
        let mut iterations_since_refit = 0usize;
        // Surrogates and acquisition optimization operate in the unit cube;
        // the problem is evaluated (and history recorded) in raw units.
        let unit = mfbo_opt::Bounds::unit(bounds.dim());

        // --- Main loop (Algorithm 1, lines 2–9). ---
        for iteration in 1..=cfg.max_iterations {
            if cost >= cfg.budget {
                break;
            }
            let mut low_u = low.to_unit(&bounds);
            let mut high_u = high.to_unit(&bounds);
            if let Some(k) = cfg.winsorize_sigma {
                low_u = low_u.winsorized(k);
                high_u = high_u.winsorized(k);
            }

            // Line 3: build the multi-fidelity model. Full hyperparameter
            // optimization every `refit_every` iterations, frozen refresh in
            // between; a frozen-refresh failure falls back to a full refit.
            let surrogates = match &thetas {
                Some(t) if iterations_since_refit < cfg.refit_every => {
                    match MfSurrogates::fit_frozen(&low_u, &high_u, t, cfg.model.mc_samples) {
                        Ok(s) => s,
                        Err(_) => MfSurrogates::fit(&low_u, &high_u, &cfg.model, rng)?,
                    }
                }
                Some(t) => {
                    iterations_since_refit = 0;
                    MfSurrogates::fit_warm(&low_u, &high_u, &cfg.model, t, rng)?
                }
                None => {
                    iterations_since_refit = 0;
                    MfSurrogates::fit(&low_u, &high_u, &cfg.model, rng)?
                }
            };
            iterations_since_refit += 1;
            thetas = Some(surrogates.thetas());

            // Incumbents (values and locations) at each fidelity.
            let best_low = low.best_feasible().or_else(|| low.best_any());
            let best_high = high.best_feasible().or_else(|| high.best_any());
            let has_feasible_high = high.best_feasible().is_some();

            let local = NelderMead::new().with_max_iters(90);
            let xt_unit = if nc > 0 && !has_feasible_high {
                // §4.2: no feasible point known — minimize Σ max(0, μ_h,i).
                // A tiny objective-mean tie-break steers the search toward
                // good designs once the drive term flattens at zero.
                let drive = |x: &[f64]| {
                    let d = surrogates.feasibility_drive(x);
                    let obj = surrogates.objective().predict(x).mean;
                    d + 1e-4 * obj
                };
                let ms = MultiStart::new(cfg.msp_starts).with_local_search(local.clone());
                ms.minimize(&drive, &unit, rng).x
            } else {
                // Line 5: optimize the low-fidelity wEI → x*_l.
                let tau_l = best_low.map(|(_, v)| v).unwrap_or(0.0);
                let tau_h = best_high.map(|(_, v)| v).unwrap_or(0.0);
                let mut ms_low = MultiStart::new(cfg.msp_starts).with_local_search(local.clone());
                if let Some((k, _)) = best_low {
                    ms_low = ms_low.with_anchor(
                        low_u.xs[k].clone(),
                        cfg.frac_around_tau_l + cfg.frac_around_tau_h,
                        cfg.anchor_spread,
                    );
                }
                let wei_l = |x: &[f64]| surrogates.wei_low(x, tau_l);
                let xl_star = ms_low.maximize(&wei_l, &unit, rng).x;

                // Line 6: optimize the high-fidelity wEI seeded with x*_l
                // and the biased anchors of §4.1.
                let mut ms_high = MultiStart::new(cfg.msp_starts)
                    .with_local_search(local)
                    .with_anchor(xl_star, 0.15, cfg.anchor_spread);
                if let Some((k, _)) = best_high {
                    ms_high = ms_high.with_anchor(
                        high_u.xs[k].clone(),
                        cfg.frac_around_tau_h,
                        cfg.anchor_spread,
                    );
                }
                if let Some((k, _)) = best_low {
                    ms_high = ms_high.with_anchor(
                        low_u.xs[k].clone(),
                        cfg.frac_around_tau_l,
                        cfg.anchor_spread,
                    );
                }
                let wei_h = |x: &[f64]| surrogates.wei_high(x, tau_h);
                ms_high.maximize(&wei_h, &unit, rng).x
            };

            // Line 7: fidelity selection (§3.4), with the verification
            // safeguard (see MfBoConfig::max_low_streak).
            let mut fidelity = selector.select(surrogates.max_low_variance(&xt_unit), nc);
            if fidelity == Fidelity::Low && low_streak >= cfg.max_low_streak {
                fidelity = Fidelity::High;
            }
            match fidelity {
                Fidelity::Low => low_streak += 1,
                Fidelity::High => low_streak = 0,
            }

            // Line 8: simulate and extend the training set.
            let xt = bounds.from_unit(&xt_unit);
            let eval = problem.evaluate(&xt, fidelity);
            if !eval.is_finite() {
                return Err(MfboError::NonFiniteEvaluation { x: xt });
            }
            cost += problem.cost(fidelity);
            match fidelity {
                Fidelity::Low => low.push(xt.clone(), &eval),
                Fidelity::High => high.push(xt.clone(), &eval),
            }
            history.push(EvaluationRecord {
                iteration,
                x: xt,
                fidelity,
                evaluation: eval,
                cost_so_far: cost,
            });
        }

        Ok(Outcome::from_data(high, low, history))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::FunctionProblem;
    use mfbo_opt::Bounds;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Forrester function pair — the canonical multi-fidelity benchmark.
    fn forrester() -> FunctionProblem {
        FunctionProblem::builder("forrester", Bounds::unit(1))
            .high(|x: &[f64]| (6.0 * x[0] - 2.0).powi(2) * (12.0 * x[0] - 4.0).sin())
            .low(|x: &[f64]| {
                let f = (6.0 * x[0] - 2.0).powi(2) * (12.0 * x[0] - 4.0).sin();
                0.5 * f + 10.0 * (x[0] - 0.5) - 5.0
            })
            .low_cost(0.1)
            .build()
    }

    #[test]
    fn solves_forrester_within_budget() {
        // Global minimum ≈ -6.0207 at x ≈ 0.7572.
        let mut rng = StdRng::seed_from_u64(2024);
        let config = MfBoConfig {
            initial_low: 8,
            initial_high: 4,
            budget: 14.0,
            ..MfBoConfig::default()
        };
        let out = MfBayesOpt::new(config).run(&forrester(), &mut rng).unwrap();
        assert!(out.best_objective < -5.5, "best = {}", out.best_objective);
        assert!((out.best_x[0] - 0.7572).abs() < 0.05, "x = {:?}", out.best_x);
        assert!(out.total_cost <= 14.0 + 1.0); // one evaluation of overshoot allowed
        assert!(out.n_low >= 8 && out.n_high >= 4);
    }

    #[test]
    fn uses_cheap_fidelity_substantially() {
        let mut rng = StdRng::seed_from_u64(7);
        let config = MfBoConfig {
            initial_low: 8,
            initial_high: 4,
            budget: 12.0,
            ..MfBoConfig::default()
        };
        let out = MfBayesOpt::new(config).run(&forrester(), &mut rng).unwrap();
        // The fidelity criterion should route a meaningful share of queries
        // to the cheap simulator.
        assert!(out.n_low > 8, "n_low = {}", out.n_low);
    }

    #[test]
    fn constrained_problem_finds_feasible_optimum() {
        // min (x0-0.2)² + (x1-0.2)² s.t. x0 + x1 > 1 (c = 1 - x0 - x1 < 0).
        // Optimum on the boundary at (0.5, 0.5), objective 0.18.
        let p = FunctionProblem::builder("c-toy", Bounds::unit(2))
            .high(|x: &[f64]| (x[0] - 0.2).powi(2) + (x[1] - 0.2).powi(2))
            .low(|x: &[f64]| (x[0] - 0.23).powi(2) + (x[1] - 0.17).powi(2) + 0.02)
            .high_constraints(1, |x: &[f64]| vec![1.0 - x[0] - x[1]])
            .low_constraints(|x: &[f64]| vec![1.02 - x[0] - x[1]])
            .low_cost(0.1)
            .build();
        let mut rng = StdRng::seed_from_u64(11);
        let config = MfBoConfig {
            initial_low: 10,
            initial_high: 5,
            budget: 20.0,
            ..MfBoConfig::default()
        };
        let out = MfBayesOpt::new(config).run(&p, &mut rng).unwrap();
        assert!(out.feasible);
        assert!(out.best_objective < 0.25, "best = {}", out.best_objective);
        assert!(
            out.best_x[0] + out.best_x[1] >= 0.99,
            "x = {:?}",
            out.best_x
        );
    }

    #[test]
    fn rejects_bad_configs() {
        let p = forrester();
        let mut rng = StdRng::seed_from_u64(0);
        let e = MfBayesOpt::new(MfBoConfig {
            initial_low: 0,
            ..MfBoConfig::default()
        })
        .run(&p, &mut rng);
        assert!(matches!(e, Err(MfboError::InvalidConfig { .. })));

        let e = MfBayesOpt::new(MfBoConfig {
            budget: 0.0,
            ..MfBoConfig::default()
        })
        .run(&p, &mut rng);
        assert!(matches!(e, Err(MfboError::InvalidConfig { .. })));
    }

    #[test]
    fn non_finite_problem_is_reported() {
        let p = FunctionProblem::builder("nan", Bounds::unit(1))
            .high(|_: &[f64]| f64::NAN)
            .build();
        let mut rng = StdRng::seed_from_u64(0);
        let e = MfBayesOpt::new(MfBoConfig::default()).run(&p, &mut rng);
        assert!(matches!(e, Err(MfboError::NonFiniteEvaluation { .. })));
    }

    #[test]
    fn history_is_complete_and_cost_monotone() {
        let mut rng = StdRng::seed_from_u64(3);
        let config = MfBoConfig {
            initial_low: 6,
            initial_high: 3,
            budget: 8.0,
            ..MfBoConfig::default()
        };
        let out = MfBayesOpt::new(config).run(&forrester(), &mut rng).unwrap();
        assert_eq!(out.history.len(), out.n_low + out.n_high);
        let mut prev = 0.0;
        for r in &out.history {
            assert!(r.cost_so_far > prev);
            prev = r.cost_so_far;
        }
        assert!(out.cost_to_best <= out.total_cost);
    }

    #[test]
    fn frozen_refits_dont_break_the_loop() {
        let mut rng = StdRng::seed_from_u64(5);
        let config = MfBoConfig {
            initial_low: 8,
            initial_high: 4,
            budget: 12.0,
            refit_every: 5,
            ..MfBoConfig::default()
        };
        let out = MfBayesOpt::new(config).run(&forrester(), &mut rng).unwrap();
        assert!(out.best_objective < -5.0, "best = {}", out.best_objective);
    }
}

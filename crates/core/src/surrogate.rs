//! Surrogate-model bundles: one model per output (objective + each
//! constraint), at one or two fidelities.
//!
//! The paper models every circuit performance separately — the objective and
//! each constraint get their own GP (single-fidelity case, §2.4) or their
//! own fusion model (multi-fidelity case, §3). These bundles wire the
//! per-output posteriors into the acquisition formulas of
//! [`crate::acquisition`].

use crate::acquisition;
use crate::history::FidelityData;
use crate::nargp::{MfGp, MfGpConfig, MfGpPlan, MfGpThetas};
use crate::problem::{Evaluation, Fidelity};
use mfbo_gp::kernel::SquaredExponential;
use mfbo_gp::{DiffBatch, FitCache, Gp, GpConfig, GpError, InferenceMode, Prediction};
use mfbo_pool::{par_map_indexed, Parallelism};
use rand::Rng;

/// Trained hyperparameters of a full multi-fidelity bundle, for warm or
/// frozen refits across BO iterations.
#[derive(Debug, Clone, PartialEq)]
pub struct MfBundleThetas {
    /// Objective fusion-model hyperparameters.
    pub objective: MfGpThetas,
    /// Per-constraint fusion-model hyperparameters.
    pub constraints: Vec<MfGpThetas>,
}

/// Trained hyperparameters of a single-fidelity bundle.
#[derive(Debug, Clone, PartialEq)]
pub struct SfBundleThetas {
    /// Objective GP hyperparameters `[kernel…, log σ_n]`.
    pub objective: Vec<f64>,
    /// Per-constraint GP hyperparameters.
    pub constraints: Vec<Vec<f64>>,
}

/// Serializes a hyperparameter vector for the `hyperparams` trajectory
/// event: comma-joined shortest-round-trip floats, so the analyzer can parse
/// the exact `f64` bits back out of a JSONL trace.
pub(crate) fn fmt_thetas(theta: &[f64]) -> String {
    let mut out = String::new();
    for (i, v) in theta.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&mfbo_telemetry::json::Json::Num(*v).to_string());
    }
    out
}

/// Multi-fidelity surrogate bundle: a fusion model for the objective and one
/// for each constraint.
#[derive(Debug, Clone)]
pub struct MfSurrogates {
    objective: MfGp,
    constraints: Vec<MfGp>,
}

impl MfSurrogates {
    /// Fits fusion models for every output from the two fidelity data sets.
    ///
    /// # Errors
    ///
    /// Propagates the first [`GpError`] encountered.
    pub fn fit<R: Rng + ?Sized>(
        low: &FidelityData,
        high: &FidelityData,
        config: &MfGpConfig,
        rng: &mut R,
    ) -> Result<Self, GpError> {
        let dim = match high.xs.first() {
            Some(x) => x.len(),
            None => {
                return Err(GpError::InvalidTrainingSet {
                    reason: "no high-fidelity training points".into(),
                })
            }
        };
        let n_cons = low.constraints.len().min(high.constraints.len());
        // Draw every model's starting points serially, in exactly the order
        // the sequential fits would: objective first, then each constraint.
        // The fits themselves are then pure and run on the pool — the bundle
        // is bit-identical in every parallelism mode.
        let plans: Vec<MfGpPlan> = (0..=n_cons).map(|_| MfGp::plan(dim, config, rng)).collect();
        Self::fit_all_planned(low, high, config, plans, None)
    }

    /// [`MfSurrogates::fit`] backed by a persistent cross-iteration
    /// [`FitCache`]: the cache is synced to `low.xs` (computing only the
    /// pair diffs of newly appended points) and its batch replaces the
    /// per-fit low-stage difference build. Bit-identical to
    /// [`MfSurrogates::fit`] and consumes the RNG in the same order.
    ///
    /// # Errors
    ///
    /// Propagates the first [`GpError`] encountered.
    pub fn fit_with_cache<R: Rng + ?Sized>(
        low: &FidelityData,
        high: &FidelityData,
        config: &MfGpConfig,
        rng: &mut R,
        cache: &mut FitCache,
    ) -> Result<Self, GpError> {
        let dim = match high.xs.first() {
            Some(x) => x.len(),
            None => {
                return Err(GpError::InvalidTrainingSet {
                    reason: "no high-fidelity training points".into(),
                })
            }
        };
        let n_cons = low.constraints.len().min(high.constraints.len());
        let plans: Vec<MfGpPlan> = (0..=n_cons).map(|_| MfGp::plan(dim, config, rng)).collect();
        cache.sync(&low.xs);
        let batch = cache.batch();
        Self::fit_all_planned(low, high, config, plans, Some(&batch))
    }

    /// Runs the (pure) per-model fits from pre-drawn plans, distributed over
    /// `config.parallelism`. `plans[0]` trains the objective, `plans[i + 1]`
    /// constraint `i`. Models are reduced in output order, so the first
    /// error in that order is returned, as in the sequential code.
    ///
    /// Every model of the bundle trains its low stage on the same `X_l`, so
    /// one lower-triangle difference batch serves all 1+m low-stage NLML
    /// workspaces — built here once (or passed in from a persistent
    /// [`FitCache`]) instead of once per model. The shared batch holds the
    /// exact diff values each per-model build would compute, so the bundle
    /// is bit-identical to unshared fitting.
    fn fit_all_planned(
        low: &FidelityData,
        high: &FidelityData,
        config: &MfGpConfig,
        plans: Vec<MfGpPlan>,
        low_shared: Option<&DiffBatch<'_>>,
    ) -> Result<Self, GpError> {
        let local;
        let batch: &DiffBatch<'_> = match low_shared {
            Some(b) => b,
            None => {
                local = DiffBatch::lower_triangle(&low.xs);
                &local
            }
        };
        let fitted = par_map_indexed(config.parallelism, plans.len(), |i| {
            let (yl, yh) = if i == 0 {
                (&low.objective, &high.objective)
            } else {
                (&low.constraints[i - 1], &high.constraints[i - 1])
            };
            MfGp::fit_planned_shared(
                low.xs.clone(),
                yl.clone(),
                high.xs.clone(),
                yh.clone(),
                config,
                plans[i].clone(),
                Some(batch),
            )
        });
        let mut models = fitted.into_iter();
        let objective = models.next().expect("plans contains the objective")?;
        let constraints = models.collect::<Result<Vec<_>, _>>()?;
        Ok(MfSurrogates {
            objective,
            constraints,
        })
    }

    /// Like [`MfSurrogates::fit`], seeding each model's hyperparameter
    /// search with the previous optimum.
    ///
    /// # Errors
    ///
    /// Propagates the first [`GpError`] encountered.
    pub fn fit_warm<R: Rng + ?Sized>(
        low: &FidelityData,
        high: &FidelityData,
        config: &MfGpConfig,
        warm: &MfBundleThetas,
        rng: &mut R,
    ) -> Result<Self, GpError> {
        let dim = match high.xs.first() {
            Some(x) => x.len(),
            None => {
                return Err(GpError::InvalidTrainingSet {
                    reason: "no high-fidelity training points".into(),
                })
            }
        };
        let n_cons = low.constraints.len().min(high.constraints.len());
        // Warm starts only influence the planned starting points, so the
        // per-model warm configs are needed at plan time only.
        let plans: Vec<MfGpPlan> = (0..=n_cons)
            .map(|i| {
                let w = if i == 0 {
                    &warm.objective
                } else {
                    &warm.constraints[i - 1]
                };
                let mut cfg = config.clone();
                cfg.low.warm_start = Some(w.low.clone());
                cfg.high.warm_start = Some(w.high.clone());
                MfGp::plan(dim, &cfg, rng)
            })
            .collect();
        Self::fit_all_planned(low, high, config, plans, None)
    }

    /// [`MfSurrogates::fit_warm`] backed by a persistent [`FitCache`] (see
    /// [`MfSurrogates::fit_with_cache`]). Bit-identical to
    /// [`MfSurrogates::fit_warm`] and consumes the RNG in the same order.
    ///
    /// # Errors
    ///
    /// Propagates the first [`GpError`] encountered.
    pub fn fit_warm_with_cache<R: Rng + ?Sized>(
        low: &FidelityData,
        high: &FidelityData,
        config: &MfGpConfig,
        warm: &MfBundleThetas,
        rng: &mut R,
        cache: &mut FitCache,
    ) -> Result<Self, GpError> {
        let dim = match high.xs.first() {
            Some(x) => x.len(),
            None => {
                return Err(GpError::InvalidTrainingSet {
                    reason: "no high-fidelity training points".into(),
                })
            }
        };
        let n_cons = low.constraints.len().min(high.constraints.len());
        let plans: Vec<MfGpPlan> = (0..=n_cons)
            .map(|i| {
                let w = if i == 0 {
                    &warm.objective
                } else {
                    &warm.constraints[i - 1]
                };
                let mut cfg = config.clone();
                cfg.low.warm_start = Some(w.low.clone());
                cfg.high.warm_start = Some(w.high.clone());
                MfGp::plan(dim, &cfg, rng)
            })
            .collect();
        cache.sync(&low.xs);
        let batch = cache.batch();
        Self::fit_all_planned(low, high, config, plans, Some(&batch))
    }

    /// Rebuilds every model on new data with frozen hyperparameters (no
    /// training) — the cheap path between full refits.
    ///
    /// # Errors
    ///
    /// Propagates the first [`GpError`] encountered.
    pub fn fit_frozen(
        low: &FidelityData,
        high: &FidelityData,
        thetas: &MfBundleThetas,
        mc_samples: usize,
        parallelism: Parallelism,
    ) -> Result<Self, GpError> {
        Self::fit_frozen_infer(
            low,
            high,
            thetas,
            mc_samples,
            parallelism,
            InferenceMode::Exact,
        )
    }

    /// [`MfSurrogates::fit_frozen`] with an explicit [`InferenceMode`] for
    /// every model; `Exact` is byte-identical to [`MfSurrogates::fit_frozen`].
    ///
    /// # Errors
    ///
    /// Propagates the first [`GpError`] encountered.
    pub fn fit_frozen_infer(
        low: &FidelityData,
        high: &FidelityData,
        thetas: &MfBundleThetas,
        mc_samples: usize,
        parallelism: Parallelism,
        inference: InferenceMode,
    ) -> Result<Self, GpError> {
        Self::fit_frozen_infer_planned(low, high, thetas, mc_samples, parallelism, inference, None)
    }

    /// [`MfSurrogates::fit_frozen_infer`] backed by a persistent
    /// [`FitCache`] (see [`MfSurrogates::fit_with_cache`]). Bit-identical
    /// to [`MfSurrogates::fit_frozen_infer`].
    ///
    /// # Errors
    ///
    /// Propagates the first [`GpError`] encountered.
    #[allow(clippy::too_many_arguments)]
    pub fn fit_frozen_infer_with_cache(
        low: &FidelityData,
        high: &FidelityData,
        thetas: &MfBundleThetas,
        mc_samples: usize,
        parallelism: Parallelism,
        inference: InferenceMode,
        cache: &mut FitCache,
    ) -> Result<Self, GpError> {
        cache.sync(&low.xs);
        let batch = cache.batch();
        Self::fit_frozen_infer_planned(
            low,
            high,
            thetas,
            mc_samples,
            parallelism,
            inference,
            Some(&batch),
        )
    }

    /// The frozen-refresh worker behind [`MfSurrogates::fit_frozen_infer`]:
    /// one shared low-stage difference batch (built here or served by a
    /// persistent cache) serves all 1+m models.
    #[allow(clippy::too_many_arguments)]
    fn fit_frozen_infer_planned(
        low: &FidelityData,
        high: &FidelityData,
        thetas: &MfBundleThetas,
        mc_samples: usize,
        parallelism: Parallelism,
        inference: InferenceMode,
        low_shared: Option<&DiffBatch<'_>>,
    ) -> Result<Self, GpError> {
        let local;
        let batch: &DiffBatch<'_> = match low_shared {
            Some(b) => b,
            None => {
                local = DiffBatch::lower_triangle(&low.xs);
                &local
            }
        };
        // Frozen refits consume no randomness at all, so the per-model
        // factorizations go straight onto the pool. The iterative mode's CG
        // matvecs therefore run serially inside each pool slot — the models
        // themselves are the unit of parallelism here.
        let n_cons = low.constraints.len().min(high.constraints.len());
        let fitted = par_map_indexed(parallelism, n_cons + 1, |i| {
            let (yl, yh, t) = if i == 0 {
                (&low.objective, &high.objective, &thetas.objective)
            } else {
                (
                    &low.constraints[i - 1],
                    &high.constraints[i - 1],
                    &thetas.constraints[i - 1],
                )
            };
            MfGp::fit_frozen_infer_shared(
                low.xs.clone(),
                yl.clone(),
                high.xs.clone(),
                yh.clone(),
                t,
                mc_samples,
                inference,
                Parallelism::Serial,
                Some(batch),
            )
            .map(|m| m.with_parallelism(parallelism))
        });
        let mut models = fitted.into_iter();
        let objective = models.next().expect("bundle contains the objective")?;
        let constraints = models.collect::<Result<Vec<_>, _>>()?;
        Ok(MfSurrogates {
            objective,
            constraints,
        })
    }

    /// Appends one evaluation to every model in the bundle by rank-one
    /// Cholesky extension (see [`MfGp::append_observation`]) — the O(n²)
    /// alternative to a from-scratch [`MfSurrogates::fit_frozen`].
    ///
    /// # Errors
    ///
    /// Propagates the first [`GpError`]. The bundle may then be *partially*
    /// extended (earlier models appended, later ones not) — the caller must
    /// discard it and rebuild from data, which the BO loop's frozen-refit
    /// fallback does anyway.
    pub fn append_observation(
        &mut self,
        fidelity: Fidelity,
        x: &[f64],
        eval: &Evaluation,
    ) -> Result<(), GpError> {
        self.objective
            .append_observation(fidelity, x.to_vec(), eval.objective)?;
        for (model, &y) in self.constraints.iter_mut().zip(&eval.constraints) {
            model.append_observation(fidelity, x.to_vec(), y)?;
        }
        Ok(())
    }

    /// The trained hyperparameters of every model in the bundle.
    pub fn thetas(&self) -> MfBundleThetas {
        MfBundleThetas {
            objective: self.objective.thetas(),
            constraints: self.constraints.iter().map(MfGp::thetas).collect(),
        }
    }

    /// `true` when the warm-start seed (plan index 1; see
    /// [`mfbo_gp::Gp::best_start`]) won the NLML search in *both* stages of
    /// *every* model in the bundle. Only meaningful after a warm fit
    /// ([`MfSurrogates::fit_warm`]); the signal behind the
    /// `theta_warm_wins` counter and `MfBoConfig::adaptive_restarts`.
    pub fn warm_seed_won(&self) -> bool {
        std::iter::once(&self.objective)
            .chain(self.constraints.iter())
            .all(|m| m.best_starts() == (Some(1), Some(1)))
    }

    /// The objective fusion model.
    pub fn objective(&self) -> &MfGp {
        &self.objective
    }

    /// The constraint fusion models.
    pub fn constraints(&self) -> &[MfGp] {
        &self.constraints
    }

    /// Weighted EI of the **low-fidelity** models at `x` against incumbent
    /// `tau_l` (Algorithm 1, line 5).
    pub fn wei_low(&self, x: &[f64], tau_l: f64) -> f64 {
        let p = self.objective.predict_low(x);
        let cons: Vec<(f64, f64)> = self
            .constraints
            .iter()
            .map(|c| {
                let cp = c.predict_low(x);
                (cp.mean, cp.std_dev())
            })
            .collect();
        acquisition::weighted_ei(p.mean, p.std_dev(), tau_l, &cons)
    }

    /// Weighted EI of the **high-fidelity** fusion posteriors at `x` against
    /// incumbent `tau_h` (Algorithm 1, line 6).
    pub fn wei_high(&self, x: &[f64], tau_h: f64) -> f64 {
        let p = self.objective.predict(x);
        let cons: Vec<(f64, f64)> = self
            .constraints
            .iter()
            .map(|c| {
                let cp = c.predict(x);
                (cp.mean, cp.std_dev())
            })
            .collect();
        acquisition::weighted_ei(p.mean, p.std_dev(), tau_h, &cons)
    }

    /// Maximum standardized low-fidelity posterior variance over all outputs
    /// — the left-hand side of the fidelity-selection criterion, eq. (12).
    pub fn max_low_variance(&self, x: &[f64]) -> f64 {
        let mut v = self.objective.low_variance_standardized(x);
        for c in &self.constraints {
            v = v.max(c.low_variance_standardized(x));
        }
        v
    }

    /// The first-feasible-point objective of eq. (13) using high-fidelity
    /// constraint posterior means.
    pub fn feasibility_drive(&self, x: &[f64]) -> f64 {
        let means: Vec<f64> = self.constraints.iter().map(|c| c.predict(x).mean).collect();
        acquisition::feasibility_drive(&means)
    }

    /// High-fidelity posterior of every output at `x`.
    pub fn predict_high(&self, x: &[f64]) -> (Prediction, Vec<Prediction>) {
        (
            self.objective.predict(x),
            self.constraints.iter().map(|c| c.predict(x)).collect(),
        )
    }
}

/// Single-fidelity surrogate bundle (the substrate of the WEIBO baseline and
/// of this paper's per-fidelity components).
#[derive(Debug, Clone)]
pub struct SfSurrogates {
    objective: Gp<SquaredExponential>,
    constraints: Vec<Gp<SquaredExponential>>,
}

impl SfSurrogates {
    /// Fits one SE-ARD GP per output.
    ///
    /// # Errors
    ///
    /// Propagates the first [`GpError`] encountered.
    pub fn fit<R: Rng + ?Sized>(
        data: &FidelityData,
        config: &GpConfig,
        rng: &mut R,
    ) -> Result<Self, GpError> {
        let dim = data
            .xs
            .first()
            .map(Vec::len)
            .ok_or_else(|| GpError::InvalidTrainingSet {
                reason: "no training points".into(),
            })?;
        let kernel = SquaredExponential::new(dim);
        // Serial planning (objective first, then each constraint, matching
        // the sequential draw order), parallel pure fits.
        let plans: Vec<Vec<Vec<f64>>> = (0..=data.constraints.len())
            .map(|_| Gp::plan_starts(&kernel, config, rng))
            .collect();
        Self::fit_all_planned(data, config, plans, None)
    }

    /// [`SfSurrogates::fit`] backed by a persistent [`FitCache`]: the
    /// pairwise-difference batch is synced incrementally against `data.xs`
    /// and shared across every model in the bundle. Bit-identical to
    /// [`SfSurrogates::fit`].
    ///
    /// # Errors
    ///
    /// Propagates the first [`GpError`] encountered.
    pub fn fit_with_cache<R: Rng + ?Sized>(
        data: &FidelityData,
        config: &GpConfig,
        rng: &mut R,
        cache: &mut FitCache,
    ) -> Result<Self, GpError> {
        let dim = data
            .xs
            .first()
            .map(Vec::len)
            .ok_or_else(|| GpError::InvalidTrainingSet {
                reason: "no training points".into(),
            })?;
        let kernel = SquaredExponential::new(dim);
        // Plans are drawn before the cache sync so the RNG consumption order
        // matches `fit` exactly.
        let plans: Vec<Vec<Vec<f64>>> = (0..=data.constraints.len())
            .map(|_| Gp::plan_starts(&kernel, config, rng))
            .collect();
        cache.sync(&data.xs);
        let batch = cache.batch();
        Self::fit_all_planned(data, config, plans, Some(&batch))
    }

    /// Runs the (pure) per-model fits from pre-drawn starting points,
    /// distributed over `config.parallelism`. `plans[0]` trains the
    /// objective, `plans[i + 1]` constraint `i`. One pairwise-difference
    /// batch over `data.xs` (supplied via `shared`, or built here) serves
    /// every model.
    fn fit_all_planned(
        data: &FidelityData,
        config: &GpConfig,
        plans: Vec<Vec<Vec<f64>>>,
        shared: Option<&DiffBatch<'_>>,
    ) -> Result<Self, GpError> {
        let dim = data
            .xs
            .first()
            .map(Vec::len)
            .ok_or_else(|| GpError::InvalidTrainingSet {
                reason: "no training points".into(),
            })?;
        let local;
        let batch: &DiffBatch<'_> = match shared {
            Some(b) => b,
            None => {
                local = DiffBatch::lower_triangle(&data.xs);
                &local
            }
        };
        let fitted = par_map_indexed(config.parallelism, plans.len(), |i| {
            let ys = if i == 0 {
                &data.objective
            } else {
                &data.constraints[i - 1]
            };
            Gp::fit_planned_shared(
                SquaredExponential::new(dim),
                data.xs.clone(),
                ys.clone(),
                config,
                plans[i].clone(),
                Some(batch),
            )
        });
        let mut models = fitted.into_iter();
        let objective = models.next().expect("plans contains the objective")?;
        let constraints = models.collect::<Result<Vec<_>, _>>()?;
        Ok(SfSurrogates {
            objective,
            constraints,
        })
    }

    /// Like [`SfSurrogates::fit`], seeding each model's search with the
    /// previous optimum.
    ///
    /// # Errors
    ///
    /// Propagates the first [`GpError`] encountered.
    pub fn fit_warm<R: Rng + ?Sized>(
        data: &FidelityData,
        config: &GpConfig,
        warm: &SfBundleThetas,
        rng: &mut R,
    ) -> Result<Self, GpError> {
        let dim = data
            .xs
            .first()
            .map(Vec::len)
            .ok_or_else(|| GpError::InvalidTrainingSet {
                reason: "no training points".into(),
            })?;
        let kernel = SquaredExponential::new(dim);
        // Warm starts only influence the planned starting points, so the
        // per-model warm configs are needed at plan time only.
        let plans: Vec<Vec<Vec<f64>>> = (0..=data.constraints.len())
            .map(|i| {
                let w = if i == 0 {
                    &warm.objective
                } else {
                    &warm.constraints[i - 1]
                };
                let mut cfg = config.clone();
                cfg.warm_start = Some(w.clone());
                Gp::plan_starts(&kernel, &cfg, rng)
            })
            .collect();
        Self::fit_all_planned(data, config, plans, None)
    }

    /// [`SfSurrogates::fit_warm`] backed by a persistent [`FitCache`]
    /// (see [`SfSurrogates::fit_with_cache`]). Bit-identical to
    /// [`SfSurrogates::fit_warm`].
    ///
    /// # Errors
    ///
    /// Propagates the first [`GpError`] encountered.
    pub fn fit_warm_with_cache<R: Rng + ?Sized>(
        data: &FidelityData,
        config: &GpConfig,
        warm: &SfBundleThetas,
        rng: &mut R,
        cache: &mut FitCache,
    ) -> Result<Self, GpError> {
        let dim = data
            .xs
            .first()
            .map(Vec::len)
            .ok_or_else(|| GpError::InvalidTrainingSet {
                reason: "no training points".into(),
            })?;
        let kernel = SquaredExponential::new(dim);
        let plans: Vec<Vec<Vec<f64>>> = (0..=data.constraints.len())
            .map(|i| {
                let w = if i == 0 {
                    &warm.objective
                } else {
                    &warm.constraints[i - 1]
                };
                let mut cfg = config.clone();
                cfg.warm_start = Some(w.clone());
                Gp::plan_starts(&kernel, &cfg, rng)
            })
            .collect();
        cache.sync(&data.xs);
        let batch = cache.batch();
        Self::fit_all_planned(data, config, plans, Some(&batch))
    }

    /// Rebuilds every model on new data with frozen hyperparameters.
    ///
    /// # Errors
    ///
    /// Propagates the first [`GpError`] encountered.
    pub fn fit_frozen(
        data: &FidelityData,
        thetas: &SfBundleThetas,
        parallelism: Parallelism,
    ) -> Result<Self, GpError> {
        Self::fit_frozen_infer(data, thetas, parallelism, InferenceMode::Exact)
    }

    /// [`SfSurrogates::fit_frozen`] with an explicit [`InferenceMode`];
    /// `Exact` is byte-identical to [`SfSurrogates::fit_frozen`].
    ///
    /// # Errors
    ///
    /// Propagates the first [`GpError`] encountered.
    pub fn fit_frozen_infer(
        data: &FidelityData,
        thetas: &SfBundleThetas,
        parallelism: Parallelism,
        inference: InferenceMode,
    ) -> Result<Self, GpError> {
        Self::fit_frozen_infer_planned(data, thetas, parallelism, inference, None)
    }

    /// [`SfSurrogates::fit_frozen_infer`] backed by a persistent
    /// [`FitCache`] (see [`SfSurrogates::fit_with_cache`]). Bit-identical
    /// to [`SfSurrogates::fit_frozen_infer`].
    ///
    /// # Errors
    ///
    /// Propagates the first [`GpError`] encountered.
    pub fn fit_frozen_infer_with_cache(
        data: &FidelityData,
        thetas: &SfBundleThetas,
        parallelism: Parallelism,
        inference: InferenceMode,
        cache: &mut FitCache,
    ) -> Result<Self, GpError> {
        cache.sync(&data.xs);
        let batch = cache.batch();
        Self::fit_frozen_infer_planned(data, thetas, parallelism, inference, Some(&batch))
    }

    /// The frozen-refresh worker: one shared pairwise-difference batch
    /// serves every model in the bundle.
    fn fit_frozen_infer_planned(
        data: &FidelityData,
        thetas: &SfBundleThetas,
        parallelism: Parallelism,
        inference: InferenceMode,
        shared: Option<&DiffBatch<'_>>,
    ) -> Result<Self, GpError> {
        let dim = data
            .xs
            .first()
            .map(Vec::len)
            .ok_or_else(|| GpError::InvalidTrainingSet {
                reason: "no training points".into(),
            })?;
        let local;
        let batch: &DiffBatch<'_> = match shared {
            Some(b) => b,
            None => {
                local = DiffBatch::lower_triangle(&data.xs);
                &local
            }
        };
        let split = |t: &[f64]| {
            let (kp, ln) = t.split_at(t.len() - 1);
            (kp.to_vec(), ln[0])
        };
        // Frozen refits consume no randomness at all, so the per-model
        // factorizations go straight onto the pool.
        let fitted = par_map_indexed(parallelism, data.constraints.len() + 1, |i| {
            let (ys, t) = if i == 0 {
                (&data.objective, &thetas.objective)
            } else {
                (&data.constraints[i - 1], &thetas.constraints[i - 1])
            };
            let (kp, ln) = split(t);
            Gp::with_params_inference_shared(
                SquaredExponential::new(dim),
                data.xs.clone(),
                ys.clone(),
                kp,
                ln,
                true,
                inference,
                Parallelism::Serial,
                Some(batch),
            )
        });
        let mut models = fitted.into_iter();
        let objective = models.next().expect("bundle contains the objective")?;
        let constraints = models.collect::<Result<Vec<_>, _>>()?;
        Ok(SfSurrogates {
            objective,
            constraints,
        })
    }

    /// The trained hyperparameters of every model in the bundle.
    pub fn thetas(&self) -> SfBundleThetas {
        SfBundleThetas {
            objective: self.objective.theta(),
            constraints: self.constraints.iter().map(Gp::theta).collect(),
        }
    }

    /// The objective GP.
    pub fn objective(&self) -> &Gp<SquaredExponential> {
        &self.objective
    }

    /// The constraint GPs.
    pub fn constraints(&self) -> &[Gp<SquaredExponential>] {
        &self.constraints
    }

    /// Weighted EI at `x` against incumbent `tau`.
    pub fn wei(&self, x: &[f64], tau: f64) -> f64 {
        let p = self.objective.predict(x);
        let cons: Vec<(f64, f64)> = self
            .constraints
            .iter()
            .map(|c| {
                let cp = c.predict(x);
                (cp.mean, cp.std_dev())
            })
            .collect();
        acquisition::weighted_ei(p.mean, p.std_dev(), tau, &cons)
    }

    /// Lower confidence bound of the objective (used by GASPAD).
    pub fn lcb(&self, x: &[f64], kappa: f64) -> f64 {
        let p = self.objective.predict(x);
        acquisition::lower_confidence_bound(p.mean, p.std_dev(), kappa)
    }

    /// Probability that all constraints are satisfied at `x`.
    pub fn feasibility_probability(&self, x: &[f64]) -> f64 {
        self.constraints
            .iter()
            .map(|c| {
                let p = c.predict(x);
                acquisition::probability_of_feasibility(p.mean, p.std_dev())
            })
            .product()
    }

    /// The first-feasible-point objective of eq. (13).
    pub fn feasibility_drive(&self, x: &[f64]) -> f64 {
        let means: Vec<f64> = self.constraints.iter().map(|c| c.predict(x).mean).collect();
        acquisition::feasibility_drive(&means)
    }

    /// Posterior of every output at `x`.
    pub fn predict(&self, x: &[f64]) -> (Prediction, Vec<Prediction>) {
        (
            self.objective.predict(x),
            self.constraints.iter().map(|c| c.predict(x)).collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Evaluation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Constrained toy problem: objective x², constraint 0.3 - x < 0
    /// (feasible for x > 0.3).
    fn make_data(n: usize, low_bias: f64) -> FidelityData {
        let mut d = FidelityData::new(1);
        for i in 0..n {
            let x = i as f64 / (n - 1) as f64;
            d.push(
                vec![x],
                &Evaluation {
                    objective: x * x + low_bias,
                    constraints: vec![0.3 - x + low_bias * 0.1],
                },
            );
        }
        d
    }

    #[test]
    fn sf_bundle_fits_and_predicts() {
        let data = make_data(12, 0.0);
        let mut rng = StdRng::seed_from_u64(0);
        let s = SfSurrogates::fit(&data, &GpConfig::fast(), &mut rng).unwrap();
        let (obj, cons) = s.predict(&[0.5]);
        assert!((obj.mean - 0.25).abs() < 0.1);
        assert_eq!(cons.len(), 1);
        assert!((cons[0].mean - (-0.2)).abs() < 0.1);
        // Feasibility probability should be high at x = 0.9, low at x = 0.05.
        assert!(s.feasibility_probability(&[0.9]) > 0.8);
        assert!(s.feasibility_probability(&[0.05]) < 0.2);
    }

    #[test]
    fn sf_wei_prefers_feasible_improvement() {
        let data = make_data(12, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let s = SfSurrogates::fit(&data, &GpConfig::fast(), &mut rng).unwrap();
        let tau = 0.5;
        // x = 0.4: feasible with objective 0.16 < τ → good wEI.
        // x = 0.1: better objective but infeasible → tiny wEI.
        let good = s.wei(&[0.4], tau);
        let blocked = s.wei(&[0.1], tau);
        assert!(good > blocked * 5.0, "good {good}, blocked {blocked}");
    }

    #[test]
    fn sf_feasibility_drive_zero_inside_feasible_region() {
        let data = make_data(12, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let s = SfSurrogates::fit(&data, &GpConfig::fast(), &mut rng).unwrap();
        assert_eq!(s.feasibility_drive(&[0.9]), 0.0);
        assert!(s.feasibility_drive(&[0.0]) > 0.1);
    }

    #[test]
    fn sf_lcb_below_mean() {
        let data = make_data(10, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let s = SfSurrogates::fit(&data, &GpConfig::fast(), &mut rng).unwrap();
        let p = s.objective().predict(&[0.5]);
        assert!(s.lcb(&[0.5], 2.0) <= p.mean);
    }

    #[test]
    fn mf_bundle_fits_and_exposes_models() {
        let low = make_data(20, 0.3);
        let high = make_data(8, 0.0);
        let mut rng = StdRng::seed_from_u64(4);
        let s = MfSurrogates::fit(&low, &high, &MfGpConfig::fast(), &mut rng).unwrap();
        assert_eq!(s.constraints().len(), 1);
        let (obj, cons) = s.predict_high(&[0.6]);
        assert!((obj.mean - 0.36).abs() < 0.15, "mean = {}", obj.mean);
        assert_eq!(cons.len(), 1);
    }

    #[test]
    fn mf_max_low_variance_shrinks_with_data() {
        let low_sparse = make_data(4, 0.3);
        let low_dense = make_data(40, 0.3);
        let high = make_data(6, 0.0);
        let mut rng = StdRng::seed_from_u64(5);
        let sparse = MfSurrogates::fit(&low_sparse, &high, &MfGpConfig::fast(), &mut rng).unwrap();
        let dense = MfSurrogates::fit(&low_dense, &high, &MfGpConfig::fast(), &mut rng).unwrap();
        // Between training points, the dense model is far more certain.
        let x = [0.513];
        assert!(dense.max_low_variance(&x) <= sparse.max_low_variance(&x) + 1e-6);
    }

    #[test]
    fn mf_wei_high_and_low_are_nonnegative() {
        let low = make_data(15, 0.3);
        let high = make_data(6, 0.0);
        let mut rng = StdRng::seed_from_u64(6);
        let s = MfSurrogates::fit(&low, &high, &MfGpConfig::fast(), &mut rng).unwrap();
        for &x in &[0.1, 0.5, 0.77] {
            assert!(s.wei_low(&[x], 0.4) >= 0.0);
            assert!(s.wei_high(&[x], 0.4) >= 0.0);
        }
    }

    fn assert_theta_bits_eq(a: &MfGpThetas, b: &MfGpThetas) {
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a.low), bits(&b.low));
        assert_eq!(bits(&a.high), bits(&b.high));
    }

    /// Simulates the BO loop's growing training set: at every step the
    /// cache-backed fit must agree bit for bit with the fresh fit — thetas
    /// and posterior alike — even across truncation (shrinking data mimics
    /// a constant-liar fantasy point vanishing between iterations).
    #[test]
    fn mf_fit_with_cache_bit_identity_across_iterations() {
        let high = make_data(6, 0.0);
        let mut cache = FitCache::default();
        for n in [10usize, 11, 14, 12] {
            let low = make_data(n, 0.3);
            let mut rng_a = StdRng::seed_from_u64(9);
            let mut rng_b = StdRng::seed_from_u64(9);
            let fresh = MfSurrogates::fit(&low, &high, &MfGpConfig::fast(), &mut rng_a).unwrap();
            let cached = MfSurrogates::fit_with_cache(
                &low,
                &high,
                &MfGpConfig::fast(),
                &mut rng_b,
                &mut cache,
            )
            .unwrap();
            assert_theta_bits_eq(&fresh.thetas().objective, &cached.thetas().objective);
            for (f, c) in fresh
                .thetas()
                .constraints
                .iter()
                .zip(&cached.thetas().constraints)
            {
                assert_theta_bits_eq(f, c);
            }
            for &x in &[0.07, 0.52, 0.93] {
                let (pf, cf) = fresh.predict_high(&[x]);
                let (pc, cc) = cached.predict_high(&[x]);
                assert_eq!(pf.mean.to_bits(), pc.mean.to_bits());
                assert_eq!(pf.var.to_bits(), pc.var.to_bits());
                for (a, b) in cf.iter().zip(&cc) {
                    assert_eq!(a.mean.to_bits(), b.mean.to_bits());
                    assert_eq!(a.var.to_bits(), b.var.to_bits());
                }
            }
        }
    }

    /// Frozen refreshes through the cache match the fresh frozen build bit
    /// for bit.
    #[test]
    fn mf_frozen_with_cache_bit_identity() {
        let low = make_data(18, 0.3);
        let high = make_data(7, 0.0);
        let mut rng = StdRng::seed_from_u64(12);
        let s = MfSurrogates::fit(&low, &high, &MfGpConfig::fast(), &mut rng).unwrap();
        let t = s.thetas();
        let cfg = MfGpConfig::fast();
        let fresh = MfSurrogates::fit_frozen_infer(
            &low,
            &high,
            &t,
            cfg.mc_samples,
            Parallelism::Serial,
            InferenceMode::Exact,
        )
        .unwrap();
        let mut cache = FitCache::default();
        let cached = MfSurrogates::fit_frozen_infer_with_cache(
            &low,
            &high,
            &t,
            cfg.mc_samples,
            Parallelism::Serial,
            InferenceMode::Exact,
            &mut cache,
        )
        .unwrap();
        for &x in &[0.11, 0.66] {
            let (pf, _) = fresh.predict_high(&[x]);
            let (pc, _) = cached.predict_high(&[x]);
            assert_eq!(pf.mean.to_bits(), pc.mean.to_bits());
            assert_eq!(pf.var.to_bits(), pc.var.to_bits());
        }
    }

    /// The whole point of the shared bundle batch: one from-scratch
    /// lower-triangle build per low fusion stage instead of one per model,
    /// while the theta-dependent `kernel_matrix_builds` count — which layout
    /// sharing cannot touch — stays exactly what the per-model NLML search
    /// demands.
    #[test]
    fn mf_bundle_sharing_counters() {
        use std::sync::Arc;
        let low = make_data(16, 0.3);
        let high = make_data(6, 0.0);

        let count = |f: &dyn Fn()| -> (u64, u64, u64) {
            let reg = Arc::new(mfbo_telemetry::metrics::MetricsRegistry::new());
            {
                let _g = mfbo_telemetry::scoped_sink(reg.clone());
                f();
            }
            let snap = reg.snapshot();
            let get = |k: &str| snap.counters.get(k).copied().unwrap_or(0);
            (
                get("diffbatch_builds"),
                get("diffbatch_shared_hits"),
                get("kernel_matrix_builds"),
            )
        };

        // Shared (the default `fit`): one low-stage build for the whole
        // bundle, plus one per-model high-stage build (the augmented high X
        // differs per model and cannot be shared).
        let (builds_shared, hits, kmb_shared) = count(&|| {
            let mut rng = StdRng::seed_from_u64(21);
            MfSurrogates::fit(&low, &high, &MfGpConfig::fast(), &mut rng).unwrap();
        });
        // Unshared baseline: every model builds its own low batch.
        let (builds_owned, _, kmb_owned) = count(&|| {
            let mut rng = StdRng::seed_from_u64(21);
            let cfg = MfGpConfig::fast();
            let plan_o = MfGp::plan(1, &cfg, &mut rng);
            let plan_c = MfGp::plan(1, &cfg, &mut rng);
            MfGp::fit_planned(
                low.xs.clone(),
                low.objective.clone(),
                high.xs.clone(),
                high.objective.clone(),
                &cfg,
                plan_o,
            )
            .unwrap();
            MfGp::fit_planned(
                low.xs.clone(),
                low.constraints[0].clone(),
                high.xs.clone(),
                high.constraints[0].clone(),
                &cfg,
                plan_c,
            )
            .unwrap();
        });
        // 1 objective + 1 constraint: sharing saves exactly one low-stage
        // build (the (1+m)× drop for m = 1), and every model's workspace
        // registers a shared hit.
        assert_eq!(
            builds_owned - builds_shared,
            1,
            "owned {builds_owned}, shared {builds_shared}"
        );
        assert_eq!(hits, 2);
        // Layout invisibility: the theta-dependent assembly count is
        // untouched by who owns the difference buffers.
        assert_eq!(kmb_shared, kmb_owned);
    }
}

//! Offline run-report analyzer: joins a runstore journal with an optional
//! telemetry JSONL trace and renders a text + JSON report (`mfbo-cli
//! report`).
//!
//! Determinism contract: the JSON report must be byte-identical for any two
//! executions of the same configured run — serial vs. `Threads(n)`,
//! `MFBO_SIMD=scalar` vs. `auto`, and killed-and-resumed vs. uninterrupted.
//! That dictates what may enter the JSON:
//!
//! - **Journal-derived** sections (evaluation counts, cost splits,
//!   convergence, retries/quarantine, cache hit rate) are safe as-is: the
//!   journal is part of the bit-exact replay contract.
//! - **Trace-derived health rollups** only use *deterministic event values*
//!   (`gp_fit`, `cholesky_jitter`, `msp`, `acq_landscape`, `hyperparams`,
//!   `fidelity_decision`) and fold them **permutation-invariantly** — counts,
//!   integer sums, min/max, and means over values sorted by `total_cmp` —
//!   because bundle fits emit `gp_fit` from worker threads in
//!   nondeterministic order.
//! - Everything tied to a particular execution is **excluded from the
//!   JSON**: timings (`t_us`, `dur_us`, `wall_us`), `pool` records (absent on
//!   the serial path), `simd_dispatch` (names the backend), and the
//!   `eval_*`/`runstore_*` counters (they describe how values were *sourced*
//!   this session — fresh vs. replayed — which differs under resume; the
//!   journal already carries the run-level truth). The span-tree
//!   self-profile, being pure timing, appears only in the text report.

use mfbo_runstore::{Fid, JournalEntry, RunMeta, RunStore, StoreError};
use mfbo_telemetry::json::{self, Json};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// The product of the analyzer: a deterministic JSON document plus a
/// human-oriented text rendering (which adds the timing self-profile).
#[derive(Debug, Clone)]
pub struct RunReport {
    json: Json,
    text: String,
}

impl RunReport {
    /// Loads the journal from `dir` (and the JSONL trace from `trace`, when
    /// given) and analyzes them.
    ///
    /// # Errors
    ///
    /// Propagates [`StoreError`] from the journal loader; trace I/O and
    /// parse problems surface as [`StoreError::Io`] / [`StoreError::Corrupt`].
    pub fn from_store(
        dir: impl AsRef<Path>,
        trace: Option<&Path>,
    ) -> Result<RunReport, StoreError> {
        let (meta, entries) = RunStore::load_journal(dir.as_ref())?;
        let records = match trace {
            Some(path) => Some(load_trace(path)?),
            None => None,
        };
        Ok(Self::analyze(&meta, &entries, records.as_deref()))
    }

    /// Builds the report from already-loaded parts. `trace` is the parsed
    /// JSONL record stream in file order.
    pub fn analyze(meta: &RunMeta, entries: &[JournalEntry], trace: Option<&[Json]>) -> RunReport {
        let evals = EvalRollup::from_entries(entries);
        let convergence = convergence_from_journal(entries);
        let health = trace.map(HealthRollup::from_trace);

        let mut sections: Vec<(String, Json)> = vec![
            (
                "meta".to_string(),
                Json::Obj(vec![
                    (
                        "format_version".to_string(),
                        Json::Num(meta.format_version as f64),
                    ),
                    ("algo".to_string(), Json::Str(meta.algo.clone())),
                    ("problem".to_string(), Json::Str(meta.problem.clone())),
                    ("dim".to_string(), Json::Num(meta.dim as f64)),
                    (
                        "num_constraints".to_string(),
                        Json::Num(meta.num_constraints as f64),
                    ),
                ]),
            ),
            ("evaluations".to_string(), evals.to_json()),
            (
                "convergence".to_string(),
                Json::Arr(
                    convergence
                        .iter()
                        .map(|&(c, b)| Json::Arr(vec![Json::Num(c), Json::Num(b)]))
                        .collect(),
                ),
            ),
            (
                "feasibility".to_string(),
                Json::Obj(vec![
                    (
                        "first_feasible_cost".to_string(),
                        evals
                            .first_feasible_cost
                            .map(Json::Num)
                            .unwrap_or(Json::Null),
                    ),
                    (
                        "feasible_evals".to_string(),
                        Json::Num(evals.feasible_evals as f64),
                    ),
                    (
                        "final_best".to_string(),
                        convergence
                            .last()
                            .map(|&(_, b)| Json::Num(b))
                            .unwrap_or(Json::Null),
                    ),
                ]),
            ),
        ];
        if let Some(h) = &health {
            sections.push(("health".to_string(), h.to_json()));
        }
        let json_report = Json::Obj(sections);

        let mut text = String::new();
        let _ = writeln!(
            text,
            "run report: {} on {} (dim {}, {} constraints)",
            meta.algo, meta.problem, meta.dim, meta.num_constraints
        );
        text.push_str(&evals.to_text());
        match convergence.last() {
            Some(&(cost, best)) => {
                let _ = writeln!(
                    text,
                    "final best     : {best} (at cost {cost}, {} convergence points)",
                    convergence.len()
                );
            }
            None => text.push_str("final best     : none (no feasible high-fidelity point)\n"),
        }
        match evals.first_feasible_cost {
            Some(c) => {
                let _ = writeln!(text, "first feasible : cost {c}");
            }
            None => text.push_str("first feasible : never\n"),
        }
        if let Some(h) = &health {
            text.push_str(&h.to_text());
        }
        if let Some(records) = trace {
            text.push_str(&span_profile_text(records));
        } else {
            text.push_str("(no trace supplied: health and self-profile sections omitted)\n");
        }

        RunReport {
            json: json_report,
            text,
        }
    }

    /// The deterministic JSON document.
    pub fn json(&self) -> &Json {
        &self.json
    }

    /// Compact single-line JSON encoding plus a trailing newline — the
    /// byte-stable `--report` file format.
    pub fn to_json_string(&self) -> String {
        format!("{}\n", self.json)
    }

    /// The text rendering (includes the timing self-profile, which the JSON
    /// deliberately omits).
    pub fn text(&self) -> &str {
        &self.text
    }
}

/// Reads and parses a telemetry JSONL trace file.
pub fn load_trace(path: &Path) -> Result<Vec<Json>, StoreError> {
    let text = std::fs::read_to_string(path).map_err(|source| StoreError::Io {
        path: path.to_path_buf(),
        source,
    })?;
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|line| {
            json::parse(line).map_err(|reason| StoreError::Corrupt {
                what: "trace record".into(),
                reason,
            })
        })
        .collect()
}

/// Journal-derived evaluation accounting.
#[derive(Debug, Clone, Default)]
struct EvalRollup {
    total: u64,
    low: u64,
    high: u64,
    warm: u64,
    fresh: u64,
    cached: u64,
    quarantined: u64,
    retries: u64,
    total_cost: f64,
    low_cost: f64,
    high_cost: f64,
    fresh_cost: f64,
    cached_cost: f64,
    feasible_evals: u64,
    first_feasible_cost: Option<f64>,
}

impl EvalRollup {
    fn from_entries(entries: &[JournalEntry]) -> EvalRollup {
        let mut r = EvalRollup::default();
        let mut prev_cost = 0.0;
        for e in entries {
            // Pending-issue records from batched ask/tell runs are
            // write-ahead bookkeeping, not consumed evaluations: their
            // cost_after is the committed cost at issue time and their
            // objective/constraints are placeholders. Only commit records
            // describe charges.
            if e.pending {
                continue;
            }
            // The journal stores cumulative cost; successive differences in
            // write order recover what each evaluation actually charged.
            let delta = e.cost_after - prev_cost;
            prev_cost = e.cost_after;
            r.total += 1;
            match e.fid {
                Fid::Low => {
                    r.low += 1;
                    r.low_cost += delta;
                }
                Fid::High => {
                    r.high += 1;
                    r.high_cost += delta;
                }
            }
            if e.warm {
                r.warm += 1;
            } else if e.cached {
                r.cached += 1;
                r.cached_cost += delta;
            } else {
                r.fresh += 1;
                r.fresh_cost += delta;
            }
            if e.quarantined {
                r.quarantined += 1;
            }
            r.retries += u64::from(e.attempts.saturating_sub(1));
            if e.constraints.iter().all(|&c| c < 0.0) {
                r.feasible_evals += 1;
                if r.first_feasible_cost.is_none() {
                    r.first_feasible_cost = Some(e.cost_after);
                }
            }
        }
        r.total_cost = prev_cost;
        r
    }

    /// Cache hits as a fraction of the evaluations that went through the
    /// sourcing pipeline (warm-started injections never could hit).
    fn cache_hit_rate(&self) -> f64 {
        let served = self.total - self.warm;
        if served == 0 {
            0.0
        } else {
            self.cached as f64 / served as f64
        }
    }

    fn cost_pct(&self, part: f64) -> f64 {
        if self.total_cost > 0.0 {
            100.0 * part / self.total_cost
        } else {
            0.0
        }
    }

    fn to_json(&self) -> Json {
        let num = |v: f64| Json::Num(v);
        let count = |v: u64| Json::Num(v as f64);
        Json::Obj(vec![
            ("total".to_string(), count(self.total)),
            ("low".to_string(), count(self.low)),
            ("high".to_string(), count(self.high)),
            ("warm".to_string(), count(self.warm)),
            ("fresh".to_string(), count(self.fresh)),
            ("cached".to_string(), count(self.cached)),
            ("quarantined".to_string(), count(self.quarantined)),
            ("retries".to_string(), count(self.retries)),
            ("cache_hit_rate".to_string(), num(self.cache_hit_rate())),
            ("total_cost".to_string(), num(self.total_cost)),
            (
                "cost_by_fidelity".to_string(),
                Json::Obj(vec![
                    ("low".to_string(), num(self.low_cost)),
                    ("high".to_string(), num(self.high_cost)),
                ]),
            ),
            (
                "cost_pct_by_fidelity".to_string(),
                Json::Obj(vec![
                    ("low".to_string(), num(self.cost_pct(self.low_cost))),
                    ("high".to_string(), num(self.cost_pct(self.high_cost))),
                ]),
            ),
            (
                "cost_by_source".to_string(),
                Json::Obj(vec![
                    ("fresh".to_string(), num(self.fresh_cost)),
                    ("cached".to_string(), num(self.cached_cost)),
                ]),
            ),
        ])
    }

    fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "evaluations    : {} total = {} low + {} high ({} warm-started)",
            self.total, self.low, self.high, self.warm
        );
        let _ = writeln!(
            out,
            "sourcing       : {} fresh, {} cached (hit rate {:.1}%), {} quarantined, {} retries",
            self.fresh,
            self.cached,
            100.0 * self.cache_hit_rate(),
            self.quarantined,
            self.retries
        );
        let _ = writeln!(
            out,
            "cost           : {:.2} total — low {:.1}% / high {:.1}% (fresh {:.2}, cached {:.2})",
            self.total_cost,
            self.cost_pct(self.low_cost),
            self.cost_pct(self.high_cost),
            self.fresh_cost,
            self.cached_cost
        );
        out
    }
}

/// Mirrors [`crate::Outcome::convergence_trace`] from journal entries:
/// `(cost, best feasible high-fidelity objective so far)` after each
/// high-fidelity evaluation, once a feasible point exists. Warm-started
/// injections are skipped — they are not part of the run's own trajectory.
fn convergence_from_journal(entries: &[JournalEntry]) -> Vec<(f64, f64)> {
    let mut best = f64::INFINITY;
    let mut out = Vec::new();
    for e in entries {
        if e.pending || e.warm || e.fid != Fid::High {
            continue;
        }
        if e.constraints.iter().all(|&c| c < 0.0) {
            best = best.min(e.objective);
        }
        if best.is_finite() {
            out.push((e.cost_after, best));
        }
    }
    out
}

/// Mean over `values` that is invariant to the input order: sort by
/// `total_cmp`, then fold. Used for every trace-derived f64 aggregate.
fn sorted_mean(mut values: Vec<f64>) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    values.sort_by(f64::total_cmp);
    let n = values.len() as f64;
    values.iter().sum::<f64>() / n
}

/// Order-invariant min/max over possibly-empty data.
#[derive(Debug, Clone, Copy, Default)]
struct MinMax {
    min: Option<f64>,
    max: Option<f64>,
}

impl MinMax {
    fn absorb(&mut self, v: f64) {
        self.min = Some(self.min.map_or(v, |m| m.min(v)));
        self.max = Some(self.max.map_or(v, |m| m.max(v)));
    }

    fn json_pair(&self) -> Vec<(String, Json)> {
        vec![
            (
                "min".to_string(),
                self.min.map(Json::Num).unwrap_or(Json::Null),
            ),
            (
                "max".to_string(),
                self.max.map(Json::Num).unwrap_or(Json::Null),
            ),
        ]
    }
}

/// Trace-derived surrogate/optimizer health rollups (the deterministic
/// subset; see the module docs for the exclusion rules).
#[derive(Debug, Clone, Default)]
struct HealthRollup {
    gp_fits: u64,
    nlml_evals: u64,
    factorizations: u64,
    lbfgs_iters: u64,
    bound_hits: u64,
    jitter_bumped_fits: u64,
    max_fit_jitter: Option<f64>,
    condition: MinMax,
    conditions: Vec<f64>,
    log_noise: MinMax,
    cholesky_jitter_events: u64,
    cholesky_jitter_attempts: u64,
    msp_calls: u64,
    msp_evaluations: u64,
    msp_max_spread: Option<f64>,
    msp_frac_zeros: Vec<f64>,
    decisions: u64,
    decisions_high: u64,
    decisions_forced: u64,
    decisions_drive: u64,
    /// `(iteration, best, worst, spread, frac_zero)` rows, iteration order.
    acq_rows: Vec<(u64, f64, f64, f64, f64)>,
    /// `(iteration, field name, raw theta string)` rows, iteration order.
    hyper_rows: Vec<(u64, Vec<(String, String)>)>,
    counters: BTreeMap<String, u64>,
}

/// Counters whose totals depend on the execution mode rather than the
/// configured run: `pool_*` only exist on the threaded path, the
/// `eval_*` / `runstore_*` sourcing counters change under resume/caching,
/// `server_*` counters describe service traffic rather than any one run,
/// `journal_*` group-commit counters depend on flush timing (how many
/// appends share a linger window), and `simd_dispatch` fires once per
/// process, not once per run.
fn deterministic_counter(name: &str) -> bool {
    !(name.starts_with("pool")
        || name.starts_with("eval_")
        || name.starts_with("runstore")
        || name.starts_with("server_")
        || name.starts_with("journal_")
        || name == "simd_dispatch")
}

impl HealthRollup {
    fn from_trace(records: &[Json]) -> HealthRollup {
        let mut h = HealthRollup::default();
        for rec in records {
            let name = rec.get("name").and_then(Json::as_str).unwrap_or("");
            let kind = rec.get("kind").and_then(Json::as_str).unwrap_or("");
            let fields = rec.get("fields");
            let fnum = |key: &str| fields.and_then(|f| f.get(key)).and_then(Json::as_f64);
            let fint = |key: &str| fnum(key).map(|v| v as u64);
            let fbool = |key: &str| {
                fields
                    .and_then(|f| f.get(key))
                    .and_then(Json::as_bool)
                    .unwrap_or(false)
            };
            match (kind, name) {
                ("counter", _) if deterministic_counter(name) => {
                    let v = fint("value").unwrap_or(0);
                    *h.counters.entry(name.to_string()).or_insert(0) += v;
                }
                ("event", "gp_fit") => {
                    h.gp_fits += 1;
                    h.nlml_evals += fint("nlml_evals").unwrap_or(0);
                    h.factorizations += fint("factorizations").unwrap_or(0);
                    h.lbfgs_iters += fint("lbfgs_iters").unwrap_or(0);
                    h.bound_hits += fint("bound_hits").unwrap_or(0);
                    if let Some(j) = fnum("jitter") {
                        if j > 0.0 {
                            h.jitter_bumped_fits += 1;
                            h.max_fit_jitter = Some(h.max_fit_jitter.map_or(j, |m: f64| m.max(j)));
                        }
                    }
                    if let Some(c) = fnum("condition") {
                        h.condition.absorb(c);
                        h.conditions.push(c);
                    }
                    if let Some(n) = fnum("log_noise") {
                        h.log_noise.absorb(n);
                    }
                }
                ("event", "cholesky_jitter") => {
                    h.cholesky_jitter_events += 1;
                    h.cholesky_jitter_attempts += fint("attempts").unwrap_or(0);
                }
                ("event", "msp") => {
                    h.msp_calls += 1;
                    h.msp_evaluations += fint("evaluations").unwrap_or(0);
                    if let Some(s) = fnum("spread") {
                        h.msp_max_spread = Some(h.msp_max_spread.map_or(s, |m: f64| m.max(s)));
                    }
                    if let Some(z) = fnum("frac_zero") {
                        h.msp_frac_zeros.push(z);
                    }
                }
                ("event", "fidelity_decision") => {
                    h.decisions += 1;
                    h.decisions_high += u64::from(fbool("chose_high"));
                    h.decisions_forced += u64::from(fbool("forced"));
                    h.decisions_drive += u64::from(fbool("feasibility_drive"));
                }
                ("event", "acq_landscape") => {
                    h.acq_rows.push((
                        fint("iteration").unwrap_or(0),
                        fnum("best_value").unwrap_or(f64::NAN),
                        fnum("worst_value").unwrap_or(f64::NAN),
                        fnum("spread").unwrap_or(f64::NAN),
                        fnum("frac_zero").unwrap_or(f64::NAN),
                    ));
                }
                ("event", "hyperparams") => {
                    let mut row = Vec::new();
                    if let Some(Json::Obj(pairs)) = fields {
                        for (k, v) in pairs {
                            if k != "iteration" {
                                if let Some(s) = v.as_str() {
                                    row.push((k.clone(), s.to_string()));
                                }
                            }
                        }
                    }
                    h.hyper_rows.push((fint("iteration").unwrap_or(0), row));
                }
                _ => {}
            }
        }
        // Main-thread events arrive in iteration order already; sorting
        // makes that a guarantee rather than an accident of sink locking.
        h.acq_rows.sort_by_key(|r| r.0);
        h.hyper_rows.sort_by_key(|r| r.0);
        h
    }

    fn to_json(&self) -> Json {
        let count = |v: u64| Json::Num(v as f64);
        let mut condition = self.condition.json_pair();
        condition.push((
            "mean".to_string(),
            if self.conditions.is_empty() {
                Json::Null
            } else {
                Json::Num(sorted_mean(self.conditions.clone()))
            },
        ));
        Json::Obj(vec![
            (
                "gp_fits".to_string(),
                Json::Obj(vec![
                    ("count".to_string(), count(self.gp_fits)),
                    ("nlml_evals".to_string(), count(self.nlml_evals)),
                    ("factorizations".to_string(), count(self.factorizations)),
                    ("lbfgs_iters".to_string(), count(self.lbfgs_iters)),
                    ("bound_hits".to_string(), count(self.bound_hits)),
                    (
                        "jitter_bumped_fits".to_string(),
                        count(self.jitter_bumped_fits),
                    ),
                    (
                        "max_jitter".to_string(),
                        self.max_fit_jitter.map(Json::Num).unwrap_or(Json::Null),
                    ),
                    ("condition".to_string(), Json::Obj(condition)),
                    (
                        "log_noise".to_string(),
                        Json::Obj(self.log_noise.json_pair()),
                    ),
                ]),
            ),
            (
                "cholesky_jitter".to_string(),
                Json::Obj(vec![
                    ("events".to_string(), count(self.cholesky_jitter_events)),
                    ("attempts".to_string(), count(self.cholesky_jitter_attempts)),
                ]),
            ),
            (
                "msp".to_string(),
                Json::Obj(vec![
                    ("calls".to_string(), count(self.msp_calls)),
                    ("evaluations".to_string(), count(self.msp_evaluations)),
                    (
                        "max_spread".to_string(),
                        self.msp_max_spread.map(Json::Num).unwrap_or(Json::Null),
                    ),
                    (
                        "mean_frac_zero".to_string(),
                        if self.msp_frac_zeros.is_empty() {
                            Json::Null
                        } else {
                            Json::Num(sorted_mean(self.msp_frac_zeros.clone()))
                        },
                    ),
                ]),
            ),
            (
                "fidelity_decisions".to_string(),
                Json::Obj(vec![
                    ("count".to_string(), count(self.decisions)),
                    ("high".to_string(), count(self.decisions_high)),
                    ("forced".to_string(), count(self.decisions_forced)),
                    ("feasibility_drive".to_string(), count(self.decisions_drive)),
                ]),
            ),
            (
                "acq_landscape".to_string(),
                Json::Arr(
                    self.acq_rows
                        .iter()
                        .map(|&(it, best, worst, spread, fz)| {
                            Json::Arr(vec![
                                Json::Num(it as f64),
                                Json::Num(best),
                                Json::Num(worst),
                                Json::Num(spread),
                                Json::Num(fz),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "hyperparams".to_string(),
                Json::Arr(
                    self.hyper_rows
                        .iter()
                        .map(|(it, row)| {
                            let mut obj = vec![("iteration".to_string(), Json::Num(*it as f64))];
                            obj.extend(row.iter().map(|(k, v)| (k.clone(), Json::Str(v.clone()))));
                            Json::Obj(obj)
                        })
                        .collect(),
                ),
            ),
            (
                "counters".to_string(),
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, &v)| (k.clone(), count(v)))
                        .collect(),
                ),
            ),
        ])
    }

    fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "gp fits        : {} ({} NLML evals, {} bound hits, {} jitter-bumped)",
            self.gp_fits, self.nlml_evals, self.bound_hits, self.jitter_bumped_fits
        );
        if let (Some(lo), Some(hi)) = (self.condition.min, self.condition.max) {
            let _ = writeln!(
                out,
                "conditioning   : κ ∈ [{lo:.3e}, {hi:.3e}], {} jitter bumps",
                self.cholesky_jitter_events
            );
        }
        if self.msp_calls > 0 {
            let _ = writeln!(
                out,
                "acq optimizer  : {} MSP solves, {} local evals, max spread {}, mean frac-zero {:.3}",
                self.msp_calls,
                self.msp_evaluations,
                self.msp_max_spread
                    .map(|s| format!("{s:.3e}"))
                    .unwrap_or_else(|| "n/a".to_string()),
                sorted_mean(self.msp_frac_zeros.clone())
            );
        }
        if self.decisions > 0 {
            let _ = writeln!(
                out,
                "fidelity picks : {}/{} high ({} forced, {} feasibility-driven)",
                self.decisions_high, self.decisions, self.decisions_forced, self.decisions_drive
            );
        }
        out
    }
}

/// Renders the span-tree self-profile from a trace: per-span-name call
/// counts with inclusive (span duration) and exclusive (minus child spans)
/// totals. Timing-derived, so text-report only.
fn span_profile_text(records: &[Json]) -> String {
    struct Frame {
        name: String,
        child_us: u64,
    }
    #[derive(Default)]
    struct Agg {
        calls: u64,
        incl_us: u64,
        excl_us: u64,
    }
    let mut stack: Vec<Frame> = Vec::new();
    let mut agg: BTreeMap<String, Agg> = BTreeMap::new();
    for rec in records {
        let name = rec.get("name").and_then(Json::as_str).unwrap_or("");
        match rec.get("kind").and_then(Json::as_str) {
            Some("span_start") => stack.push(Frame {
                name: name.to_string(),
                child_us: 0,
            }),
            Some("span_end") => {
                let dur = rec
                    .get("fields")
                    .and_then(|f| f.get("dur_us"))
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0) as u64;
                // Tolerate a truncated trace (killed run): unwind to the
                // matching open frame if one exists.
                while let Some(frame) = stack.pop() {
                    if frame.name == name {
                        let entry = agg.entry(frame.name).or_default();
                        entry.calls += 1;
                        entry.incl_us += dur;
                        entry.excl_us += dur.saturating_sub(frame.child_us);
                        if let Some(parent) = stack.last_mut() {
                            parent.child_us += dur;
                        }
                        break;
                    }
                }
            }
            _ => {}
        }
    }
    if agg.is_empty() {
        return String::new();
    }
    let total_excl: u64 = agg.values().map(|a| a.excl_us).sum();
    let mut rows: Vec<(&String, &Agg)> = agg.iter().collect();
    rows.sort_by(|a, b| b.1.excl_us.cmp(&a.1.excl_us).then(a.0.cmp(b.0)));
    let mut out = String::new();
    out.push_str("span-tree self-profile (from trace; wall-clock, non-deterministic):\n");
    let _ = writeln!(
        out,
        "{:<18} {:>7} {:>12} {:>12} {:>7}",
        "span", "calls", "incl_ms", "excl_ms", "excl%"
    );
    for (name, a) in rows {
        let _ = writeln!(
            out,
            "{:<18} {:>7} {:>12.3} {:>12.3} {:>6.1}%",
            name,
            a.calls,
            a.incl_us as f64 / 1e3,
            a.excl_us as f64 / 1e3,
            if total_excl > 0 {
                100.0 * a.excl_us as f64 / total_excl as f64
            } else {
                0.0
            }
        );
    }
    out
}

/// Validates `doc` against a minimal JSON-Schema subset: `type` (string or
/// array of strings), `required`, `properties`, and `items`. Enough to pin
/// the report's shape in CI without an external schema library.
///
/// # Errors
///
/// A human-readable path + reason for the first violation found.
pub fn validate_schema(schema: &Json, doc: &Json) -> Result<(), String> {
    fn type_name(v: &Json) -> &'static str {
        match v {
            Json::Null => "null",
            Json::Bool(_) => "boolean",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
    fn check(schema: &Json, doc: &Json, path: &str) -> Result<(), String> {
        if let Some(ty) = schema.get("type") {
            let actual = type_name(doc);
            let allowed: Vec<&str> = match ty {
                Json::Str(s) => vec![s.as_str()],
                Json::Arr(items) => items.iter().filter_map(Json::as_str).collect(),
                _ => return Err(format!("{path}: schema \"type\" must be string or array")),
            };
            // JSON has one number type; our codec encodes non-finite floats
            // as null, so number-or-null is a common pairing.
            if !allowed.contains(&actual) {
                return Err(format!("{path}: expected type {allowed:?}, found {actual}"));
            }
        }
        if let Some(Json::Arr(required)) = schema.get("required") {
            for key in required.iter().filter_map(Json::as_str) {
                if doc.get(key).is_none() {
                    return Err(format!("{path}: missing required key {key:?}"));
                }
            }
        }
        if let Some(Json::Obj(props)) = schema.get("properties") {
            for (key, sub) in props {
                if let Some(value) = doc.get(key) {
                    check(sub, value, &format!("{path}.{key}"))?;
                }
            }
        }
        if let Some(items) = schema.get("items") {
            if let Json::Arr(values) = doc {
                for (i, value) in values.iter().enumerate() {
                    check(items, value, &format!("{path}[{i}]"))?;
                }
            }
        }
        Ok(())
    }
    check(schema, doc, "$")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> RunMeta {
        RunMeta {
            format_version: mfbo_runstore::FORMAT_VERSION,
            algo: "mfbo".into(),
            problem: "forrester".into(),
            dim: 1,
            num_constraints: 1,
            rng_start: None,
            batch: None,
            inference: None,
        }
    }

    fn entry(iteration: u64, fid: Fid, obj: f64, con: f64, cost: f64) -> JournalEntry {
        JournalEntry {
            iteration,
            fid,
            x: vec![0.5],
            objective: obj,
            constraints: vec![con],
            cost_after: cost,
            rng: None,
            attempts: 1,
            cached: false,
            quarantined: false,
            warm: false,
            pending: false,
            cand: None,
        }
    }

    fn event(name: &'static str, fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(vec![
            ("t_us".to_string(), Json::Num(1.0)),
            ("level".to_string(), Json::Str("debug".into())),
            ("kind".to_string(), Json::Str("event".into())),
            ("name".to_string(), Json::Str(name.into())),
            ("depth".to_string(), Json::Num(0.0)),
            (
                "fields".to_string(),
                Json::Obj(
                    fields
                        .into_iter()
                        .map(|(k, v)| (k.to_string(), v))
                        .collect(),
                ),
            ),
        ])
    }

    fn gp_fit_event(nlml_evals: f64, condition: f64, jitter: f64) -> Json {
        event(
            "gp_fit",
            vec![
                ("nlml_evals", Json::Num(nlml_evals)),
                ("factorizations", Json::Num(nlml_evals + 1.0)),
                ("lbfgs_iters", Json::Num(4.0)),
                ("bound_hits", Json::Num(1.0)),
                ("condition", Json::Num(condition)),
                ("jitter", Json::Num(jitter)),
                ("log_noise", Json::Num(-4.0)),
            ],
        )
    }

    #[test]
    fn journal_rollup_counts_cost_split_and_sourcing() {
        let mut entries = vec![
            entry(0, Fid::Low, 1.0, -0.5, 1.0),
            entry(0, Fid::High, 2.0, 0.5, 6.0),
            entry(1, Fid::Low, 0.5, -0.5, 7.0),
            entry(2, Fid::High, -1.0, -0.5, 12.0),
        ];
        entries[2].cached = true;
        entries[2].attempts = 3;
        let report = RunReport::analyze(&meta(), &entries, None);
        let evals = report.json().get("evaluations").unwrap();
        let num = |k: &str| evals.get(k).and_then(Json::as_f64).unwrap();
        assert_eq!(num("total"), 4.0);
        assert_eq!(num("low"), 2.0);
        assert_eq!(num("high"), 2.0);
        assert_eq!(num("cached"), 1.0);
        assert_eq!(num("fresh"), 3.0);
        assert_eq!(num("retries"), 2.0);
        assert_eq!(num("cache_hit_rate"), 0.25);
        assert_eq!(num("total_cost"), 12.0);
        let by_fid = evals.get("cost_by_fidelity").unwrap();
        assert_eq!(by_fid.get("low").and_then(Json::as_f64), Some(2.0));
        assert_eq!(by_fid.get("high").and_then(Json::as_f64), Some(10.0));
        // Convergence: only the feasible high entry at cost 12 qualifies.
        let conv = report
            .json()
            .get("convergence")
            .and_then(Json::as_arr)
            .unwrap();
        assert_eq!(conv.len(), 1);
        let row = conv[0].as_arr().unwrap();
        assert_eq!(row[0].as_f64(), Some(12.0));
        assert_eq!(row[1].as_f64(), Some(-1.0));
        let feas = report.json().get("feasibility").unwrap();
        assert_eq!(feas.get("feasible_evals").and_then(Json::as_f64), Some(3.0));
        assert_eq!(
            feas.get("first_feasible_cost").and_then(Json::as_f64),
            Some(1.0)
        );
        assert!(report.text().contains("cost           : 12.00 total"));
    }

    #[test]
    fn health_rollup_is_permutation_invariant() {
        let entries = vec![entry(0, Fid::High, 1.0, -1.0, 5.0)];
        let trace: Vec<Json> = vec![
            gp_fit_event(10.0, 1e3, 0.0),
            gp_fit_event(20.0, 1e7, 1e-8),
            gp_fit_event(15.0, 1e5, 0.0),
            event(
                "msp",
                vec![
                    ("evaluations", Json::Num(100.0)),
                    ("spread", Json::Num(2.5)),
                    ("frac_zero", Json::Num(0.25)),
                ],
            ),
        ];
        let mut shuffled = trace.clone();
        shuffled.swap(0, 2);
        shuffled.swap(1, 3);
        let a = RunReport::analyze(&meta(), &entries, Some(&trace));
        let b = RunReport::analyze(&meta(), &entries, Some(&shuffled));
        assert_eq!(a.to_json_string(), b.to_json_string());
        let gp = a.json().get("health").unwrap().get("gp_fits").unwrap();
        assert_eq!(gp.get("count").and_then(Json::as_f64), Some(3.0));
        assert_eq!(gp.get("nlml_evals").and_then(Json::as_f64), Some(45.0));
        assert_eq!(
            gp.get("jitter_bumped_fits").and_then(Json::as_f64),
            Some(1.0)
        );
        let cond = gp.get("condition").unwrap();
        assert_eq!(cond.get("min").and_then(Json::as_f64), Some(1e3));
        assert_eq!(cond.get("max").and_then(Json::as_f64), Some(1e7));
    }

    #[test]
    fn nondeterministic_records_are_excluded_from_json() {
        let entries = vec![entry(0, Fid::High, 1.0, -1.0, 5.0)];
        let base: Vec<Json> = vec![gp_fit_event(10.0, 1e3, 0.0)];
        let mut noisy = base.clone();
        // Execution-mode artifacts: pool fan-out counters, SIMD dispatch,
        // session sourcing counters, and differing timings.
        noisy.push(Json::Obj(vec![
            ("t_us".to_string(), Json::Num(999.0)),
            ("kind".to_string(), Json::Str("counter".into())),
            ("name".to_string(), Json::Str("pool_items".into())),
            (
                "fields".to_string(),
                Json::Obj(vec![("value".to_string(), Json::Num(24.0))]),
            ),
        ]));
        noisy.push(Json::Obj(vec![
            ("kind".to_string(), Json::Str("counter".into())),
            ("name".to_string(), Json::Str("eval_cache_hit".into())),
            (
                "fields".to_string(),
                Json::Obj(vec![("value".to_string(), Json::Num(3.0))]),
            ),
        ]));
        noisy.push(event(
            "simd_dispatch",
            vec![("backend", Json::Str("avx2".into()))],
        ));
        let a = RunReport::analyze(&meta(), &entries, Some(&base));
        let b = RunReport::analyze(&meta(), &entries, Some(&noisy));
        assert_eq!(a.to_json_string(), b.to_json_string());
    }

    #[test]
    fn span_profile_computes_exclusive_times() {
        let span = |kind: &str, name: &str, dur: Option<f64>| {
            let mut fields = Vec::new();
            if let Some(d) = dur {
                fields.push(("dur_us".to_string(), Json::Num(d)));
            }
            Json::Obj(vec![
                ("kind".to_string(), Json::Str(kind.into())),
                ("name".to_string(), Json::Str(name.into())),
                ("fields".to_string(), Json::Obj(fields)),
            ])
        };
        let trace = vec![
            span("span_start", "outer", None),
            span("span_start", "inner", None),
            span("span_end", "inner", Some(300.0)),
            span("span_end", "outer", Some(1000.0)),
        ];
        let text = span_profile_text(&trace);
        assert!(text.contains("outer"), "{text}");
        // outer: inclusive 1.0ms, exclusive 0.7ms.
        assert!(text.contains("0.700"), "{text}");
        assert!(text.contains("0.300"), "{text}");
    }

    #[test]
    fn schema_validator_accepts_report_and_rejects_shape_breaks() {
        let entries = vec![entry(0, Fid::High, 1.0, -1.0, 5.0)];
        let report = RunReport::analyze(&meta(), &entries, Some(&[]));
        let schema = json::parse(
            r#"{"type":"object",
                "required":["meta","evaluations","convergence","feasibility"],
                "properties":{
                  "meta":{"type":"object","required":["algo","problem"]},
                  "evaluations":{"type":"object","required":["total","cache_hit_rate"]},
                  "convergence":{"type":"array","items":{"type":"array"}}}}"#,
        )
        .unwrap();
        validate_schema(&schema, report.json()).expect("report matches schema");
        let broken = json::parse(r#"{"meta":{"algo":"mfbo"}}"#).unwrap();
        let err = validate_schema(&schema, &broken).unwrap_err();
        assert!(err.contains("missing required key"), "{err}");
        let wrong_type = json::parse(
            r#"{"meta":{"algo":"mfbo","problem":"f"},"evaluations":{"total":1,"cache_hit_rate":0},
                "convergence":"oops","feasibility":{}}"#,
        )
        .unwrap();
        let err = validate_schema(&schema, &wrong_type).unwrap_err();
        assert!(err.contains("convergence"), "{err}");
    }
}
